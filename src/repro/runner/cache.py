"""Content-addressed on-disk result cache for experiment units.

A unit's cache key is a SHA-256 fingerprint over:

* the runner schema version;
* the experiment's identity (name, seed, result-schema version+fields);
* the unit's parameters (canonical JSON);
* the SHA-256 of every repo source file the experiment's code
  (transitively) imports, discovered by walking the import graph with
  :func:`repro.analysis.imported_modules`.

Unchanged experiments are therefore instant cache hits, and *any* edit
to a source file the experiment actually depends on -- and only those --
precisely invalidates its entries.  Entries are content-addressed:
``<cache_dir>/<experiment>/<fingerprint>.json``.  A corrupted or
truncated entry is treated as a miss (and counted), never an error; the
unit is simply recomputed and the entry rewritten.
"""

from __future__ import annotations

import ast
import hashlib
import json
import os
from pathlib import Path
from typing import Any, Dict, List, Mapping, Optional, Set, Tuple

from repro.analysis import imported_modules
from repro.runner.registry import RUNNER_SCHEMA_VERSION, Experiment, UnitContext

#: Entry payload version, independent of the fingerprint inputs.
CACHE_ENTRY_VERSION = 1


def canonical_json(payload: Any) -> str:
    """Deterministic JSON text: sorted keys, fixed separators, newline."""
    return json.dumps(payload, sort_keys=True, indent=2, ensure_ascii=True) + "\n"


# --------------------------------------------------------------------- #
# Import-graph closure


def repo_root() -> Path:
    """The checkout root, derived from this file's location (src layout)."""
    return Path(__file__).resolve().parents[3]


def _module_candidates(root: Path, module: str) -> List[Path]:
    """Files that could define ``module`` under ``root`` (src layout)."""
    rel = Path(*module.split("."))
    return [
        root / "src" / rel.with_suffix(".py"),
        root / "src" / rel / "__init__.py",
        root / rel.with_suffix(".py"),
        root / rel / "__init__.py",
    ]


def resolve_module(root: Path, module: str) -> Optional[Path]:
    """The repo file defining ``module``, or ``None`` for external deps."""
    for candidate in _module_candidates(root, module):
        if candidate.is_file():
            return candidate
    return None


def import_closure(root: Path, modules: Tuple[str, ...]) -> List[Path]:
    """Transitive closure of repo files reachable from ``modules``.

    External modules (numpy, stdlib) resolve to no repo file and are
    ignored; ``from pkg import name`` contributes both ``pkg`` and
    ``pkg.name`` as candidates and existence filtering keeps the real
    ones.  Returns sorted paths so fingerprints are order-independent.
    """
    root = Path(root)
    seen: Dict[str, Optional[Path]] = {}
    queue = list(modules)
    files: Set[Path] = set()
    while queue:
        module = queue.pop()
        if module in seen:
            continue
        path = resolve_module(root, module)
        seen[module] = path
        if path is None:
            continue
        files.add(path)
        # A module's package __init__ runs on import, so it is a real
        # dependency even when never named explicitly.
        parts = module.split(".")
        for depth in range(1, len(parts)):
            queue.append(".".join(parts[:depth]))
        try:
            tree = ast.parse(path.read_text(encoding="utf-8"))
        except (SyntaxError, UnicodeDecodeError, OSError):
            continue
        queue.extend(sorted(imported_modules(
            tree, module, is_package=path.name == "__init__.py"
        )))
    return sorted(files)


def source_hashes(root: Path, modules: Tuple[str, ...]) -> Dict[str, str]:
    """``{repo-relative posix path: sha256}`` over the import closure."""
    root = Path(root)
    hashes: Dict[str, str] = {}
    for path in import_closure(root, modules):
        digest = hashlib.sha256(path.read_bytes()).hexdigest()
        hashes[path.relative_to(root).as_posix()] = digest
    return hashes


# --------------------------------------------------------------------- #
# Fingerprints


def unit_fingerprint(
    experiment: Experiment,
    unit: UnitContext,
    sources: Mapping[str, str],
) -> str:
    """The unit's content address; ``sources`` from :func:`source_hashes`."""
    spec = {
        "runner_version": RUNNER_SCHEMA_VERSION,
        "experiment": experiment.name,
        "seed": experiment.seed,
        "schema": {
            "version": experiment.schema.version,
            "fields": list(experiment.schema.fields),
        },
        "unit": {"index": unit.index, "params": dict(unit.params)},
        "sources": dict(sources),
    }
    return hashlib.sha256(canonical_json(spec).encode("utf-8")).hexdigest()


# --------------------------------------------------------------------- #
# The on-disk cache


class ResultCache:
    """Directory of content-addressed unit results.

    Writes are atomic (tmp file + ``os.replace``) so a crashed run never
    leaves a half-written entry that later parses.  Reads validate the
    payload shape and embedded fingerprint; anything off is a miss.
    """

    def __init__(self, directory: Path) -> None:
        self.directory = Path(directory)
        self.hits = 0
        self.misses = 0
        self.errors = 0  # corrupt/unreadable entries survived as misses

    def _path(self, experiment: str, fingerprint: str) -> Path:
        return self.directory / experiment / f"{fingerprint}.json"

    def get(self, experiment: str, fingerprint: str) -> Optional[Dict[str, Any]]:
        """The cached result dict, or ``None`` (miss -- never raises)."""
        path = self._path(experiment, fingerprint)
        try:
            payload = json.loads(path.read_text(encoding="utf-8"))
        except FileNotFoundError:
            self.misses += 1
            return None
        except (OSError, json.JSONDecodeError, UnicodeDecodeError):
            self.errors += 1
            self.misses += 1
            return None
        if (
            not isinstance(payload, dict)
            or payload.get("entry_version") != CACHE_ENTRY_VERSION
            or payload.get("fingerprint") != fingerprint
            or not isinstance(payload.get("result"), dict)
        ):
            self.errors += 1
            self.misses += 1
            return None
        self.hits += 1
        return payload["result"]

    def put(
        self,
        experiment: str,
        fingerprint: str,
        unit: UnitContext,
        result: Mapping[str, Any],
    ) -> None:
        path = self._path(experiment, fingerprint)
        path.parent.mkdir(parents=True, exist_ok=True)
        payload = {
            "entry_version": CACHE_ENTRY_VERSION,
            "fingerprint": fingerprint,
            "experiment": experiment,
            "unit_index": unit.index,
            "params": dict(unit.params),
            "result": dict(result),
        }
        tmp = path.with_suffix(".tmp")
        tmp.write_text(canonical_json(payload), encoding="utf-8")
        os.replace(tmp, path)
