"""``repro.runner``: the sharded deterministic experiment runner.

The paper's evaluation is a fleet of experiments (Tables 1-2, Figures
7-10, the ablations); this package turns that fleet into an orchestrated
sweep:

* :mod:`repro.runner.registry` -- every table/figure as a declarative
  :class:`Experiment` (callable + parameter grid + seed +
  schema-versioned result contract);
* :mod:`repro.runner.executor` -- process-level fan-out over shards with
  the seed-derivation rule ``split_rng(seed, f"{name}/unit{index}")``,
  guaranteeing byte-identical results for ``--jobs 1`` vs ``--jobs N``;
* :mod:`repro.runner.cache` -- a content-addressed on-disk result cache
  keyed by the experiment spec plus the SHA-256 of every source file the
  experiment transitively imports (import graph via
  :func:`repro.analysis.imported_modules`);
* :mod:`repro.runner.manifest` -- the canonical ``BENCH_PR5.json``
  manifest and EXPERIMENTS.md-style markdown report;
* :mod:`repro.runner.experiments` -- the default registry wrapping the
  ``benchmarks/`` logic (Table 1, Table 2, Figure 7, Figure 9).

Surfaced through ``repro-bench run [--jobs N] [--cache-dir DIR]``.
"""

from __future__ import annotations

from repro.runner.cache import (
    ResultCache,
    canonical_json,
    import_closure,
    source_hashes,
    unit_fingerprint,
)
from repro.runner.executor import (
    ExperimentRun,
    RunResult,
    RunStats,
    run_experiments,
)
from repro.runner.manifest import (
    DEFAULT_MANIFEST_NAME,
    build_manifest,
    dump_json,
    manifest_text,
    render_markdown,
    render_stats,
    write_manifest,
)
from repro.runner.registry import (
    RUNNER_SCHEMA_VERSION,
    Experiment,
    ExperimentRegistry,
    ResultSchema,
    UnitContext,
)

__all__ = [
    "DEFAULT_MANIFEST_NAME",
    "Experiment",
    "ExperimentRegistry",
    "ExperimentRun",
    "ResultCache",
    "ResultSchema",
    "RunResult",
    "RunStats",
    "RUNNER_SCHEMA_VERSION",
    "UnitContext",
    "build_manifest",
    "canonical_json",
    "default_registry",
    "dump_json",
    "import_closure",
    "manifest_text",
    "render_markdown",
    "render_stats",
    "run_experiments",
    "source_hashes",
    "unit_fingerprint",
    "write_manifest",
]


def default_registry():
    """The registry of paper experiments (imported lazily: registering
    pulls in :mod:`repro.sim.rng`, i.e. numpy)."""
    from repro.runner.experiments import default_registry as _default

    return _default()
