"""Sharded experiment executor: process fan-out with cached results.

Execution model:

1. Expand every selected experiment's grid into ordered units and
   compute each unit's content-addressed fingerprint (cheap hashing, in
   the parent).
2. Resolve cache hits; only misses become work.
3. Deal missed units round-robin into ``jobs`` shards and run the
   shards in worker processes (``--jobs 1`` runs inline -- no pool).
4. Re-assemble results **by unit identity** (experiment name + grid
   index), validate schemas, write cache entries, and roll per-shard
   metrics into the installed :mod:`repro.obs` hub.

Determinism: a unit's RNG is derived from (experiment name, unit index,
experiment seed) inside :class:`~repro.runner.registry.UnitContext` --
shard membership and worker identity never touch the stream -- and
results are ordered by grid position, never completion order.  Hence
``jobs=1`` and ``jobs=N`` produce byte-identical manifests.
"""

from __future__ import annotations

import multiprocessing
import time
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence, Tuple

from pathlib import Path

from repro import obs
from repro.runner.cache import (
    ResultCache,
    repo_root,
    source_hashes,
    unit_fingerprint,
)
from repro.runner.registry import Experiment, ExperimentRegistry, UnitContext


@dataclass
class ExperimentRun:
    """One experiment's ordered unit results plus their fingerprints."""

    experiment: Experiment
    units: List[UnitContext]
    fingerprints: List[str]
    results: List[Dict[str, Any]]

    def summary_rows(self) -> List[Dict[str, Any]]:
        return self.experiment.summary_rows(self.results)


@dataclass
class RunStats:
    """Operational accounting (deliberately *not* part of the manifest)."""

    experiments: int = 0
    units: int = 0
    cache_hits: int = 0
    cache_misses: int = 0
    cache_errors: int = 0
    shards: int = 0
    jobs: int = 1
    wall_seconds: float = 0.0
    shard_seconds: List[float] = field(default_factory=list)

    @property
    def hit_rate(self) -> float:
        return self.cache_hits / self.units if self.units else 0.0


@dataclass
class RunResult:
    runs: List[ExperimentRun]
    stats: RunStats


# --------------------------------------------------------------------- #
# Shard worker (module-level so it pickles by reference)

#: One unit of shard work: (experiment, unit) pairs.
_ShardPayload = Tuple[int, List[Tuple[Experiment, UnitContext]]]


def _run_shard(
    payload: _ShardPayload,
) -> Tuple[int, List[Tuple[str, int, Dict[str, Any]]], float]:
    """Run one shard's units sequentially; returns tagged results.

    Results are tagged with (experiment name, unit index) so the parent
    can re-assemble them in grid order no matter which shard or process
    computed them.
    """
    shard_index, work = payload
    t0 = time.perf_counter()  # lint: allow=determinism -- shard wall-clock metric
    out: List[Tuple[str, int, Dict[str, Any]]] = []
    for experiment, unit in work:
        out.append((experiment.name, unit.index, experiment.run_unit(unit)))
    seconds = time.perf_counter() - t0  # lint: allow=determinism -- shard wall-clock metric
    return shard_index, out, seconds


def _deal_shards(
    work: Sequence[Tuple[Experiment, UnitContext]], jobs: int
) -> List[_ShardPayload]:
    """Round-robin units into at most ``jobs`` non-empty shards."""
    count = max(1, min(jobs, len(work)))
    shards: List[List[Tuple[Experiment, UnitContext]]] = [[] for _ in range(count)]
    for i, item in enumerate(work):
        shards[i % count].append(item)
    return [(i, shard) for i, shard in enumerate(shards) if shard]


def _pool_context() -> multiprocessing.context.BaseContext:
    """Fork when available (inherits locally-registered experiments);
    spawn elsewhere (default-registry experiments only)."""
    methods = multiprocessing.get_all_start_methods()
    return multiprocessing.get_context("fork" if "fork" in methods else "spawn")


# --------------------------------------------------------------------- #
# The run driver


def run_experiments(
    registry: ExperimentRegistry,
    names: Sequence[str] = (),
    jobs: int = 1,
    cache: Optional[ResultCache] = None,
    root: Optional[str] = None,
    smoke: bool = False,
) -> RunResult:
    """Run experiments from ``registry``, fanned out over ``jobs`` workers.

    Source fingerprints are always computed (against ``root``, default
    the checkout this module lives in) so manifests are byte-identical
    with or without a ``cache``; the cache only changes *when* a unit is
    recomputed, never what its fingerprint or result is.  Per-shard
    wall-clock and cache accounting land in :class:`RunStats` and are
    mirrored into the installed obs hub; the returned results carry no
    timing, so manifests stay byte-identical across ``jobs`` settings.
    """
    if jobs < 1:
        raise ValueError("jobs must be >= 1")
    t_start = time.perf_counter()  # lint: allow=determinism -- run wall-clock metric
    fingerprint_root = Path(root) if root is not None else repo_root()
    experiments = registry.select(names)
    runs: List[ExperimentRun] = []
    stats = RunStats(experiments=len(experiments), jobs=jobs)

    pending: List[Tuple[Experiment, UnitContext]] = []
    slots: Dict[Tuple[str, int], ExperimentRun] = {}
    for experiment in experiments:
        units = experiment.units(smoke=smoke)
        hashes = source_hashes(fingerprint_root, experiment.sources)
        run = ExperimentRun(
            experiment=experiment,
            units=units,
            fingerprints=[unit_fingerprint(experiment, u, hashes) for u in units],
            results=[{} for _ in units],
        )
        runs.append(run)
        stats.units += len(units)
        for unit, fingerprint in zip(units, run.fingerprints):
            cached = (
                cache.get(experiment.name, fingerprint)
                if cache is not None else None
            )
            if cached is not None:
                experiment.schema.validate(experiment.name, cached)
                run.results[unit.index] = dict(cached)
            else:
                pending.append((experiment, unit))
                slots[(experiment.name, unit.index)] = run

    shards = _deal_shards(pending, jobs)
    stats.shards = len(shards)
    if len(shards) <= 1 or jobs == 1:
        shard_outputs = [_run_shard(payload) for payload in shards]
    else:
        with ProcessPoolExecutor(
            max_workers=len(shards), mp_context=_pool_context()
        ) as pool:
            shard_outputs = list(pool.map(_run_shard, shards))

    for shard_index, tagged, seconds in sorted(shard_outputs):
        stats.shard_seconds.append(seconds)
        for exp_name, unit_index, result in tagged:
            run = slots[(exp_name, unit_index)]
            run.results[unit_index] = result
            if cache is not None:
                cache.put(
                    exp_name,
                    run.fingerprints[unit_index],
                    run.units[unit_index],
                    result,
                )

    if cache is not None:
        stats.cache_hits = cache.hits
        stats.cache_misses = cache.misses
        stats.cache_errors = cache.errors
    stats.wall_seconds = time.perf_counter() - t_start  # lint: allow=determinism -- run wall-clock metric
    _roll_into_obs(stats)
    return RunResult(runs=runs, stats=stats)


def stats_registry(stats: RunStats) -> "obs.MetricsRegistry":
    """One run's accounting as a standalone metrics registry."""
    registry = obs.MetricsRegistry()
    registry.counter("runner.experiments").inc(stats.experiments)
    registry.counter("runner.units").inc(stats.units)
    registry.counter("runner.cache.hits").inc(stats.cache_hits)
    registry.counter("runner.cache.misses").inc(stats.cache_misses)
    registry.counter("runner.cache.errors").inc(stats.cache_errors)
    registry.counter("runner.shards").inc(stats.shards)
    for seconds in stats.shard_seconds:
        registry.histogram("runner.shard_seconds").observe(seconds)
    registry.gauge("runner.jobs").set(stats.jobs)
    return registry


def _roll_into_obs(stats: RunStats) -> None:
    """Mirror run accounting into the installed obs hub (if any)."""
    hub = obs.active()
    if hub is None:
        return
    hub.metrics.merge(stats_registry(stats))
