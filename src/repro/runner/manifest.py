"""Manifest and report layer for runner results.

The manifest is the machine-readable record of one full experiment
sweep (``BENCH_PR5.json``): per experiment, the declared grid, each
unit's content-address fingerprint, its result, and the summary rows
the markdown report renders.  It deliberately contains **no wall-clock,
job count, or cache accounting** -- those live in
:class:`~repro.runner.executor.RunStats` -- so two runs of unchanged
code produce byte-identical manifests regardless of ``--jobs`` or cache
temperature.  JSON is canonical (sorted keys, fixed separators).

The markdown rendering matches EXPERIMENTS.md's paper-vs-measured table
format: each experiment's ``summarize`` hook emits ordered row dicts
whose keys become columns.
"""

from __future__ import annotations

from typing import Any, Dict, List, Sequence

from repro.runner.cache import canonical_json
from repro.runner.registry import RUNNER_SCHEMA_VERSION

#: Default manifest filename for this PR's bench artifact.
DEFAULT_MANIFEST_NAME = "BENCH_PR5.json"


def dump_json(path: str, payload: Any) -> None:
    """Write canonical JSON (shared by the runner and the perf harness)."""
    with open(path, "w", encoding="utf-8") as handle:
        handle.write(canonical_json(payload))


def build_manifest(runs: Sequence[Any]) -> Dict[str, Any]:
    """A deterministic manifest dict from :class:`ExperimentRun` objects."""
    experiments: Dict[str, Any] = {}
    for run in runs:
        experiment = run.experiment
        experiments[experiment.name] = {
            "title": experiment.title,
            "seed": experiment.seed,
            "schema": {
                "version": experiment.schema.version,
                "fields": list(experiment.schema.fields),
            },
            "units": [
                {
                    "index": unit.index,
                    "params": dict(unit.params),
                    "fingerprint": fingerprint,
                    "result": result,
                }
                for unit, fingerprint, result in zip(
                    run.units, run.fingerprints, run.results
                )
            ],
            "summary": run.summary_rows(),
        }
    return {
        "benchmark": "PR5 experiment runner",
        "manifest_version": RUNNER_SCHEMA_VERSION,
        "experiments": experiments,
    }


def manifest_text(manifest: Dict[str, Any]) -> str:
    """The manifest's canonical serialized form (what lands on disk)."""
    return canonical_json(manifest)


def write_manifest(path: str, manifest: Dict[str, Any]) -> None:
    with open(path, "w", encoding="utf-8") as handle:
        handle.write(manifest_text(manifest))


# --------------------------------------------------------------------- #
# Markdown rendering


def _cell(value: Any) -> str:
    if value is None:
        return "—"
    if isinstance(value, float):
        return f"{value:g}"
    return str(value)


def _rows_table(rows: List[Dict[str, Any]]) -> List[str]:
    if not rows:
        return ["(no rows)"]
    columns: List[str] = []
    for row in rows:  # first-seen order; summarize hooks emit stable keys
        for key in row:
            if key not in columns:
                columns.append(key)
    lines = [
        "| " + " | ".join(columns) + " |",
        "|" + "|".join("---" for _ in columns) + "|",
    ]
    for row in rows:
        lines.append(
            "| " + " | ".join(_cell(row.get(name)) for name in columns) + " |"
        )
    return lines


def render_markdown(manifest: Dict[str, Any]) -> str:
    """EXPERIMENTS.md-style paper-vs-measured tables, one per experiment."""
    lines: List[str] = []
    for name in sorted(manifest["experiments"]):
        entry = manifest["experiments"][name]
        lines.append(f"## {entry['title']}")
        lines.append(f"`{name}` — {len(entry['units'])} unit(s), "
                     f"seed {entry['seed']}, schema v{entry['schema']['version']}")
        lines.append("")
        lines.extend(_rows_table(entry["summary"]))
        lines.append("")
    return "\n".join(lines).rstrip() + "\n"


def render_stats(stats: Any) -> str:
    """Human one-liner block for the operational (non-manifest) numbers."""
    lines = [
        f"experiments {stats.experiments}, units {stats.units}, "
        f"shards {stats.shards} (jobs {stats.jobs})",
        f"cache: {stats.cache_hits} hit(s), {stats.cache_misses} miss(es), "
        f"{stats.cache_errors} corrupt entr(ies), "
        f"hit rate {stats.hit_rate:.0%}",
        f"wall time {stats.wall_seconds:.2f}s"
        + (
            "; shard seconds: "
            + ", ".join(f"{s:.2f}" for s in stats.shard_seconds)
            if stats.shard_seconds else ""
        ),
    ]
    return "\n".join(lines)
