"""The default experiment registry: the paper's evaluation as data.

Each registration wraps logic the ``benchmarks/`` modules previously
re-implemented inline; the benches now assert over these results.  Grid
parameters carry everything that shapes a unit's output (frame counts,
proxy heights, seeds, horizons) so the content-addressed cache key
captures the full spec, and paper reference values ride along in the
summaries so the manifest renders EXPERIMENTS.md-style
paper-vs-measured tables.

Heavy imports happen inside the unit callables: importing this module
costs only the registry bookkeeping, and a cache-hot ``repro-bench
run`` never touches the codec or the cluster simulator.
"""

from __future__ import annotations

from typing import Any, Dict, List, Sequence

from repro.control import catalog
from repro.control.catalog import (  # re-exported: the shared Figure 9
    FIG9_BASE_VCU_WORKERS,  # settings live in the catalog now, one copy
    FIG9_HORIZON_SECONDS,  # for this module, the timeline experiment,
    FIG9_MONTHS,  # and benchmarks/test_fig9_scaling.py
    FIG9_SEED,
)
from repro.runner.registry import ExperimentRegistry, ResultSchema, UnitContext

_DEFAULT = ExperimentRegistry()

#: Figure 7 sweep settings -- the benchmarks' economical single-core
#: configuration; EXPERIMENTS.md bands were validated at these.
FIG7_FRAMES = 6
FIG7_PROXY_HEIGHT = 60
FIG7_SEED = 2

#: Global-platform-day settings (the control-plane flagship scenario).
PLATFORM_DAY_SEED = 11
PLATFORM_DAY_SECONDS = 3600.0
PLATFORM_DAY_SMOKE_SECONDS = 900.0

#: Live-ladder settings (the streaming latency flagship scenario).
LIVE_LADDER_SEED = 13
LIVE_LADDER_SECONDS = 900.0
LIVE_LADDER_SMOKE_SECONDS = 360.0
LIVE_LADDER_HANG_RATE = 0.5
LIVE_LADDER_CORRUPTION_RATE = 0.5


def default_registry() -> ExperimentRegistry:
    """The process-wide registry of paper experiments."""
    return _DEFAULT


# --------------------------------------------------------------------- #
# Table 1 -- offline two-pass SOT throughput & perf/TCO

_TABLE1_PAPER = {
    ("Skylake", "h264"): (714.0, 1.0),
    ("Skylake", "vp9"): (154.0, 1.0),
    ("4xNvidia T4", "h264"): (2484.0, 1.5),
    ("8xVCU", "h264"): (5973.0, 4.4),
    ("8xVCU", "vp9"): (6122.0, 20.8),
    ("20xVCU", "h264"): (14932.0, 7.0),
    ("20xVCU", "vp9"): (15306.0, 33.3),
}

_TABLE1_GRID = [
    {"system": system, "codec": codec}
    for system in ("Skylake", "4xNvidia T4", "8xVCU", "20xVCU")
    for codec in ("h264", "vp9")
    if not (system == "4xNvidia T4" and codec == "vp9")  # T4 lacks VP9
]


@_DEFAULT.experiment(
    name="table1-throughput",
    title="Table 1 — offline two-pass SOT throughput & perf/TCO",
    grid=_TABLE1_GRID,
    seed=0,
    schema=ResultSchema(version=1, fields=(
        "system", "codec", "mpix_s", "perf_tco",
        "paper_mpix_s", "paper_perf_tco",
    )),
)
def table1_unit(ctx: UnitContext) -> Dict[str, Any]:
    from repro.baselines import GpuSystem, SkylakeSystem
    from repro.tco import (
        SKYLAKE_COST,
        T4_SYSTEM_COST,
        VCU_SYSTEM_8,
        VCU_SYSTEM_20,
        perf_per_tco,
    )
    from repro.vcu.spec import DEFAULT_VCU_SPEC
    from repro.vcu.throughput import vbench_sot_system_throughput

    system, codec = ctx.params["system"], ctx.params["codec"]
    cpu = SkylakeSystem()
    if system == "Skylake":
        throughput = cpu.machine_throughput(codec)
        cost = SKYLAKE_COST
    elif system == "4xNvidia T4":
        throughput = GpuSystem().machine_throughput(codec)
        cost = T4_SYSTEM_COST
    else:
        count = 8 if system == "8xVCU" else 20
        cost = VCU_SYSTEM_8 if count == 8 else VCU_SYSTEM_20
        throughput = vbench_sot_system_throughput(DEFAULT_VCU_SPEC, codec, count)
    tco = perf_per_tco(throughput, cost, cpu.machine_throughput(codec))
    paper = _TABLE1_PAPER[(system, codec)]
    return {
        "system": system,
        "codec": codec,
        "mpix_s": round(float(throughput), 3),
        "perf_tco": round(float(tco), 4),
        "paper_mpix_s": paper[0],
        "paper_perf_tco": paper[1],
    }


# --------------------------------------------------------------------- #
# Figure 7 -- RD curves + BD-rates on the vbench suite

_FIG7_COMPARISONS = {
    "vcu_vp9_vs_libx264": ("libx264", "vcu-vp9", -30.0),
    "vcu_h264_vs_libx264": ("libx264", "vcu-h264", 11.5),
    "vcu_vp9_vs_libvpx": ("libvpx", "vcu-vp9", 18.0),
    "libvpx_vs_libx264": ("libx264", "libvpx", -41.0),
}


def _fig7_grid() -> List[Dict[str, Any]]:
    # Title names are stable data (the vbench suite); spelling them out
    # here keeps grid expansion numpy-free for cache-hot runs.
    titles = [
        "presentation", "desktop", "bike", "funny", "house", "cricket",
        "girl", "game_1", "chicken", "hall", "game_2", "cat", "landscape",
        "game_3", "holi",
    ]
    return [
        {
            "title": title,
            "frames": FIG7_FRAMES,
            "proxy_height": FIG7_PROXY_HEIGHT,
            "encode_seed": FIG7_SEED,
        }
        for title in titles
    ]


def _fig7_summarize(results: Sequence[Dict[str, Any]]) -> List[Dict[str, Any]]:
    rows: List[Dict[str, Any]] = []
    for name in sorted(_FIG7_COMPARISONS):
        paper = _FIG7_COMPARISONS[name][2]
        values = [r["bd_rates"][name] for r in results if name in r["bd_rates"]]
        mean = sum(values) / len(values) if values else float("nan")
        rows.append({
            "comparison": name,
            "bd_rate_pct": round(mean, 2),
            "paper_bd_rate_pct": paper,
            "titles": len(values),
        })
    return rows


@_DEFAULT.experiment(
    name="fig7-bd-rates",
    title="Figure 7 — RD curves & BD-rates on vbench",
    grid=_fig7_grid(),
    smoke_grid=_fig7_grid()[:3],
    seed=FIG7_SEED,
    schema=ResultSchema(version=1, fields=("title", "curves", "bd_rates")),
    summarize=_fig7_summarize,
)
def fig7_unit(ctx: UnitContext) -> Dict[str, Any]:
    from repro.codec.profiles import ALL_PROFILES
    from repro.harness.rd import rd_curve
    from repro.metrics.quality import bd_rate
    from repro.video.vbench import vbench_video

    title = vbench_video(ctx.params["title"])
    curves = {
        profile.name: rd_curve(
            profile,
            title,
            frame_count=ctx.params["frames"],
            proxy_height=ctx.params["proxy_height"],
            seed=ctx.params["encode_seed"],
        )
        for profile in ALL_PROFILES
    }
    bd_rates = {}
    for name in sorted(_FIG7_COMPARISONS):
        ref, test, _ = _FIG7_COMPARISONS[name]
        if ref in curves and test in curves:
            bd_rates[name] = round(float(bd_rate(curves[ref], curves[test])), 4)
    return {
        "title": title.name,
        "curves": {
            profile: [
                [round(float(p.bitrate), 2), round(float(p.psnr), 4)]
                for p in points
            ]
            for profile, points in sorted(curves.items())
        },
        "bd_rates": bd_rates,
    }


# --------------------------------------------------------------------- #
# Figure 9 -- post-launch deployment-timeline replay


def _fig9_summarize(results: Sequence[Dict[str, Any]]) -> List[Dict[str, Any]]:
    ordered = sorted(results, key=lambda r: r["month"])
    base = ordered[0]["throughput_mpix_s"] or 1.0
    return [
        {
            "month": r["month"],
            "normalized_throughput": round(r["throughput_mpix_s"] / base, 3),
            "decoder_util": r["decoder_util"],
            "encoder_util": r["encoder_util"],
            "vcu_workers": r["vcu_workers"],
            "paper_note": "~10x by month 12; decoder util ~0.98 -> ~0.91",
        }
        for r in ordered
    ]


@_DEFAULT.experiment(
    name="fig9-timeline",
    title="Figure 9 — post-launch workload scaling (12-month replay)",
    grid=[
        {
            "month": month,
            "workload_seed": FIG9_SEED,
            "horizon_seconds": FIG9_HORIZON_SECONDS,
            "base_vcu_workers": FIG9_BASE_VCU_WORKERS,
        }
        for month in range(1, FIG9_MONTHS + 1)
    ],
    smoke_grid=[
        {
            "month": month,
            "workload_seed": FIG9_SEED,
            "horizon_seconds": 40.0,
            "base_vcu_workers": FIG9_BASE_VCU_WORKERS,
        }
        for month in (1, 6, 12)
    ],
    seed=FIG9_SEED,
    schema=ResultSchema(version=1, fields=(
        "month", "throughput_mpix_s", "total_megapixels",
        "decoder_util", "encoder_util", "vcu_workers",
    )),
    summarize=_fig9_summarize,
)
def fig9_unit(ctx: UnitContext) -> Dict[str, Any]:
    from repro.cluster.timeline import default_timeline, run_month

    month = ctx.params["month"]
    config = default_timeline(month)[-1]
    result = run_month(
        config,
        base_vcu_workers=ctx.params["base_vcu_workers"],
        horizon_seconds=ctx.params["horizon_seconds"],
        seed=ctx.params["workload_seed"],
    )
    return {
        "month": result.month,
        "throughput_mpix_s": round(result.throughput_mpix_s, 4),
        "total_megapixels": round(result.total_megapixels, 3),
        "decoder_util": round(result.decoder_utilization, 5),
        "encoder_util": round(result.encoder_utilization, 5),
        "vcu_workers": result.vcu_workers,
    }


# --------------------------------------------------------------------- #
# Table 2 -- host resources at 153 Gpixel/s

_TABLE2_PAPER = {
    "Transcoding overheads": (42.0, 214.0),
    "Network & RPC": (13.0, 300.0),
    "Total": (55.0, 712.0),
}


def _table2_summarize(results: Sequence[Dict[str, Any]]) -> List[Dict[str, Any]]:
    rows: List[Dict[str, Any]] = []
    for result in results:
        for row in result["rows"]:
            paper = _TABLE2_PAPER.get(row["use"])
            rows.append({
                "use": row["use"],
                "logical_cores": row["logical_cores"],
                "paper_cores": None if paper is None else paper[0],
                "dram_gbps": row["dram_bandwidth_gbps"],
                "paper_dram_gbps": None if paper is None else paper[1],
            })
    return rows


# --------------------------------------------------------------------- #
# Global platform day -- the control plane's flagship robustness scenario


def _platform_day_summarize(
    results: Sequence[Dict[str, Any]]
) -> List[Dict[str, Any]]:
    rows: List[Dict[str, Any]] = []
    for result in sorted(results, key=lambda r: r["outage"]):
        card = result["scorecard"]
        rows.append({
            "outage": result["outage"],
            "submitted": card["jobs.submitted"],
            "done": card["jobs.done"],
            "shed_batch": card["class.batch.shed"],
            "shed_upload": card["class.upload.shed"],
            "shed_live": card["class.live.shed"],
            "failover_routed": card["failover.routed"],
            "autoscale_actions": card["autoscale.actions"],
            "live_completion": card["class.live.completion_rate"],
            "conservation_ok": card["conservation.ok"],
        })
    return rows


@_DEFAULT.experiment(
    name="platform-day",
    title="Global platform day — SLO scorecard under a regional outage",
    grid=[
        {"outage": False, "day_seconds": PLATFORM_DAY_SECONDS,
         "scenario_seed": PLATFORM_DAY_SEED},
        {"outage": True, "day_seconds": PLATFORM_DAY_SECONDS,
         "scenario_seed": PLATFORM_DAY_SEED},
    ],
    smoke_grid=[
        {"outage": False, "day_seconds": PLATFORM_DAY_SMOKE_SECONDS,
         "scenario_seed": PLATFORM_DAY_SEED},
        {"outage": True, "day_seconds": PLATFORM_DAY_SMOKE_SECONDS,
         "scenario_seed": PLATFORM_DAY_SEED},
    ],
    seed=PLATFORM_DAY_SEED,
    schema=ResultSchema(version=1, fields=("outage", "scorecard")),
    summarize=_platform_day_summarize,
    sources=("repro.control.scenario",),
)
def platform_day_unit(ctx: UnitContext) -> Dict[str, Any]:
    from repro.control.scenario import ScenarioConfig, run_global_platform_day

    config = ScenarioConfig(
        day_seconds=ctx.params["day_seconds"],
        outage=ctx.params["outage"],
    )
    result = run_global_platform_day(config, seed=ctx.params["scenario_seed"])
    return {
        "outage": ctx.params["outage"],
        "scorecard": result.scorecard,
    }


# --------------------------------------------------------------------- #
# Live ladder -- segment streams, alignment barriers, latency scorecard


def _live_ladder_summarize(
    results: Sequence[Dict[str, Any]]
) -> List[Dict[str, Any]]:
    rows: List[Dict[str, Any]] = []
    for result in sorted(results, key=lambda r: r["outage"]):
        card = result["scorecard"]
        rows.append({
            "outage": result["outage"],
            "streams": card["streams.completed"],
            "segments": card["segments.manifested"],
            "segments_lost": card["segments.lost"],
            "ttfs_p50": card["ttfs.p50"],
            "ttfs_p99": card["ttfs.p99"],
            "stall_p99": card["stall.p99"],
            "deadline_miss_rate": card["deadline.miss_rate"],
            "opportunistic_fallbacks": card["fallback.opportunistic"],
            "cluster_hangs": card["cluster.hangs"],
            "conservation_ok": card["conservation.ok"],
        })
    return rows


@_DEFAULT.experiment(
    name="live-ladder",
    title="Live ladder — time-to-first-segment SLOs under segment streaming",
    grid=[
        {"outage": False, "horizon_seconds": LIVE_LADDER_SECONDS,
         "hang_rate": LIVE_LADDER_HANG_RATE,
         "corruption_rate": LIVE_LADDER_CORRUPTION_RATE,
         "scenario_seed": LIVE_LADDER_SEED},
        {"outage": True, "horizon_seconds": LIVE_LADDER_SECONDS,
         "hang_rate": LIVE_LADDER_HANG_RATE,
         "corruption_rate": LIVE_LADDER_CORRUPTION_RATE,
         "scenario_seed": LIVE_LADDER_SEED},
    ],
    smoke_grid=[
        {"outage": False, "horizon_seconds": LIVE_LADDER_SMOKE_SECONDS,
         "hang_rate": LIVE_LADDER_HANG_RATE,
         "corruption_rate": LIVE_LADDER_CORRUPTION_RATE,
         "scenario_seed": LIVE_LADDER_SEED},
        {"outage": True, "horizon_seconds": LIVE_LADDER_SMOKE_SECONDS,
         "hang_rate": LIVE_LADDER_HANG_RATE,
         "corruption_rate": LIVE_LADDER_CORRUPTION_RATE,
         "scenario_seed": LIVE_LADDER_SEED},
    ],
    seed=LIVE_LADDER_SEED,
    schema=ResultSchema(version=1, fields=("outage", "scorecard")),
    summarize=_live_ladder_summarize,
    sources=("repro.control.live_ladder",),
)
def live_ladder_unit(ctx: UnitContext) -> Dict[str, Any]:
    from repro.control.live_ladder import LiveLadderConfig, run_live_ladder

    config = LiveLadderConfig(
        horizon_seconds=ctx.params["horizon_seconds"],
        outage=ctx.params["outage"],
        hang_rate_per_hour=ctx.params["hang_rate"],
        corruption_rate_per_hour=ctx.params["corruption_rate"],
    )
    result = run_live_ladder(config, seed=ctx.params["scenario_seed"])
    return {
        "outage": ctx.params["outage"],
        "scorecard": result.scorecard,
    }


@_DEFAULT.experiment(
    name="table2-host-resources",
    title="Table 2 — host resources at 153 Gpixel/s",
    grid=[{"gpix_s": 153.0}],
    seed=0,
    schema=ResultSchema(version=1, fields=("gpix_s", "rows")),
    summarize=_table2_summarize,
)
def table2_unit(ctx: UnitContext) -> Dict[str, Any]:
    from repro.balance import host_resource_table

    rows = host_resource_table(ctx.params["gpix_s"])
    return {
        "gpix_s": ctx.params["gpix_s"],
        "rows": [
            {
                "use": row.use,
                "logical_cores": round(float(row.logical_cores), 3),
                "dram_bandwidth_gbps": round(float(row.dram_bandwidth_gbps), 3),
            }
            for row in rows
        ],
    }


# --------------------------------------------------------------------- #
# Scenario catalog -- the Section 5 deployment narrative as experiments.
# Grids, seeds, and horizons come from repro.control.catalog (one source
# of truth shared with CI's scorecard-key gates); the heavy scenario
# modules load lazily inside the unit callables.


def _canary_summarize(results: Sequence[Dict[str, Any]]) -> List[Dict[str, Any]]:
    rows: List[Dict[str, Any]] = []
    for result in sorted(results, key=lambda r: r["candidate"]):
        card = result["scorecard"]
        rows.append({
            "candidate": result["candidate"],
            "stage": card["rollout.stage"],
            "regression_detected": card["rollout.regression_detected"],
            "throughput_delta": card["delta.throughput_frac"],
            "unhealthy_delta": card["delta.unhealthy_frac"],
            "hangs": card["cluster.hangs"],
            "quarantined": card["cluster.workers_quarantined"],
            "jobs_done": card["jobs.done"],
            "conservation_ok": card["conservation.ok"],
        })
    return rows


@_DEFAULT.experiment(
    name="canary-rollout",
    title="Firmware canary rollout — regression detection and rollback",
    grid=catalog.canary_grid(),
    smoke_grid=catalog.canary_grid(smoke=True),
    seed=catalog.CANARY_SEED,
    schema=ResultSchema(version=1, fields=("candidate", "scorecard")),
    summarize=_canary_summarize,
    sources=("repro.control.canary",),
    group=catalog.CATALOG_GROUP,
)
def canary_rollout_unit(ctx: UnitContext) -> Dict[str, Any]:
    from repro.control.canary import CanaryConfig, run_canary_rollout

    config = CanaryConfig(
        candidate=ctx.params["candidate"],
        horizon_seconds=ctx.params["horizon_seconds"],
    )
    result = run_canary_rollout(config, seed=ctx.params["scenario_seed"])
    return {
        "candidate": ctx.params["candidate"],
        "scorecard": result.scorecard,
    }


def _chaos_summarize(results: Sequence[Dict[str, Any]]) -> List[Dict[str, Any]]:
    rows: List[Dict[str, Any]] = []
    for result in sorted(
        results, key=lambda r: (r["blast_hosts"], r["repair_cap"])
    ):
        card = result["scorecard"]
        rows.append({
            "blast_hosts": result["blast_hosts"],
            "repair_cap": result["repair_cap"],
            "jobs_completed": card["jobs.completed"],
            "hangs": card["cluster.hangs"],
            "disabled_by_sweeps": card["fleet.disabled_by_sweeps"],
            "hosts_repaired": card["repair.hosts_repaired"],
            "available_end": card["fleet.available_end"],
            "availability_exact": card["availability.exact"],
            "conservation_ok": card["conservation.ok"],
        })
    return rows


@_DEFAULT.experiment(
    name="chaos-campaign",
    title="Correlated-outage chaos campaign — blast radius × repair capacity",
    grid=catalog.chaos_grid(),
    smoke_grid=catalog.chaos_grid(smoke=True),
    seed=catalog.CHAOS_SEED,
    schema=ResultSchema(
        version=1, fields=("blast_hosts", "repair_cap", "scorecard")
    ),
    summarize=_chaos_summarize,
    sources=("repro.control.chaos",),
    group=catalog.CATALOG_GROUP,
)
def chaos_campaign_unit(ctx: UnitContext) -> Dict[str, Any]:
    from repro.control.chaos import ChaosCampaignConfig, run_chaos_campaign

    config = ChaosCampaignConfig(
        horizon_seconds=ctx.params["horizon_seconds"],
        blast_hosts=ctx.params["blast_hosts"],
        repair_cap=ctx.params["repair_cap"],
    )
    result = run_chaos_campaign(config, seed=ctx.params["scenario_seed"])
    return {
        "blast_hosts": ctx.params["blast_hosts"],
        "repair_cap": ctx.params["repair_cap"],
        "scorecard": result.scorecard,
    }


def _timeline_summarize(
    results: Sequence[Dict[str, Any]]
) -> List[Dict[str, Any]]:
    rows: List[Dict[str, Any]] = []
    for result in sorted(results, key=lambda r: r["month"]):
        card = result["scorecard"]
        rows.append({
            "month": result["month"],
            "throughput_mpix_s": card["throughput_mpix_s"],
            "vcu_workers": card["vcu_workers"],
            "encoder_util": card["encoder_util"],
            "bitrate_vs_sw_h264": card["bitrate_vs_software.h264"],
            "bitrate_vs_sw_vp9": card["bitrate_vs_software.vp9"],
            "milestones": card["milestones_shipped"],
        })
    return rows


@_DEFAULT.experiment(
    name="tuning-timeline",
    title="Figures 9/10 — 16-month launch-and-iterate tuning timeline",
    grid=catalog.timeline_grid(),
    smoke_grid=catalog.timeline_grid(smoke=True),
    seed=catalog.TIMELINE_SEED,
    schema=ResultSchema(version=1, fields=("month", "scorecard")),
    summarize=_timeline_summarize,
    sources=("repro.control.catalog",),
    group=catalog.CATALOG_GROUP,
)
def tuning_timeline_unit(ctx: UnitContext) -> Dict[str, Any]:
    card = catalog.run_tuning_month(
        month=ctx.params["month"],
        workload_seed=ctx.params["workload_seed"],
        horizon_seconds=ctx.params["horizon_seconds"],
        base_vcu_workers=ctx.params["base_vcu_workers"],
    )
    return {"month": ctx.params["month"], "scorecard": card}


def _surge_summarize(results: Sequence[Dict[str, Any]]) -> List[Dict[str, Any]]:
    rows: List[Dict[str, Any]] = []
    for result in sorted(results, key=lambda r: r["scenario"]):
        card = result["scorecard"]
        rows.append({
            "scenario": result["scenario"],
            "submitted": card["jobs.submitted"],
            "done": card["jobs.done"],
            "jobs_in_window": card["event.jobs_in_window"],
            "live_completion": card["class.live.completion_rate"],
            "autoscale_actions": card["autoscale.actions"],
            "failover_routed": card["failover.routed"],
            "conservation_ok": card["conservation.ok"],
        })
    return rows


@_DEFAULT.experiment(
    name="surge-mix",
    title="Demand disturbances — popularity surge and live mix shift",
    grid=catalog.surge_grid(),
    smoke_grid=catalog.surge_grid(smoke=True),
    seed=catalog.SURGE_SEED,
    schema=ResultSchema(version=1, fields=("scenario", "scorecard")),
    summarize=_surge_summarize,
    sources=("repro.control.surge",),
    group=catalog.CATALOG_GROUP,
)
def surge_mix_unit(ctx: UnitContext) -> Dict[str, Any]:
    from repro.control.surge import SurgeMixConfig, run_surge_mix

    config = SurgeMixConfig(
        scenario=ctx.params["scenario"],
        day_seconds=ctx.params["day_seconds"],
    )
    result = run_surge_mix(config, seed=ctx.params["scenario_seed"])
    return {
        "scenario": ctx.params["scenario"],
        "scorecard": result.scorecard,
    }
