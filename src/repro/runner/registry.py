"""Experiment registry: every paper table/figure/ablation as data.

An :class:`Experiment` is a declarative description of one evaluation
artifact: a callable, a parameter grid (one dict per *unit* of work), a
base seed, and a schema-versioned result contract.  The registry is the
single source of truth the sharded executor, the result cache, the
manifest writer, and the benchmark assertions all consume -- benches
become thin assertions over runner results instead of re-implementing
the sweep.

Seed-derivation rule (the determinism contract):

    unit rng = split_rng(experiment.seed, f"{experiment.name}/unit{index}")

The key is the experiment name plus the unit's index in the declared
grid -- never the worker, shard, or process that happens to execute the
unit -- so ``--jobs 1`` and ``--jobs N`` produce byte-identical results.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Dict, List, Mapping, Optional, Sequence, Tuple

from repro.sim.rng import split_rng

#: Bumped whenever the runner's on-disk contracts change shape; feeds
#: both the cache fingerprint and the manifest.
RUNNER_SCHEMA_VERSION = 1


@dataclass(frozen=True)
class ResultSchema:
    """The versioned contract a unit's result dict must satisfy.

    ``fields`` is the exact set of keys every unit result carries; the
    version participates in the cache fingerprint so a schema change
    invalidates stale entries even if the code hash were unchanged.
    """

    version: int
    fields: Tuple[str, ...]

    def validate(self, experiment: str, result: Mapping[str, Any]) -> None:
        got, want = set(result), set(self.fields)
        if got != want:
            missing = ", ".join(sorted(want - got)) or "-"
            extra = ", ".join(sorted(got - want)) or "-"
            raise ValueError(
                f"{experiment}: result does not match schema v{self.version} "
                f"(missing: {missing}; unexpected: {extra})"
            )


@dataclass(frozen=True)
class UnitContext:
    """Everything a unit callable receives: its identity and parameters."""

    experiment: str
    index: int
    params: Mapping[str, Any]
    seed: int

    @property
    def rng(self):  # -> np.random.Generator (annotation kept lazy: numpy)
        """The unit's private stream, derived from identity only."""
        return split_rng(self.seed, f"{self.experiment}/unit{self.index}")


#: A unit callable: UnitContext -> result dict matching the schema.
UnitFn = Callable[[UnitContext], Dict[str, Any]]
#: Optional cross-unit summary: ordered results -> markdown-ready rows.
SummarizeFn = Callable[[Sequence[Dict[str, Any]]], List[Dict[str, Any]]]


@dataclass(frozen=True)
class Experiment:
    """One registered paper artifact (table, figure, or ablation)."""

    name: str
    title: str
    fn: UnitFn
    grid: Tuple[Mapping[str, Any], ...]
    seed: int
    schema: ResultSchema
    #: Reduced grid for CI smoke runs; defaults to the full grid.
    smoke_grid: Optional[Tuple[Mapping[str, Any], ...]] = None
    #: Cross-unit reduction rendered as the manifest's markdown table
    #: (paper-vs-measured rows); defaults to the raw unit results.
    summarize: Optional[SummarizeFn] = None
    #: Dotted modules whose transitive import closure fingerprints this
    #: experiment's code; defaults to the unit callable's module.
    sources: Tuple[str, ...] = ()
    #: Optional family tag (e.g. ``"catalog"`` for the scenario
    #: catalog); ``names(group=...)``/``select(group=...)`` filter on it.
    group: str = ""

    def __post_init__(self) -> None:
        if not self.name:
            raise ValueError("experiment needs a name")
        if not self.grid:
            raise ValueError(f"{self.name}: parameter grid is empty")
        if not self.sources:
            object.__setattr__(self, "sources", (self.fn.__module__,))

    def units(self, smoke: bool = False) -> List[UnitContext]:
        """Expand the grid into ordered unit contexts."""
        grid = self.smoke_grid if smoke and self.smoke_grid is not None else self.grid
        return [
            UnitContext(experiment=self.name, index=i, params=params, seed=self.seed)
            for i, params in enumerate(grid)
        ]

    def run_unit(self, unit: UnitContext) -> Dict[str, Any]:
        """Execute one unit and validate its result against the schema."""
        result = self.fn(unit)
        self.schema.validate(self.name, result)
        return result

    def summary_rows(
        self, results: Sequence[Dict[str, Any]]
    ) -> List[Dict[str, Any]]:
        if self.summarize is not None:
            return self.summarize(results)
        return [dict(r) for r in results]


class ExperimentRegistry:
    """A named collection of experiments with deterministic ordering."""

    def __init__(self) -> None:
        self._experiments: Dict[str, Experiment] = {}

    def add(self, experiment: Experiment) -> Experiment:
        if experiment.name in self._experiments:
            raise ValueError(f"duplicate experiment {experiment.name!r}")
        self._experiments[experiment.name] = experiment
        return experiment

    def experiment(
        self,
        name: str,
        title: str,
        grid: Sequence[Mapping[str, Any]],
        seed: int,
        schema: ResultSchema,
        smoke_grid: Optional[Sequence[Mapping[str, Any]]] = None,
        summarize: Optional[SummarizeFn] = None,
        sources: Sequence[str] = (),
        group: str = "",
    ) -> Callable[[UnitFn], UnitFn]:
        """Decorator form: register ``fn`` as ``name``'s unit callable."""

        def wrap(fn: UnitFn) -> UnitFn:
            self.add(Experiment(
                name=name,
                title=title,
                fn=fn,
                grid=tuple(dict(p) for p in grid),
                seed=seed,
                schema=schema,
                smoke_grid=(None if smoke_grid is None
                            else tuple(dict(p) for p in smoke_grid)),
                summarize=summarize,
                sources=tuple(sources),
                group=group,
            ))
            return fn

        return wrap

    def get(self, name: str) -> Experiment:
        try:
            return self._experiments[name]
        except KeyError:
            known = ", ".join(self.names()) or "(none)"
            raise KeyError(
                f"unknown experiment {name!r}; registered: {known}"
            ) from None

    def names(self, group: Optional[str] = None) -> List[str]:
        if group is None:
            return sorted(self._experiments)
        return sorted(
            name for name, exp in self._experiments.items()
            if exp.group == group
        )

    def select(
        self, names: Sequence[str] = (), group: Optional[str] = None
    ) -> List[Experiment]:
        """Experiments by name (all of them, name-sorted, when empty);
        ``group`` restricts the empty-names case to one family."""
        if not names:
            return [self._experiments[name] for name in self.names(group)]
        return [self.get(name) for name in names]

    def __contains__(self, name: str) -> bool:
        return name in self._experiments

    def __len__(self) -> int:
        return len(self._experiments)
