"""Demand disturbances layered on the platform day (Section 5).

Two event shapes the paper's fleet must absorb without violating SLOs:

* a **popularity surge** -- a viral window where some classes' arrival
  rates jump by a multiplier and then fall back (a premiere, a news
  event driving uploads and popularity-driven re-encodes);
* a **live mix shift** -- from some moment on, the class mix itself
  tilts (a global live event: live arrivals jump while uploads dip)
  and stays tilted for the rest of the day.

:class:`EventedDayWorkload` superimposes these on
:class:`~repro.workloads.platform.PlatformDayWorkload` through the same
Poisson-thinning machinery as the diurnal envelope, via the
``_rate_multiplier`` / ``_multiplier_bounds`` hooks.  A class whose
multiplier is identically 1.0 consumes *exactly* the base workload's
RNG draws, so adding an event to one class never perturbs another
class's arrivals -- the property the determinism suite pins down.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Tuple

from repro.sim.rng import SeedLike
from repro.workloads.platform import PlatformDayConfig, PlatformDayWorkload


@dataclass(frozen=True)
class SurgeSpec:
    """A transient rate surge on some SLO classes."""

    #: Window bounds as fractions of the day.
    start_frac: float = 0.45
    duration_frac: float = 0.15
    multiplier: float = 3.0
    classes: Tuple[str, ...] = ("upload", "batch")

    def __post_init__(self) -> None:
        if not 0.0 <= self.start_frac < 1.0:
            raise ValueError("start_frac must be in [0, 1)")
        if self.duration_frac <= 0 or self.start_frac + self.duration_frac > 1.0:
            raise ValueError("surge window must fit inside the day")
        if self.multiplier <= 0:
            raise ValueError("multiplier must be positive")
        if not self.classes:
            raise ValueError("a surge needs at least one class")


@dataclass(frozen=True)
class MixShiftSpec:
    """A persistent class-mix tilt from ``start_frac`` to end of day."""

    start_frac: float = 0.5
    live_multiplier: float = 2.5
    upload_multiplier: float = 0.7
    batch_multiplier: float = 1.0

    def __post_init__(self) -> None:
        if not 0.0 <= self.start_frac < 1.0:
            raise ValueError("start_frac must be in [0, 1)")
        for value in (
            self.live_multiplier, self.upload_multiplier, self.batch_multiplier
        ):
            if value <= 0:
                raise ValueError("class multipliers must be positive")

    def multiplier_for(self, label: str) -> float:
        return {
            "live": self.live_multiplier,
            "upload": self.upload_multiplier,
            "batch": self.batch_multiplier,
        }.get(label, 1.0)


class EventedDayWorkload(PlatformDayWorkload):
    """A platform day with a surge and/or mix shift superimposed."""

    def __init__(
        self,
        config: PlatformDayConfig,
        seed: SeedLike = 0,
        surge: Optional[SurgeSpec] = None,
        mix_shift: Optional[MixShiftSpec] = None,
    ) -> None:
        super().__init__(config, seed)
        self.surge = surge
        self.mix_shift = mix_shift

    def _rate_multiplier(self, label: str, t: float) -> float:
        day = self.config.day_seconds
        multiplier = 1.0
        surge = self.surge
        if surge is not None and label in surge.classes:
            start = surge.start_frac * day
            if start <= t < start + surge.duration_frac * day:
                multiplier *= surge.multiplier
        shift = self.mix_shift
        if shift is not None and t >= shift.start_frac * day:
            multiplier *= shift.multiplier_for(label)
        return multiplier

    def _multiplier_bounds(self, label: str) -> Tuple[float, float]:
        surge_values = [1.0]
        if self.surge is not None and label in self.surge.classes:
            surge_values.append(self.surge.multiplier)
        shift_values = [1.0]
        if self.mix_shift is not None:
            shift_values.append(self.mix_shift.multiplier_for(label))
        products = [s * m for s in surge_values for m in shift_values]
        return (min(products), max(products))
