"""Live streaming: the camera-to-eyeball latency model (Section 4.5).

Software era: VP9 live was only possible by encoding many short 2-second
chunks in parallel (a 2-second 1080p chunk took ~10 seconds to encode, so
5-6 chunks ran concurrently to sustain 1 video-second/second), trading
end-to-end latency for throughput and adding buffering against encode-time
variance.  With the VCU, a single device transcodes the live MOT ladder in
real time with consistent speed, enabling ~5-second end-to-end latency.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List

import numpy as np

from repro.sim.rng import SeedLike, make_rng
from repro.vcu.spec import EncodingMode, VcuSpec
from repro.video.frame import Resolution, output_ladder, resolution


@dataclass(frozen=True)
class LiveStream:
    """One live broadcast."""

    stream_id: str
    source: Resolution = None
    fps: float = 30.0
    chunk_seconds: float = 2.0

    def __post_init__(self) -> None:
        if self.source is None:
            object.__setattr__(self, "source", resolution("1080p"))


@dataclass
class LiveChunkResult:
    """Per-chunk encode timing and the latency it implies."""

    chunk_index: int
    encode_seconds: float
    ready_at: float  # stream time when the encoded chunk is available


def software_chunk_encode_seconds(
    stream: LiveStream, rng: np.random.Generator, mean_seconds: float = 10.0
) -> float:
    """Software VP9 encode time for one 2-second chunk: slow and noisy.

    The ~10 s mean matches the paper; the heavy-tailed jitter is why extra
    buffering was needed in practice.
    """
    jitter = float(rng.lognormal(mean=0.0, sigma=0.35))
    return mean_seconds * jitter


def vcu_chunk_encode_seconds(stream: LiveStream, spec: VcuSpec = None) -> float:
    """VCU encode time for one chunk of the live MOT ladder.

    A single VCU handles the MOT in real time; hardware speed is
    effectively deterministic (Section 4.5: "consistency of the hardware
    transcode speed").
    """
    spec = spec or VcuSpec()
    ladder = output_ladder(stream.source)
    output_pixels = sum(r.pixels for r in ladder) * stream.fps * stream.chunk_seconds
    rate = spec.encoder_cores * spec.encode_rate("vp9", EncodingMode.LAGGED_TWO_PASS)
    return output_pixels / rate


def simulate_live_stream(
    stream: LiveStream,
    duration_seconds: float,
    use_vcu: bool,
    seed: SeedLike = 0,
    parallel_chunks: int = 6,
    spec: VcuSpec = None,
) -> List[LiveChunkResult]:
    """Simulate chunk production and report per-chunk readiness times.

    Software mode pipelines ``parallel_chunks`` encoders; a chunk is ready
    when its (slow, jittery) encode finishes.  VCU mode encodes each chunk
    as it is captured.
    """
    rng = make_rng(seed)
    chunk_count = int(duration_seconds / stream.chunk_seconds)
    results: List[LiveChunkResult] = []
    # Per-lane completion times for the software pipeline.
    lanes = [0.0] * max(1, parallel_chunks if not use_vcu else 1)
    for index in range(chunk_count):
        captured_at = (index + 1) * stream.chunk_seconds
        if use_vcu:
            encode = vcu_chunk_encode_seconds(stream, spec)
        else:
            encode = software_chunk_encode_seconds(stream, rng)
        lane = min(range(len(lanes)), key=lambda i: lanes[i])
        start = max(captured_at, lanes[lane])
        ready = start + encode
        lanes[lane] = ready
        results.append(
            LiveChunkResult(chunk_index=index, encode_seconds=encode, ready_at=ready)
        )
    return results


def end_to_end_latency_seconds(
    results: List[LiveChunkResult],
    chunk_seconds: float,
    network_seconds: float = 1.0,
    percentile: float = 99.0,
) -> float:
    """Camera-to-eyeball latency: capture + encode backlog + delivery.

    The playhead must never stall, so the viewer delay is set by the
    worst (``percentile``) lateness of a chunk relative to its capture
    time, plus one chunk of capture delay and the delivery time.
    """
    if not results:
        raise ValueError("no chunks simulated")
    lateness = [r.ready_at - (r.chunk_index + 1) * chunk_seconds for r in results]
    backlog = float(np.percentile(lateness, percentile))
    return chunk_seconds + backlog + network_seconds
