"""Workload generators: uploads, live streams, cloud gaming, popularity.

Production traces are not available, so these generators synthesize the
workload the paper characterises in Section 2.2: stretched-power-law video
popularity, a resolution mix dominated by <=1080p uploads, Poisson
arrivals with diurnal shaping for uploads, long-running live streams, and
latency-critical gaming sessions.
"""

from repro.workloads.popularity import (
    PopularityModel,
    bucket_for_views,
    stretched_exponential_views,
)
from repro.workloads.upload import UPLOAD_RESOLUTION_MIX, UploadGenerator, UploadVideo
from repro.workloads.live import LiveChunkResult, LiveStream, simulate_live_stream
from repro.workloads.gaming import GamingSession, gaming_latency_ms

# repro.workloads.platform and repro.workloads.streams are intentionally
# NOT re-exported here: they depend on repro.control (for JobRequest),
# which depends back on this package via its scenario modules.  Import
# them as ``repro.workloads.platform`` / ``repro.workloads.streams``
# directly.

__all__ = [
    "PopularityModel",
    "stretched_exponential_views",
    "bucket_for_views",
    "UploadGenerator",
    "UploadVideo",
    "UPLOAD_RESOLUTION_MIX",
    "LiveStream",
    "LiveChunkResult",
    "simulate_live_stream",
    "GamingSession",
    "gaming_latency_ms",
]
