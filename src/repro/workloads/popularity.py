"""Video popularity: the stretched power law of Section 2.2.

Internet media popularity follows a stretched exponential distribution
(Guo et al., PODC '08): a small head of very popular videos dominates
watch time, a modest middle earns moderate treatment, and the long tail
of rarely-watched videos should minimize transcode + storage cost.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.sim.rng import SeedLike, make_rng
from repro.transcode.ladder import PopularityBucket

#: View-count thresholds separating the buckets.
HOT_THRESHOLD = 100_000
WARM_THRESHOLD = 1_000


def stretched_exponential_views(
    rng: np.random.Generator, count: int, scale: float = 50.0, shape: float = 0.20
) -> np.ndarray:
    """Sample view counts from a stretched exponential (Weibull) tail.

    ``shape`` < 1 stretches the tail; the defaults give a head/middle/tail
    split close to the paper's three-bucket description.
    """
    if count < 1:
        raise ValueError("count must be >= 1")
    if not 0 < shape <= 1:
        raise ValueError("shape must be in (0, 1]")
    uniforms = rng.random(count)
    views = scale * (-np.log1p(-uniforms)) ** (1.0 / shape)
    return np.maximum(views, 0.0)


def bucket_for_views(views: float) -> PopularityBucket:
    if views >= HOT_THRESHOLD:
        return PopularityBucket.HOT
    if views >= WARM_THRESHOLD:
        return PopularityBucket.WARM
    return PopularityBucket.COLD


@dataclass
class PopularityModel:
    """Samples (views, bucket) pairs and summarises fleet shares."""

    seed: SeedLike = 0
    scale: float = 50.0
    shape: float = 0.20

    def __post_init__(self) -> None:
        self._rng = make_rng(self.seed)

    def sample_views(self, count: int = 1) -> np.ndarray:
        return stretched_exponential_views(self._rng, count, self.scale, self.shape)

    def sample_bucket(self) -> PopularityBucket:
        return bucket_for_views(float(self.sample_views(1)[0]))

    def bucket_shares(self, samples: int = 20000):
        """Empirical (upload share, watch share) per bucket."""
        views = self.sample_views(samples)
        shares = {}
        total_views = float(views.sum())
        for bucket in PopularityBucket:
            mask = np.array([bucket_for_views(v) is bucket for v in views])
            shares[bucket] = (
                float(mask.mean()),
                float(views[mask].sum() / total_views) if total_views else 0.0,
            )
        return shares
