"""The global platform's day of demand: uploads, live, and batch jobs.

Where :mod:`repro.workloads.upload` produces step-graph-level arrivals
for one cluster, this module produces *control-plane* demand: a merged,
time-ordered stream of :class:`~repro.control.jobs.JobRequest` records
covering the three SLO classes across a (configurable-length) diurnal
cycle:

* **live** -- short real-time transcode legs; rate follows the diurnal
  envelope with an evening phase shift (live peaks later than uploads);
* **upload** -- the bread-and-butter VOD ingest; diurnal, daytime peak;
* **batch** -- re-encodes of popular backlog (the paper's
  popularity-driven second pass); a flat trickle that admission sheds
  first under pressure.

Arrival processes are Poisson with thinning against the diurnal
envelope (same method as :class:`~repro.workloads.upload.
UploadGenerator`); every class draws from its own split RNG stream so
changing one class's rate never perturbs another's arrivals.
``day_seconds`` compresses the 24-hour cycle so a scaled scenario still
sees a full diurnal swing.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import TYPE_CHECKING, Iterator, List, Sequence, Tuple

import numpy as np

from repro.sim.rng import SeedLike, split_rng

if TYPE_CHECKING:  # deferred: repro.control's scenario imports us back
    from repro.control.jobs import JobRequest

#: Population centres demand originates from (abstract map coordinates,
#: chosen near the default site layout) and their traffic weights.
DEFAULT_ORIGIN_CENTRES: Tuple[Tuple[float, float], ...] = (
    (2.0, 1.0), (38.0, -2.0), (88.0, 12.0), (158.0, -8.0),
)
DEFAULT_ORIGIN_WEIGHTS: Tuple[float, ...] = (0.35, 0.25, 0.25, 0.15)


@dataclass(frozen=True)
class PlatformDayConfig:
    """Shape of one simulated platform day."""

    #: Length of the full diurnal cycle in sim seconds (86400 = real day).
    day_seconds: float = 86400.0
    #: Mean arrivals/second per class (peak = mean * (1 + amplitude)).
    upload_rate: float = 1.0
    live_rate: float = 0.35
    batch_rate: float = 0.25
    diurnal_amplitude: float = 0.5
    #: Phase lag of the live peak behind the upload peak, as a fraction
    #: of the day (0.25 = live peaks a quarter-day later).
    live_phase_lag: float = 0.25
    #: Mean modelled service seconds per class.
    upload_service_mean: float = 60.0
    live_service_seconds: float = 30.0
    batch_service_mean: float = 150.0
    origin_centres: Tuple[Tuple[float, float], ...] = DEFAULT_ORIGIN_CENTRES
    origin_weights: Tuple[float, ...] = DEFAULT_ORIGIN_WEIGHTS
    origin_scatter: float = 6.0

    def __post_init__(self) -> None:
        if self.day_seconds <= 0:
            raise ValueError("day_seconds must be positive")
        if not 0.0 <= self.diurnal_amplitude < 1.0:
            raise ValueError("diurnal_amplitude must be in [0, 1)")
        if len(self.origin_centres) != len(self.origin_weights):
            raise ValueError("origin centres and weights must pair up")
        total = sum(self.origin_weights)
        if abs(total - 1.0) > 1e-6:
            raise ValueError(f"origin weights must sum to 1, got {total}")


class PlatformDayWorkload:
    """Deterministic demand stream for the global-platform-day scenario."""

    def __init__(self, config: PlatformDayConfig, seed: SeedLike = 0) -> None:
        self.config = config
        self._seed = seed

    def _envelope(self, t: float, phase_frac: float) -> float:
        """Diurnal factor in [1-A, 1+A] at time ``t``."""
        day = self.config.day_seconds
        phase = 2 * math.pi * ((t / day) - phase_frac)
        return 1.0 + self.config.diurnal_amplitude * math.sin(phase)

    def _origin(self, rng: np.random.Generator) -> Tuple[float, float]:
        centres = self.config.origin_centres
        weights = np.array(self.config.origin_weights)
        cx, cy = centres[int(rng.choice(len(centres), p=weights))]
        scatter = self.config.origin_scatter
        return (
            cx + float(rng.normal(0.0, scatter)),
            cy + float(rng.normal(0.0, scatter)),
        )

    def _rate_multiplier(self, label: str, t: float) -> float:
        """Event-driven demand multiplier for class ``label`` at ``t``.

        The base workload has no events; :class:`~repro.workloads.
        events.EventedDayWorkload` overrides this (and
        :meth:`_multiplier_bounds`) to superimpose surges and mix
        shifts via the same thinning the diurnal envelope uses.
        """
        return 1.0

    def _multiplier_bounds(self, label: str) -> Tuple[float, float]:
        """(min, max) of :meth:`_rate_multiplier` over the whole day.

        The max bounds the thinning proposal rate; (1.0, 1.0) keeps the
        base workload's draw sequence untouched, so subclassing with
        events never perturbs an event-free class's arrivals.
        """
        return (1.0, 1.0)

    def _arrivals(
        self,
        rng: np.random.Generator,
        rate: float,
        until: float,
        phase_frac: float,
        diurnal: bool,
        label: str = "",
    ) -> Iterator[float]:
        """Poisson arrivals, thinned against the diurnal envelope."""
        if rate <= 0:
            return
        low, high = self._multiplier_bounds(label)
        evented = (low, high) != (1.0, 1.0)
        peak = (
            rate
            * (1.0 + (self.config.diurnal_amplitude if diurnal else 0.0))
            * high
        )
        t = 0.0
        while True:
            t += float(rng.exponential(1.0 / peak))
            if t >= until:
                return
            if diurnal:
                accept = (
                    self._envelope(t, phase_frac)
                    * self._rate_multiplier(label, t)
                ) / ((1.0 + self.config.diurnal_amplitude) * high)
                if rng.random() > accept:
                    continue
            elif evented:
                accept = self._rate_multiplier(label, t) / high
                if rng.random() > accept:
                    continue
            yield t

    def requests(self, until: float) -> List[JobRequest]:
        """All arrivals before ``until``, merged and time-ordered.

        Each class consumes its own split stream, so the merge order is
        a pure function of the seed and rates; the final sort key is
        (arrival, class, id) -- fully deterministic.
        """
        # Imported here, not at module top: repro.control.scenario
        # imports this module, so a top-level import would be circular.
        from repro.control.jobs import JobRequest, SloClass  # lint: allow=layering -- sanctioned upward import: workloads produce control-plane JobRequests, control drives workloads

        config = self.config
        out: List[JobRequest] = []

        rng = split_rng(self._seed, "platform/upload")
        for index, t in enumerate(
            self._arrivals(
                rng, config.upload_rate, until, 0.25, diurnal=True,
                label="upload",
            )
        ):
            service = 10.0 + float(rng.exponential(config.upload_service_mean))
            out.append(JobRequest(
                job_id=f"up-{index + 1}",
                slo_class=SloClass.UPLOAD,
                origin=self._origin(rng),
                arrival_time=t,
                service_seconds=service,
                megapixels=service * 50.0,
            ))

        rng = split_rng(self._seed, "platform/live")
        lag = 0.25 + config.live_phase_lag
        for index, t in enumerate(
            self._arrivals(
                rng, config.live_rate, until, lag, diurnal=True, label="live"
            )
        ):
            out.append(JobRequest(
                job_id=f"live-{index + 1}",
                slo_class=SloClass.LIVE,
                origin=self._origin(rng),
                arrival_time=t,
                service_seconds=config.live_service_seconds,
                megapixels=config.live_service_seconds * 124.0,
            ))

        rng = split_rng(self._seed, "platform/batch")
        for index, t in enumerate(
            self._arrivals(
                rng, config.batch_rate, until, 0.0, diurnal=False,
                label="batch",
            )
        ):
            service = 30.0 + float(rng.exponential(config.batch_service_mean))
            out.append(JobRequest(
                job_id=f"batch-{index + 1}",
                slo_class=SloClass.BATCH,
                origin=self._origin(rng),
                arrival_time=t,
                service_seconds=service,
                megapixels=service * 80.0,
            ))

        out.sort(key=lambda r: (r.arrival_time, r.slo_class, r.job_id))
        return out


def offered_load(requests: Sequence[JobRequest], horizon: float) -> float:
    """Average slot demand implied by a request list (sanity metric)."""
    if horizon <= 0:
        raise ValueError("horizon must be positive")
    return sum(r.service_seconds for r in requests) / horizon
