"""The upload workload: video arrivals for YouTube/Photos/Drive ingest.

Arrivals are Poisson with an optional diurnal factor; each video draws a
source resolution from the production-like mix (most uploads are 1080p or
below; phones dominate), a duration, and a popularity bucket that picks
its output ladder.  ``to_graph`` turns one video into the step graph the
cluster executes.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Optional

import numpy as np

from repro.sim.rng import SeedLike, make_rng
from repro.transcode.ladder import LadderPolicy, PopularityBucket
from repro.transcode.pipeline import StepGraph, build_transcode_graph
from repro.transcode.modes import WorkloadClass
from repro.video.frame import Resolution, resolution
from repro.workloads.popularity import PopularityModel

#: Source resolution mix for uploads (phones dominate; 4K is rare).
UPLOAD_RESOLUTION_MIX: Dict[str, float] = {
    "360p": 0.08,
    "480p": 0.17,
    "720p": 0.30,
    "1080p": 0.35,
    "1440p": 0.04,
    "2160p": 0.06,
}


@dataclass(frozen=True)
class UploadVideo:
    """One arriving upload."""

    video_id: str
    arrival_time: float
    source: Resolution
    duration_seconds: float
    fps: float
    bucket: PopularityBucket

    @property
    def total_frames(self) -> int:
        return max(1, int(self.duration_seconds * self.fps))


class UploadGenerator:
    """Poisson arrivals of uploads with a diurnal rate envelope."""

    def __init__(
        self,
        arrivals_per_second: float,
        seed: SeedLike = 0,
        mix: Dict[str, float] = None,
        mean_duration_seconds: float = 240.0,
        diurnal_amplitude: float = 0.0,
    ):
        if arrivals_per_second <= 0:
            raise ValueError("arrivals_per_second must be positive")
        if not 0.0 <= diurnal_amplitude < 1.0:
            raise ValueError("diurnal_amplitude must be in [0, 1)")
        self.rate = arrivals_per_second
        self.mix = dict(mix or UPLOAD_RESOLUTION_MIX)
        total = sum(self.mix.values())
        if abs(total - 1.0) > 1e-6:
            raise ValueError(f"resolution mix must sum to 1, got {total}")
        self.mean_duration = mean_duration_seconds
        self.diurnal_amplitude = diurnal_amplitude
        self._rng = make_rng(seed)
        self._popularity = PopularityModel(seed=self._rng.integers(0, 2**31))
        self._names = list(self.mix)
        self._weights = np.array([self.mix[n] for n in self._names])
        self._counter = 0

    def _rate_at(self, t: float) -> float:
        if self.diurnal_amplitude == 0:
            return self.rate
        phase = 2 * math.pi * (t % 86400.0) / 86400.0
        return self.rate * (1.0 + self.diurnal_amplitude * math.sin(phase))

    def videos(self, until: float) -> Iterator[UploadVideo]:
        """Generate arrivals up to virtual time ``until`` (thinning method)."""
        peak = self.rate * (1.0 + self.diurnal_amplitude)
        t = 0.0
        while True:
            t += float(self._rng.exponential(1.0 / peak))
            if t >= until:
                return
            if self._rng.random() > self._rate_at(t) / peak:
                continue  # thinned out by the diurnal envelope
            yield self.sample_video(t)

    def sample_video(self, t: float = 0.0) -> UploadVideo:
        """Draw one video (resolution, duration, popularity) arriving at ``t``."""
        name = self._names[int(self._rng.choice(len(self._names), p=self._weights))]
        duration = float(self._rng.exponential(self.mean_duration)) + 10.0
        fps = float(self._rng.choice([24.0, 30.0, 30.0, 60.0]))
        self._counter += 1
        return UploadVideo(
            video_id=f"v{self._counter}",
            arrival_time=t,
            source=resolution(name),
            duration_seconds=duration,
            fps=fps,
            bucket=self._popularity.sample_bucket(),
        )

    def to_graph(
        self,
        video: UploadVideo,
        policy: LadderPolicy = LadderPolicy(),
        use_mot: bool = True,
        software_decode: bool = False,
        gop_frames: int = 150,
    ) -> StepGraph:
        return build_transcode_graph(
            video_id=video.video_id,
            source=video.source,
            total_frames=video.total_frames,
            fps=video.fps,
            workload=WorkloadClass.UPLOAD,
            bucket=video.bucket,
            policy=policy,
            use_mot=use_mot,
            gop_frames=gop_frames,
            software_decode=software_decode,
        )
