"""Cloud gaming (Stadia): extreme low-latency encoding (Section 4.5).

Stadia needs 4K 60 FPS with excellent fidelity on ~35 Mbps connections and
an encode latency budget of a frame time or two.  The VCU's low-latency
two-pass VP9 mode hits this: one encoder core sustains 2160p60, so each
frame encodes in under a frame time.  Software VP9 cannot -- even at
degraded quality settings a 4K frame takes tens to hundreds of
milliseconds.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.baselines.cpu import SkylakeSystem
from repro.vcu.spec import EncodingMode, VcuSpec
from repro.video.frame import Resolution, resolution


@dataclass(frozen=True)
class GamingSession:
    """One interactive session."""

    resolution_name: str = "2160p"
    fps: float = 60.0
    bitrate_mbps: float = 35.0

    @property
    def source(self) -> Resolution:
        return resolution(self.resolution_name)

    @property
    def frame_budget_ms(self) -> float:
        return 1000.0 / self.fps


def gaming_latency_ms(
    session: GamingSession,
    use_vcu: bool,
    spec: VcuSpec = None,
    cpu: SkylakeSystem = None,
    cpu_cores: int = 16,
) -> float:
    """Per-frame encode latency in milliseconds.

    VCU: one core in low-latency two-pass mode.  Software: a realtime-
    tuned (4x faster than offline quality) libvpx on ``cpu_cores`` cores.
    """
    pixels = session.source.pixels
    if use_vcu:
        spec = spec or VcuSpec()
        rate = spec.encode_rate("vp9", EncodingMode.LOW_LATENCY_TWO_PASS)
        return pixels / rate * 1000.0
    cpu = cpu or SkylakeSystem()
    realtime_speedup = 4.0  # realtime presets trade quality for speed
    per_core = cpu.per_core_throughput("vp9", session.source) * 1e6 * realtime_speedup
    rate = per_core * cpu_cores * 0.75  # threading efficiency
    return pixels / rate * 1000.0


def meets_frame_budget(session: GamingSession, use_vcu: bool) -> bool:
    """Whether encode latency fits within one frame time."""
    return gaming_latency_ms(session, use_vcu) <= session.frame_budget_ms
