"""Demand for the live-ladder scenario: live legs plus upload bursts.

Where :mod:`repro.workloads.platform` models a full diurnal day, this is
the focused streaming mix the latency scorecard needs: Poisson arrivals
of **live** legs (each a fixed-length real-time capture that will drip
segments) and **upload** jobs (whole files whose segments burst into the
queue at dispatch).  Uploads are the background pressure that makes the
live rungs actually queue.

Same determinism contract as the platform workload: every class draws
from its own split RNG stream, and the merged list is sorted by
``(arrival, class, id)`` -- a pure function of the seed and rates.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Iterator, List, Tuple

import numpy as np

from repro.sim.rng import SeedLike, split_rng

if TYPE_CHECKING:  # deferred: repro.control imports back into workloads
    from repro.control.jobs import JobRequest


@dataclass(frozen=True)
class LadderDemandConfig:
    """Shape of one live-ladder run's demand."""

    #: Mean arrivals per second per class.
    live_rate: float = 0.01
    upload_rate: float = 0.02
    #: Seconds of source content per live leg (fixed: a scheduled show).
    live_duration_seconds: float = 30.0
    #: Mean seconds of source content per upload (exponential + floor).
    upload_duration_mean: float = 16.0
    upload_duration_min: float = 4.0
    #: Abstract map coordinate demand originates from (single-site runs).
    origin: Tuple[float, float] = (0.0, 0.0)

    def __post_init__(self) -> None:
        if self.live_rate < 0 or self.upload_rate < 0:
            raise ValueError("rates must be non-negative")
        if self.live_duration_seconds <= 0:
            raise ValueError("live_duration_seconds must be positive")
        if self.upload_duration_min <= 0 or self.upload_duration_mean <= 0:
            raise ValueError("upload durations must be positive")


class LadderDemandWorkload:
    """Deterministic JobRequest stream for the live-ladder scenario."""

    def __init__(self, config: LadderDemandConfig, seed: SeedLike = 0) -> None:
        self.config = config
        self._seed = seed

    def _arrivals(
        self, rng: np.random.Generator, rate: float, until: float
    ) -> Iterator[float]:
        if rate <= 0:
            return
        t = 0.0
        while True:
            t += float(rng.exponential(1.0 / rate))
            if t >= until:
                return
            yield t

    def requests(self, until: float) -> List[JobRequest]:
        """All arrivals before ``until``, merged and time-ordered."""
        # Imported here, not at module top: repro.control.live_ladder
        # imports this module, so a top-level import would be circular.
        from repro.control.jobs import JobRequest, SloClass  # lint: allow=layering -- sanctioned upward import: live streams produce control-plane JobRequests, control drives workloads

        config = self.config
        out: List[JobRequest] = []

        rng = split_rng(self._seed, "ladder/live")
        for index, t in enumerate(self._arrivals(rng, config.live_rate, until)):
            out.append(JobRequest(
                job_id=f"live-{index + 1}",
                slo_class=SloClass.LIVE,
                origin=config.origin,
                arrival_time=t,
                service_seconds=config.live_duration_seconds,
                megapixels=config.live_duration_seconds * 124.0,
            ))

        rng = split_rng(self._seed, "ladder/upload")
        for index, t in enumerate(
            self._arrivals(rng, config.upload_rate, until)
        ):
            duration = config.upload_duration_min + float(
                rng.exponential(config.upload_duration_mean)
            )
            out.append(JobRequest(
                job_id=f"up-{index + 1}",
                slo_class=SloClass.UPLOAD,
                origin=config.origin,
                arrival_time=t,
                service_seconds=duration,
                megapixels=duration * 50.0,
            ))

        out.sort(key=lambda r: (r.arrival_time, r.slo_class, r.job_id))
        return out
