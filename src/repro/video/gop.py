"""Chunking a video into closed GOPs (Section 2.1).

Transcoders shard videos into chunks -- closed Groups of Pictures -- that
can be processed in parallel across workers and reassembled afterwards.
Each chunk starts with a keyframe (no reference reaches across a chunk
boundary), which is what makes the sharding safe.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional

from repro.video.frame import RawVideo, Resolution


@dataclass
class Chunk:
    """A contiguous closed-GOP slice of a source video."""

    video_id: str
    index: int
    frame_count: int
    fps: float
    nominal: Resolution
    #: Raw frames when the chunk is materialised for functional encoding;
    #: cluster-level simulations carry metadata only and leave this None.
    frames: Optional[RawVideo] = None

    def __post_init__(self) -> None:
        if self.frame_count <= 0:
            raise ValueError("chunk must contain at least one frame")

    @property
    def duration_seconds(self) -> float:
        return self.frame_count / self.fps

    @property
    def nominal_pixels(self) -> int:
        return self.nominal.pixels * self.frame_count

    @property
    def chunk_id(self) -> str:
        return f"{self.video_id}/{self.index}"


def chunk_video(
    video: RawVideo,
    gop_frames: int = 150,
    video_id: str = "",
) -> List[Chunk]:
    """Split a materialised video into closed-GOP chunks.

    The default GOP of 150 frames matches the paper's example (a 150-frame
    2160p chunk, i.e. 5 seconds at 30 FPS).  The final chunk may be short.
    """
    if gop_frames <= 0:
        raise ValueError("gop_frames must be positive")
    video_id = video_id or video.name or "video"
    chunks: List[Chunk] = []
    for index, start in enumerate(range(0, len(video.frames), gop_frames)):
        frames = video.frames[start : start + gop_frames]
        chunks.append(
            Chunk(
                video_id=video_id,
                index=index,
                frame_count=len(frames),
                fps=video.fps,
                nominal=video.nominal,
                frames=RawVideo(frames, video.nominal, video.fps, name=video_id),
            )
        )
    return chunks


def chunk_metadata(
    video_id: str,
    total_frames: int,
    fps: float,
    nominal: Resolution,
    gop_frames: int = 150,
) -> List[Chunk]:
    """Metadata-only chunking for cluster simulations (no pixel data)."""
    if total_frames <= 0:
        raise ValueError("total_frames must be positive")
    if gop_frames <= 0:
        raise ValueError("gop_frames must be positive")
    chunks: List[Chunk] = []
    remaining = total_frames
    index = 0
    while remaining > 0:
        count = min(gop_frames, remaining)
        chunks.append(
            Chunk(
                video_id=video_id,
                index=index,
                frame_count=count,
                fps=fps,
                nominal=nominal,
            )
        )
        remaining -= count
        index += 1
    return chunks
