"""Video substrate: resolutions, frames, synthetic content, GOPs, vbench.

The paper evaluates on real video (the public vbench suite plus YouTube
production uploads).  Neither is available offline, so this package supplies
a synthetic stand-in: a deterministic content generator whose difficulty
axes (motion, spatial detail, noise, scene changes) span the same space
vbench was designed to cover, and a :mod:`~repro.video.vbench` module that
instantiates the 15 vbench titles with per-title difficulty parameters.
"""

from repro.video.frame import (
    LADDER,
    RESOLUTIONS,
    Frame,
    RawVideo,
    Resolution,
    output_ladder,
    resolution,
)
from repro.video.content import ContentSpec, SyntheticVideo
from repro.video.gop import Chunk, chunk_video
from repro.video.vbench import VBENCH_SUITE, VbenchVideo, vbench_video

__all__ = [
    "Resolution",
    "RESOLUTIONS",
    "LADDER",
    "resolution",
    "output_ladder",
    "Frame",
    "RawVideo",
    "ContentSpec",
    "SyntheticVideo",
    "Chunk",
    "chunk_video",
    "VBENCH_SUITE",
    "VbenchVideo",
    "vbench_video",
]
