"""Resolutions, frames, and raw video sequences.

The standard 16:9 ladder from the paper (footnote 1): 144p up to 4320p (8K).
Frames carry a luma plane only -- chroma adds pixel volume but no new
behaviour for rate-distortion or throughput modelling, and the paper's
Mpix/s metric counts luma samples.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence

import numpy as np


@dataclass(frozen=True, order=True)
class Resolution:
    """A video resolution, ordered by pixel count."""

    pixels: int
    width: int
    height: int
    name: str

    @property
    def megapixels(self) -> float:
        return self.pixels / 1e6

    def __str__(self) -> str:  # pragma: no cover - trivial
        return self.name


def _make(width: int, height: int, name: str) -> Resolution:
    return Resolution(pixels=width * height, width=width, height=height, name=name)


# The standard group of 16:9 resolutions (paper Section 2.1, footnote 1).
RESOLUTIONS: Dict[str, Resolution] = {
    r.name: r
    for r in (
        _make(256, 144, "144p"),
        _make(426, 240, "240p"),
        _make(640, 360, "360p"),
        _make(854, 480, "480p"),
        _make(1280, 720, "720p"),
        _make(1920, 1080, "1080p"),
        _make(2560, 1440, "1440p"),
        _make(3840, 2160, "2160p"),
        _make(7680, 4320, "4320p"),
    )
}

#: Full ladder ordered from smallest to largest.
LADDER: List[Resolution] = sorted(RESOLUTIONS.values())


def resolution(name: str) -> Resolution:
    """Look up a resolution by its short name (e.g. ``"1080p"``)."""
    try:
        return RESOLUTIONS[name]
    except KeyError:
        raise KeyError(f"unknown resolution {name!r}; known: {sorted(RESOLUTIONS)}") from None


def output_ladder(source: Resolution) -> List[Resolution]:
    """The MOT output set for a source: every ladder rung at or below it.

    For a 1080p input this is [1080p, 720p, 480p, 360p, 240p, 144p]
    (descending), matching Figure 2b and Section 3.1.
    """
    rungs = [r for r in LADDER if r.pixels <= source.pixels]
    return sorted(rungs, reverse=True)


@dataclass
class Frame:
    """A single raw luma frame.

    ``data`` may be a *proxy* (downscaled) plane for functional-codec speed;
    ``nominal`` records the resolution the frame logically represents so
    throughput and bitrate accounting use the true pixel counts.
    """

    data: np.ndarray
    nominal: Resolution
    index: int = 0

    def __post_init__(self) -> None:
        if self.data.ndim != 2:
            raise ValueError(f"frame data must be 2-D, got shape {self.data.shape}")
        if self.data.dtype != np.float32:
            self.data = self.data.astype(np.float32)

    @property
    def proxy_shape(self) -> tuple:
        return self.data.shape

    @property
    def proxy_pixels(self) -> int:
        return int(self.data.size)

    def copy(self) -> "Frame":
        return Frame(self.data.copy(), self.nominal, self.index)


@dataclass
class RawVideo:
    """A decoded frame sequence plus its playback metadata."""

    frames: List[Frame]
    nominal: Resolution
    fps: float
    name: str = ""

    def __post_init__(self) -> None:
        if not self.frames:
            raise ValueError("a video needs at least one frame")
        if self.fps <= 0:
            raise ValueError("fps must be positive")

    def __len__(self) -> int:
        return len(self.frames)

    @property
    def duration_seconds(self) -> float:
        return len(self.frames) / self.fps

    @property
    def nominal_pixels(self) -> int:
        """Total luma samples at the nominal resolution (for Mpix metrics)."""
        return self.nominal.pixels * len(self.frames)

    def scaled_to(self, target: Resolution) -> "RawVideo":
        """Downscale to a lower ladder rung (box filter on the proxy plane).

        Upscaling is rejected: the platform never upscales on the server
        side (clients upscale on playback, Section 2.1).
        """
        if target.pixels > self.nominal.pixels:
            raise ValueError(f"refusing to upscale {self.nominal.name} -> {target.name}")
        if target.pixels == self.nominal.pixels:
            return self
        scale = max(1, round((self.nominal.pixels / target.pixels) ** 0.5))
        scaled = [
            Frame(_box_downscale(f.data, scale), target, f.index) for f in self.frames
        ]
        return RawVideo(scaled, target, self.fps, name=f"{self.name}@{target.name}")


def _box_downscale(plane: np.ndarray, factor: int) -> np.ndarray:
    """Integer-factor box downscale, cropping any ragged edge."""
    if factor <= 1:
        return plane.copy()
    height = (plane.shape[0] // factor) * factor
    width = (plane.shape[1] // factor) * factor
    if height < factor or width < factor:
        # Too small to shrink further; return as-is rather than emit 0-size.
        return plane.copy()
    cropped = plane[:height, :width]
    view = cropped.reshape(height // factor, factor, width // factor, factor)
    return view.mean(axis=(1, 3)).astype(np.float32)


def psnr(reference: np.ndarray, test: np.ndarray, peak: float = 255.0) -> float:
    """Peak signal-to-noise ratio between two planes, in dB."""
    if reference.shape != test.shape:
        raise ValueError(f"shape mismatch {reference.shape} vs {test.shape}")
    mse = float(np.mean((reference.astype(np.float64) - test.astype(np.float64)) ** 2))
    if mse == 0:
        return float("inf")
    return 10.0 * np.log10(peak * peak / mse)


def sequence_psnr(reference: Sequence[Frame], test: Sequence[Frame]) -> float:
    """Mean-MSE PSNR across a frame sequence (the conventional definition)."""
    if len(reference) != len(test):
        raise ValueError("sequences differ in length")
    total_se = 0.0
    total_n = 0
    for ref, out in zip(reference, test):
        diff = ref.data.astype(np.float64) - out.data.astype(np.float64)
        total_se += float(np.sum(diff * diff))
        total_n += diff.size
    mse = total_se / total_n
    if mse == 0:
        return float("inf")
    return 10.0 * np.log10(255.0 * 255.0 / mse)
