"""A synthetic stand-in for the vbench benchmark suite.

vbench (Lottarini et al., ASPLOS '18) is 15 representative videos spanning a
3-axis space of resolution, frame rate, and entropy.  The real clips are not
available offline, so each title here is a :class:`~repro.video.content.ContentSpec`
whose difficulty parameters were chosen to land the title in the right part
of Figure 7: screen-content titles (``presentation``, ``desktop``) are very
easy -- near-static, low noise -- while ``holi`` (a festival scene full of
flying colour powder) is the hardest, with heavy motion and incompressible
noise.  Game captures sit in between with high motion but clean frames.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List

from repro.sim.rng import SeedLike
from repro.video.content import ContentSpec, SyntheticVideo
from repro.video.frame import RawVideo


@dataclass(frozen=True)
class VbenchVideo:
    """One vbench title: its content spec plus suite bookkeeping."""

    spec: ContentSpec
    #: Relative difficulty rank used in tests/documentation (0 = easiest).
    difficulty_rank: int

    @property
    def name(self) -> str:
        return self.spec.name


def _title(
    name: str,
    rank: int,
    resolution_name: str,
    fps: float,
    motion: float,
    detail: float,
    noise: float,
    sprites: int = 6,
    scene_change_every: int = None,
    flash_probability: float = 0.0,
) -> VbenchVideo:
    return VbenchVideo(
        spec=ContentSpec(
            name=name,
            resolution_name=resolution_name,
            fps=fps,
            motion=motion,
            detail=detail,
            noise=noise,
            sprites=sprites,
            scene_change_every=scene_change_every,
            flash_probability=flash_probability,
        ),
        difficulty_rank=rank,
    )


#: The 15 titles of Figure 7, ordered easy -> hard (legend order).
VBENCH_SUITE: List[VbenchVideo] = [
    _title("presentation", 0, "1080p", 30, motion=0.05, detail=0.15, noise=0.1, sprites=1),
    _title("desktop", 1, "1080p", 30, motion=0.1, detail=0.2, noise=0.1, sprites=2),
    _title("bike", 2, "720p", 30, motion=0.8, detail=0.3, noise=0.8),
    _title("funny", 3, "480p", 30, motion=0.7, detail=0.35, noise=1.0),
    _title("house", 4, "1080p", 30, motion=0.5, detail=0.45, noise=1.0),
    _title("cricket", 5, "720p", 50, motion=1.2, detail=0.4, noise=1.2),
    _title("girl", 6, "1080p", 25, motion=0.9, detail=0.5, noise=1.2),
    _title("game_1", 7, "1080p", 60, motion=1.6, detail=0.45, noise=0.6),
    _title("chicken", 8, "2160p", 30, motion=1.2, detail=0.55, noise=1.4),
    _title("hall", 9, "1080p", 30, motion=1.0, detail=0.6, noise=1.5),
    _title("game_2", 10, "720p", 60, motion=2.0, detail=0.5, noise=0.8),
    _title("cat", 11, "1080p", 30, motion=1.4, detail=0.65, noise=1.6),
    _title("landscape", 12, "2160p", 30, motion=1.0, detail=0.8, noise=1.8),
    _title("game_3", 13, "1080p", 60, motion=2.4, detail=0.6, noise=1.0),
    _title(
        "holi", 14, "1080p", 30,
        motion=2.6, detail=0.9, noise=3.0, sprites=12, flash_probability=0.08,
    ),
]

_BY_NAME: Dict[str, VbenchVideo] = {v.name: v for v in VBENCH_SUITE}


def vbench_video(name: str) -> VbenchVideo:
    """Look up a vbench title by name."""
    try:
        return _BY_NAME[name]
    except KeyError:
        raise KeyError(f"unknown vbench title {name!r}; known: {sorted(_BY_NAME)}") from None


def materialize(
    title: VbenchVideo, frame_count: int = 30, seed: SeedLike = 0
) -> RawVideo:
    """Generate the synthetic frames for a title (deterministic per seed)."""
    return SyntheticVideo(title.spec, seed=seed).video(frame_count)
