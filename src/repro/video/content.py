"""Deterministic synthetic video content.

The generator composes three layers, each with an adjustable weight so that
one knob maps to one difficulty axis of vbench's taxonomy:

* a smooth background (easy to predict, low entropy),
* a set of textured sprites translating with sub-pixel motion (the motion
  axis -- inter prediction must chase them),
* per-frame noise and optional scene cuts (the entropy axis -- noise is
  incompressible; cuts defeat inter prediction entirely).

Frames are generated at a *proxy* resolution (a fraction of the nominal
resolution) so the functional codec stays fast; all bitrate/throughput
accounting is done at the nominal resolution.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional

import numpy as np

from repro.sim.rng import SeedLike, make_rng
from repro.video.frame import Frame, RawVideo, Resolution, resolution


@dataclass(frozen=True)
class ContentSpec:
    """Difficulty parameters for one synthetic title.

    All axes are 0..1-ish scalars; the defaults give a moderate clip.

    * ``motion`` -- sprite translation speed, in proxy pixels per frame.
    * ``detail`` -- amplitude of static spatial texture.
    * ``noise`` -- per-frame temporal noise sigma (incompressible energy).
    * ``scene_change_every`` -- frames between hard cuts (None = no cuts).
    * ``flash_probability`` -- chance a frame is globally brightened, which
      defeats naive inter prediction (the fades/flashes of Section 2.1).
    """

    name: str = "clip"
    resolution_name: str = "1080p"
    fps: float = 30.0
    motion: float = 1.0
    detail: float = 0.4
    noise: float = 1.5
    sprites: int = 6
    scene_change_every: Optional[int] = None
    flash_probability: float = 0.0

    def nominal(self) -> Resolution:
        return resolution(self.resolution_name)


#: Proxy plane height used for functional encoding; width follows 16:9.
DEFAULT_PROXY_HEIGHT = 72


@dataclass
class _Sprite:
    texture: np.ndarray
    x: float
    y: float
    dx: float
    dy: float


class SyntheticVideo:
    """Deterministic frame source for a :class:`ContentSpec`."""

    def __init__(
        self,
        spec: ContentSpec,
        seed: SeedLike = 0,
        proxy_height: int = DEFAULT_PROXY_HEIGHT,
    ):
        self.spec = spec
        self.proxy_height = int(proxy_height)
        self.proxy_width = int(round(self.proxy_height * 16 / 9))
        self._rng = make_rng(seed)
        self._background = self._make_background()
        self._sprites = [self._make_sprite() for _ in range(spec.sprites)]
        self._frame_index = 0

    def _make_background(self) -> np.ndarray:
        height, width = self.proxy_height, self.proxy_width
        yy, xx = np.mgrid[0:height, 0:width].astype(np.float32)
        gradient = 110.0 + 60.0 * (xx / width) + 30.0 * (yy / height)
        texture = self._rng.normal(0.0, 1.0, size=(height, width)).astype(np.float32)
        # Smooth the texture so "detail" is mid-frequency, not pure noise.
        texture = _blur3(texture)
        return gradient + 40.0 * self.spec.detail * texture

    def _make_sprite(self) -> _Sprite:
        side = max(6, self.proxy_height // 6)
        texture = self._rng.normal(0.0, 1.0, size=(side, side)).astype(np.float32)
        texture = _blur3(texture) * 55.0 * max(self.spec.detail, 0.2)
        angle = self._rng.uniform(0, 2 * np.pi)
        speed = self.spec.motion * self._rng.uniform(0.5, 1.5)
        return _Sprite(
            texture=texture,
            x=float(self._rng.uniform(0, self.proxy_width - side)),
            y=float(self._rng.uniform(0, self.proxy_height - side)),
            dx=float(np.cos(angle) * speed),
            dy=float(np.sin(angle) * speed),
        )

    def _advance_sprites(self) -> None:
        for sprite in self._sprites:
            sprite.x += sprite.dx
            sprite.y += sprite.dy
            side = sprite.texture.shape[0]
            if sprite.x < 0 or sprite.x > self.proxy_width - side:
                sprite.dx = -sprite.dx
                sprite.x = float(np.clip(sprite.x, 0, self.proxy_width - side))
            if sprite.y < 0 or sprite.y > self.proxy_height - side:
                sprite.dy = -sprite.dy
                sprite.y = float(np.clip(sprite.y, 0, self.proxy_height - side))

    def next_frame(self) -> Frame:
        spec = self.spec
        if (
            spec.scene_change_every
            and self._frame_index > 0
            and self._frame_index % spec.scene_change_every == 0
        ):
            self._background = self._make_background()
            self._sprites = [self._make_sprite() for _ in range(spec.sprites)]

        plane = self._background.copy()
        for sprite in self._sprites:
            _composite(plane, sprite)
        self._advance_sprites()

        if spec.flash_probability > 0 and self._rng.random() < spec.flash_probability:
            plane = plane + 45.0
        if spec.noise > 0:
            plane = plane + self._rng.normal(
                0.0, spec.noise, size=plane.shape
            ).astype(np.float32)

        frame = Frame(
            np.clip(plane, 0.0, 255.0).astype(np.float32),
            nominal=spec.nominal(),
            index=self._frame_index,
        )
        self._frame_index += 1
        return frame

    def frames(self, count: int) -> List[Frame]:
        return [self.next_frame() for _ in range(count)]

    def video(self, count: int) -> RawVideo:
        return RawVideo(
            self.frames(count), self.spec.nominal(), self.spec.fps, name=self.spec.name
        )


def _composite(plane: np.ndarray, sprite: _Sprite) -> None:
    """Add a sprite with bilinear sub-pixel placement (keeps motion smooth)."""
    side = sprite.texture.shape[0]
    x0, y0 = int(np.floor(sprite.x)), int(np.floor(sprite.y))
    fx, fy = sprite.x - x0, sprite.y - y0
    for oy, wy in ((0, 1 - fy), (1, fy)):
        for ox, wx in ((0, 1 - fx), (1, fx)):
            weight = wx * wy
            if weight <= 0:
                continue
            ys, xs = y0 + oy, x0 + ox
            ye, xe = min(ys + side, plane.shape[0]), min(xs + side, plane.shape[1])
            if ye <= ys or xe <= xs:
                continue
            plane[ys:ye, xs:xe] += weight * sprite.texture[: ye - ys, : xe - xs]


def _blur3(plane: np.ndarray) -> np.ndarray:
    """Cheap 3x3 box blur via shifted adds (no scipy dependency needed)."""
    padded = np.pad(plane, 1, mode="edge")
    out = np.zeros_like(plane)
    for dy in range(3):
        for dx in range(3):
            out += padded[dy : dy + plane.shape[0], dx : dx + plane.shape[1]]
    return out / 9.0
