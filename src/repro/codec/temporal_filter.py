"""Temporal filtering for alternate reference frames (Section 3.2).

The VCU's temporal filter aligns blocks from three frames and emits
low-temporal-noise filtered blocks, used to build VP9's non-displayable
synthetic alternate reference frames.  Noise is one of our content axes,
so the filter genuinely improves prediction on noisy titles.

The hardware applies the filter iteratively to cover more than 3 frames;
``temporal_filter`` exposes the same knob via ``iterations``.
"""

from __future__ import annotations

from typing import List, Sequence

import numpy as np

from repro.codec.prediction import motion_search

#: Centre-weighted 3-tap kernel, matching the filter's emphasis on the
#: frame being denoised.
_WEIGHTS = (0.25, 0.5, 0.25)


def temporal_filter(
    frames: Sequence[np.ndarray],
    block_size: int = 16,
    search_range: int = 4,
    iterations: int = 1,
) -> np.ndarray:
    """Motion-aligned temporal filter of 3 consecutive planes.

    ``frames`` must hold exactly three planes (prev, centre, next); the
    result is a denoised version of the centre plane.  ``iterations`` > 1
    re-applies the filter against the previous result, the iterative
    quality/speed trade-off described in the paper.
    """
    if len(frames) != 3:
        raise ValueError(f"temporal filter takes exactly 3 frames, got {len(frames)}")
    prev_plane, centre, next_plane = (f.astype(np.float64) for f in frames)
    if not (prev_plane.shape == centre.shape == next_plane.shape):
        raise ValueError("frames must share one shape")
    if iterations < 1:
        raise ValueError("iterations must be >= 1")

    result = centre
    for _ in range(iterations):
        result = _filter_once(prev_plane, result, next_plane, block_size, search_range)
    return result.astype(np.float32)


def _filter_once(
    prev_plane: np.ndarray,
    centre: np.ndarray,
    next_plane: np.ndarray,
    block_size: int,
    search_range: int,
) -> np.ndarray:
    height, width = centre.shape
    output = np.empty_like(centre)
    for y in range(0, height, block_size):
        for x in range(0, width, block_size):
            size_y = min(block_size, height - y)
            size_x = min(block_size, width - x)
            if size_y != size_x:
                # Ragged edge: fall back to a co-located average.
                block = centre[y : y + size_y, x : x + size_x]
                aligned = [
                    prev_plane[y : y + size_y, x : x + size_x],
                    block,
                    next_plane[y : y + size_y, x : x + size_x],
                ]
            else:
                block = centre[y : y + size_y, x : x + size_x]
                aligned = [
                    _aligned_block(block, prev_plane, y, x, size_y, search_range),
                    block,
                    _aligned_block(block, next_plane, y, x, size_y, search_range),
                ]
            output[y : y + size_y, x : x + size_x] = sum(
                w * a for w, a in zip(_WEIGHTS, aligned)
            )
    return output


def _aligned_block(
    block: np.ndarray,
    neighbour: np.ndarray,
    y: int,
    x: int,
    size: int,
    search_range: int,
) -> np.ndarray:
    _, prediction, _ = motion_search(
        block, neighbour, y, x, size, search_range=search_range, half_pel=False
    )
    return prediction


def build_altref(recent_recons: Sequence[np.ndarray], iterations: int = 1) -> np.ndarray:
    """Build a synthetic alternate reference from the last 3 reconstructions."""
    if len(recent_recons) < 3:
        raise ValueError("altref needs at least 3 reconstructed frames")
    return temporal_filter(list(recent_recons[-3:]), iterations=iterations)
