"""Intra prediction and motion-compensated inter prediction.

Intra modes follow the classic set (DC / vertical / horizontal / TM-style
gradient) predicting from already-reconstructed neighbours.  Inter
prediction runs a diamond motion search per reference frame, optionally
refined to half-pel with bilinear interpolation -- the software profiles'
bounded search versus the VCU's wider exhaustive window is expressed
through the profile's ``search_range``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

import numpy as np

INTRA_MODES = ("dc", "vertical", "horizontal", "tm")


@dataclass(frozen=True)
class MotionVector:
    """A motion vector in (half-)pel units on the proxy plane."""

    dx: float
    dy: float

    def __iter__(self):
        return iter((self.dx, self.dy))


def intra_predict(
    recon: np.ndarray, y: int, x: int, size: int, mode: str
) -> np.ndarray:
    """Predict a block from reconstructed top/left neighbours.

    Out-of-frame neighbours fall back to the mid-grey 128 convention.
    """
    top: Optional[np.ndarray] = recon[y - 1, x : x + size] if y > 0 else None
    left: Optional[np.ndarray] = recon[y : y + size, x - 1] if x > 0 else None

    if mode == "dc":
        values = []
        if top is not None:
            values.append(top)
        if left is not None:
            values.append(left)
        mean = float(np.mean(np.concatenate(values))) if values else 128.0
        return np.full((size, size), mean, dtype=np.float64)
    if mode == "vertical":
        row = top if top is not None else np.full(size, 128.0)
        return np.tile(row.astype(np.float64), (size, 1))
    if mode == "horizontal":
        col = left if left is not None else np.full(size, 128.0)
        return np.tile(col.astype(np.float64).reshape(-1, 1), (1, size))
    if mode == "tm":
        row = top if top is not None else np.full(size, 128.0)
        col = left if left is not None else np.full(size, 128.0)
        corner = float(recon[y - 1, x - 1]) if (y > 0 and x > 0) else 128.0
        prediction = (
            row.astype(np.float64).reshape(1, -1)
            + col.astype(np.float64).reshape(-1, 1)
            - corner
        )
        return np.clip(prediction, 0.0, 255.0)
    raise ValueError(f"unknown intra mode {mode!r}")


def best_intra(
    source: np.ndarray,
    recon: np.ndarray,
    y: int,
    x: int,
    size: int,
    candidate_rounds: int,
) -> Tuple[str, np.ndarray, float]:
    """Pick the intra mode with lowest SAD; returns (mode, prediction, sad).

    ``candidate_rounds`` bounds how many modes are examined, modelling the
    VCU pipeline's fixed candidate budget (round 1: dc+vertical+horizontal;
    round 2 adds tm).
    """
    modes = INTRA_MODES[: 3 + max(0, candidate_rounds - 1)]
    best: Tuple[str, np.ndarray, float] = ("dc", None, float("inf"))  # type: ignore
    for mode in modes:
        prediction = intra_predict(recon, y, x, size, mode)
        sad = float(np.sum(np.abs(source - prediction)))
        if sad < best[2]:
            best = (mode, prediction, sad)
    return best


def sample_block(
    reference: np.ndarray, y: float, x: float, size: int
) -> Optional[np.ndarray]:
    """Fetch a (possibly half-pel) block from a reference; None if outside.

    Integer positions return a *view* into the reference for speed; callers
    must not mutate the result.
    """
    if y < 0 or x < 0 or y + size > reference.shape[0] or x + size > reference.shape[1]:
        return None
    yi, xi = int(y), int(x)
    fy, fx = y - yi, x - xi
    if fy == 0 and fx == 0:
        return reference[yi : yi + size, xi : xi + size]
    if yi + size + 1 > reference.shape[0] or xi + size + 1 > reference.shape[1]:
        return None
    a = reference[yi : yi + size, xi : xi + size]
    b = reference[yi : yi + size, xi + 1 : xi + size + 1]
    c = reference[yi + 1 : yi + size + 1, xi : xi + size]
    d = reference[yi + 1 : yi + size + 1, xi + 1 : xi + size + 1]
    return (
        a * ((1 - fy) * (1 - fx)) + b * ((1 - fy) * fx)
        + c * (fy * (1 - fx)) + d * (fy * fx)
    )


_LARGE_DIAMOND = ((0, -2), (0, 2), (-2, 0), (2, 0), (-1, -1), (-1, 1), (1, -1), (1, 1))
_SMALL_DIAMOND = ((0, -1), (0, 1), (-1, 0), (1, 0))
_HALF_PEL = (
    (-0.5, -0.5), (-0.5, 0.0), (-0.5, 0.5), (0.0, -0.5),
    (0.0, 0.5), (0.5, -0.5), (0.5, 0.0), (0.5, 0.5),
)


def _sad(source: np.ndarray, candidate: Optional[np.ndarray]) -> float:
    if candidate is None:
        return float("inf")
    return float(np.abs(source - candidate).sum())


def motion_search(
    source: np.ndarray,
    reference: np.ndarray,
    y: int,
    x: int,
    size: int,
    search_range: int,
    half_pel: bool,
    predicted_mv: MotionVector = MotionVector(0.0, 0.0),
) -> Tuple[MotionVector, np.ndarray, float]:
    """Diamond search around (0,0) and the predicted MV; optional half-pel.

    Returns ``(mv, prediction_block, sad)``.  The prediction block is
    always valid (the zero MV candidate is in-frame by construction).
    """
    starts = {(0, 0), (round(predicted_mv.dy), round(predicted_mv.dx))}
    best_mv = (0, 0)
    best_sad = _sad(source, sample_block(reference, y, x, size))
    for sy, sx in starts:
        if abs(sy) > search_range or abs(sx) > search_range:
            continue
        sad = _sad(source, sample_block(reference, y + sy, x + sx, size))
        if sad < best_sad:
            best_sad, best_mv = sad, (sy, sx)

    # Large diamond until the centre stays best, then one small-diamond pass.
    improved = True
    while improved:
        improved = False
        for dy, dx in _LARGE_DIAMOND:
            cy, cx = best_mv[0] + dy, best_mv[1] + dx
            if abs(cy) > search_range or abs(cx) > search_range:
                continue
            sad = _sad(source, sample_block(reference, y + cy, x + cx, size))
            if sad < best_sad:
                best_sad, best_mv, improved = sad, (cy, cx), True
    for dy, dx in _SMALL_DIAMOND:
        cy, cx = best_mv[0] + dy, best_mv[1] + dx
        if abs(cy) > search_range or abs(cx) > search_range:
            continue
        sad = _sad(source, sample_block(reference, y + cy, x + cx, size))
        if sad < best_sad:
            best_sad, best_mv = sad, (cy, cx)

    mv_y, mv_x = float(best_mv[0]), float(best_mv[1])
    if half_pel:
        for dy, dx in _HALF_PEL:
            sad = _sad(
                source, sample_block(reference, y + mv_y + dy, x + mv_x + dx, size)
            )
            if sad < best_sad:
                best_sad, mv_y_new, mv_x_new = sad, mv_y + dy, mv_x + dx
                mv_y, mv_x = mv_y_new, mv_x_new

    prediction = sample_block(reference, y + mv_y, x + mv_x, size)
    if prediction is None:  # pragma: no cover - zero MV is always valid
        prediction = sample_block(reference, y, x, size)
        mv_y = mv_x = 0.0
        best_sad = _sad(source, prediction)
    return MotionVector(dx=mv_x, dy=mv_y), prediction, best_sad


#: Mean absolute error per pixel below which further references are not
#: searched -- a "good enough" early exit real encoders also take.
GOOD_ENOUGH_SAD_PER_PIXEL = 1.0


def best_inter(
    source: np.ndarray,
    references: Sequence[np.ndarray],
    y: int,
    x: int,
    size: int,
    search_range: int,
    half_pel: bool,
    predicted_mv: MotionVector = MotionVector(0.0, 0.0),
) -> Tuple[int, MotionVector, np.ndarray, float]:
    """Search references in order; returns (ref_index, mv, prediction, sad).

    Stops early once a reference predicts to within
    :data:`GOOD_ENOUGH_SAD_PER_PIXEL` mean error.
    """
    if not references:
        raise ValueError("best_inter needs at least one reference")
    good_enough = GOOD_ENOUGH_SAD_PER_PIXEL * size * size
    best: Tuple[int, MotionVector, np.ndarray, float] = (
        -1, MotionVector(0.0, 0.0), None, float("inf"),  # type: ignore
    )
    for index, reference in enumerate(references):
        mv, prediction, sad = motion_search(
            source, reference, y, x, size, search_range, half_pel, predicted_mv
        )
        if sad < best[3]:
            best = (index, mv, prediction, sad)
        if best[3] <= good_enough:
            break
    return best
