"""Intra prediction and motion-compensated inter prediction.

Intra modes follow the classic set (DC / vertical / horizontal / TM-style
gradient) predicting from already-reconstructed neighbours.  Inter
prediction runs a diamond motion search per reference frame, optionally
refined to half-pel with bilinear interpolation -- the software profiles'
bounded search versus the VCU's wider exhaustive window is expressed
through the profile's ``search_range``.

Hot-path structure: the public :func:`motion_search` and
:func:`best_intra` evaluate candidate sets as **batched SADs** (one
``np.abs(stack - source).sum(axis=(1, 2))`` per round) over views gathered
through :class:`SearchPlanes` -- a per-reference cache of sliding-window
views and precomputed half-pel interpolation planes built lazily once per
frame.  Both are bit-exact against the pre-batching scalar walk, preserved
here as ``_motion_search_reference`` / ``_best_intra_reference`` for the
parity suite and the perf-regression harness: the batched walk replays the
scalar first-improvement order exactly (a round's remaining candidates
re-batch around the new centre whenever the centre moves).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np
from numpy.lib.stride_tricks import sliding_window_view

INTRA_MODES = ("dc", "vertical", "horizontal", "tm")


@dataclass(frozen=True)
class MotionVector:
    """A motion vector in (half-)pel units on the proxy plane."""

    dx: float
    dy: float

    def __iter__(self):
        return iter((self.dx, self.dy))


def intra_predict(
    recon: np.ndarray, y: int, x: int, size: int, mode: str
) -> np.ndarray:
    """Predict a block from reconstructed top/left neighbours.

    Out-of-frame neighbours fall back to the mid-grey 128 convention.
    """
    top: Optional[np.ndarray] = recon[y - 1, x : x + size] if y > 0 else None
    left: Optional[np.ndarray] = recon[y : y + size, x - 1] if x > 0 else None

    if mode == "dc":
        values = []
        if top is not None:
            values.append(top)
        if left is not None:
            values.append(left)
        mean = float(np.mean(np.concatenate(values))) if values else 128.0
        return np.full((size, size), mean, dtype=np.float64)
    if mode == "vertical":
        row = top if top is not None else np.full(size, 128.0)
        return np.tile(row.astype(np.float64), (size, 1))
    if mode == "horizontal":
        col = left if left is not None else np.full(size, 128.0)
        return np.tile(col.astype(np.float64).reshape(-1, 1), (1, size))
    if mode == "tm":
        row = top if top is not None else np.full(size, 128.0)
        col = left if left is not None else np.full(size, 128.0)
        corner = float(recon[y - 1, x - 1]) if (y > 0 and x > 0) else 128.0
        prediction = (
            row.astype(np.float64).reshape(1, -1)
            + col.astype(np.float64).reshape(-1, 1)
            - corner
        )
        return np.clip(prediction, 0.0, 255.0)
    raise ValueError(f"unknown intra mode {mode!r}")


def _best_intra_reference(
    source: np.ndarray,
    recon: np.ndarray,
    y: int,
    x: int,
    size: int,
    candidate_rounds: int,
) -> Tuple[str, np.ndarray, float]:
    """Pre-batching scalar mode loop (parity/benchmark reference)."""
    modes = INTRA_MODES[: 3 + max(0, candidate_rounds - 1)]
    best: Tuple[str, np.ndarray, float] = ("dc", None, float("inf"))  # type: ignore
    for mode in modes:
        prediction = intra_predict(recon, y, x, size, mode)
        sad = float(np.sum(np.abs(source - prediction)))
        if sad < best[2]:
            best = (mode, prediction, sad)
    return best


def best_intra(
    source: np.ndarray,
    recon: np.ndarray,
    y: int,
    x: int,
    size: int,
    candidate_rounds: int,
) -> Tuple[str, np.ndarray, float]:
    """Pick the intra mode with lowest SAD; returns (mode, prediction, sad).

    ``candidate_rounds`` bounds how many modes are examined, modelling the
    VCU pipeline's fixed candidate budget (round 1: dc+vertical+horizontal;
    round 2 adds tm).  The candidate set is scored as one batched SAD;
    ``np.argmin``'s first-occurrence tie-breaking matches the scalar
    loop's keep-first-winner rule exactly.
    """
    modes = INTRA_MODES[: 3 + max(0, candidate_rounds - 1)]
    top = recon[y - 1, x : x + size] if y > 0 else None
    left = recon[y : y + size, x - 1] if x > 0 else None
    buf = np.empty((len(modes), size, size), dtype=np.float64)
    # Each row of ``buf`` holds exactly the array :func:`intra_predict`
    # builds for that mode (broadcast assignment == tile, clip(out=) ==
    # clip), just without the per-mode allocations.
    if top is not None and left is not None:
        # add.reduce/size is precisely what np.mean does internally.
        neighbours = np.concatenate((top, left))
        mean = float(np.add.reduce(neighbours) / neighbours.size)
    elif top is not None:
        mean = float(np.mean(top))
    elif left is not None:
        mean = float(np.mean(left))
    else:
        mean = 128.0
    buf[0] = mean
    buf[1] = top if top is not None else 128.0
    if left is not None:
        buf[2] = left[:, np.newaxis]
    else:
        buf[2] = 128.0
    if len(modes) > 3:
        row = top if top is not None else np.full(size, 128.0)
        col = left if left is not None else np.full(size, 128.0)
        corner = float(recon[y - 1, x - 1]) if (y > 0 and x > 0) else 128.0
        (row[np.newaxis, :] + col[:, np.newaxis] - corner).clip(
            0.0, 255.0, out=buf[3]
        )
    delta = buf - source
    np.abs(delta, out=delta)
    sads = delta.sum(axis=(1, 2)).tolist()
    best = 0
    best_sad = sads[0]
    for index in range(1, len(sads)):
        if sads[index] < best_sad:  # strict: first minimum wins, as argmin
            best, best_sad = index, sads[index]
    return modes[best], buf[best], best_sad


def sample_block(
    reference: np.ndarray, y: float, x: float, size: int
) -> Optional[np.ndarray]:
    """Fetch a (possibly half-pel) block from a reference; None if outside.

    Integer positions return a *view* into the reference for speed; callers
    must not mutate the result.
    """
    if y < 0 or x < 0 or y + size > reference.shape[0] or x + size > reference.shape[1]:
        return None
    yi, xi = int(y), int(x)
    fy, fx = y - yi, x - xi
    if fy == 0 and fx == 0:
        return reference[yi : yi + size, xi : xi + size]
    if yi + size + 1 > reference.shape[0] or xi + size + 1 > reference.shape[1]:
        return None
    a = reference[yi : yi + size, xi : xi + size]
    b = reference[yi : yi + size, xi + 1 : xi + size + 1]
    c = reference[yi + 1 : yi + size + 1, xi : xi + size]
    d = reference[yi + 1 : yi + size + 1, xi + 1 : xi + size + 1]
    return (
        a * ((1 - fy) * (1 - fx)) + b * ((1 - fy) * fx)
        + c * (fy * (1 - fx)) + d * (fy * fx)
    )


class SearchPlanes:
    """Per-reference motion-search acceleration structures, built lazily.

    Two caches, both computed at most once per reference per frame and
    reused by every block and every candidate:

    * sliding-window views of the integer-pel plane per block size, so a
      diamond round's candidate set gathers into an ``(k, S, S)`` stack
      with one fancy-index instead of ``k`` python-level slices;
    * the three half-pel interpolation planes (``fy``/``fx`` in
      ``{0, 0.5}``), replacing per-candidate bilinear interpolation.  Each
      plane pixel is computed with the exact expression
      :func:`sample_block` uses, so samples are bit-identical; planes are
      frozen (non-writeable) because they are shared across blocks.
    """

    __slots__ = (
        "reference", "_windows", "_half_planes", "_half_windows",
        "_stacked_half", "_stacked_half_windows",
    )

    def __init__(self, reference: np.ndarray):
        self.reference = reference
        self._windows: Dict[int, np.ndarray] = {}
        self._half_planes: Dict[Tuple[float, float], np.ndarray] = {}
        self._half_windows: Dict[Tuple[float, float, int], np.ndarray] = {}
        self._stacked_half: Optional[np.ndarray] = None
        self._stacked_half_windows: Dict[int, np.ndarray] = {}

    def windows(self, size: int) -> np.ndarray:
        """Sliding ``(size, size)`` windows over the integer-pel plane."""
        got = self._windows.get(size)
        if got is None:
            got = sliding_window_view(self.reference, (size, size))
            self._windows[size] = got
        return got

    def half_plane(self, fy: float, fx: float) -> np.ndarray:
        """The ``(H-1, W-1)`` plane interpolated at fractional ``(fy, fx)``."""
        got = self._half_planes.get((fy, fx))
        if got is None:
            ref = self.reference
            a = ref[:-1, :-1]
            b = ref[:-1, 1:]
            c = ref[1:, :-1]
            d = ref[1:, 1:]
            # Exactly sample_block's bilinear expression, per pixel.
            got = (
                a * ((1 - fy) * (1 - fx)) + b * ((1 - fy) * fx)
                + c * (fy * (1 - fx)) + d * (fy * fx)
            )
            got.flags.writeable = False
            self._half_planes[(fy, fx)] = got
        return got

    def half_windows(self, fy: float, fx: float, size: int) -> np.ndarray:
        got = self._half_windows.get((fy, fx, size))
        if got is None:
            got = sliding_window_view(self.half_plane(fy, fx), (size, size))
            self._half_windows[(fy, fx, size)] = got
        return got

    def stacked_half_windows(self, size: int) -> np.ndarray:
        """Sliding windows over all 3 half-pel planes stacked on axis 0.

        Shape ``(3, H-size, W-size, size, size)`` with plane order
        ``(0, 0.5)``, ``(0.5, 0)``, ``(0.5, 0.5)`` -- lets half-pel
        refinement gather its 8 candidates with one fancy-index.
        """
        got = self._stacked_half_windows.get(size)
        if got is None:
            if self._stacked_half is None:
                self._stacked_half = np.stack(
                    (
                        self.half_plane(0.0, 0.5),
                        self.half_plane(0.5, 0.0),
                        self.half_plane(0.5, 0.5),
                    )
                )
            got = sliding_window_view(
                self._stacked_half, (size, size), axis=(1, 2)
            )
            self._stacked_half_windows[size] = got
        return got

    def sample(self, y: float, x: float, size: int) -> Optional[np.ndarray]:
        """Bit-identical to ``sample_block(self.reference, y, x, size)``."""
        reference = self.reference
        if (
            y < 0 or x < 0
            or y + size > reference.shape[0] or x + size > reference.shape[1]
        ):
            return None
        yi, xi = int(y), int(x)
        fy, fx = y - yi, x - xi
        if fy == 0 and fx == 0:
            return reference[yi : yi + size, xi : xi + size]
        if (
            yi + size + 1 > reference.shape[0]
            or xi + size + 1 > reference.shape[1]
        ):
            return None
        return self.half_plane(fy, fx)[yi : yi + size, xi : xi + size]


_LARGE_DIAMOND = ((0, -2), (0, 2), (-2, 0), (2, 0), (-1, -1), (-1, 1), (1, -1), (1, 1))
_SMALL_DIAMOND = ((0, -1), (0, 1), (-1, 0), (1, 0))
_HALF_PEL = (
    (-0.5, -0.5), (-0.5, 0.0), (-0.5, 0.5), (0.0, -0.5),
    (0.0, 0.5), (0.5, -0.5), (0.5, 0.0), (0.5, 0.5),
)
#: Per-``_HALF_PEL``-offset gather indices into
#: :meth:`SearchPlanes.stacked_half_windows` for an interior integer-pel
#: centre ``(Y, X)``: a -0.5 offset floors to the previous integer with
#: fraction 0.5, so its window starts one row/column earlier.
_HP_PLANE = np.array([2, 1, 2, 0, 0, 2, 1, 2])
_HP_ROW = np.array([-1, -1, -1, 0, 0, 0, 0, 0])
_HP_COL = np.array([-1, 0, 0, -1, 0, -1, 0, 0])
#: Same mapping as plain python tuples, plus the (fy, fx) fraction per
#: plane id -- used to slice the winning candidate back out after the
#: batched scoring pass (the scored stack was consumed in place).
_HP_ROW_T = (-1, -1, -1, 0, 0, 0, 0, 0)
_HP_COL_T = (-1, 0, 0, -1, 0, -1, 0, 0)
_HP_FRAC_T = (
    (0.5, 0.5), (0.5, 0.0), (0.5, 0.5), (0.0, 0.5),
    (0.0, 0.5), (0.5, 0.5), (0.5, 0.0), (0.5, 0.5),
)

_INF = float("inf")


def _sad(source: np.ndarray, candidate: Optional[np.ndarray]) -> float:
    if candidate is None:
        return float("inf")
    return float(np.abs(source - candidate).sum())


def motion_search(
    source: np.ndarray,
    reference: np.ndarray,
    y: int,
    x: int,
    size: int,
    search_range: int,
    half_pel: bool,
    predicted_mv: MotionVector = MotionVector(0.0, 0.0),
    planes: Optional[SearchPlanes] = None,
) -> Tuple[MotionVector, np.ndarray, float]:
    """Diamond search around (0,0) and the predicted MV; optional half-pel.

    Returns ``(mv, prediction_block, sad)``.  The prediction block is
    always valid (the zero MV candidate is in-frame by construction).

    A candidate's SAD is a pure function of its position, so the whole
    in-range, in-frame search window is scored as ONE batched pass (a
    contiguous gather of sliding windows reduced over the trailing axes,
    bit-identical to the per-candidate sums) and the diamond walk then
    runs as pure-python lookups into that map -- replaying the scalar
    reference's first-improvement candidate order exactly.  Pass
    ``planes`` (a :class:`SearchPlanes` for this reference) to share the
    window views and half-pel planes across every block of a frame.
    """
    if planes is None:
        planes = SearchPlanes(reference)
    windows = planes.windows(size)
    lo_cy = max(-search_range, -y)
    hi_cy = min(search_range, windows.shape[0] - 1 - y)
    lo_cx = max(-search_range, -x)
    hi_cx = min(search_range, windows.shape[1] - 1 - x)
    # Batched map over the convergence box: both start candidates plus a
    # diamond-step margin, clipped to the valid (in-range, in-frame)
    # rectangle.  Walks rarely leave it; escapes fall back to memoized
    # single-candidate SADs, so coverage is a perf knob, never semantics.
    py, px = round(predicted_mv.dy), round(predicted_mv.dx)
    margin = 3
    box_lo_cy = max(lo_cy, min(0, py) - margin)
    box_hi_cy = min(hi_cy, max(0, py) + margin)
    box_lo_cx = max(lo_cx, min(0, px) - margin)
    box_hi_cx = min(hi_cx, max(0, px) + margin)
    gathered = np.ascontiguousarray(
        windows[
            y + box_lo_cy : y + box_hi_cy + 1,
            x + box_lo_cx : x + box_hi_cx + 1,
        ]
    )
    # In-place |gathered - source| (gathered is our private copy), reduced
    # to python floats so the walk below never touches numpy scalars.
    np.subtract(gathered, source, out=gathered)
    np.abs(gathered, out=gathered)
    sad_map = gathered.sum(axis=(2, 3)).tolist()
    overflow: Dict[Tuple[int, int], float] = {}

    def cold(cy: int, cx: int) -> float:
        """SAD of a candidate outside the batched box (memoized).

        ``windows[r, c]`` is the same strided view a direct reference
        slice yields, so this is bit-identical to the scalar reference's.
        """
        sad = overflow.get((cy, cx))
        if sad is None:
            sad = float(np.abs(source - windows[y + cy, x + cx]).sum())
            overflow[(cy, cx)] = sad
        return sad

    best_y = best_x = 0
    best_sad = sad_map[-box_lo_cy][-box_lo_cx]
    # Start-candidate scan: the (0, 0) member of the reference's start set
    # can never strictly beat itself, so only the predicted start matters.
    if (py != 0 or px != 0) and abs(py) <= search_range and abs(px) <= search_range:
        if box_lo_cy <= py <= box_hi_cy and box_lo_cx <= px <= box_hi_cx:
            sad = sad_map[py - box_lo_cy][px - box_lo_cx]
        elif lo_cy <= py <= hi_cy and lo_cx <= px <= hi_cx:
            sad = cold(py, px)
        else:
            sad = _INF
        if sad < best_sad:
            best_sad, best_y, best_x = sad, py, px

    improved = True
    while improved:
        improved = False
        for dy, dx in _LARGE_DIAMOND:
            cy = best_y + dy
            cx = best_x + dx
            if box_lo_cy <= cy <= box_hi_cy and box_lo_cx <= cx <= box_hi_cx:
                sad = sad_map[cy - box_lo_cy][cx - box_lo_cx]
            elif lo_cy <= cy <= hi_cy and lo_cx <= cx <= hi_cx:
                sad = cold(cy, cx)
            else:
                continue
            if sad < best_sad:
                best_sad, best_y, best_x = sad, cy, cx
                improved = True
    for dy, dx in _SMALL_DIAMOND:
        cy = best_y + dy
        cx = best_x + dx
        if box_lo_cy <= cy <= box_hi_cy and box_lo_cx <= cx <= box_hi_cx:
            sad = sad_map[cy - box_lo_cy][cx - box_lo_cx]
        elif lo_cy <= cy <= hi_cy and lo_cx <= cx <= hi_cx:
            sad = cold(cy, cx)
        else:
            continue
        if sad < best_sad:
            best_sad, best_y, best_x = sad, cy, cx

    prediction = None
    if half_pel:
        mv_y, mv_x, best_sad, prediction = _half_pel_refine(
            planes, source, y, x, size, (best_y, best_x), best_sad
        )
    else:
        mv_y, mv_x = float(best_y), float(best_x)
    if prediction is None:
        # Integer-pel winner: the window view IS the reference slice
        # sample_block would return (same memory, same values).
        prediction = windows[y + best_y, x + best_x]
    return MotionVector(dx=mv_x, dy=mv_y), prediction, best_sad


def _half_pel_refine(
    planes: SearchPlanes,
    source: np.ndarray,
    y: int,
    x: int,
    size: int,
    best_mv: Tuple[int, int],
    best_sad: float,
) -> Tuple[float, float, float, Optional[np.ndarray]]:
    """Score all 8 half-pel offsets around the fixed integer-pel winner.

    All offsets apply to the integer-pel centre (not a drifting one --
    see the drift-bug note on ``_motion_search_reference``), batched per
    interpolation plane.  First-improvement scan order over ``_HALF_PEL``
    is preserved.  Returns ``(mv_y, mv_x, sad, prediction)`` where
    ``prediction`` is the winning half-pel block view, or ``None`` when
    the integer-pel centre won (the caller already holds that view).
    """
    base_y, base_x = best_mv
    height, width = planes.reference.shape
    Y, X = y + base_y, x + base_x
    winner = -1
    if 1 <= Y <= height - size - 1 and 1 <= X <= width - size - 1:
        # Interior centre: all 8 offsets are valid and their plane/origin
        # mapping is fixed (offset -0.5 floors to the previous integer
        # with fraction 0.5), so one fancy-index gathers all 8 candidate
        # blocks across the stacked half-pel planes.
        stacked = planes.stacked_half_windows(size)[
            _HP_PLANE, _HP_ROW + Y, _HP_COL + X
        ]
        np.subtract(stacked, source, out=stacked)
        np.abs(stacked, out=stacked)
        sads = stacked.sum(axis=(1, 2)).tolist()
        mv_y, mv_x = float(base_y), float(base_x)
        for index, (dy, dx) in enumerate(_HALF_PEL):
            if sads[index] < best_sad:
                best_sad = sads[index]
                mv_y, mv_x = base_y + dy, base_x + dx
                winner = index
        if winner < 0:
            return mv_y, mv_x, best_sad, None
        fy, fx = _HP_FRAC_T[winner]
        yi = Y + _HP_ROW_T[winner]
        xi = X + _HP_COL_T[winner]
        prediction = planes.half_plane(fy, fx)[yi : yi + size, xi : xi + size]
        return mv_y, mv_x, best_sad, prediction

    views: List[np.ndarray] = []
    where: List[int] = []
    for index, (dy, dx) in enumerate(_HALF_PEL):
        pos_y = y + base_y + dy
        pos_x = x + base_x + dx
        if pos_y < 0 or pos_x < 0:
            continue
        yi, xi = int(pos_y), int(pos_x)
        if yi + size + 1 > height or xi + size + 1 > width:
            continue
        fy, fx = pos_y - yi, pos_x - xi
        views.append(planes.half_plane(fy, fx)[yi : yi + size, xi : xi + size])
        where.append(index)
    sads = [_INF] * len(_HALF_PEL)
    candidates: List[Optional[np.ndarray]] = [None] * len(_HALF_PEL)
    if views:
        stacked = np.empty((len(views), size, size), dtype=np.float64)
        for slot, view in enumerate(views):
            stacked[slot] = view
        batch = np.abs(stacked - source).sum(axis=(1, 2)).tolist()
        for slot, index in enumerate(where):
            sads[index] = batch[slot]
            candidates[index] = views[slot]
    mv_y, mv_x = float(base_y), float(base_x)
    for index, (dy, dx) in enumerate(_HALF_PEL):
        if sads[index] < best_sad:
            best_sad = sads[index]
            mv_y, mv_x = base_y + dy, base_x + dx
            winner = index
    if winner < 0:
        return mv_y, mv_x, best_sad, None
    return mv_y, mv_x, best_sad, candidates[winner]


def _motion_search_reference(
    source: np.ndarray,
    reference: np.ndarray,
    y: int,
    x: int,
    size: int,
    search_range: int,
    half_pel: bool,
    predicted_mv: MotionVector = MotionVector(0.0, 0.0),
    planes: Optional[SearchPlanes] = None,
) -> Tuple[MotionVector, np.ndarray, float]:
    """Pre-batching scalar walk (parity/benchmark reference).

    One behavioural fix is shared with the fast path: the original
    half-pel loop mutated ``mv_y, mv_x`` mid-iteration, so later
    ``_HALF_PEL`` offsets were applied to a moving centre instead of the
    integer-pel winner.  Both paths now evaluate all 8 offsets around the
    fixed integer-pel centre.  ``planes`` is accepted for signature
    parity and ignored.
    """
    del planes
    # (0, 0) first, predicted second: with strict-< replacement this is
    # the tie-break order the batched fast path hard-codes, and a fixed
    # tuple keeps the walk order independent of hash seeding.
    predicted = (round(predicted_mv.dy), round(predicted_mv.dx))
    starts = ((0, 0),) if predicted == (0, 0) else ((0, 0), predicted)
    best_mv = (0, 0)
    best_sad = _sad(source, sample_block(reference, y, x, size))
    for sy, sx in starts:
        if abs(sy) > search_range or abs(sx) > search_range:
            continue
        sad = _sad(source, sample_block(reference, y + sy, x + sx, size))
        if sad < best_sad:
            best_sad, best_mv = sad, (sy, sx)

    improved = True
    while improved:
        improved = False
        for dy, dx in _LARGE_DIAMOND:
            cy, cx = best_mv[0] + dy, best_mv[1] + dx
            if abs(cy) > search_range or abs(cx) > search_range:
                continue
            sad = _sad(source, sample_block(reference, y + cy, x + cx, size))
            if sad < best_sad:
                best_sad, best_mv, improved = sad, (cy, cx), True
    for dy, dx in _SMALL_DIAMOND:
        cy, cx = best_mv[0] + dy, best_mv[1] + dx
        if abs(cy) > search_range or abs(cx) > search_range:
            continue
        sad = _sad(source, sample_block(reference, y + cy, x + cx, size))
        if sad < best_sad:
            best_sad, best_mv = sad, (cy, cx)

    mv_y, mv_x = float(best_mv[0]), float(best_mv[1])
    if half_pel:
        base_y, base_x = mv_y, mv_x
        for dy, dx in _HALF_PEL:
            sad = _sad(
                source, sample_block(reference, y + base_y + dy, x + base_x + dx, size)
            )
            if sad < best_sad:
                best_sad, mv_y, mv_x = sad, base_y + dy, base_x + dx

    prediction = sample_block(reference, y + mv_y, x + mv_x, size)
    if prediction is None:  # pragma: no cover - zero MV is always valid
        prediction = sample_block(reference, y, x, size)
        mv_y = mv_x = 0.0
        best_sad = _sad(source, prediction)
    return MotionVector(dx=mv_x, dy=mv_y), prediction, best_sad


#: Mean absolute error per pixel below which further references are not
#: searched -- a "good enough" early exit real encoders also take.
GOOD_ENOUGH_SAD_PER_PIXEL = 1.0


def best_inter(
    source: np.ndarray,
    references: Sequence[np.ndarray],
    y: int,
    x: int,
    size: int,
    search_range: int,
    half_pel: bool,
    predicted_mv: MotionVector = MotionVector(0.0, 0.0),
    planes: Optional[Sequence[SearchPlanes]] = None,
) -> Tuple[int, MotionVector, np.ndarray, float]:
    """Search references in order; returns (ref_index, mv, prediction, sad).

    Stops early once a reference predicts to within
    :data:`GOOD_ENOUGH_SAD_PER_PIXEL` mean error.  ``planes`` optionally
    carries one :class:`SearchPlanes` per reference (same order) so the
    per-frame caches are shared across blocks.
    """
    if not references:
        raise ValueError("best_inter needs at least one reference")
    good_enough = GOOD_ENOUGH_SAD_PER_PIXEL * size * size
    best: Tuple[int, MotionVector, np.ndarray, float] = (
        -1, MotionVector(0.0, 0.0), None, float("inf"),  # type: ignore
    )
    for index, reference in enumerate(references):
        mv, prediction, sad = motion_search(
            source, reference, y, x, size, search_range, half_pel, predicted_mv,
            planes=planes[index] if planes is not None else None,
        )
        if sad < best[3]:
            best = (index, mv, prediction, sad)
        if best[3] <= good_enough:
            break
    return best


def _best_inter_reference(
    source: np.ndarray,
    references: Sequence[np.ndarray],
    y: int,
    x: int,
    size: int,
    search_range: int,
    half_pel: bool,
    predicted_mv: MotionVector = MotionVector(0.0, 0.0),
    planes: Optional[Sequence[SearchPlanes]] = None,
) -> Tuple[int, MotionVector, np.ndarray, float]:
    """Reference-path counterpart of :func:`best_inter` (scalar search)."""
    del planes
    if not references:
        raise ValueError("best_inter needs at least one reference")
    good_enough = GOOD_ENOUGH_SAD_PER_PIXEL * size * size
    best: Tuple[int, MotionVector, np.ndarray, float] = (
        -1, MotionVector(0.0, 0.0), None, float("inf"),  # type: ignore
    )
    for index, reference in enumerate(references):
        mv, prediction, sad = _motion_search_reference(
            source, reference, y, x, size, search_range, half_pel, predicted_mv
        )
        if sad < best[3]:
            best = (index, mv, prediction, sad)
        if best[3] <= good_enough:
            break
    return best
