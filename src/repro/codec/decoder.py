"""The decoder: replays a symbolic bitstream to the encoder's reconstruction.

Decoding mirrors the encoder's state machine exactly -- same reference
management, same prediction, same dequantize + inverse transform -- so the
output must be bit-identical to the encoder-side reconstruction.  The
round-trip property (encode -> decode == encoder recon) is the codec's
core correctness test, echoing how the paper's deterministic cores enable
"golden transcoding task" fault screening (Section 4.4).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

import numpy as np

from repro.codec.encoder import ALTREF_INTERVAL, BlockRecord, EncodedChunk, EncodedFrame
from repro.codec.kernels import batch_dequantize, batch_inverse_dct
from repro.codec.prediction import intra_predict, sample_block
from repro.codec.profiles import EncoderProfile
from repro.codec.temporal_filter import build_altref
from repro.codec.transform import dequantize, inverse_dct, qp_to_step

_MAX_DPB = 3


class Decoder:
    """A stateful decoder for one stream encoded with ``profile``.

    With ``fast`` (the default) every frame's coded residuals are
    dequantized and inverse-transformed up front as one batched kernel
    pass per block size, then the per-record replay only applies
    prediction.  Unlike the encoder -- where intra prediction reads the
    reconstruction of earlier blocks, forcing block-serial transforms --
    a decoded frame's residuals depend only on the bitstream, so the
    whole-frame pass is legal and bit-exact (the round-trip tests pin
    both paths to the encoder recon).
    """

    def __init__(self, profile: EncoderProfile, proxy_shape: tuple, fast: bool = True):
        self.profile = profile
        self.proxy_shape = tuple(proxy_shape)
        self.fast = fast
        self._dpb: List[np.ndarray] = []
        self._altref: Optional[np.ndarray] = None
        self._frame_index = 0

    def references(self) -> List[np.ndarray]:
        refs = list(self._dpb[: self.profile.reference_frames])
        if self.profile.temporal_filter and self._altref is not None:
            refs.append(self._altref)
        return refs

    def decode_frame(self, frame: EncodedFrame) -> np.ndarray:
        recon = np.zeros(self.proxy_shape, dtype=np.float64)
        references = [] if frame.frame_type == "key" else self.references()
        residuals = self._batched_residuals(frame) if self.fast else None
        for record in frame.records:
            self._decode_block(record, recon, references, frame.qp, residuals)
        self._push_reference(recon)
        self._frame_index += 1
        return recon

    @staticmethod
    def _collect_coded(
        records: Sequence[BlockRecord], out: List[BlockRecord]
    ) -> None:
        for record in records:
            if record.mode == "split":
                Decoder._collect_coded(record.split or [], out)
            elif record.mode in ("intra", "inter"):
                out.append(record)

    def _batched_residuals(
        self, frame: EncodedFrame
    ) -> Dict[int, np.ndarray]:
        """Whole-frame residual pass: one batched IDCT per block size."""
        coded: List[BlockRecord] = []
        self._collect_coded(frame.records, coded)
        by_size: Dict[int, List[BlockRecord]] = {}
        for record in coded:
            by_size.setdefault(record.size, []).append(record)
        residuals: Dict[int, np.ndarray] = {}
        for group in by_size.values():
            stack = np.stack([record.levels for record in group])
            batch = batch_inverse_dct(batch_dequantize(stack, frame.qp))
            for index, record in enumerate(group):
                residuals[id(record)] = batch[index]
        return residuals

    def _push_reference(self, recon: np.ndarray) -> None:
        self._dpb.insert(0, recon)
        del self._dpb[_MAX_DPB:]
        if (
            self.profile.temporal_filter
            and len(self._dpb) >= 3
            and self._frame_index % ALTREF_INTERVAL == 0
        ):
            self._altref = build_altref(list(reversed(self._dpb[:3]))).astype(
                np.float64
            )

    def _decode_block(
        self,
        record: BlockRecord,
        recon: np.ndarray,
        references: Sequence[np.ndarray],
        qp: float,
        residuals: Optional[Dict[int, np.ndarray]] = None,
    ) -> None:
        if record.mode == "split":
            for sub in record.split or []:
                self._decode_block(sub, recon, references, qp, residuals)
            return

        y, x, size = record.y, record.x, record.size
        if record.mode == "edge":
            step = qp_to_step(qp)
            block = np.clip(record.dc + record.levels * step, 0.0, 255.0)
            height, width = record.levels.shape
            recon[y : y + height, x : x + width] = block
            return

        if record.mode == "intra":
            prediction = intra_predict(recon, y, x, size, record.intra_mode)
        elif record.mode == "inter":
            reference = references[record.ref_index]
            prediction = sample_block(
                reference, y + record.mv.dy, x + record.mv.dx, size
            )
            if prediction is None:
                raise ValueError(
                    f"motion vector {record.mv} leaves the frame at ({y},{x})"
                )
        else:
            raise ValueError(f"unknown block mode {record.mode!r}")

        if residuals is not None:
            residual = residuals[id(record)]
        else:
            residual = inverse_dct(dequantize(record.levels, qp))
        recon[y : y + size, x : x + size] = np.clip(
            prediction + residual, 0.0, 255.0
        )


def decode_chunk(
    chunk: EncodedChunk, profile: EncoderProfile, fast: bool = True
) -> List[np.ndarray]:
    """Decode every frame of a chunk; returns the reconstruction planes."""
    if not chunk.frames:
        return []
    decoder = Decoder(profile, chunk.frames[0].recon.shape, fast=fast)
    return [decoder.decode_frame(frame) for frame in chunk.frames]
