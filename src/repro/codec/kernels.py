"""Batched codec kernels: frame-level vectorized transform/entropy passes.

Real encoder stacks (VVenC's SIMD toolchain, the VCU's fixed-function
pipeline) win by running block work as full-frame kernel passes instead of
per-block scalar loops.  This module brings that discipline to the
reproduction: same-size blocks are stacked into an ``(n_blocks, S, S)``
array and DCT / quantize / dequantize / IDCT / entropy-cost run as single
vectorized passes.

Every kernel is **bit-exact** against the scalar reference path in
:mod:`repro.codec.transform` and :mod:`repro.codec.entropy` -- same
encoded bits, same PSNRs -- which the parity suite
(``tests/test_codec_kernels.py``) asserts element-for-element.  The
exactness rests on two properties, verified empirically and enforced by
the suite:

* NumPy's stacked ``matmul`` runs the same GEMM per slice as the 2-D
  ``basis @ block @ basis.T`` product, and reductions over the trailing
  axes of a contiguous stack follow the same pairwise tree as the scalar
  per-block sum;
* entropy code lengths are small integers, so their float64 sums are
  exact in any summation order.
"""

from __future__ import annotations

from typing import Tuple

import numpy as np

from repro.codec.entropy import (
    _GOLOMB_LUT,
    _GOLOMB_LUT_SIZE,
    SKIP_BITS,
    exp_golomb_bits,
    zigzag_rank,
)
from repro.codec.transform import dct_matrix, qp_to_step


def _require_stack(blocks: np.ndarray) -> int:
    if blocks.ndim != 3 or blocks.shape[1] != blocks.shape[2]:
        raise ValueError(
            f"expected an (n_blocks, S, S) stack, got shape {blocks.shape}"
        )
    return blocks.shape[1]


def batch_forward_dct(blocks: np.ndarray) -> np.ndarray:
    """2-D DCT of every block in an ``(n, S, S)`` stack in one pass."""
    size = _require_stack(blocks)
    basis = dct_matrix(size)
    return basis @ blocks.astype(np.float64) @ basis.T


def batch_inverse_dct(coefficients: np.ndarray) -> np.ndarray:
    size = _require_stack(coefficients)
    basis = dct_matrix(size)
    return basis.T @ coefficients @ basis


def batch_quantize(coefficients: np.ndarray, qp: float) -> np.ndarray:
    """Uniform dead-zone quantization of a coefficient stack."""
    step = qp_to_step(qp)
    return np.round(coefficients / step).astype(np.int64)


def batch_dequantize(levels: np.ndarray, qp: float) -> np.ndarray:
    return levels.astype(np.float64) * qp_to_step(qp)


def batch_transform_rd(
    residuals: np.ndarray, qp: float
) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Transform, quantize, and reconstruct a stack of residual blocks.

    Returns ``(levels, reconstructed_residuals, distortion_sse)`` with the
    leading axis indexing blocks -- the batched equivalent of calling
    :func:`repro.codec.transform.transform_rd` per block.
    """
    coefficients = batch_forward_dct(residuals)
    levels = batch_quantize(coefficients, qp)
    reconstructed = batch_inverse_dct(batch_dequantize(levels, qp))
    distortions = ((residuals - reconstructed) ** 2).sum(axis=(1, 2))
    return levels, reconstructed, distortions


def batch_block_bits(
    levels: np.ndarray, entropy_efficiency: float = 1.0
) -> np.ndarray:
    """Per-block entropy cost of an ``(n, S, S)`` stack of quantized levels.

    The batched equivalent of :func:`repro.codec.entropy.block_bits`:
    exp-Golomb payload bits plus zig-zag significance signalling, with
    all-zero blocks collapsing to the skip token.
    """
    if not 0 < entropy_efficiency <= 1.5:
        raise ValueError(f"implausible entropy efficiency {entropy_efficiency}")
    size = _require_stack(levels)
    n = levels.shape[0]
    flat = np.abs(levels.reshape(n, size * size))
    if flat.size and int(flat.max()) < _GOLOMB_LUT_SIZE:
        payloads = _GOLOMB_LUT[flat].sum(axis=1)
    else:  # rare huge levels: fall back per block (still exact)
        payloads = np.array(
            [exp_golomb_bits(block) for block in levels], dtype=np.float64
        )
    ranks = zigzag_rank(size)
    # Position (in zig-zag order) of the last nonzero coefficient, +1.
    last = np.where(flat > 0, ranks[np.newaxis, :] + 1, 0).max(axis=1)
    bits = (payloads + last.astype(np.float64)) * entropy_efficiency
    zero = last == 0
    if zero.any():
        bits[zero] = SKIP_BITS * entropy_efficiency
    return bits


def batch_sad(stack: np.ndarray, source: np.ndarray) -> np.ndarray:
    """Sum of absolute differences of every stacked block vs ``source``."""
    _require_stack(stack)
    return np.abs(stack - source).sum(axis=(1, 2))
