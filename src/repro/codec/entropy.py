"""Entropy-coding bit-cost model.

Rather than emit an actual arithmetic-coded bitstream, the encoder counts
bits with a model of one: each quantized level costs its exp-Golomb code
length, trailing zeros in scan order are collapsed into an end-of-block
token, and the whole count is scaled by a per-profile *entropy efficiency*
that captures how close the real entropy coder gets to the source entropy
(CABAC and VP9's adaptive arithmetic coder beat plain exp-Golomb codes).

This keeps bit counts monotone in residual energy and QP -- the property
rate control and RD optimization actually rely on -- while staying fast.
"""

from __future__ import annotations

from functools import lru_cache

import numpy as np

#: Bits to signal a block mode decision (intra direction / inter + MV delta).
MODE_BITS_INTRA = 4.0
MODE_BITS_INTER = 6.0
#: Bits per component of a motion-vector delta magnitude (exp-Golomb-ish).
MV_BITS_PER_UNIT = 1.0
#: Flat cost for an all-zero (skipped) block.
SKIP_BITS = 1.0


def exp_golomb_bits(levels: np.ndarray) -> float:
    """Total exp-Golomb code length for signed integer levels."""
    magnitudes = np.abs(levels.astype(np.int64))
    nonzero = magnitudes[magnitudes > 0]
    if nonzero.size == 0:
        return 0.0
    # Signed exp-Golomb: 2*floor(log2(2|v|)) + 1 bits.
    code_numbers = 2 * nonzero  # sign folded in
    return float(np.sum(2.0 * np.floor(np.log2(code_numbers.astype(np.float64))) + 1.0))


@lru_cache(maxsize=None)
def zigzag_order(size: int) -> np.ndarray:
    """Flat indices of a ``size x size`` block in zig-zag (frequency) order.

    Cached and shared across callers, hence frozen against mutation.
    """
    indices = [(i, j) for i in range(size) for j in range(size)]
    indices.sort(key=lambda ij: (ij[0] + ij[1], ij[0]))
    out = np.array([i * size + j for i, j in indices], dtype=np.int64)
    out.flags.writeable = False
    return out


@lru_cache(maxsize=None)
def zigzag_rank(size: int) -> np.ndarray:
    """``rank[flat_index]`` = position of that coefficient in zig-zag order."""
    order = zigzag_order(size)
    rank = np.empty(size * size, dtype=np.int64)
    rank[order] = np.arange(size * size, dtype=np.int64)
    rank.flags.writeable = False
    return rank


#: Exp-Golomb code lengths for |level| in [0, _GOLOMB_LUT_SIZE): every
#: entry is a small odd integer, so float64 sums of them are exact in any
#: summation order -- the property that lets the fast path below (and the
#: batched kernel in :mod:`repro.codec.kernels`) stay bit-identical to the
#: reference implementation.
_GOLOMB_LUT_SIZE = 4096
_GOLOMB_LUT = np.zeros(_GOLOMB_LUT_SIZE, dtype=np.float64)
_GOLOMB_LUT[1:] = 2.0 * np.floor(
    np.log2(2.0 * np.arange(1, _GOLOMB_LUT_SIZE, dtype=np.float64))
) + 1.0
_GOLOMB_LUT.flags.writeable = False


def _block_bits_reference(levels: np.ndarray, entropy_efficiency: float = 1.0) -> float:
    """Pre-batching scalar implementation, kept as the parity/benchmark
    reference for :func:`block_bits` (identical results, slower)."""
    if not 0 < entropy_efficiency <= 1.5:
        raise ValueError(f"implausible entropy efficiency {entropy_efficiency}")
    magnitudes = np.abs(levels)
    if not np.any(magnitudes):
        return SKIP_BITS * entropy_efficiency
    payload = exp_golomb_bits(levels)
    # Coefficient position signalling: one significance bit per coefficient
    # up to the last nonzero in zig-zag scan order (low frequencies first),
    # approximating zig-zag run coding with an end-of-block token.
    if levels.ndim == 2 and levels.shape[0] == levels.shape[1]:
        scanned = magnitudes.ravel()[zigzag_order(levels.shape[0])]
    else:
        scanned = magnitudes.ravel()
    last = int(np.max(np.nonzero(scanned)[0])) + 1
    significance = float(last)
    return (payload + significance) * entropy_efficiency


def block_bits(levels: np.ndarray, entropy_efficiency: float = 1.0) -> float:
    """Bits to code one quantized block (coefficient payload only).

    Bit-identical to :func:`_block_bits_reference`: code lengths are small
    integers (exactly representable, order-independent sums) and the final
    scale by ``entropy_efficiency`` is the same single multiply.
    """
    if not 0 < entropy_efficiency <= 1.5:
        raise ValueError(f"implausible entropy efficiency {entropy_efficiency}")
    flat = np.abs(levels.reshape(-1))
    peak = int(flat.max())
    if peak == 0:
        return SKIP_BITS * entropy_efficiency
    if peak < _GOLOMB_LUT_SIZE:
        # LUT[0] == 0.0, so summing over every coefficient (zeros included)
        # equals the reference's sum over the nonzero ones exactly.
        payload = float(_GOLOMB_LUT[flat].sum())
    else:
        payload = exp_golomb_bits(levels)
    if levels.ndim == 2 and levels.shape[0] == levels.shape[1]:
        # Zero coefficients contribute rank 0, so the masked max is the
        # highest zig-zag rank among the nonzero ones (peak > 0 here).
        ranks = zigzag_rank(levels.shape[0])
        last = int(((flat != 0) * ranks).max()) + 1
    else:
        last = int(np.flatnonzero(flat).max()) + 1
    return (payload + float(last)) * entropy_efficiency


def mv_bits(dx: float, dy: float) -> float:
    """Bits to code a motion vector delta."""
    return MV_BITS_PER_UNIT * (abs(dx) + abs(dy)) + 2.0
