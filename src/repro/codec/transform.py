"""Block transform and quantization.

A separable 2-D DCT-II (orthonormal) implemented with cached basis
matrices, plus the H.264-style quantizer-parameter ladder where the
quantization step doubles every 6 QP.
"""

from __future__ import annotations

from functools import lru_cache
from typing import Tuple

import numpy as np

MIN_QP = 0
MAX_QP = 51


@lru_cache(maxsize=None)
def dct_matrix(size: int) -> np.ndarray:
    """Orthonormal DCT-II basis matrix of the given size.

    The returned array is shared by every caller for the lifetime of the
    process (``lru_cache``), so it is frozen: a caller mutating it would
    silently corrupt every future transform.
    """
    if size < 2:
        raise ValueError("transform size must be >= 2")
    k = np.arange(size).reshape(-1, 1)
    n = np.arange(size).reshape(1, -1)
    basis = np.cos(np.pi * (2 * n + 1) * k / (2 * size))
    basis[0, :] *= 1.0 / np.sqrt(2.0)
    out = (basis * np.sqrt(2.0 / size)).astype(np.float64)
    out.flags.writeable = False
    return out


def forward_dct(block: np.ndarray) -> np.ndarray:
    """2-D DCT of a square block."""
    size = block.shape[0]
    if block.shape != (size, size):
        raise ValueError(f"block must be square, got {block.shape}")
    basis = dct_matrix(size)
    return basis @ block.astype(np.float64) @ basis.T


def inverse_dct(coefficients: np.ndarray) -> np.ndarray:
    size = coefficients.shape[0]
    basis = dct_matrix(size)
    return basis.T @ coefficients @ basis


def qp_to_step(qp: float) -> float:
    """Quantization step size; doubles every 6 QP (H.264 convention)."""
    if not MIN_QP <= qp <= MAX_QP:
        raise ValueError(f"QP {qp} outside [{MIN_QP}, {MAX_QP}]")
    return 0.625 * 2.0 ** (qp / 6.0)


def qp_to_lambda(qp: float) -> float:
    """RD Lagrange multiplier; the classic 0.57 * Qstep^2 rule."""
    step = qp_to_step(qp)
    return 0.57 * step * step


def quantize(coefficients: np.ndarray, qp: float) -> np.ndarray:
    """Uniform dead-zone quantization to integer levels."""
    step = qp_to_step(qp)
    return np.round(coefficients / step).astype(np.int64)


def dequantize(levels: np.ndarray, qp: float) -> np.ndarray:
    return levels.astype(np.float64) * qp_to_step(qp)


def transform_rd(
    residual: np.ndarray, qp: float
) -> Tuple[np.ndarray, np.ndarray, float]:
    """Transform, quantize, and reconstruct a residual block.

    Returns ``(levels, reconstructed_residual, distortion_sse)``.
    """
    coefficients = forward_dct(residual)
    levels = quantize(coefficients, qp)
    reconstructed = inverse_dct(dequantize(levels, qp))
    distortion = float(np.sum((residual - reconstructed) ** 2))
    return levels, reconstructed, distortion


def transform_rd_single(
    residual: np.ndarray, qp: float
) -> Tuple[np.ndarray, np.ndarray, float]:
    """Fused hot-path :func:`transform_rd` -- bit-identical, same float
    op sequence, without the per-stage function and validation layers."""
    basis = dct_matrix(residual.shape[0])
    step = qp_to_step(qp)
    coefficients = basis @ residual @ basis.T
    # np.round with decimals=0 is exactly the rint ufunc on float64.
    levels = np.rint(coefficients / step).astype(np.int64)
    reconstructed = basis.T @ (levels.astype(np.float64) * step) @ basis
    distortion = float(((residual - reconstructed) ** 2).sum())
    return levels, reconstructed, distortion
