"""A functional block-based video codec (numpy).

This package really encodes frames: block partitioning, intra prediction,
motion-compensated inter prediction over up to three reference frames,
DCT transform + uniform quantization, entropy-model bit counting, and full
reconstruction (so PSNR is measured against genuinely lossy output).

Encoders are parameterised by :class:`~repro.codec.profiles.EncoderProfile`,
which mirrors the four encoders of the paper's Figure 7:

* ``LIBX264`` / ``LIBVPX``  -- the software baselines,
* ``VCU_H264`` / ``VCU_VP9`` -- the hardware encoder analogues, with a
  restricted toolset (no trellis-style rate shaping) but hardware-only
  strengths (exhaustive motion search, temporal-filtered alternate
  reference frames).

Coding-tool differences that are impractical to model functionally
(probability adaptation, loop-filter detail, trellis quantization) are
folded into documented per-profile bit-scale calibration factors; the
functional differences (block sizes, partitioning, reference counts,
search quality) are real.
"""

from repro.codec.profiles import (
    LIBVPX,
    LIBX264,
    VCU_H264,
    VCU_VP9,
    ALL_PROFILES,
    EncoderProfile,
)
from repro.codec.encoder import EncodedChunk, EncodedFrame, Encoder, encode_video
from repro.codec.rate_control import (
    OnePassRateControl,
    RateControlStats,
    TwoPassRateControl,
)
from repro.codec.tuning import rate_control_efficiency, tuned_profile

__all__ = [
    "EncoderProfile",
    "LIBX264",
    "LIBVPX",
    "VCU_H264",
    "VCU_VP9",
    "ALL_PROFILES",
    "Encoder",
    "EncodedFrame",
    "EncodedChunk",
    "encode_video",
    "OnePassRateControl",
    "TwoPassRateControl",
    "RateControlStats",
    "rate_control_efficiency",
    "tuned_profile",
]
