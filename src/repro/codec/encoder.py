"""The block-based encoder.

The encoder walks each frame in raster order of superblocks.  For every
block it evaluates intra candidates and, on inter frames, a motion search
over up to three references (plus the temporal-filtered alternate
reference for VP9 profiles); the winner by SAD gets the full
transform/quantize/reconstruct treatment (the paper's "approximate
encoding/decoding" candidate selection).  When the profile allows
partitioning, the block is also encoded as four recursively-coded
sub-blocks and the cheaper RD cost wins -- the bounded recursive
partition search of Section 3.2.

Every decision is appended to a symbolic bitstream (a list of
:class:`BlockRecord`) that :mod:`repro.codec.decoder` can replay to the
bit-identical reconstruction, which is how round-trip tests validate the
codec.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Sequence, Tuple

import numpy as np

from repro.codec import entropy
from repro.codec.prediction import (
    MotionVector,
    SearchPlanes,
    _best_inter_reference,
    _best_intra_reference,
    best_inter,
    best_intra,
)
from repro.codec.profiles import EncoderProfile
from repro.codec.temporal_filter import build_altref
from repro.codec.transform import qp_to_lambda, transform_rd, transform_rd_single
from repro.video.frame import Frame, RawVideo, sequence_psnr

#: References kept in the DPB (sliding window), before the altref slot.
_MAX_DPB = 3
#: Frames between alternate-reference rebuilds (VP9 builds altrefs per
#: golden-frame group, not per frame).
ALTREF_INTERVAL = 4
#: Mean prediction error per pixel below which the recursive partition
#: search is skipped -- the "bounded" part of the paper's bounded
#: recursive search (flat, well-predicted blocks never benefit from
#: smaller partitions).
SPLIT_GATE_SAD_PER_PIXEL = 2.0
#: Mean intra error per pixel below which motion search is skipped.
INTRA_GOOD_ENOUGH_PER_PIXEL = 0.75


@dataclass
class BlockRecord:
    """One coded block: everything a decoder needs to reproduce it."""

    y: int
    x: int
    size: int
    mode: str  # "intra" or "inter"
    intra_mode: Optional[str] = None
    ref_index: Optional[int] = None
    mv: Optional[MotionVector] = None
    levels: Optional[np.ndarray] = None
    split: Optional[List["BlockRecord"]] = None
    dc: Optional[float] = None  # edge-block DC predictor (PCM-ish path)


@dataclass
class EncodedFrame:
    """Per-frame encode output: modelled bits, recon, and statistics."""

    index: int
    frame_type: str  # "key" or "inter"
    qp: float
    bits: float
    recon: np.ndarray
    records: List[BlockRecord]
    sad: float  # total prediction SAD (first-pass complexity signal)
    intra_blocks: int = 0
    inter_blocks: int = 0


@dataclass
class EncodedChunk:
    """A fully encoded sequence plus its aggregate quality numbers."""

    profile_name: str
    frames: List[EncodedFrame]
    fps: float
    nominal_pixels_per_frame: int
    proxy_pixels_per_frame: int
    psnr: float

    @property
    def total_bits_proxy(self) -> float:
        return sum(f.bits for f in self.frames)

    @property
    def total_bits(self) -> float:
        """Bits scaled from the proxy plane to the nominal resolution."""
        scale = self.nominal_pixels_per_frame / self.proxy_pixels_per_frame
        return self.total_bits_proxy * scale

    @property
    def duration_seconds(self) -> float:
        return len(self.frames) / self.fps

    @property
    def bitrate_bps(self) -> float:
        return self.total_bits / self.duration_seconds

    @property
    def bits_per_pixel(self) -> float:
        return self.total_bits_proxy / (
            self.proxy_pixels_per_frame * len(self.frames)
        )


class Encoder:
    """A stateful encoder for one stream (one profile, one resolution).

    ``fast`` selects between the batched hot path (default) and the
    pre-batching scalar reference implementations of motion search, intra
    selection, and entropy costing.  Both paths produce bit-identical
    output -- the reference path exists so the parity suite and the
    perf-regression harness can prove and measure that claim.
    """

    def __init__(
        self,
        profile: EncoderProfile,
        keyframe_interval: int = 150,
        fast: bool = True,
    ):
        if keyframe_interval < 1:
            raise ValueError("keyframe_interval must be >= 1")
        self.profile = profile
        self.keyframe_interval = keyframe_interval
        self.fast = fast
        self._best_intra = best_intra if fast else _best_intra_reference
        self._best_inter = best_inter if fast else _best_inter_reference
        self._block_bits = (
            entropy.block_bits if fast else entropy._block_bits_reference
        )
        self._transform_rd = transform_rd_single if fast else transform_rd
        self._dpb: List[np.ndarray] = []  # decoded picture buffer, newest first
        self._altref: Optional[np.ndarray] = None
        self._frame_index = 0

    def reset(self) -> None:
        self._dpb.clear()
        self._altref = None
        self._frame_index = 0

    def references(self) -> List[np.ndarray]:
        """Current reference list: DPB slots then the altref, bounded by profile."""
        refs = list(self._dpb[: self.profile.reference_frames])
        if self.profile.temporal_filter and self._altref is not None:
            refs.append(self._altref)
        return refs

    def encode_frame(self, frame: Frame, qp: float) -> EncodedFrame:
        """Encode one frame at the given QP and update reference state."""
        is_key = self._frame_index % self.keyframe_interval == 0 or not self._dpb
        source = frame.data.astype(np.float64)
        recon = np.zeros_like(source)
        references = [] if is_key else self.references()
        # One SearchPlanes per reference per frame: every block shares the
        # sliding-window gathers and lazily-built half-pel planes.
        planes = (
            [SearchPlanes(reference) for reference in references]
            if self.fast and references
            else None
        )
        lam = qp_to_lambda(qp)

        records: List[BlockRecord] = []
        total_bits = 0.0
        total_sad = 0.0
        intra_blocks = 0
        inter_blocks = 0

        size = self.profile.block_size
        height, width = source.shape
        predicted_mv = MotionVector(0.0, 0.0)
        for y in range(0, height, size):
            for x in range(0, width, size):
                block_h = min(size, height - y)
                block_w = min(size, width - x)
                if block_h != block_w or block_h < 4:
                    # Ragged frame edge: code as intra DC without splitting.
                    record, bits, sad = self._encode_edge_block(
                        source, recon, y, x, block_h, block_w, qp
                    )
                else:
                    record, _, bits, sad = self._encode_block(
                        source, recon, references, y, x, block_h, qp, lam,
                        self.profile.max_split_depth, predicted_mv, planes,
                    )
                    if record.mode == "inter" and record.mv is not None:
                        predicted_mv = record.mv
                records.append(record)
                total_bits += bits
                total_sad += sad
                if record.mode == "inter" or (
                    record.split
                    and any(r.mode == "inter" for r in record.split)
                ):
                    inter_blocks += 1
                else:
                    intra_blocks += 1

        total_bits *= self.profile.bit_scale
        total_bits += 64.0  # frame header

        self._push_reference(recon)
        encoded = EncodedFrame(
            index=self._frame_index,
            frame_type="key" if is_key else "inter",
            qp=qp,
            bits=total_bits,
            recon=recon,
            records=records,
            sad=total_sad,
            intra_blocks=intra_blocks,
            inter_blocks=inter_blocks,
        )
        self._frame_index += 1
        return encoded

    def _push_reference(self, recon: np.ndarray) -> None:
        self._dpb.insert(0, recon)
        del self._dpb[_MAX_DPB:]
        if (
            self.profile.temporal_filter
            and len(self._dpb) >= 3
            and self._frame_index % ALTREF_INTERVAL == 0
        ):
            # Synthetic alternate reference from the last three recons
            # (oldest..newest order for the 3-tap filter).
            self._altref = build_altref(list(reversed(self._dpb[:3]))).astype(
                np.float64
            )

    def _encode_block(
        self,
        source: np.ndarray,
        recon: np.ndarray,
        references: Sequence[np.ndarray],
        y: int,
        x: int,
        size: int,
        qp: float,
        lam: float,
        split_depth: int,
        predicted_mv: MotionVector,
        planes: Optional[List[SearchPlanes]] = None,
    ) -> Tuple[BlockRecord, float, float, float]:
        """Encode one square block; returns (record, rd_cost, bits, sad).

        Writes the chosen reconstruction into ``recon`` in place.
        """
        block = source[y : y + size, x : x + size]
        saved = recon[y : y + size, x : x + size].copy()

        record, cost, bits, sad = self._encode_whole(
            block, recon, references, y, x, size, qp, lam, predicted_mv, planes
        )

        if (
            split_depth > 0
            and size >= 8
            and sad > SPLIT_GATE_SAD_PER_PIXEL * size * size
        ):
            whole_recon = recon[y : y + size, x : x + size].copy()
            recon[y : y + size, x : x + size] = saved
            half = size // 2
            sub_records: List[BlockRecord] = []
            split_cost = lam * 2.0  # partition signalling
            split_bits = 2.0
            split_sad = 0.0
            for oy in (0, half):
                for ox in (0, half):
                    sub, sub_cost, sub_bits, sub_sad = self._encode_block(
                        source, recon, references, y + oy, x + ox, half,
                        qp, lam, split_depth - 1, predicted_mv, planes,
                    )
                    sub_records.append(sub)
                    split_cost += sub_cost
                    split_bits += sub_bits
                    split_sad += sub_sad
            if split_cost < cost:
                return (
                    BlockRecord(y=y, x=x, size=size, mode="split", split=sub_records),
                    split_cost,
                    split_bits,
                    split_sad,
                )
            recon[y : y + size, x : x + size] = whole_recon
        return record, cost, bits, sad

    def _encode_whole(
        self,
        block: np.ndarray,
        recon: np.ndarray,
        references: Sequence[np.ndarray],
        y: int,
        x: int,
        size: int,
        qp: float,
        lam: float,
        predicted_mv: MotionVector,
        planes: Optional[List[SearchPlanes]] = None,
    ) -> Tuple[BlockRecord, float, float, float]:
        """Encode the block un-split; returns (record, rd_cost, bits, sad)."""
        intra_mode, intra_pred, intra_sad = self._best_intra(
            block, recon, y, x, size, self.profile.rd_candidate_rounds
        )
        choice = ("intra", intra_mode, None, None, intra_pred, intra_sad)
        if references and intra_sad > INTRA_GOOD_ENOUGH_PER_PIXEL * size * size:
            ref_index, mv, inter_pred, inter_sad = self._best_inter(
                block, references, y, x, size,
                self.profile.search_range, self.profile.half_pel, predicted_mv,
                planes=planes,
            )
            # Bias by signalling cost so near-ties favour cheap intra DC.
            if inter_sad + 4.0 * entropy.mv_bits(mv.dx, mv.dy) < intra_sad:
                choice = ("inter", None, ref_index, mv, inter_pred, inter_sad)

        mode, chosen_intra, ref_index, mv, prediction, sad = choice
        residual = block - prediction
        levels, recon_residual, distortion = self._transform_rd(residual, qp)

        bits = self._block_bits(levels, self.profile.entropy_efficiency)
        if mode == "intra":
            bits += entropy.MODE_BITS_INTRA
        else:
            bits += entropy.MODE_BITS_INTER + entropy.mv_bits(mv.dx, mv.dy)

        recon[y : y + size, x : x + size] = (prediction + recon_residual).clip(
            0.0, 255.0
        )
        cost = distortion + lam * bits
        record = BlockRecord(
            y=y, x=x, size=size, mode=mode,
            intra_mode=chosen_intra, ref_index=ref_index, mv=mv, levels=levels,
        )
        return record, cost, bits, sad

    def _encode_edge_block(
        self,
        source: np.ndarray,
        recon: np.ndarray,
        y: int,
        x: int,
        block_h: int,
        block_w: int,
        qp: float,
    ) -> Tuple[BlockRecord, float, float]:
        """DC-predict and PCM-quantize a ragged edge block (rare path)."""
        block = source[y : y + block_h, x : x + block_w]
        mean = float(np.mean(block))
        from repro.codec.transform import qp_to_step

        step = qp_to_step(qp)
        levels = np.round((block - mean) / step).astype(np.int64)
        recon_block = np.clip(mean + levels * step, 0.0, 255.0)
        recon[y : y + block_h, x : x + block_w] = recon_block
        bits = self._block_bits(levels, self.profile.entropy_efficiency) + 8.0
        sad = float(np.sum(np.abs(block - mean)))
        record = BlockRecord(
            y=y, x=x, size=block_h, mode="edge", levels=levels, intra_mode="dc",
            dc=mean,
        )
        return record, bits, sad


def encode_video(
    video: RawVideo,
    profile: EncoderProfile,
    qp: float,
    keyframe_interval: int = 150,
    fast: bool = True,
) -> EncodedChunk:
    """Encode a whole video at a fixed QP (the RD-curve sweep primitive)."""
    encoder = Encoder(profile, keyframe_interval=keyframe_interval, fast=fast)
    encoded = [encoder.encode_frame(frame, qp) for frame in video.frames]
    recon_frames = [
        Frame(e.recon.astype(np.float32), video.nominal, e.index) for e in encoded
    ]
    return EncodedChunk(
        profile_name=profile.name,
        frames=encoded,
        fps=video.fps,
        nominal_pixels_per_frame=video.nominal.pixels,
        proxy_pixels_per_frame=video.frames[0].proxy_pixels,
        psnr=sequence_psnr(video.frames, recon_frames),
    )
