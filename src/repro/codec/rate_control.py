"""Rate control: one-pass and two-pass QP selection (Section 2.1).

* :class:`OnePassRateControl` -- low-latency: a leaky-bucket model reacts
  to the bits actually produced, with no future knowledge.  Used by the
  live and cloud-gaming modes.
* :class:`TwoPassRateControl` -- the first pass collects per-frame
  complexity (prediction SAD); the second pass allocates the bit budget
  proportionally to complexity and converts each frame's budget to a QP
  through the observed bits-vs-QP model.  ``lag_frames`` bounds how much
  future the allocator may see: ``None`` = offline (whole video),
  a finite value = lagged two-pass, ``0`` degenerates to low-latency.

Rate control runs on the *host* in the real system (Section 3.3.2) and was
the main post-deployment tuning surface; the profile's
``rate_control_efficiency`` models that tuning (see :mod:`repro.codec.tuning`).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Sequence

import numpy as np

from repro.codec.encoder import Encoder, EncodedChunk, EncodedFrame
from repro.codec.profiles import EncoderProfile
from repro.codec.transform import MAX_QP, MIN_QP
from repro.video.frame import Frame, RawVideo, sequence_psnr


@dataclass
class RateControlStats:
    """Bookkeeping shared by both controllers (useful in tests/benches)."""

    target_bits_per_frame: float
    frame_bits: List[float] = field(default_factory=list)
    frame_qps: List[float] = field(default_factory=list)

    @property
    def achieved_bits_per_frame(self) -> float:
        return float(np.mean(self.frame_bits)) if self.frame_bits else 0.0

    @property
    def overshoot(self) -> float:
        """Fraction above target; negative means undershoot."""
        if not self.frame_bits:
            return 0.0
        return self.achieved_bits_per_frame / self.target_bits_per_frame - 1.0


def _clamp_qp(qp: float) -> float:
    return float(np.clip(qp, MIN_QP, MAX_QP))


class OnePassRateControl:
    """Reactive leaky-bucket controller with no future information."""

    def __init__(self, target_bits_per_frame: float, initial_qp: float = 32.0):
        if target_bits_per_frame <= 0:
            raise ValueError("target_bits_per_frame must be positive")
        self.stats = RateControlStats(target_bits_per_frame)
        self._qp = _clamp_qp(initial_qp)
        self._buffer = 0.0  # bits of accumulated overshoot

    def next_qp(self) -> float:
        return self._qp

    def update(self, produced_bits: float) -> None:
        """Adapt QP from the bits the last frame actually produced."""
        target = self.stats.target_bits_per_frame
        self.stats.frame_bits.append(produced_bits)
        self.stats.frame_qps.append(self._qp)
        self._buffer += produced_bits - target
        # Proportional step on log-bits error plus buffer pressure; QP moves
        # ~6 per doubling of bits, matching the step-size ladder.
        error = np.log2(max(produced_bits, 1.0) / target)
        pressure = self._buffer / (8.0 * target)
        self._qp = _clamp_qp(self._qp + 2.0 * error + 1.0 * pressure)


class TwoPassRateControl:
    """First pass measures complexity; second pass allocates bits to match."""

    def __init__(
        self,
        target_bits_per_frame: float,
        lag_frames: Optional[int] = None,
    ):
        if target_bits_per_frame <= 0:
            raise ValueError("target_bits_per_frame must be positive")
        if lag_frames is not None and lag_frames < 0:
            raise ValueError("lag_frames must be >= 0 or None for offline")
        self.stats = RateControlStats(target_bits_per_frame)
        self.lag_frames = lag_frames

    def allocate(self, complexities: Sequence[float]) -> List[float]:
        """Per-frame bit budgets proportional to windowed complexity."""
        total = len(complexities)
        budget_total = self.stats.target_bits_per_frame * total
        budgets: List[float] = []
        complexities = [max(c, 1.0) for c in complexities]
        for index in range(total):
            if self.lag_frames is None:
                # Offline: statistics from the entire video are available.
                window = complexities
            else:
                window_end = min(total, index + 1 + self.lag_frames)
                window = complexities[index:window_end]
            window_mean = float(np.mean(window))
            share = complexities[index] / (window_mean * total)
            budgets.append(budget_total * share)
        # Normalise so budgets sum exactly to the total budget.
        scale = budget_total / sum(budgets)
        return [b * scale for b in budgets]

    @staticmethod
    def qp_for_budget(budget_bits: float, reference_bits: float, reference_qp: float) -> float:
        """Invert the bits-vs-QP model: ~6 QP per doubling of bits."""
        if budget_bits <= 0 or reference_bits <= 0:
            return _clamp_qp(reference_qp)
        return _clamp_qp(reference_qp - 6.0 * np.log2(budget_bits / reference_bits))


def encode_with_target_bitrate(
    video: RawVideo,
    profile: EncoderProfile,
    target_bitrate_bps: float,
    two_pass: bool = True,
    lag_frames: Optional[int] = None,
    keyframe_interval: int = 150,
) -> EncodedChunk:
    """Encode to a target bitrate with the requested rate-control mode.

    The target is expressed at the nominal resolution; it is converted to a
    proxy-plane bit budget internally.
    """
    if target_bitrate_bps <= 0:
        raise ValueError("target bitrate must be positive")
    proxy_pixels = video.frames[0].proxy_pixels
    scale = proxy_pixels / video.nominal.pixels
    target_bits_per_frame = target_bitrate_bps / video.fps * scale

    if two_pass:
        return _encode_two_pass(
            video, profile, target_bits_per_frame, lag_frames, keyframe_interval
        )
    return _encode_one_pass(video, profile, target_bits_per_frame, keyframe_interval)


def _encode_one_pass(
    video: RawVideo,
    profile: EncoderProfile,
    target_bits_per_frame: float,
    keyframe_interval: int,
) -> EncodedChunk:
    controller = OnePassRateControl(target_bits_per_frame)
    encoder = Encoder(profile, keyframe_interval=keyframe_interval)
    encoded: List[EncodedFrame] = []
    for frame in video.frames:
        result = encoder.encode_frame(frame, controller.next_qp())
        controller.update(result.bits)
        encoded.append(result)
    return _finish(video, profile, encoded)


def _encode_two_pass(
    video: RawVideo,
    profile: EncoderProfile,
    target_bits_per_frame: float,
    lag_frames: Optional[int],
    keyframe_interval: int,
) -> EncodedChunk:
    # First pass: fast constant-QP encode to measure per-frame complexity.
    probe_qp = 36.0
    probe_encoder = Encoder(profile, keyframe_interval=keyframe_interval)
    probe = [probe_encoder.encode_frame(frame, probe_qp) for frame in video.frames]

    controller = TwoPassRateControl(target_bits_per_frame, lag_frames=lag_frames)
    budgets = controller.allocate([p.sad for p in probe])

    # Second pass: per-frame QP from each frame's probe bits and budget.
    encoder = Encoder(profile, keyframe_interval=keyframe_interval)
    encoded: List[EncodedFrame] = []
    for frame, probe_frame, budget in zip(video.frames, probe, budgets):
        qp = controller.qp_for_budget(budget, probe_frame.bits, probe_qp)
        result = encoder.encode_frame(frame, qp)
        controller.stats.frame_bits.append(result.bits)
        controller.stats.frame_qps.append(qp)
        encoded.append(result)
    return _finish(video, profile, encoded)


def _finish(
    video: RawVideo, profile: EncoderProfile, encoded: List[EncodedFrame]
) -> EncodedChunk:
    recon_frames = [
        Frame(e.recon.astype(np.float32), video.nominal, e.index) for e in encoded
    ]
    return EncodedChunk(
        profile_name=profile.name,
        frames=encoded,
        fps=video.fps,
        nominal_pixels_per_frame=video.nominal.pixels,
        proxy_pixels_per_frame=video.frames[0].proxy_pixels,
        psnr=sequence_psnr(video.frames, recon_frames),
    )
