"""Post-deployment rate-control tuning ("launch and iterate", Section 4.3).

Figure 10 shows VCU bitrate at iso-quality improving steadily for 16 months
after launch: VP9 from ~+12% vs software to ~0%, H.264 from ~+8% to ~-2%,
driven by the optimizations the paper names.  Because rate control runs in
host userspace (Section 3.3.2), each improvement shipped without touching
silicon or firmware.

This module replays that timeline: :func:`rate_control_efficiency` maps a
month-since-launch to the bits multiplier applied to a VCU profile, and
:data:`TUNING_MILESTONES` records which named optimization landed when.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, List

from repro.codec.profiles import EncoderProfile


@dataclass(frozen=True)
class TuningMilestone:
    """One named post-launch optimization and the month it rolled out."""

    month: int
    name: str
    description: str


#: The optimizations Section 4.3 credits, placed on the Figure 10 timeline.
TUNING_MILESTONES: List[TuningMilestone] = [
    TuningMilestone(1, "gop-structure", "Improved group-of-pictures structure selection"),
    TuningMilestone(3, "hw-statistics", "Better use of hardware first-pass statistics"),
    TuningMilestone(6, "extra-references", "Introduction of additional reference frames"),
    TuningMilestone(9, "sw-rc-port", "Importing rate-control ideas from software encoders"),
    TuningMilestone(12, "auto-tuning", "Automated tuning tools applied to RC parameters"),
]

#: Asymptotic efficiency floors: tuned hardware RC ends slightly better than
#: software for H.264 (Figure 10 crosses below 0%) and at parity for VP9.
_EFFICIENCY_FLOOR: Dict[str, float] = {"h264": 0.88, "vp9": 0.85}
#: Months to close ~63% of the remaining gap.
_TUNING_TAU_MONTHS = 4.5


def rate_control_efficiency(codec: str, months_since_launch: float) -> float:
    """Bits multiplier for a VCU profile after ``months_since_launch``.

    1.0 at launch, decaying exponentially toward the per-codec floor.
    """
    if codec not in _EFFICIENCY_FLOOR:
        raise ValueError(f"unknown codec {codec!r}")
    if months_since_launch < 0:
        raise ValueError("months_since_launch must be >= 0")
    floor = _EFFICIENCY_FLOOR[codec]
    return floor + (1.0 - floor) * math.exp(-months_since_launch / _TUNING_TAU_MONTHS)


def tuned_profile(profile: EncoderProfile, months_since_launch: float) -> EncoderProfile:
    """A VCU profile with rate control tuned to the given deployment month.

    Software profiles are returned unchanged -- the software baselines were
    already mature at VCU launch.
    """
    if not profile.is_hardware:
        return profile
    return profile.with_rate_control_efficiency(
        rate_control_efficiency(profile.codec, months_since_launch)
    )


def milestones_through(month: float) -> List[TuningMilestone]:
    """Milestones that had shipped by the given month (for reporting)."""
    return [m for m in TUNING_MILESTONES if m.month <= month]
