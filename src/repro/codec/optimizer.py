"""Per-video rate-quality optimization (Section 2.1's "advanced encoding").

Advanced encoding systems run multiple complete passes with additional
analysis -- rate-quality curves for individual videos at multiple
operating points -- to pick better quality/compression trade-offs at
additional computational cost (the Netflix dynamic-optimizer style).

:func:`rate_quality_curve` measures a real per-video curve with the
functional codec; :func:`convex_hull_points` keeps only the operating
points on the RD convex hull (anything below it is strictly wasteful);
:func:`pick_operating_point` then selects the cheapest point meeting a
quality floor, or the best quality under a bitrate cap -- the decision
the platform makes per popularity bucket.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence

from repro.codec.encoder import encode_video
from repro.codec.profiles import EncoderProfile
from repro.metrics.quality import RDPoint
from repro.video.frame import RawVideo


@dataclass(frozen=True)
class OperatingPoint:
    """One encode option: its QP and the measured rate/quality."""

    qp: float
    rd: RDPoint

    @property
    def bitrate(self) -> float:
        return self.rd.bitrate

    @property
    def psnr(self) -> float:
        return self.rd.psnr


def rate_quality_curve(
    video: RawVideo,
    profile: EncoderProfile,
    qps: Sequence[float] = (18, 24, 30, 36, 42, 48),
) -> List[OperatingPoint]:
    """Measure the per-video rate-quality curve by actually encoding."""
    if not qps:
        raise ValueError("need at least one QP")
    points = []
    for qp in sorted(qps):
        chunk = encode_video(video, profile, qp=qp)
        points.append(
            OperatingPoint(qp=qp, rd=RDPoint(bitrate=chunk.bitrate_bps, psnr=chunk.psnr))
        )
    return points


def convex_hull_points(points: Sequence[OperatingPoint]) -> List[OperatingPoint]:
    """The upper-left RD convex hull, sorted by increasing bitrate.

    A point is kept only if no mixture of other points dominates it
    (higher PSNR at lower-or-equal bitrate).
    """
    ordered = sorted(points, key=lambda p: (p.bitrate, -p.psnr))
    # Drop dominated points (lower PSNR at higher bitrate).
    pareto: List[OperatingPoint] = []
    best_psnr = float("-inf")
    for point in ordered:
        if point.psnr > best_psnr:
            pareto.append(point)
            best_psnr = point.psnr
    if len(pareto) < 3:
        return pareto
    # Upper concave hull over (bitrate, psnr): slopes must decrease.
    hull: List[OperatingPoint] = []
    for point in pareto:
        while len(hull) >= 2:
            a, b = hull[-2], hull[-1]
            slope_ab = (b.psnr - a.psnr) / (b.bitrate - a.bitrate)
            slope_ac = (point.psnr - a.psnr) / (point.bitrate - a.bitrate)
            if slope_ac >= slope_ab:
                hull.pop()
            else:
                break
        hull.append(point)
    return hull


def pick_operating_point(
    points: Sequence[OperatingPoint],
    min_psnr: Optional[float] = None,
    max_bitrate: Optional[float] = None,
) -> Optional[OperatingPoint]:
    """Choose the operating point the platform would serve.

    With ``min_psnr``: the cheapest hull point meeting the quality floor
    (the long-tail treatment -- minimize cost while staying playable).
    With ``max_bitrate``: the best-quality hull point under the cap (the
    popular-video treatment -- spend bits to save egress elsewhere).
    With both, both constraints apply.  None when nothing qualifies.
    """
    if min_psnr is None and max_bitrate is None:
        raise ValueError("specify min_psnr and/or max_bitrate")
    hull = convex_hull_points(points)
    candidates = [
        p for p in hull
        if (min_psnr is None or p.psnr >= min_psnr)
        and (max_bitrate is None or p.bitrate <= max_bitrate)
    ]
    if not candidates:
        return None
    if min_psnr is not None:
        return min(candidates, key=lambda p: p.bitrate)
    return max(candidates, key=lambda p: p.psnr)
