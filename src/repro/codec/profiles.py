"""Encoder profiles for the four encoders of Figure 7.

A profile bundles the *functional* toolset (block/partition geometry,
reference count, motion-search quality) with documented calibration scales
for tools that are impractical to model functionally:

* ``trellis_discount`` -- software encoders shape quantized coefficients
  with trellis quantization and richer RDO; the pipelined VCU cannot
  (Section 4.1).  Modelled as a bits-at-iso-distortion multiplier < 1.
* ``entropy_efficiency`` -- how close the entropy coder gets to source
  entropy; VP9's adaptive arithmetic coder beats H.264 CABAC.
* ``codec_bit_scale`` -- residual VP9-vs-H.264 tool gap (probability
  adaptation, compound prediction, loop-filter detail) beyond what the
  functional geometry differences capture.
* ``rate_control_efficiency`` -- the launch-and-iterate knob: VCU rate
  control started worse than software and was tuned post-deployment
  (Figure 10).  1.0 = launch quality; tuned values go below 1.0.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Dict, List


@dataclass(frozen=True)
class EncoderProfile:
    """The complete parameterisation of one encoder implementation."""

    name: str
    codec: str  # "h264" or "vp9"
    implementation: str  # "software" or "vcu"
    block_size: int  # proxy-scale superblock/macroblock edge, pixels
    max_split_depth: int  # recursive partition depth below block_size
    reference_frames: int
    search_range: int  # motion search window, proxy pixels
    half_pel: bool  # sub-pixel motion refinement
    rd_candidate_rounds: int  # how many prediction candidates get full RDO
    temporal_filter: bool  # VP9 alternate-reference temporal filtering
    trellis_discount: float
    entropy_efficiency: float
    codec_bit_scale: float
    rate_control_efficiency: float = 1.0

    def __post_init__(self) -> None:
        if self.codec not in ("h264", "vp9"):
            raise ValueError(f"unknown codec {self.codec!r}")
        if self.implementation not in ("software", "vcu", "gpu"):
            raise ValueError(f"unknown implementation {self.implementation!r}")
        if self.block_size & (self.block_size - 1):
            raise ValueError("block_size must be a power of two")
        if self.max_split_depth < 0:
            raise ValueError("max_split_depth must be >= 0")
        if self.reference_frames < 1:
            raise ValueError("need at least one reference frame")
        if not 0.5 <= self.trellis_discount <= 1.0:
            raise ValueError("trellis_discount must be in [0.5, 1.0]")

    @property
    def bit_scale(self) -> float:
        """Aggregate multiplier applied to modelled payload bits."""
        return (
            self.trellis_discount
            * self.codec_bit_scale
            * self.rate_control_efficiency
        )

    @property
    def is_hardware(self) -> bool:
        return self.implementation == "vcu"

    def with_rate_control_efficiency(self, efficiency: float) -> "EncoderProfile":
        """A copy with a tuned rate-control efficiency (Figure 10 knob)."""
        if not 0.5 <= efficiency <= 1.2:
            raise ValueError(f"implausible rate-control efficiency {efficiency}")
        return replace(self, rate_control_efficiency=efficiency)


# Software baselines.  Both get trellis-style rate shaping and strong RDO,
# but bounded (software-speed) motion search.
LIBX264 = EncoderProfile(
    name="libx264",
    codec="h264",
    implementation="software",
    block_size=8,  # proxy-scale analogue of a 16x16 macroblock
    max_split_depth=1,
    reference_frames=3,
    search_range=8,
    half_pel=True,
    rd_candidate_rounds=2,
    temporal_filter=False,
    trellis_discount=0.92,
    entropy_efficiency=0.92,
    codec_bit_scale=1.0,
)

LIBVPX = EncoderProfile(
    name="libvpx",
    codec="vp9",
    implementation="software",
    block_size=8,  # VP9 superblock geometry is not representable at proxy
    max_split_depth=1,  # scale; the VP9 tool gap lives in the scales below
    reference_frames=3,
    search_range=8,
    half_pel=True,
    rd_candidate_rounds=2,
    temporal_filter=True,
    trellis_discount=0.92,
    entropy_efficiency=0.85,
    codec_bit_scale=0.63,
)

# VCU hardware analogues: exhaustive multi-resolution motion search (wider
# range, 1/8-pel in silicon -> half_pel here), temporal filter in hardware,
# but no trellis and fewer RDO rounds (pipeline cannot re-visit decisions).
VCU_H264 = EncoderProfile(
    name="vcu-h264",
    codec="h264",
    implementation="vcu",
    block_size=8,
    max_split_depth=1,
    reference_frames=3,
    search_range=12,
    half_pel=True,
    rd_candidate_rounds=1,
    temporal_filter=False,
    trellis_discount=1.0,
    entropy_efficiency=0.92,
    codec_bit_scale=1.02,
)

VCU_VP9 = EncoderProfile(
    name="vcu-vp9",
    codec="vp9",
    implementation="vcu",
    block_size=8,
    max_split_depth=1,
    reference_frames=3,
    search_range=12,
    half_pel=True,
    rd_candidate_rounds=1,
    temporal_filter=True,
    trellis_discount=1.0,
    entropy_efficiency=0.85,
    codec_bit_scale=0.695,
)

# The GPU baseline's NVENC block (Section 5): a consumer-grade H.264
# encoder whose quality tops out around libx264's superfast..medium
# presets -- tiny search, single reference, no trellis, single-candidate
# RDO, and an entropy coder tuned for speed.  Not one of Figure 7's four
# encoders, but used by the related-work quality comparison.
NVENC_H264 = EncoderProfile(
    name="nvenc-h264",
    codec="h264",
    implementation="gpu",
    block_size=8,
    max_split_depth=0,
    reference_frames=1,
    search_range=4,
    half_pel=False,
    rd_candidate_rounds=1,
    temporal_filter=False,
    trellis_discount=1.0,
    entropy_efficiency=0.95,
    codec_bit_scale=1.08,
)

#: The four encoders of Figure 7 (NVENC is a related-work extra).
ALL_PROFILES: List[EncoderProfile] = [LIBX264, LIBVPX, VCU_H264, VCU_VP9]

PROFILES_BY_NAME: Dict[str, EncoderProfile] = {
    p.name: p for p in ALL_PROFILES + [NVENC_H264]
}


def profile(name: str) -> EncoderProfile:
    """Look up a built-in profile by name."""
    try:
        return PROFILES_BY_NAME[name]
    except KeyError:
        raise KeyError(
            f"unknown profile {name!r}; known: {sorted(PROFILES_BY_NAME)}"
        ) from None
