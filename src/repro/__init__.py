"""repro: a reproduction of "Warehouse-Scale Video Acceleration" (ASPLOS '21).

The package is organised bottom-up:

* :mod:`repro.sim` -- discrete-event simulation substrate.
* :mod:`repro.obs` -- observability: metrics registry, trace spans, report.
* :mod:`repro.video` -- frames, resolutions, synthetic content, vbench.
* :mod:`repro.codec` -- a functional block-based video codec with the four
  encoder profiles of Figure 7.
* :mod:`repro.vcu` -- the VCU accelerator model (cores, memory, firmware,
  chips, hosts).
* :mod:`repro.baselines` -- the Skylake CPU and Nvidia T4 GPU baselines.
* :mod:`repro.transcode` -- SOT/MOT pipelines, ladders, step graphs.
* :mod:`repro.cluster` -- workers, bin-packing scheduler, pools, cluster.
* :mod:`repro.failures` -- fault injection and fleet failure management.
* :mod:`repro.workloads` -- upload/live/gaming workload generators.
* :mod:`repro.tco` -- cost and power models.
* :mod:`repro.metrics` -- PSNR, BD-rate, Mpix/s, reporting.
* :mod:`repro.balance` -- Appendix A system-balance analysis.

Quick start::

    from repro import encode_video, LIBVPX, vbench_video, materialize
    video = materialize(vbench_video("desktop"), frame_count=8)
    chunk = encode_video(video, LIBVPX, qp=32)
    print(chunk.psnr, chunk.bitrate_bps)

Top-level names resolve **lazily** (PEP 562): importing :mod:`repro`
pulls in no numpy and no heavy subpackages, so lightweight entry points
-- ``repro-bench report``, :mod:`repro.obs` -- load in milliseconds.
The numeric stack is imported only when a name that needs it is first
touched.
"""

from importlib import import_module
from typing import Any

__version__ = "1.0.0"

#: Which module provides each lazily-exported top-level name.
_EXPORTS = {
    # codec
    "Encoder": "repro.codec",
    "EncoderProfile": "repro.codec",
    "encode_video": "repro.codec",
    "tuned_profile": "repro.codec",
    "LIBX264": "repro.codec",
    "LIBVPX": "repro.codec",
    "VCU_H264": "repro.codec",
    "VCU_VP9": "repro.codec",
    "ALL_PROFILES": "repro.codec",
    # metrics
    "RDPoint": "repro.metrics",
    "bd_rate": "repro.metrics",
    "format_table": "repro.metrics",
    # sim
    "Simulator": "repro.sim",
    # vcu
    "DEFAULT_VCU_SPEC": "repro.vcu",
    "EncodingMode": "repro.vcu",
    "Vcu": "repro.vcu",
    "VcuHost": "repro.vcu",
    "VcuSpec": "repro.vcu",
    # video
    "RawVideo": "repro.video",
    "Resolution": "repro.video",
    "resolution": "repro.video",
    "VBENCH_SUITE": "repro.video.vbench",
    "materialize": "repro.video.vbench",
    "vbench_video": "repro.video.vbench",
    # observability (numpy-free)
    "Observability": "repro.obs",
    "MetricsRegistry": "repro.obs",
    "TraceLog": "repro.obs",
    "TraceSpan": "repro.obs",
    "UtilizationTracker": "repro.obs",
}

_SUBPACKAGES = {
    "analysis", "balance", "baselines", "cli", "cluster", "codec", "failures",
    "harness", "metrics", "obs", "sim", "tco", "transcode", "vcu", "video",
    "workloads",
}

__all__ = ["__version__", *sorted(_EXPORTS), *sorted(_SUBPACKAGES)]


def __getattr__(name: str) -> Any:
    if name in _EXPORTS:
        value = getattr(import_module(_EXPORTS[name]), name)
        globals()[name] = value  # cache: resolve each name once
        return value
    if name in _SUBPACKAGES:
        return import_module(f"repro.{name}")
    raise AttributeError(f"module 'repro' has no attribute {name!r}")


def __dir__():
    return sorted(set(globals()) | set(__all__))
