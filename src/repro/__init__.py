"""repro: a reproduction of "Warehouse-Scale Video Acceleration" (ASPLOS '21).

The package is organised bottom-up:

* :mod:`repro.sim` -- discrete-event simulation substrate.
* :mod:`repro.video` -- frames, resolutions, synthetic content, vbench.
* :mod:`repro.codec` -- a functional block-based video codec with the four
  encoder profiles of Figure 7.
* :mod:`repro.vcu` -- the VCU accelerator model (cores, memory, firmware,
  chips, hosts).
* :mod:`repro.baselines` -- the Skylake CPU and Nvidia T4 GPU baselines.
* :mod:`repro.transcode` -- SOT/MOT pipelines, ladders, step graphs.
* :mod:`repro.cluster` -- workers, bin-packing scheduler, pools, cluster.
* :mod:`repro.failures` -- fault injection and fleet failure management.
* :mod:`repro.workloads` -- upload/live/gaming workload generators.
* :mod:`repro.tco` -- cost and power models.
* :mod:`repro.metrics` -- PSNR, BD-rate, Mpix/s, reporting.
* :mod:`repro.balance` -- Appendix A system-balance analysis.

Quick start::

    from repro import encode_video, LIBVPX, vbench_video, materialize
    video = materialize(vbench_video("desktop"), frame_count=8)
    chunk = encode_video(video, LIBVPX, qp=32)
    print(chunk.psnr, chunk.bitrate_bps)
"""

from repro.codec import (
    ALL_PROFILES,
    LIBVPX,
    LIBX264,
    VCU_H264,
    VCU_VP9,
    Encoder,
    EncoderProfile,
    encode_video,
    tuned_profile,
)
from repro.metrics import RDPoint, bd_rate, format_table
from repro.sim import Simulator
from repro.vcu import DEFAULT_VCU_SPEC, EncodingMode, Vcu, VcuHost, VcuSpec
from repro.video import RawVideo, Resolution, resolution
from repro.video.vbench import VBENCH_SUITE, materialize, vbench_video

__version__ = "1.0.0"

__all__ = [
    "__version__",
    "Encoder",
    "EncoderProfile",
    "encode_video",
    "tuned_profile",
    "LIBX264",
    "LIBVPX",
    "VCU_H264",
    "VCU_VP9",
    "ALL_PROFILES",
    "RDPoint",
    "bd_rate",
    "format_table",
    "Simulator",
    "Vcu",
    "VcuHost",
    "VcuSpec",
    "EncodingMode",
    "DEFAULT_VCU_SPEC",
    "Resolution",
    "resolution",
    "RawVideo",
    "VBENCH_SUITE",
    "vbench_video",
    "materialize",
]
