"""Appendix A.2 / A.5: network-bound throughput and VCU attachment limits.

The 100 Gbps NIC is the primary constraint on an accelerator host's
transcoding throughput.  At YouTube's recommended upload bitrates the
fleet averages ~6.1 pixels per bit, giving ~600 Gpixel/s of raw network
transcoding limit; allowing 2x the ideal upload bitrates and 50% headroom
for RPC overheads and unrelated traffic leaves ~153 Gpixel/s per host.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.vcu.spec import EncodingMode, HostSpec, VcuSpec


@dataclass(frozen=True)
class NetworkBalance:
    """The Appendix A.2 derivation, step by step."""

    host: HostSpec = HostSpec()
    #: Fleet-average compression density at recommended upload bitrates.
    pixels_per_bit: float = 6.1
    #: Real uploads can run up to double the recommended bitrates.
    bitrate_headroom: float = 2.0
    #: RPC overheads and unrelated traffic can take up to half the NIC.
    traffic_overhead: float = 0.5

    @property
    def raw_limit_gpix_s(self) -> float:
        """Network transcoding limit with ideal upload bitrates (~600)."""
        return self.host.network_bandwidth_bits * self.pixels_per_bit / 1e9

    @property
    def effective_limit_gpix_s(self) -> float:
        """The provisioning target after headroom (~153 Gpixel/s)."""
        return self.raw_limit_gpix_s * (1.0 - self.traffic_overhead) / self.bitrate_headroom

    def pcie_control_gbps(self, frame_rate_per_second: float) -> float:
        """Non-video PCIe traffic: <4 KiB per frame, each direction."""
        return frame_rate_per_second * 4 * 1024 * 8 / 1e9


def network_transcode_limit_gpix_s(host: HostSpec = None) -> float:
    """Effective per-host limit (~153 Gpixel/s)."""
    return NetworkBalance(host=host or HostSpec()).effective_limit_gpix_s


def vcu_ceiling_per_host(
    mode: EncodingMode,
    spec: VcuSpec = None,
    host: HostSpec = None,
    codec: str = "h264",
) -> int:
    """VCUs one host's network limit can keep busy in a given mode.

    Realtime: ~0.5 Gpixel/s per encoder core -> 5 Gpixel/s per VCU ->
    ~30 VCUs.  Offline two-pass cores run ~6.7x slower, so the ceiling is
    correspondingly higher (the paper quotes 150 with its rounder 5x
    slowdown figure; our Table 1-calibrated 6.7x gives ~205).
    """
    spec = spec or VcuSpec()
    limit = network_transcode_limit_gpix_s(host) * 1e9
    per_vcu = spec.encoder_cores * spec.encode_rate(codec, mode)
    return int(limit // per_vcu)
