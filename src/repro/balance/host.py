"""Appendix A.3 / Table 2: host CPU and memory-bandwidth scaling.

Table 2 reports host resources scaled to the 153 Gpixel/s network-bound
throughput target.  Note a reconciliation quirk in the paper: the printed
rows (42+13 logical cores; 214+300 Gbps) sum to the printed 55 cores but
not to the printed 712 Gbps total -- footnote 12's "six DRAM accesses per
network byte" implies an additional bandwidth-only row (PCIe DMA staging
traffic through host DRAM), which we surface explicitly as 198 Gbps so
the total reconciles.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

from repro.vcu.spec import HostSpec


@dataclass(frozen=True)
class HostResourceRow:
    """One row of Table 2."""

    use: str
    logical_cores: float
    dram_bandwidth_gbps: float


#: Per-Gpixel/s coefficients behind the rows, derived from the paper's
#: totals at 153 Gpixel/s: transcoding overheads (muxing, audio, process
#: management, operating the accelerators) and network/RPC service.
CORES_PER_GPIX_TRANSCODE = 42.0 / 153.0
DRAM_GBPS_PER_GPIX_TRANSCODE = 214.0 / 153.0
CORES_PER_GPIX_NETWORK = 13.0 / 153.0
DRAM_GBPS_PER_GPIX_NETWORK = 300.0 / 153.0
DRAM_GBPS_PER_GPIX_DMA = 198.0 / 153.0


def host_resource_table(throughput_gpix_s: float = 153.0) -> List[HostResourceRow]:
    """Table 2, scaled to an arbitrary throughput target."""
    if throughput_gpix_s <= 0:
        raise ValueError("throughput must be positive")
    scale = throughput_gpix_s
    rows = [
        HostResourceRow(
            "Transcoding overheads",
            CORES_PER_GPIX_TRANSCODE * scale,
            DRAM_GBPS_PER_GPIX_TRANSCODE * scale,
        ),
        HostResourceRow(
            "Network & RPC",
            CORES_PER_GPIX_NETWORK * scale,
            DRAM_GBPS_PER_GPIX_NETWORK * scale,
        ),
        HostResourceRow(
            "PCIe DMA staging",
            0.0,
            DRAM_GBPS_PER_GPIX_DMA * scale,
        ),
    ]
    total = HostResourceRow(
        "Total",
        sum(r.logical_cores for r in rows),
        sum(r.dram_bandwidth_gbps for r in rows),
    )
    return rows + [total]


HOST_RESOURCE_ROWS = host_resource_table()


def host_headroom(throughput_gpix_s: float = 153.0, host: HostSpec = None) -> dict:
    """How much of the target host the Table 2 totals consume.

    Appendix A.3: the scaled values are about half of what the host
    provides -- cores ~55 of ~100, DRAM bandwidth ~712 of ~1600 Gbps.
    """
    host = host or HostSpec()
    total = host_resource_table(throughput_gpix_s)[-1]
    return {
        "cores_used": total.logical_cores,
        "cores_available": float(host.logical_cores),
        "core_fraction": total.logical_cores / host.logical_cores,
        "dram_gbps_used": total.dram_bandwidth_gbps,
        "dram_gbps_available": host.host_dram_bandwidth * 8 / 1e9,
        "dram_fraction": total.dram_bandwidth_gbps / (host.host_dram_bandwidth * 8 / 1e9),
    }
