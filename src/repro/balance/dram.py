"""Appendix A.4: VCU DRAM capacity requirements.

The footprints reuse the task-level model from :mod:`repro.vcu.chip`
(reference frames for decode and every encode, the two-pass lag window,
padding and ephemeral buffers).  The fleet-level question the appendix
answers: does 8 GiB per VCU suffice at the host's network-bound
throughput target?  (Yes -- and 4 GiB would not.)
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.balance.analysis import network_transcode_limit_gpix_s
from repro.vcu.chip import VcuTask, dram_footprint_bytes
from repro.vcu.spec import EncodingMode, VcuSpec
from repro.video.frame import Resolution, output_ladder, resolution

MiB = 1024**2
GiB = 1024**3


def sot_footprint_mib(
    source: Optional[Resolution] = None,
    mode: EncodingMode = EncodingMode.OFFLINE_TWO_PASS,
    spec: VcuSpec = None,
) -> float:
    """Device DRAM for one SOT (paper: ~500 MiB at 2160p offline)."""
    source = source or resolution("2160p")
    task = VcuTask(
        codec="vp9",
        mode=mode,
        input_resolution=source,
        outputs=[source],
        frame_count=150,
        fps=30,
        is_mot=False,
    )
    return dram_footprint_bytes(task, spec or VcuSpec()) / MiB


def mot_footprint_mib(
    source: Optional[Resolution] = None,
    mode: EncodingMode = EncodingMode.OFFLINE_TWO_PASS,
    spec: VcuSpec = None,
) -> float:
    """Device DRAM for one full-ladder MOT (paper: ~700 MiB at 2160p)."""
    source = source or resolution("2160p")
    task = VcuTask(
        codec="vp9",
        mode=mode,
        input_resolution=source,
        outputs=output_ladder(source),
        frame_count=150,
        fps=30,
        is_mot=True,
    )
    return dram_footprint_bytes(task, spec or VcuSpec()) / MiB


@dataclass(frozen=True)
class FleetDramRequirement:
    """Worst-case fleet DRAM need vs what the attached VCUs provide."""

    mode: EncodingMode
    concurrent_streams: float
    required_gib: float
    vcus_needed: int
    provided_gib_8g: float
    provided_gib_4g: float

    @property
    def fits_8gib(self) -> bool:
        return self.required_gib <= self.provided_gib_8g

    @property
    def fits_4gib(self) -> bool:
        return self.required_gib <= self.provided_gib_4g


def fleet_dram_requirement(
    mode: EncodingMode,
    spec: VcuSpec = None,
    use_mot: bool = False,
) -> FleetDramRequirement:
    """Size device DRAM at the host's 153 Gpixel/s network limit.

    Each stream runs on one encoder core; slower modes need more
    concurrent streams (each holding a footprint) for the same pixel
    throughput, which is why offline two-pass dominates the capacity
    requirement.  MOT reduces the per-output-pixel footprint ~25% by
    reusing decoded frames across outputs.
    """
    spec = spec or VcuSpec()
    target_pix_s = network_transcode_limit_gpix_s() * 1e9
    per_stream_rate = spec.encode_rate("vp9", mode)
    source = resolution("2160p")
    if use_mot:
        footprint = mot_footprint_mib(source, mode, spec) * MiB
        outputs_px = sum(r.pixels for r in output_ladder(source))
        streams = target_pix_s / (per_stream_rate * outputs_px / source.pixels)
    else:
        footprint = sot_footprint_mib(source, mode, spec) * MiB
        streams = target_pix_s / per_stream_rate
    required = streams * footprint
    vcus_needed = max(
        1, int(-(-target_pix_s // (spec.encoder_cores * per_stream_rate)))
    )
    return FleetDramRequirement(
        mode=mode,
        concurrent_streams=streams,
        required_gib=required / GiB,
        vcus_needed=vcus_needed,
        provided_gib_8g=vcus_needed * 8.0,
        provided_gib_4g=vcus_needed * 4.0,
    )
