"""System-balance analysis (Appendix A) as executable models."""

from repro.balance.analysis import (
    NetworkBalance,
    network_transcode_limit_gpix_s,
    vcu_ceiling_per_host,
)
from repro.balance.dram import fleet_dram_requirement, mot_footprint_mib, sot_footprint_mib
from repro.balance.host import HOST_RESOURCE_ROWS, HostResourceRow, host_resource_table

__all__ = [
    "NetworkBalance",
    "network_transcode_limit_gpix_s",
    "vcu_ceiling_per_host",
    "sot_footprint_mib",
    "mot_footprint_mib",
    "fleet_dram_requirement",
    "HostResourceRow",
    "HOST_RESOURCE_ROWS",
    "host_resource_table",
]
