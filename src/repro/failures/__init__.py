"""Failure management (Section 4.4): injection, detection, repair.

The full life cycle the paper describes: fault injection into a running
cluster (silent corruption, hard faults, hangs -- single-device and
correlated per fault domain), telemetry-driven VCU disablement, golden-
task screening and re-screening of workers, black-holing detection and
mitigation, watchdog deadlines with backoff retries, capped repair
queues, the always-on :class:`FailureSweeper` loop, and blast-radius
accounting for corrupt chunks.
"""

from repro.failures.injector import FaultEvent, FaultInjector
from repro.failures.management import FailureManager, FailureSweeper, RepairQueue
from repro.failures.watchdog import (
    BackoffPolicy,
    FaultDomainPolicy,
    FaultDomainTracker,
    WatchdogPolicy,
)

__all__ = [
    "FaultInjector",
    "FaultEvent",
    "FailureManager",
    "FailureSweeper",
    "RepairQueue",
    "WatchdogPolicy",
    "BackoffPolicy",
    "FaultDomainPolicy",
    "FaultDomainTracker",
]
