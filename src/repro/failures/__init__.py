"""Failure management (Section 4.4): injection, detection, repair.

The full life cycle the paper describes: fault injection into a running
cluster, telemetry-driven VCU disablement, golden-task screening of new
workers, black-holing detection/mitigation, capped repair queues, and
blast-radius accounting for corrupt chunks.
"""

from repro.failures.injector import FaultEvent, FaultInjector
from repro.failures.management import FailureManager, RepairQueue

__all__ = [
    "FaultInjector",
    "FaultEvent",
    "FailureManager",
    "RepairQueue",
]
