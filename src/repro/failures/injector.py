"""Fault injection: makes VCUs fail while the cluster runs.

Three fault flavours matter to the evaluation:

* *hard* faults -- ECC storms, resets -- that show up in telemetry and get
  the VCU disabled by the fault-management sweep,
* *silent corruption* -- the dangerous one: the VCU keeps completing work
  (often faster than healthy devices because it skips real work), feeding
  the black-holing failure mode of Section 4.4, and
* *hangs* -- a wedged device whose in-flight steps never complete; only a
  watchdog deadline gets the work back.

Besides single-device injection, :meth:`FaultInjector.correlated_host_fault`
and :meth:`FaultInjector.correlated_hangs` model shared-fault-domain
events (a chassis PCIe riser, a power rail) that take out several VCUs of
one host nearly at once -- the case fault-domain-aware eviction exists for.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Sequence

from repro.sim.engine import Simulator
from repro.sim.rng import SeedLike, make_rng
from repro.vcu.chip import Vcu
from repro.vcu.host import VcuHost
from repro.vcu.telemetry import FaultKind


@dataclass(frozen=True)
class FaultEvent:
    """One scheduled fault."""

    at_time: float
    vcu_id: str
    kind: str  # "silent_corruption", "hang", or a FaultKind value


class FaultInjector:
    """Schedules faults onto VCUs over simulated time."""

    def __init__(self, sim: Simulator, vcus: Sequence[Vcu], seed: SeedLike = 0):
        self.sim = sim
        self.vcus = list(vcus)
        self._rng = make_rng(seed)
        self.injected: List[FaultEvent] = []

    def corrupt_at(self, at_time: float, vcu: Vcu) -> FaultEvent:
        """Silently corrupt one VCU at a given time."""
        event = FaultEvent(at_time=at_time, vcu_id=vcu.vcu_id, kind="silent_corruption")
        self.injected.append(event)
        self.sim.call_at(at_time, vcu.mark_corrupt)
        return event

    def hang_at(
        self, at_time: float, vcu: Vcu, duration: Optional[float] = None
    ) -> FaultEvent:
        """Wedge one VCU at a given time.

        With ``duration`` the hang is transient (a firmware stall that
        clears itself); otherwise the device stays wedged until a repair.
        Either way, any step in flight when the hang lands stalls and must
        be recovered by the cluster's watchdog.
        """
        event = FaultEvent(at_time=at_time, vcu_id=vcu.vcu_id, kind="hang")
        self.injected.append(event)
        self.sim.call_at(at_time, vcu.mark_hung)
        if duration is not None:
            if duration <= 0:
                raise ValueError("hang duration must be positive")
            self.sim.call_at(at_time + duration, vcu.clear_hang)
        return event

    def hard_fault_at(
        self, at_time: float, vcu: Vcu, kind: FaultKind, count: int = 1
    ) -> FaultEvent:
        """Record hard faults in telemetry at a given time."""
        event = FaultEvent(at_time=at_time, vcu_id=vcu.vcu_id, kind=kind.value)
        self.injected.append(event)
        self.sim.call_at(
            at_time, lambda: vcu.telemetry.record(kind, at_time=at_time, count=count)
        )
        return event

    def correlated_host_fault(
        self,
        at_time: float,
        host: VcuHost,
        kind: FaultKind = FaultKind.PCIE,
        vcu_count: Optional[int] = None,
        count_per_vcu: int = 1,
        stagger_seconds: float = 0.0,
    ) -> List[FaultEvent]:
        """A shared-domain hard fault hitting several VCUs of one host.

        ``vcu_count`` limits how many of the host's VCUs are hit (all by
        default); ``stagger_seconds`` spaces the per-VCU events slightly,
        as a real cascading chassis fault would.
        """
        victims = host.vcus if vcu_count is None else host.vcus[:vcu_count]
        return [
            self.hard_fault_at(
                at_time + index * stagger_seconds, vcu, kind, count=count_per_vcu
            )
            for index, vcu in enumerate(victims)
        ]

    def correlated_hangs(
        self,
        at_time: float,
        vcus: Sequence[Vcu],
        duration: Optional[float] = None,
        stagger_seconds: float = 0.0,
    ) -> List[FaultEvent]:
        """Wedge several devices almost at once (one shared fault domain)."""
        return [
            self.hang_at(at_time + index * stagger_seconds, vcu, duration=duration)
            for index, vcu in enumerate(vcus)
        ]

    def regional_outage(
        self,
        at_time: float,
        hosts: Sequence[VcuHost],
        duration: float,
        stagger_seconds: float = 0.0,
    ) -> List[FaultEvent]:
        """Take a whole region's hosts down for ``duration`` seconds.

        The regional analogue of :meth:`correlated_hangs`: every VCU on
        every listed host wedges (a power/network event at data-center
        scale), then clears once the outage lifts.  ``stagger_seconds``
        spaces the per-host onsets -- a real regional event rolls across
        rows, it does not hit every chassis in the same microsecond.
        All hangs clear together at ``at_time + duration``: recovery is
        a single restoration event, not a rolling one.
        """
        if duration <= 0:
            raise ValueError("outage duration must be positive")
        if not hosts:
            raise ValueError("regional outage needs at least one host")
        events: List[FaultEvent] = []
        clear_at = at_time + duration
        for host_index, host in enumerate(hosts):
            onset = at_time + host_index * stagger_seconds
            if onset >= clear_at:
                raise ValueError("stagger pushes a host past the outage end")
            for vcu in host.vcus:
                event = FaultEvent(at_time=onset, vcu_id=vcu.vcu_id, kind="hang")
                self.injected.append(event)
                self.sim.call_at(onset, vcu.mark_hung)
                self.sim.call_at(clear_at, vcu.clear_hang)
                events.append(event)
        return events

    # ------------------------------------------------------------------ #
    # Random (Poisson) fleet-wide injection

    def random_corruptions(
        self, rate_per_vcu_hour: float, until: float
    ) -> List[FaultEvent]:
        """Poisson silent-corruption arrivals across the fleet.

        VCU failures are largely independent (Section 4.4: card swaps
        correlate with single-VCU failures), so each device draws its own
        Poisson process: exponential inter-arrival gaps, looped until the
        horizon (not just the first arrival).
        """
        return self._poisson_arrivals(rate_per_vcu_hour, until, self.corrupt_at)

    def random_hangs(
        self,
        rate_per_vcu_hour: float,
        until: float,
        duration: Optional[float] = None,
    ) -> List[FaultEvent]:
        """Poisson hang arrivals across the fleet."""
        return self._poisson_arrivals(
            rate_per_vcu_hour,
            until,
            lambda at, vcu: self.hang_at(at, vcu, duration=duration),
        )

    def random_hard_faults(
        self,
        rate_per_vcu_hour: float,
        until: float,
        kind: FaultKind = FaultKind.ECC_UNCORRECTABLE,
        count: int = 1,
    ) -> List[FaultEvent]:
        """Poisson hard-fault arrivals (telemetry hits) across the fleet."""
        return self._poisson_arrivals(
            rate_per_vcu_hour,
            until,
            lambda at, vcu: self.hard_fault_at(at, vcu, kind, count=count),
        )

    def _poisson_arrivals(self, rate_per_vcu_hour, until, inject) -> List[FaultEvent]:
        if rate_per_vcu_hour < 0:
            raise ValueError("rate must be >= 0")
        events: List[FaultEvent] = []
        rate_per_second = rate_per_vcu_hour / 3600.0
        if rate_per_second == 0:
            return events
        for vcu in self.vcus:
            t = float(self._rng.exponential(1.0 / rate_per_second))
            while t < until:
                events.append(inject(t, vcu))
                t += float(self._rng.exponential(1.0 / rate_per_second))
        return events
