"""Fault injection: makes VCUs fail while the cluster runs.

Two fault flavours matter to the evaluation:

* *hard* faults -- ECC storms, resets -- that show up in telemetry and get
  the VCU disabled by the fault-management sweep, and
* *silent corruption* -- the dangerous one: the VCU keeps completing work
  (often faster than healthy devices because it skips real work), feeding
  the black-holing failure mode of Section 4.4.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Sequence

from repro.sim.engine import Simulator
from repro.sim.rng import SeedLike, make_rng
from repro.vcu.chip import Vcu
from repro.vcu.telemetry import FaultKind


@dataclass(frozen=True)
class FaultEvent:
    """One scheduled fault."""

    at_time: float
    vcu_id: str
    kind: str  # "silent_corruption" or a FaultKind value


class FaultInjector:
    """Schedules faults onto VCUs over simulated time."""

    def __init__(self, sim: Simulator, vcus: Sequence[Vcu], seed: SeedLike = 0):
        self.sim = sim
        self.vcus = list(vcus)
        self._rng = make_rng(seed)
        self.injected: List[FaultEvent] = []

    def corrupt_at(self, at_time: float, vcu: Vcu) -> FaultEvent:
        """Silently corrupt one VCU at a given time."""
        event = FaultEvent(at_time=at_time, vcu_id=vcu.vcu_id, kind="silent_corruption")
        self.injected.append(event)
        self.sim.call_at(at_time, vcu.mark_corrupt)
        return event

    def hard_fault_at(
        self, at_time: float, vcu: Vcu, kind: FaultKind, count: int = 1
    ) -> FaultEvent:
        """Record hard faults in telemetry at a given time."""
        event = FaultEvent(at_time=at_time, vcu_id=vcu.vcu_id, kind=kind.value)
        self.injected.append(event)
        self.sim.call_at(
            at_time, lambda: vcu.telemetry.record(kind, at_time=at_time, count=count)
        )
        return event

    def random_corruptions(
        self, rate_per_vcu_hour: float, until: float
    ) -> List[FaultEvent]:
        """Poisson silent-corruption arrivals across the fleet.

        VCU failures are largely independent (Section 4.4: card swaps
        correlate with single-VCU failures), so each device draws its own
        Poisson process.
        """
        if rate_per_vcu_hour < 0:
            raise ValueError("rate must be >= 0")
        events: List[FaultEvent] = []
        rate_per_second = rate_per_vcu_hour / 3600.0
        if rate_per_second == 0:
            return events
        for vcu in self.vcus:
            t = float(self._rng.exponential(1.0 / rate_per_second))
            if t < until:
                events.append(self.corrupt_at(t, vcu))
        return events
