"""Watchdog deadlines, retry backoff, and fault-domain eviction.

Three policies the cluster's resilience loop runs on:

* :class:`WatchdogPolicy` -- per-step deadlines.  The step-duration model
  is exact, so a healthy step always finishes well inside its deadline; a
  hung device (firmware wedge, PCIe stall) never completes, and the
  watchdog is the only way that work comes back.  Section 4.4's fault
  workflow assumes hangs are detected and converted into telemetry.
* :class:`BackoffPolicy` -- bounded retries with exponential backoff plus
  deterministic jitter, so a burst of correlated failures does not
  thundering-herd the survivors with synchronized retries.
* :class:`FaultDomainTracker` -- correlates failures by physical fault
  domain (host).  One bad VCU is a card problem; several distinct VCUs of
  the same host failing inside a short window points at the shared
  chassis/PCIe/power domain, and the whole host should be evicted rather
  than letting the scheduler discover each VCU's badness separately.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Set, Tuple

import numpy as np

from repro import obs


@dataclass(frozen=True)
class WatchdogPolicy:
    """Deadline = ``multiplier`` x expected duration + ``slack``, floored."""

    deadline_multiplier: float = 4.0
    slack_seconds: float = 5.0
    min_deadline_seconds: float = 10.0

    def __post_init__(self) -> None:
        if self.deadline_multiplier < 1.0:
            raise ValueError("deadline_multiplier must be >= 1")
        if self.slack_seconds < 0 or self.min_deadline_seconds < 0:
            raise ValueError("slack and minimum deadline must be >= 0")

    def deadline_for(self, expected_seconds: float) -> float:
        return max(
            self.min_deadline_seconds,
            expected_seconds * self.deadline_multiplier + self.slack_seconds,
        )


@dataclass(frozen=True)
class BackoffPolicy:
    """Exponential backoff with jitter for step retries."""

    base_seconds: float = 2.0
    multiplier: float = 2.0
    max_seconds: float = 120.0
    #: Uniform jitter fraction: the delay is scaled by [1, 1 + jitter).
    jitter: float = 0.5

    def __post_init__(self) -> None:
        if self.base_seconds < 0 or self.max_seconds < self.base_seconds:
            raise ValueError("need 0 <= base_seconds <= max_seconds")
        if self.multiplier < 1.0:
            raise ValueError("multiplier must be >= 1")
        if self.jitter < 0:
            raise ValueError("jitter must be >= 0")

    def delay_for(self, attempt: int, rng: np.random.Generator) -> float:
        """Backoff before retry number ``attempt`` (1-based)."""
        if attempt < 1:
            raise ValueError("attempt must be >= 1")
        raw = min(
            self.max_seconds, self.base_seconds * self.multiplier ** (attempt - 1)
        )
        return raw * (1.0 + self.jitter * float(rng.random()))


@dataclass(frozen=True)
class FaultDomainPolicy:
    """When correlated per-VCU failures condemn the shared host."""

    window_seconds: float = 300.0
    #: Distinct VCUs of one host that must fail inside the window.
    distinct_vcu_threshold: int = 3

    def __post_init__(self) -> None:
        if self.window_seconds <= 0:
            raise ValueError("window_seconds must be positive")
        if self.distinct_vcu_threshold < 2:
            raise ValueError("distinct_vcu_threshold must be >= 2 (one VCU is a card problem)")


class FaultDomainTracker:
    """Sliding-window failure correlation per physical host."""

    def __init__(self, policy: FaultDomainPolicy = FaultDomainPolicy()):
        self.policy = policy
        self._events: Dict[str, List[Tuple[float, str]]] = {}
        self.evicted_hosts: List[str] = []

    def record(self, host_id: str, vcu_id: str, now: float) -> bool:
        """Record one VCU failure; True means "evict the whole host"."""
        window = self._events.setdefault(host_id, [])
        window.append((now, vcu_id))
        cutoff = now - self.policy.window_seconds
        window[:] = [(t, v) for t, v in window if t >= cutoff]
        distinct: Set[str] = {v for _, v in window}
        hub = obs.active()
        if hub is not None:
            hub.count("fault_domain.faults")
            hub.emit(
                "domain", "fault", t0=now,
                attrs={"host": host_id, "vcu": vcu_id, "in_window": len(distinct)},
            )
        if len(distinct) >= self.policy.distinct_vcu_threshold:
            if host_id not in self.evicted_hosts:
                self.evicted_hosts.append(host_id)
            window.clear()
            if hub is not None:
                hub.count("fault_domain.evictions")
                hub.emit("domain", "evict", t0=now, attrs={"host": host_id})
            return True
        return False
