"""Consistent-hash chunk placement (Section 4.4's proposed enhancement).

Videos are sharded into chunks processed across hundreds of VCUs, so one
failing VCU can corrupt *many* videos.  The paper's future enhancement:
"use consistent hashing to reduce the number of VCUs on which a given
video is processed".  This module implements a real consistent-hash ring
(virtual nodes, binary-search lookup) and the placement policy built on
it: each video's chunks are confined to a small affinity set of VCUs, so
a single bad device intersects far fewer videos.

The ablation benchmark compares per-video blast radius under first-fit
spreading versus hash-confined placement.
"""

from __future__ import annotations

import bisect
import hashlib
from typing import Dict, List, Sequence, Set


def _hash64(key: str) -> int:
    """Stable 64-bit hash (Python's builtin hash is salted per-process)."""
    digest = hashlib.blake2b(key.encode("utf-8"), digest_size=8).digest()
    return int.from_bytes(digest, "big")


def chunk_ordinal(key: str, modulus: int = 1 << 20) -> int:
    """A stable small integer for rotating within an affinity set.

    Placement needs a per-chunk ordinal that is identical across runs and
    processes; step ids are strings, so hash them with the same salted-
    hash-free digest the ring uses.
    """
    if modulus < 1:
        raise ValueError("modulus must be >= 1")
    return _hash64(key) % modulus


class ConsistentHashRing:
    """A classic consistent-hash ring with virtual nodes."""

    def __init__(self, nodes: Sequence[str] = (), replicas: int = 64):
        if replicas < 1:
            raise ValueError("replicas must be >= 1")
        self.replicas = replicas
        self._ring: List[int] = []
        self._owners: Dict[int, str] = {}
        self._nodes: Set[str] = set()
        for node in nodes:
            self.add_node(node)

    def __len__(self) -> int:
        return len(self._nodes)

    @property
    def nodes(self) -> Set[str]:
        return set(self._nodes)

    def add_node(self, node: str) -> None:
        if node in self._nodes:
            raise ValueError(f"node {node!r} already on the ring")
        self._nodes.add(node)
        for replica in range(self.replicas):
            point = _hash64(f"{node}#{replica}")
            bisect.insort(self._ring, point)
            self._owners[point] = node

    def remove_node(self, node: str) -> None:
        if node not in self._nodes:
            raise KeyError(f"node {node!r} not on the ring")
        self._nodes.discard(node)
        for replica in range(self.replicas):
            point = _hash64(f"{node}#{replica}")
            index = bisect.bisect_left(self._ring, point)
            del self._ring[index]
            del self._owners[point]

    def successors(self, key: str, count: int = 1) -> List[str]:
        """The first ``count`` distinct nodes clockwise from the key."""
        if not self._nodes:
            raise ValueError("ring is empty")
        count = min(count, len(self._nodes))
        index = bisect.bisect_right(self._ring, _hash64(key))
        found: List[str] = []
        seen: Set[str] = set()
        for step in range(len(self._ring)):
            owner = self._owners[self._ring[(index + step) % len(self._ring)]]
            if owner not in seen:
                seen.add(owner)
                found.append(owner)
                if len(found) == count:
                    break
        return found

    def node_for(self, key: str) -> str:
        return self.successors(key, 1)[0]


class ChunkAffinityPolicy:
    """Confine each video's chunks to a small consistent-hash affinity set.

    ``affinity_size`` VCUs own each video; chunks round-robin within the
    set (keeping per-VCU load balanced), and the exclusion list for
    retries still applies on top.
    """

    def __init__(self, ring: ConsistentHashRing, affinity_size: int = 3):
        if affinity_size < 1:
            raise ValueError("affinity_size must be >= 1")
        self.ring = ring
        self.affinity_size = affinity_size

    def affinity_set(self, video_id: str) -> List[str]:
        return self.ring.successors(video_id, self.affinity_size)

    def preferred_vcu(self, video_id: str, chunk_index: int) -> str:
        owners = self.affinity_set(video_id)
        return owners[chunk_index % len(owners)]

    def placement_order(
        self, video_id: str, chunk_index: int, excluded: Set[str] = frozenset()
    ) -> List[str]:
        """Preference-ordered VCUs for one chunk: its affinity set first
        (rotated to its preferred owner), then the rest of the ring."""
        owners = self.affinity_set(video_id)
        start = chunk_index % len(owners)
        ordered = owners[start:] + owners[:start]
        others = sorted(self.ring.nodes - set(ordered))
        return [node for node in ordered + others if node not in excluded]


def videos_touched_by(
    placements: Dict[str, Sequence[str]], vcu_id: str
) -> int:
    """How many videos had at least one chunk on ``vcu_id``.

    ``placements`` maps video_id -> the VCU that processed each chunk.
    This is the per-video blast radius a single corrupt VCU inflicts.
    """
    return sum(1 for chunk_vcus in placements.values() if vcu_id in chunk_vcus)
