"""Fleet failure management: sweeps, disables, and the capped repair flow.

Mirrors Section 4.4's workflow: hosts collect telemetry from their VCUs;
when a device crosses a fault threshold it is disabled (the VCU, not the
host, is the lowest unit of fault management -- each has an independent
power rail); hosts with enough component faults are marked unusable and
queued for repair; and the number of systems allowed in repair states is
capped so a faulty repair *signal* cannot black-hole fleet capacity.

:class:`FailureSweeper` runs the whole workflow unattended as a periodic
simulator process: sweep telemetry, start capped repairs, model the
technician's repair time, and hand repaired hosts back to the cluster so
their workers are golden re-screened before taking work again.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Deque, Generator, List, Optional, Sequence, TYPE_CHECKING

from repro import obs
from repro.sim.engine import Process, Simulator
from repro.vcu.host import VcuHost
from repro.vcu.telemetry import FaultKind

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.cluster.cluster import TranscodeCluster


@dataclass
class RepairQueue:
    """Hosts waiting for a human technician, with a concurrency cap."""

    cap: int = 2
    waiting: Deque[VcuHost] = field(default_factory=deque)
    in_repair: List[VcuHost] = field(default_factory=list)
    repaired: List[VcuHost] = field(default_factory=list)

    def enqueue(self, host: VcuHost) -> bool:
        """Queue a host for repair; returns False when the cap blocks it.

        A blocked host stays in production (tolerated-but-faulty) rather
        than being drained -- the capacity-protection behaviour the paper
        describes.
        """
        if len(self.in_repair) + len(self.waiting) >= self.cap:
            return False
        self.waiting.append(host)
        return True

    def queued(self, host: VcuHost) -> bool:
        """Whether the host is already anywhere in the repair flow."""
        return host in self.waiting or host in self.in_repair

    def start_repairs(self) -> List[VcuHost]:
        started = []
        while self.waiting and len(self.in_repair) < self.cap:
            host = self.waiting.popleft()
            self.in_repair.append(host)
            started.append(host)
        return started

    def finish_repair(self, host: VcuHost) -> None:
        self.in_repair.remove(host)
        host.unusable = False
        host.component_faults = 0
        for vcu in host.vcus:
            vcu.enable()
            # A repair swaps the faulty silicon: the replacement starts
            # with clean counters.  Without this, the next sweep re-reads
            # the old fault history and re-disables the fresh device.
            vcu.telemetry.counters = {kind: 0 for kind in FaultKind}
            vcu.telemetry.history.clear()
        self.repaired.append(host)


class FailureManager:
    """Periodic telemetry sweeps across hosts, driving disables/repairs."""

    def __init__(
        self,
        hosts: Sequence[VcuHost],
        repair_cap: int = 2,
        card_swap_threshold: Optional[int] = None,
    ):
        self.hosts = list(hosts)
        self.repair_queue = RepairQueue(cap=repair_cap)
        self.disabled_vcus: List[str] = []
        #: When set, a host with at least this many *disabled* VCUs is
        #: queued for repair (a card swap) even before it turns unusable.
        #: ``None`` preserves the stricter behaviour: only unusable hosts
        #: enter the repair flow.
        self.card_swap_threshold = card_swap_threshold

    def sweep(self) -> List[str]:
        """One pass over all hosts; returns newly-disabled VCU ids."""
        newly_disabled: List[str] = []
        for host in self.hosts:
            for vcu in host.sweep_telemetry():
                newly_disabled.append(vcu.vcu_id)
            if self._needs_repair(host) and not self.repair_queue.queued(host):
                self.repair_queue.enqueue(host)
        self.disabled_vcus.extend(newly_disabled)
        return newly_disabled

    def _needs_repair(self, host: VcuHost) -> bool:
        if host.unusable:
            return True
        if self.card_swap_threshold is None:
            return False
        disabled = sum(1 for vcu in host.vcus if vcu.disabled)
        return disabled >= self.card_swap_threshold

    def available_vcu_count(self) -> int:
        return sum(len(host.healthy_vcus()) for host in self.hosts)

    def fleet_capacity_fraction(self) -> float:
        total = sum(len(host.vcus) for host in self.hosts)
        return self.available_vcu_count() / total if total else 0.0


class FailureSweeper:
    """The always-on fault-management loop, as a simulator process.

    Every ``interval_seconds``: sweep telemetry (disabling VCUs and
    queueing hosts), start repairs up to the cap, and model each repair as
    taking ``repair_seconds`` of technician time with the host drained.
    When a ``cluster`` is attached, repaired hosts are handed back so the
    cluster re-screens their workers before they serve again.
    """

    def __init__(
        self,
        sim: Simulator,
        manager: FailureManager,
        interval_seconds: float = 60.0,
        repair_seconds: float = 900.0,
        cluster: Optional["TranscodeCluster"] = None,
    ):
        if interval_seconds <= 0:
            raise ValueError("interval_seconds must be positive")
        if repair_seconds < 0:
            raise ValueError("repair_seconds must be >= 0")
        self.sim = sim
        self.manager = manager
        self.interval_seconds = interval_seconds
        self.repair_seconds = repair_seconds
        self.cluster = cluster
        self.sweeps = 0
        self.repairs_started = 0
        self.repairs_completed = 0

    def start(self, until: float) -> Process:
        """Run periodic sweeps until the ``until`` horizon (sim time)."""
        return self.sim.process(self._run(until), name="failure-sweeper")

    def _run(self, until: float) -> Generator:
        while self.sim.now + self.interval_seconds <= until:
            yield self.interval_seconds
            newly_disabled = self.manager.sweep()
            self.sweeps += 1
            if newly_disabled and self.cluster is not None:
                # Sweep disables bypass the worker health machine; tell
                # the cluster so fleet-mode availability stays exact.
                self.cluster.on_vcus_disabled(newly_disabled)
            hub = obs.active()
            if hub is not None:
                hub.count("fleet.sweeps")
                hub.emit(
                    "sweep", "telemetry", t0=self.sim.now,
                    attrs={"disabled": sorted(newly_disabled)},
                )
            for host in self.manager.repair_queue.start_repairs():
                self.repairs_started += 1
                self.sim.process(self._repair(host), name=f"repair:{host.host_id}")

    def _repair(self, host: VcuHost) -> Generator:
        # Drained while the technician works on it.
        host.unusable = True
        if self.cluster is not None:
            self.cluster.on_host_drained(host)
        started = self.sim.now
        yield self.repair_seconds
        self.manager.repair_queue.finish_repair(host)
        self.repairs_completed += 1
        hub = obs.active()
        if hub is not None:
            hub.count("fleet.repairs_completed")
            hub.emit(
                "repair", host.host_id, t0=started, t1=self.sim.now,
                attrs={"host": host.host_id},
            )
        if self.cluster is not None:
            self.cluster.on_host_repaired(host)


def blast_radius(processed_by: Sequence[Optional[str]], corrupt_vcu: str) -> int:
    """How many chunks a single corrupt VCU touched (Section 4.4).

    The software records the VCUs each chunk was processed on exactly so
    this correlation is possible; consistent hashing is the paper's
    proposed future mitigation for shrinking it.
    """
    return sum(1 for vcu_id in processed_by if vcu_id == corrupt_vcu)
