"""Fleet failure management: sweeps, disables, and the capped repair flow.

Mirrors Section 4.4's workflow: hosts collect telemetry from their VCUs;
when a device crosses a fault threshold it is disabled (the VCU, not the
host, is the lowest unit of fault management -- each has an independent
power rail); hosts with enough component faults are marked unusable and
queued for repair; and the number of systems allowed in repair states is
capped so a faulty repair *signal* cannot black-hole fleet capacity.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Deque, List, Optional, Sequence

from repro.vcu.host import VcuHost


@dataclass
class RepairQueue:
    """Hosts waiting for a human technician, with a concurrency cap."""

    cap: int = 2
    waiting: Deque[VcuHost] = field(default_factory=deque)
    in_repair: List[VcuHost] = field(default_factory=list)
    repaired: List[VcuHost] = field(default_factory=list)

    def enqueue(self, host: VcuHost) -> bool:
        """Queue a host for repair; returns False when the cap blocks it.

        A blocked host stays in production (tolerated-but-faulty) rather
        than being drained -- the capacity-protection behaviour the paper
        describes.
        """
        if len(self.in_repair) + len(self.waiting) >= self.cap:
            return False
        self.waiting.append(host)
        return True

    def start_repairs(self) -> List[VcuHost]:
        started = []
        while self.waiting and len(self.in_repair) < self.cap:
            host = self.waiting.popleft()
            self.in_repair.append(host)
            started.append(host)
        return started

    def finish_repair(self, host: VcuHost) -> None:
        self.in_repair.remove(host)
        host.unusable = False
        host.component_faults = 0
        for vcu in host.vcus:
            vcu.enable()
        self.repaired.append(host)


class FailureManager:
    """Periodic telemetry sweeps across hosts, driving disables/repairs."""

    def __init__(self, hosts: Sequence[VcuHost], repair_cap: int = 2):
        self.hosts = list(hosts)
        self.repair_queue = RepairQueue(cap=repair_cap)
        self.disabled_vcus: List[str] = []

    def sweep(self) -> List[str]:
        """One pass over all hosts; returns newly-disabled VCU ids."""
        newly_disabled: List[str] = []
        for host in self.hosts:
            for vcu in host.sweep_telemetry():
                newly_disabled.append(vcu.vcu_id)
            if host.unusable and host not in self.repair_queue.in_repair:
                self.repair_queue.enqueue(host)
        self.disabled_vcus.extend(newly_disabled)
        return newly_disabled

    def available_vcu_count(self) -> int:
        return sum(len(host.healthy_vcus()) for host in self.hosts)

    def fleet_capacity_fraction(self) -> float:
        total = sum(len(host.vcus) for host in self.hosts)
        return self.available_vcu_count() / total if total else 0.0


def blast_radius(processed_by: Sequence[Optional[str]], corrupt_vcu: str) -> int:
    """How many chunks a single corrupt VCU touched (Section 4.4).

    The software records the VCUs each chunk was processed on exactly so
    this correlation is possible; consistent hashing is the paper's
    proposed future mitigation for shrinking it.
    """
    return sum(1 for vcu_id in processed_by if vcu_id == corrupt_vcu)
