"""Rate-distortion metrics: RD points, BD-rate and BD-PSNR (Bjøntegaard).

BD-rate [Bjøntegaard, VCEG-M33] is the paper's headline quality metric:
the average bitrate difference between two encoders at equal quality,
computed by fitting each operational RD curve with a cubic polynomial in
(PSNR -> log bitrate) and integrating the gap over the overlapping PSNR
range.  Negative BD-rate means the test encoder needs fewer bits.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, List, Sequence, Tuple

import numpy as np


@dataclass(frozen=True, order=True)
class RDPoint:
    """One operating point of an encoder: bitrate (bits/s) and PSNR (dB)."""

    bitrate: float
    psnr: float

    def __post_init__(self) -> None:
        if self.bitrate <= 0:
            raise ValueError("bitrate must be positive")


def _prepare(points: Iterable[RDPoint]) -> Tuple[np.ndarray, np.ndarray]:
    """Sorted, deduplicated (log-rate, psnr) arrays for curve fitting."""
    unique = sorted(set(points))
    if len(unique) < 4:
        raise ValueError(
            f"BD metrics need at least 4 distinct RD points, got {len(unique)}"
        )
    rates = np.array([p.bitrate for p in unique], dtype=np.float64)
    psnrs = np.array([p.psnr for p in unique], dtype=np.float64)
    if np.any(np.diff(psnrs) <= 0):
        # A non-monotonic curve breaks the PSNR->rate inversion; keep the
        # convex hull-ish monotone subset (highest rate wins per PSNR).
        keep = _monotone_subset(psnrs)
        rates, psnrs = rates[keep], psnrs[keep]
        if len(rates) < 4:
            raise ValueError("too few monotone RD points after filtering")
    return np.log10(rates), psnrs


def _monotone_subset(psnrs: np.ndarray) -> List[int]:
    keep = [0]
    for i in range(1, len(psnrs)):
        if psnrs[i] > psnrs[keep[-1]]:
            keep.append(i)
    return keep


def bd_rate(reference: Sequence[RDPoint], test: Sequence[RDPoint]) -> float:
    """Average bitrate change of ``test`` vs ``reference`` at equal PSNR (%).

    Returns e.g. ``-30.0`` when the test encoder needs 30% fewer bits.
    """
    log_rate_ref, psnr_ref = _prepare(reference)
    log_rate_test, psnr_test = _prepare(test)

    low = max(psnr_ref.min(), psnr_test.min())
    high = min(psnr_ref.max(), psnr_test.max())
    if high <= low:
        raise ValueError("RD curves do not overlap in PSNR; BD-rate undefined")

    poly_ref = np.polynomial.Polynomial.fit(psnr_ref, log_rate_ref, deg=3)
    poly_test = np.polynomial.Polynomial.fit(psnr_test, log_rate_test, deg=3)

    integral_ref = (poly_ref.integ()(high) - poly_ref.integ()(low)) / (high - low)
    integral_test = (poly_test.integ()(high) - poly_test.integ()(low)) / (high - low)

    return float((10.0 ** (integral_test - integral_ref) - 1.0) * 100.0)


def bd_psnr(reference: Sequence[RDPoint], test: Sequence[RDPoint]) -> float:
    """Average PSNR change of ``test`` vs ``reference`` at equal bitrate (dB)."""
    log_rate_ref, psnr_ref = _prepare(reference)
    log_rate_test, psnr_test = _prepare(test)

    low = max(log_rate_ref.min(), log_rate_test.min())
    high = min(log_rate_ref.max(), log_rate_test.max())
    if high <= low:
        raise ValueError("RD curves do not overlap in bitrate; BD-PSNR undefined")

    poly_ref = np.polynomial.Polynomial.fit(log_rate_ref, psnr_ref, deg=3)
    poly_test = np.polynomial.Polynomial.fit(log_rate_test, psnr_test, deg=3)

    integral_ref = (poly_ref.integ()(high) - poly_ref.integ()(low)) / (high - low)
    integral_test = (poly_test.integ()(high) - poly_test.integ()(low)) / (high - low)
    return float(integral_test - integral_ref)


def rd_curve_is_monotonic(points: Sequence[RDPoint]) -> bool:
    """True when more bits never hurt quality (sanity check on encoders)."""
    ordered = sorted(points)
    return all(b.psnr >= a.psnr for a, b in zip(ordered, ordered[1:]))
