"""Throughput accounting in the paper's units.

Megapixels-per-second (Mpix/s) is the paper's cross-resolution throughput
metric (footnote 7): frames per second times the output width and height.
For MOT, the pixels of *every* output variant count.
"""

from __future__ import annotations

from typing import Iterable

from repro.video.frame import Resolution


def megapixels(resolutions: Iterable[Resolution], frames: int = 1) -> float:
    """Total megapixels across output variants for ``frames`` frames."""
    total = sum(r.pixels for r in resolutions) * frames
    return total / 1e6


def mpix_per_second(output_pixels: float, seconds: float) -> float:
    """Throughput in Mpix/s given total output pixels and wall time."""
    if seconds <= 0:
        raise ValueError("seconds must be positive")
    return output_pixels / 1e6 / seconds


def pixels_per_bit(resolution: Resolution, fps: float, bitrate_bps: float) -> float:
    """Compression density metric from Appendix A.2 (paper average: 6.1)."""
    if bitrate_bps <= 0:
        raise ValueError("bitrate must be positive")
    return resolution.pixels * fps / bitrate_bps
