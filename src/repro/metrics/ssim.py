"""Structural similarity (SSIM): a perceptual quality metric.

The paper evaluates with PSNR (plus the 45 dB perceptibility ceiling);
SSIM is the standard complement for checking that rate-control changes do
not trade PSNR for visible structural damage.  This is a real windowed
implementation (non-overlapping windows, standard K1/K2 constants), not a
wrapper.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.video.frame import Frame

_K1 = 0.01
_K2 = 0.03


def ssim(
    reference: np.ndarray,
    test: np.ndarray,
    window: int = 8,
    peak: float = 255.0,
) -> float:
    """Mean SSIM over non-overlapping ``window`` x ``window`` tiles."""
    if reference.shape != test.shape:
        raise ValueError(f"shape mismatch {reference.shape} vs {test.shape}")
    if window < 2:
        raise ValueError("window must be >= 2")
    height, width = reference.shape
    if height < window or width < window:
        raise ValueError("plane smaller than one SSIM window")

    c1 = (_K1 * peak) ** 2
    c2 = (_K2 * peak) ** 2
    ref = reference.astype(np.float64)
    out = test.astype(np.float64)

    scores = []
    for y in range(0, height - window + 1, window):
        for x in range(0, width - window + 1, window):
            a = ref[y : y + window, x : x + window]
            b = out[y : y + window, x : x + window]
            mu_a, mu_b = a.mean(), b.mean()
            var_a, var_b = a.var(), b.var()
            cov = ((a - mu_a) * (b - mu_b)).mean()
            numerator = (2 * mu_a * mu_b + c1) * (2 * cov + c2)
            denominator = (mu_a**2 + mu_b**2 + c1) * (var_a + var_b + c2)
            scores.append(numerator / denominator)
    return float(np.mean(scores))


def sequence_ssim(reference: Sequence[Frame], test: Sequence[Frame]) -> float:
    """Mean SSIM across a frame sequence."""
    if len(reference) != len(test):
        raise ValueError("sequences differ in length")
    if not reference:
        raise ValueError("empty sequence")
    return float(
        np.mean([ssim(r.data, t.data) for r, t in zip(reference, test)])
    )
