"""Plain-text table formatting for the benchmark harness.

Every benchmark prints the same rows/series the paper reports; this module
keeps that output aligned and consistent without pulling in a dependency.
"""

from __future__ import annotations

from typing import Any, List, Sequence


def format_table(
    headers: Sequence[str],
    rows: Sequence[Sequence[Any]],
    title: str = "",
) -> str:
    """Render an aligned monospace table (right-aligned numeric columns)."""
    text_rows: List[List[str]] = [[_cell(value) for value in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in text_rows:
        if len(row) != len(headers):
            raise ValueError("row length does not match headers")
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))

    numeric = [
        all(_is_numeric(row[i]) for row in rows) if rows else False
        for i in range(len(headers))
    ]

    def fmt_line(cells: Sequence[str]) -> str:
        parts = []
        for i, cell in enumerate(cells):
            parts.append(cell.rjust(widths[i]) if numeric[i] else cell.ljust(widths[i]))
        return "  ".join(parts).rstrip()

    lines = []
    if title:
        lines.append(title)
    lines.append(fmt_line(list(headers)))
    lines.append("  ".join("-" * w for w in widths))
    lines.extend(fmt_line(row) for row in text_rows)
    return "\n".join(lines)


def _cell(value: Any) -> str:
    if isinstance(value, float):
        if value == 0 or 0.01 <= abs(value) < 1e6:
            return f"{value:,.2f}"
        return f"{value:.3g}"
    if isinstance(value, int):
        return f"{value:,}"
    return str(value)


def _is_numeric(value: Any) -> bool:
    return isinstance(value, (int, float)) and not isinstance(value, bool)
