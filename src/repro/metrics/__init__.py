"""Quality and throughput metrics used throughout the evaluation."""

from repro.metrics.quality import RDPoint, bd_rate, bd_psnr, rd_curve_is_monotonic
from repro.metrics.throughput import megapixels, mpix_per_second
from repro.metrics.reporting import format_table
from repro.metrics.ssim import sequence_ssim, ssim

__all__ = [
    "RDPoint",
    "bd_rate",
    "bd_psnr",
    "rd_curve_is_monotonic",
    "megapixels",
    "mpix_per_second",
    "format_table",
    "ssim",
    "sequence_ssim",
]
