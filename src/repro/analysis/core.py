"""Lint engine core: findings, rule registry, pragmas, file driver.

The engine is deliberately small and dependency-free.  A :class:`Rule`
inspects one parsed file (a :class:`FileContext`) and yields
:class:`Finding` objects; the driver handles everything around that --
path scoping, pragma suppression, baseline subtraction, and walking the
tree.

Pragma syntax (comments, parsed with :mod:`tokenize` so string literals
never trigger them)::

    x = time.time()  # lint: allow=determinism -- perf harness wall-clock
    # lint: allow-file=hygiene -- generated shim, not hand-maintained

``allow`` suppresses the named rule(s) on that physical line only;
``allow-file`` suppresses them for the whole file.  Several rule ids may
be given comma-separated; everything after ``--`` is a human reason and
is ignored by the parser (but reviewers should insist on one).
"""

from __future__ import annotations

import ast
import io
import re
import tokenize
from dataclasses import dataclass, field
from fnmatch import fnmatch
from pathlib import Path
from typing import (
    TYPE_CHECKING,
    Dict,
    Iterator,
    List,
    Optional,
    Sequence,
    Set,
    Tuple,
    Type,
)

if TYPE_CHECKING:  # import cycle: baseline imports Finding from here
    from repro.analysis.baseline import Baseline

__all__ = [
    "FileContext",
    "Finding",
    "LintResult",
    "Rule",
    "analyze_source",
    "default_rules",
    "dotted_name",
    "imported_modules",
    "iter_python_files",
    "register",
    "run_lint",
]

#: Directories the file walker never descends into.
_SKIP_DIRS = {".git", "__pycache__", ".mypy_cache", ".pytest_cache", "build", "dist"}

#: Default lint targets, relative to the repo root.
DEFAULT_TARGETS: Tuple[str, ...] = ("src", "tests", "examples", "benchmarks", "setup.py")

_PRAGMA_RE = re.compile(r"lint:\s*(allow|allow-file)=([A-Za-z0-9_,*-]+)")


@dataclass(frozen=True)
class Finding:
    """One rule violation at a specific source location."""

    rule: str
    path: str  # repo-relative, posix separators
    line: int
    col: int
    message: str

    def key(self) -> str:
        """Line-independent fingerprint used by the baseline.

        Line numbers churn on every edit, so grandfathered findings are
        matched by (path, rule, message) with multiplicity instead.
        """
        return f"{self.path}::{self.rule}::{self.message}"

    def location(self) -> str:
        return f"{self.path}:{self.line}:{self.col}"


class FileContext:
    """Everything a rule may look at for one file."""

    def __init__(self, path: str, source: str, tree: ast.Module):
        self.path = path
        self.source = source
        self.tree = tree
        self.module_name = _module_name(path)
        self.imports = _import_table(tree, self.module_name)

    def finding(self, rule: str, node: ast.AST, message: str) -> Finding:
        return Finding(
            rule=rule,
            path=self.path,
            line=getattr(node, "lineno", 1),
            col=getattr(node, "col_offset", 0),
            message=message,
        )

    def dotted(self, node: ast.AST) -> Optional[str]:
        return dotted_name(node, self.imports)


class Rule:
    """Base class: subclass, set ``id``/``summary``, implement ``check``.

    ``include``/``exclude`` are fnmatch glob tuples over repo-relative
    posix paths; an empty ``include`` means "everywhere".  Scoping lives
    on the rule (not the caller) so the repo's contract -- e.g. the
    parity rule only binds bit-exactness files -- is versioned with the
    rule itself.
    """

    id: str = ""
    summary: str = ""
    include: Tuple[str, ...] = ()
    exclude: Tuple[str, ...] = ()

    def applies_to(self, path: str) -> bool:
        if self.include and not any(fnmatch(path, pat) for pat in self.include):
            return False
        return not any(fnmatch(path, pat) for pat in self.exclude)

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        raise NotImplementedError


_REGISTRY: Dict[str, Type[Rule]] = {}


def register(rule_cls: Type[Rule]) -> Type[Rule]:
    """Class decorator adding a rule to the default registry."""
    if not rule_cls.id:
        raise ValueError(f"{rule_cls.__name__} has no rule id")
    if rule_cls.id in _REGISTRY:
        raise ValueError(f"duplicate rule id {rule_cls.id!r}")
    _REGISTRY[rule_cls.id] = rule_cls
    return rule_cls


def default_rules() -> List[Rule]:
    """Fresh instances of every registered rule, in registration order."""
    return [cls() for cls in _REGISTRY.values()]


def rule_ids() -> List[str]:
    return list(_REGISTRY)


# --------------------------------------------------------------------- #
# Name resolution helpers


def _module_name(path: str) -> str:
    """Dotted module name for a repo-relative path (best effort)."""
    parts = Path(path).with_suffix("").parts
    if parts and parts[0] == "src":
        parts = parts[1:]
    if parts and parts[-1] == "__init__":
        parts = parts[:-1]
    return ".".join(parts)


def _import_table(tree: ast.Module, module_name: str) -> Dict[str, str]:
    """Map local names to the dotted module path they were imported from.

    ``import numpy as np`` -> ``{"np": "numpy"}``;
    ``from time import perf_counter`` -> ``{"perf_counter": "time.perf_counter"}``.
    Relative imports are resolved against ``module_name``.
    """
    table: Dict[str, str] = {}
    package_parts = module_name.split(".")[:-1] if module_name else []
    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            for alias in node.names:
                if alias.asname:
                    table[alias.asname] = alias.name
                else:
                    table[alias.name.split(".")[0]] = alias.name.split(".")[0]
        elif isinstance(node, ast.ImportFrom):
            base = node.module or ""
            if node.level:
                prefix = package_parts[: len(package_parts) - (node.level - 1)]
                base = ".".join(prefix + ([node.module] if node.module else []))
            for alias in node.names:
                local = alias.asname or alias.name
                table[local] = f"{base}.{alias.name}" if base else alias.name
    return table


def imported_modules(
    tree: ast.Module, module_name: str, is_package: bool = False
) -> Set[str]:
    """Full dotted names of every module ``tree`` imports (best effort).

    This is the import-graph edge set the runner's content-addressed
    result cache walks: unlike :func:`_import_table` (which maps *local
    names* and therefore collapses ``import a.b.c`` to ``a``), this
    keeps the complete dotted path.  ``from base import name`` records
    both ``base`` and ``base.name`` because the AST cannot tell a
    submodule from a symbol; callers filter candidates against files
    that actually exist.  Relative imports resolve against
    ``module_name`` (pass ``is_package=True`` for ``__init__`` modules,
    whose package is the module itself rather than its parent).
    """
    parts = module_name.split(".") if module_name else []
    package_parts = parts if is_package else parts[:-1]
    out: Set[str] = set()
    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            for alias in node.names:
                out.add(alias.name)
        elif isinstance(node, ast.ImportFrom):
            base = node.module or ""
            if node.level:
                prefix = package_parts[: len(package_parts) - (node.level - 1)]
                base = ".".join(prefix + ([node.module] if node.module else []))
            if not base:
                continue
            out.add(base)
            for alias in node.names:
                if alias.name != "*":
                    out.add(f"{base}.{alias.name}")
    return out


def dotted_name(node: ast.AST, imports: Dict[str, str]) -> Optional[str]:
    """Resolve an attribute chain to a dotted path through the imports.

    ``np.random.default_rng`` resolves to ``numpy.random.default_rng``
    when ``np`` aliases numpy; unresolvable roots (``self.sim.process``)
    keep their literal spelling so rules can still pattern-match them.
    """
    parts: List[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(imports.get(node.id, node.id))
        return ".".join(reversed(parts))
    return None


# --------------------------------------------------------------------- #
# Pragmas


@dataclass
class _Pragmas:
    file_rules: Set[str] = field(default_factory=set)
    line_rules: Dict[int, Set[str]] = field(default_factory=dict)

    def suppresses(self, finding: Finding) -> bool:
        if finding.rule in self.file_rules or "*" in self.file_rules:
            return True
        rules = self.line_rules.get(finding.line)
        return rules is not None and (finding.rule in rules or "*" in rules)


def _collect_pragmas(source: str) -> _Pragmas:
    pragmas = _Pragmas()
    try:
        tokens = tokenize.generate_tokens(io.StringIO(source).readline)
        comments = [
            (tok.start[0], tok.string) for tok in tokens if tok.type == tokenize.COMMENT
        ]
    except (tokenize.TokenizeError, SyntaxError, IndentationError):
        # Fall back to a line scan; good enough for almost-parseable files.
        comments = [
            (i, line) for i, line in enumerate(source.splitlines(), 1) if "#" in line
        ]
    for lineno, text in comments:
        match = _PRAGMA_RE.search(text)
        if not match:
            continue
        kind, spec = match.groups()
        rules = {rule.strip() for rule in spec.split(",") if rule.strip()}
        if kind == "allow-file":
            pragmas.file_rules |= rules
        else:
            pragmas.line_rules.setdefault(lineno, set()).update(rules)
    return pragmas


# --------------------------------------------------------------------- #
# Drivers


@dataclass
class LintResult:
    """The outcome of one lint run."""

    findings: List[Finding]  # post-pragma, pre-baseline
    new_findings: List[Finding]  # after baseline subtraction
    grandfathered: int  # findings absorbed by the baseline
    suppressed: int  # findings silenced by pragmas
    files_scanned: int
    parse_errors: List[str] = field(default_factory=list)

    @property
    def clean(self) -> bool:
        return not self.new_findings and not self.parse_errors


def analyze_source(
    source: str,
    path: str = "<memory>",
    rules: Optional[Sequence[Rule]] = None,
) -> Tuple[List[Finding], int]:
    """Lint one source blob; returns (findings, pragma-suppressed count).

    ``path`` participates in rule scoping, so fixtures should pass a
    realistic repo-relative path (e.g. ``src/repro/foo.py``).
    """
    tree = ast.parse(source)
    ctx = FileContext(path, source, tree)
    pragmas = _collect_pragmas(source)
    active = [rule for rule in (rules if rules is not None else default_rules())
              if rule.applies_to(path)]
    kept: List[Finding] = []
    suppressed = 0
    for rule in active:
        for finding in rule.check(ctx):
            if pragmas.suppresses(finding):
                suppressed += 1
            else:
                kept.append(finding)
    kept.sort(key=lambda f: (f.path, f.line, f.col, f.rule))
    return kept, suppressed


def iter_python_files(root: Path, targets: Sequence[str]) -> List[Path]:
    """All ``.py`` files under ``targets`` (files or directories), sorted.

    Sorted traversal keeps reports (and baseline ordering) stable across
    filesystems -- the analyzer holds itself to its own ordering rule.
    """
    files: List[Path] = []
    for target in targets:
        base = root / target
        if base.is_file() and base.suffix == ".py":
            files.append(base)
        elif base.is_dir():
            for candidate in base.rglob("*.py"):
                if not _SKIP_DIRS.intersection(candidate.parts):
                    files.append(candidate)
    return sorted(set(files))


#: Targets the whole-program passes are built from.  Project rules
#: always see the full source tree (never a narrowed --changed-only
#: selection): an architecture cycle or a cross-module race is a
#: property of the program, not of the files that happened to change.
PROJECT_TARGETS: Tuple[str, ...] = ("src",)


def run_lint(
    root: Path,
    targets: Optional[Sequence[str]] = None,
    rules: Optional[Sequence[Rule]] = None,
    baseline: Optional["Baseline"] = None,
    project_rules: Optional[Sequence["object"]] = None,
) -> LintResult:
    """Lint ``targets`` under ``root`` and fold in a baseline if given.

    Per-file rules run over ``targets``; whole-program rules (see
    :mod:`repro.analysis.project`) run over :data:`PROJECT_TARGETS`
    regardless, falling back to ``targets`` for fixture roots with no
    ``src/``.  Pass ``project_rules=[]`` to disable them.
    """
    from repro.analysis.baseline import Baseline  # local: avoid import cycle
    from repro.analysis import project as project_mod

    root = Path(root)
    files = iter_python_files(root, list(targets) if targets else list(DEFAULT_TARGETS))
    all_findings: List[Finding] = []
    suppressed = 0
    errors: List[str] = []
    for file_path in files:
        rel = file_path.relative_to(root).as_posix()
        try:
            source = file_path.read_text(encoding="utf-8")
            findings, file_suppressed = analyze_source(source, rel, rules)
        except (SyntaxError, UnicodeDecodeError) as exc:
            errors.append(f"{rel}: {exc.__class__.__name__}: {exc}")
            continue
        all_findings.extend(findings)
        suppressed += file_suppressed
    active_project = (
        list(project_rules)
        if project_rules is not None
        else project_mod.default_project_rules()
    )
    if active_project:
        project, project_errors = project_mod.load_project(root, PROJECT_TARGETS)
        if not project.modules and targets:
            project, project_errors = project_mod.load_project(root, list(targets))
        for error in project_errors:
            if error not in errors:
                errors.append(error)
        pragma_cache: Dict[str, _Pragmas] = {}
        for rule in active_project:
            for finding in rule.check(project):  # type: ignore[attr-defined]
                pragmas = pragma_cache.get(finding.path)
                if pragmas is None:
                    info = project.module_for_path(finding.path)
                    pragmas = (
                        _collect_pragmas(info.source) if info is not None else _Pragmas()
                    )
                    pragma_cache[finding.path] = pragmas
                if pragmas.suppresses(finding):
                    suppressed += 1
                else:
                    all_findings.append(finding)
    all_findings.sort(key=lambda f: (f.path, f.line, f.col, f.rule))
    effective = baseline if baseline is not None else Baseline.empty()
    new_findings, grandfathered = effective.filter(all_findings)
    return LintResult(
        findings=all_findings,
        new_findings=new_findings,
        grandfathered=grandfathered,
        suppressed=suppressed,
        files_scanned=len(files),
        parse_errors=errors,
    )
