"""Whole-program analysis: the project context and project-rule registry.

PR 4's engine is per-file: a :class:`~repro.analysis.core.Rule` sees one
parsed module and nothing else.  The whole-program passes (architecture
layering, sim-process race detection, state-machine verification) need
the *project*: every module parsed, the resolved import-edge list with
each edge classified by when it executes, and enough symbol-table
structure to resolve a call across module boundaries.

A :class:`ProjectRule` receives one :class:`ProjectContext` and yields
ordinary :class:`~repro.analysis.core.Finding` objects; the driver
(:func:`~repro.analysis.core.run_lint`) applies the same pragma and
baseline machinery as per-file rules, keyed on the file each finding
lands in.  Project rules therefore compose with ``# lint: allow=...``
pragmas and the committed baseline exactly like everything else.

Import edges carry a ``kind``:

* ``toplevel`` -- executes at import time; these are the edges that can
  genuinely deadlock the interpreter in a cycle.
* ``lazy`` -- inside a function body; executes on first call.  A lazy
  edge cannot crash at import time but still couples the packages, so
  the layering pass flags it unless a pragma sanctions it.
* ``type_checking`` -- under ``if TYPE_CHECKING:``; erased at runtime
  and exempt from layering (this is how ``repro.obs`` stays a runtime
  leaf while still naming transcode types in annotations).
"""

from __future__ import annotations

import ast
from dataclasses import dataclass
from pathlib import Path
from typing import Dict, FrozenSet, Iterator, List, Optional, Sequence, Tuple, Type

from repro.analysis.core import (
    Finding,
    _import_table,
    _module_name,
    iter_python_files,
)

__all__ = [
    "GRAPH_JSON_VERSION",
    "ImportEdge",
    "ModuleInfo",
    "ProjectContext",
    "ProjectRule",
    "default_project_rules",
    "graph_document",
    "load_project",
    "project_rule_ids",
    "register_project",
    "render_dot",
]

#: Bump when the ``--graph --json`` document shape changes; downstream
#: tooling keys off this (and a CI schema check pins it).
GRAPH_JSON_VERSION = 1

_EDGE_KINDS = ("toplevel", "lazy", "type_checking")


@dataclass(frozen=True)
class ImportEdge:
    """One resolved module-to-module import."""

    src: str  # importing module (dotted name)
    dst: str  # imported project module (dotted name)
    path: str  # repo-relative path of the importing file
    line: int
    kind: str  # toplevel | lazy | type_checking


class ModuleInfo:
    """One parsed project module plus its local symbol tables."""

    def __init__(self, name: str, path: str, source: str, tree: ast.Module):
        self.name = name
        self.path = path
        self.source = source
        self.tree = tree
        self.is_package = Path(path).name == "__init__.py"
        self.imports = _import_table(tree, name)
        #: Top-level function defs by name.
        self.functions: Dict[str, ast.FunctionDef] = {}
        #: Top-level class defs by name.
        self.classes: Dict[str, ast.ClassDef] = {}
        #: Method defs by ``Class.method`` qualname.
        self.methods: Dict[str, ast.FunctionDef] = {}
        for node in tree.body:
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                self.functions[node.name] = node
            elif isinstance(node, ast.ClassDef):
                self.classes[node.name] = node
                for item in node.body:
                    if isinstance(item, (ast.FunctionDef, ast.AsyncFunctionDef)):
                        self.methods[f"{node.name}.{item.name}"] = item

    @property
    def package(self) -> Optional[str]:
        """Top-level package below ``repro`` ('' for repro itself)."""
        parts = self.name.split(".")
        if parts[0] != "repro":
            return None
        return parts[1] if len(parts) > 1 else ""


class ProjectContext:
    """Everything a whole-program rule may look at."""

    def __init__(self, modules: Sequence[ModuleInfo]):
        self.modules: Dict[str, ModuleInfo] = {m.name: m for m in modules}
        self.edges: List[ImportEdge] = []
        for info in self.iter_modules():
            self.edges.extend(_collect_edges(info, self.modules))

    @classmethod
    def from_sources(cls, sources: Dict[str, str]) -> "ProjectContext":
        """Build a context from ``{repo-relative-path: source}`` (tests)."""
        modules = []
        for path in sorted(sources):
            source = sources[path]
            modules.append(
                ModuleInfo(_module_name(path), path, source, ast.parse(source))
            )
        return cls(modules)

    def iter_modules(self) -> Iterator[ModuleInfo]:
        """Modules in dotted-name order (the canonical project walk)."""
        for name in sorted(self.modules):
            yield self.modules[name]

    def module_for_path(self, path: str) -> Optional[ModuleInfo]:
        for info in self.modules.values():
            if info.path == path:
                return info
        return None

    def resolve_module(self, dotted: str) -> Optional[str]:
        """Deepest project module named by a dotted path, if any.

        ``repro.control.jobs.JobRequest`` resolves to
        ``repro.control.jobs``: the AST cannot tell a symbol from a
        submodule, so candidates are matched longest-first against the
        modules that actually exist.
        """
        parts = dotted.split(".")
        while parts:
            name = ".".join(parts)
            if name in self.modules:
                return name
            parts.pop()
        return None


def _is_type_checking_test(test: ast.expr) -> bool:
    if isinstance(test, ast.Name):
        return test.id == "TYPE_CHECKING"
    return isinstance(test, ast.Attribute) and test.attr == "TYPE_CHECKING"


def _collect_edges(
    info: ModuleInfo, modules: Dict[str, ModuleInfo]
) -> List[ImportEdge]:
    """Classified, resolved import edges out of one module."""
    parts = info.name.split(".")
    package_parts = parts if info.is_package else parts[:-1]
    edges: List[ImportEdge] = []

    def resolve(dotted: str) -> Optional[str]:
        candidate = dotted.split(".")
        while candidate:
            name = ".".join(candidate)
            if name in modules:
                return name
            candidate.pop()
        return None

    def record(node: ast.AST, kind: str) -> None:
        targets: List[str] = []
        if isinstance(node, ast.Import):
            targets = [alias.name for alias in node.names]
        elif isinstance(node, ast.ImportFrom):
            base = node.module or ""
            if node.level:
                prefix = package_parts[: len(package_parts) - (node.level - 1)]
                base = ".".join(prefix + ([node.module] if node.module else []))
            if base:
                # ``from base import name`` may name submodules; resolve
                # both and keep whichever is deepest per alias.
                for alias in node.names:
                    if alias.name != "*":
                        targets.append(f"{base}.{alias.name}")
                if not node.names or all(a.name == "*" for a in node.names):
                    targets.append(base)
        seen = set()
        for dotted in targets or []:
            dst = resolve(dotted)
            if dst is None and isinstance(node, ast.ImportFrom):
                continue
            if dst is None or dst == info.name or dst in seen:
                continue
            seen.add(dst)
            edges.append(
                ImportEdge(
                    src=info.name,
                    dst=dst,
                    path=info.path,
                    line=getattr(node, "lineno", 1),
                    kind=kind,
                )
            )
        # `from base import *` / symbols that didn't resolve individually
        # still establish the base-module edge.
        if isinstance(node, ast.ImportFrom):
            base = node.module or ""
            if node.level:
                prefix = package_parts[: len(package_parts) - (node.level - 1)]
                base = ".".join(prefix + ([node.module] if node.module else []))
            dst = resolve(base) if base else None
            if dst is not None and dst != info.name and dst not in seen:
                edges.append(
                    ImportEdge(
                        src=info.name,
                        dst=dst,
                        path=info.path,
                        line=getattr(node, "lineno", 1),
                        kind=kind,
                    )
                )

    def visit(node: ast.AST, lazy: bool) -> None:
        for child in ast.iter_child_nodes(node):
            if isinstance(child, (ast.Import, ast.ImportFrom)):
                record(child, "lazy" if lazy else "toplevel")
            elif isinstance(child, ast.If) and _is_type_checking_test(child.test):
                for sub in ast.walk(child):
                    if isinstance(sub, (ast.Import, ast.ImportFrom)):
                        record(sub, "type_checking")
            elif isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)):
                visit(child, True)
            else:
                visit(child, lazy)

    visit(info.tree, False)
    return edges


# --------------------------------------------------------------------- #
# Project-rule registry (parallel to the per-file registry in core)


class ProjectRule:
    """Base class for whole-program passes.

    Subclass, set ``id``/``summary``, implement :meth:`check` over a
    :class:`ProjectContext`.  Findings land in specific files and are
    pragma/baseline-filtered by the driver like per-file findings.
    """

    id: str = ""
    summary: str = ""

    def check(self, project: ProjectContext) -> Iterator[Finding]:
        raise NotImplementedError


_PROJECT_REGISTRY: Dict[str, Type[ProjectRule]] = {}


def register_project(rule_cls: Type[ProjectRule]) -> Type[ProjectRule]:
    """Class decorator adding a project rule to the default registry."""
    if not rule_cls.id:
        raise ValueError(f"{rule_cls.__name__} has no rule id")
    if rule_cls.id in _PROJECT_REGISTRY:
        raise ValueError(f"duplicate project rule id {rule_cls.id!r}")
    _PROJECT_REGISTRY[rule_cls.id] = rule_cls
    return rule_cls


def _ensure_registered() -> None:
    """Import the pass modules so their ``@register_project`` runs.

    Local imports, because each pass module imports this one at top
    level; by the time anything *calls* the registry accessors, this
    module is fully initialised and the cycle is harmless.
    """
    from repro.analysis import layering, machines, races  # noqa: F401


def default_project_rules() -> List[ProjectRule]:
    """Fresh instances of every registered project rule, in order."""
    _ensure_registered()
    return [cls() for cls in _PROJECT_REGISTRY.values()]


def project_rule_ids() -> List[str]:
    _ensure_registered()
    return list(_PROJECT_REGISTRY)


# --------------------------------------------------------------------- #
# Loading and graph emission


def load_project(
    root: Path, targets: Sequence[str] = ("src",)
) -> Tuple[ProjectContext, List[str]]:
    """Parse every python file under ``targets`` into a project context.

    Returns ``(context, parse_errors)``; unparseable files are skipped
    and reported rather than raising, matching :func:`run_lint`.
    """
    root = Path(root)
    modules: List[ModuleInfo] = []
    errors: List[str] = []
    for file_path in iter_python_files(root, list(targets)):
        rel = file_path.relative_to(root).as_posix()
        try:
            source = file_path.read_text(encoding="utf-8")
            tree = ast.parse(source)
        except (SyntaxError, UnicodeDecodeError) as exc:
            errors.append(f"{rel}: {exc.__class__.__name__}: {exc}")
            continue
        modules.append(ModuleInfo(_module_name(rel), rel, source, tree))
    return ProjectContext(modules), errors


def _runtime_package_edges(
    project: ProjectContext,
) -> Dict[str, FrozenSet[str]]:
    """Package -> imported packages over runtime (non-TYPE_CHECKING) edges."""
    out: Dict[str, set] = {}
    for edge in project.edges:
        if edge.kind == "type_checking":
            continue
        src_info = project.modules[edge.src]
        dst_info = project.modules[edge.dst]
        sp, dp = src_info.package, dst_info.package
        if sp is None or dp is None or not sp or not dp or sp == dp:
            continue
        out.setdefault(sp, set()).add(dp)
    return {pkg: frozenset(deps) for pkg, deps in out.items()}


def graph_document(project: ProjectContext) -> Dict[str, object]:
    """The versioned, machine-readable import-graph document."""
    modules = [
        {"name": info.name, "path": info.path, "package": info.package}
        for info in project.iter_modules()
    ]
    edges = [
        {"src": e.src, "dst": e.dst, "kind": e.kind, "line": e.line}
        for e in sorted(
            project.edges, key=lambda e: (e.src, e.dst, e.kind, e.line)
        )
    ]
    packages = {
        pkg: sorted(deps)
        for pkg, deps in sorted(_runtime_package_edges(project).items())
    }
    return {
        "version": GRAPH_JSON_VERSION,
        "modules": modules,
        "edges": edges,
        "packages": packages,
    }


_DOT_STYLE = {
    "toplevel": "",
    "lazy": ' [style=dashed, label="lazy"]',
    "type_checking": ' [style=dotted, color=gray, label="typing"]',
}


def render_dot(project: ProjectContext) -> str:
    """Package-level DOT graph (toplevel solid, lazy dashed, typing dotted)."""
    kinds: Dict[Tuple[str, str], set] = {}
    for edge in project.edges:
        sp = project.modules[edge.src].package
        dp = project.modules[edge.dst].package
        if sp is None or dp is None or not sp or not dp or sp == dp:
            continue
        kinds.setdefault((sp, dp), set()).add(edge.kind)
    lines = [
        "digraph repro {",
        "  rankdir=BT;",
        '  node [shape=box, fontname="Helvetica"];',
    ]
    names = sorted(
        {p for pair in kinds for p in pair}
        | {
            info.package
            for info in project.modules.values()
            if info.package
        }
    )
    for name in names:
        lines.append(f'  "{name}";')
    for (sp, dp), edge_kinds in sorted(kinds.items()):
        # Strongest kind wins the styling: toplevel > lazy > typing.
        for kind in _EDGE_KINDS:
            if kind in edge_kinds:
                lines.append(f'  "{sp}" -> "{dp}"{_DOT_STYLE[kind]};')
                break
    lines.append("}")
    return "\n".join(lines) + "\n"
