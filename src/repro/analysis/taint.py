"""Flow-sensitive determinism taint: catch laundered ambient values.

The per-file :class:`~repro.analysis.rules.DeterminismRule` flags the
*call sites* of wall-clock and ambient-RNG sources.  That misses the
laundering pattern::

    def _stamp():
        t = time.time()          # flagged by `determinism` (call site)
        return t                 # ...but the taint escapes here

    def build_id():
        return f"job-{_stamp()}" # ...and spreads here, unflagged

This pass tracks values *derived from* ambient sources through
assignments, arithmetic, containers, tuple unpacking, and intra-module
calls (a function whose return is tainted taints its call sites), and
reports where taint escapes a local scope: function returns/yields,
``self.*`` attribute stores, and module- or class-level state.

Two deliberate scoping choices:

* A seed on a line pragma'd for ``determinism`` (or this rule) is
  *sanctioned* and does not start taint — the perf harness reads
  ``time.perf_counter()`` behind pragmas and may do arithmetic on it
  freely.  Suppressing the call site means "this ambient read is fine",
  so its derivatives are too.
* A finding is only raised when the escape line differs from the seed
  line; same-line escapes (``return time.time()``) are already exactly
  the `determinism` call-site finding, and double-reporting breeds
  pragma noise.
"""

from __future__ import annotations

import ast
from fnmatch import fnmatch
from typing import Dict, Iterator, List, NamedTuple, Optional, Sequence, Set, Tuple

from repro.analysis.core import (
    FileContext,
    Finding,
    Rule,
    _collect_pragmas,
    register,
)
from repro.analysis.rules import DeterminismRule, _functions

__all__ = ["DeterminismTaintRule"]


class _Prov(NamedTuple):
    """Where a tainted value ultimately came from."""

    desc: str  # dotted source, e.g. "time.time"
    line: int  # line of the seeding call


_NESTED_SCOPES = (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef, ast.Lambda)


def _scope_statements(stmts: Sequence[ast.stmt]) -> Iterator[ast.stmt]:
    """Statements of one scope in source order, without entering defs."""
    for stmt in stmts:
        yield stmt
        if isinstance(stmt, _NESTED_SCOPES):
            continue
        nested: List[ast.stmt] = []
        for child in ast.iter_child_nodes(stmt):
            if isinstance(child, ast.stmt):
                nested.append(child)
            elif isinstance(child, ast.ExceptHandler):
                nested.extend(child.body)
        if nested:
            yield from _scope_statements(nested)


@register
class DeterminismTaintRule(Rule):
    """Values derived from ambient time/RNG must not escape their scope."""

    id = "determinism-taint"
    summary = (
        "values derived from wall-clock/ambient-RNG sources must not be "
        "returned, yielded, or stored into object/module state"
    )
    exclude = ("src/repro/sim/rng.py",)

    #: Same carve-out as the call-site rule: a test's own seeded
    #: generator is a sanctioned source; wall clock stays banned.
    NP_RANDOM_EXEMPT = DeterminismRule.NP_RANDOM_EXEMPT

    _MAX_FIXPOINT_ROUNDS = 10

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        analysis = _ModuleTaint(self, ctx)
        yield from analysis.run()

    # -- seed classification -------------------------------------------- #

    def seed_description(
        self, node: ast.Call, ctx: FileContext, np_banned: bool
    ) -> Optional[str]:
        dotted = ctx.dotted(node.func)
        if dotted is None:
            return None
        if dotted in DeterminismRule.WALL_CLOCK:
            return dotted
        if dotted.startswith("random."):
            return dotted
        if np_banned and dotted.startswith("numpy.random."):
            func = dotted[len("numpy.random.") :]
            if func[:1].islower():
                return dotted
        return None


class _ModuleTaint:
    """One module's taint analysis: per-scope dataflow + call fixpoint."""

    def __init__(self, rule: DeterminismTaintRule, ctx: FileContext):
        self.rule = rule
        self.ctx = ctx
        self.np_banned = not any(
            fnmatch(ctx.path, pat) for pat in rule.NP_RANDOM_EXEMPT
        )
        self.pragmas = _collect_pragmas(ctx.source)
        #: callable name -> provenance, for functions returning taint.
        self.fn_taint: Dict[str, _Prov] = {}

    def run(self) -> Iterator[Finding]:
        functions = list(_functions(self.ctx.tree))
        # Fixpoint over the intra-module call graph: a function whose
        # return is tainted taints its callers' dataflow next round.
        for _ in range(self.rule._MAX_FIXPOINT_ROUNDS):
            changed = False
            for func in functions:
                _, ret = self._analyze_scope(func.body, emit=False)
                if ret is not None and func.name not in self.fn_taint:
                    self.fn_taint[func.name] = ret
                    changed = True
            if not changed:
                break
        findings: List[Finding] = []
        for func in functions:
            scope_findings, _ = self._analyze_scope(
                func.body, emit=True, func_name=func.name
            )
            findings.extend(scope_findings)
        findings.extend(self._check_module_and_class_state())
        findings.sort(key=lambda f: (f.line, f.col, f.message))
        return iter(findings)

    # -- sanctioned seeds ------------------------------------------------ #

    def _sanctioned(self, line: int) -> bool:
        for rule_id in ("determinism", DeterminismTaintRule.id):
            probe = Finding(
                rule=rule_id, path=self.ctx.path, line=line, col=0, message=""
            )
            if self.pragmas.suppresses(probe):
                return True
        return False

    # -- expression taint ------------------------------------------------ #

    def _expr_taint(
        self, expr: Optional[ast.expr], tainted: Dict[str, _Prov]
    ) -> Optional[_Prov]:
        if expr is None:
            return None
        for node in ast.walk(expr):
            if isinstance(node, ast.Call):
                desc = self.rule.seed_description(node, self.ctx, self.np_banned)
                if desc is not None and not self._sanctioned(node.lineno):
                    return _Prov(desc, node.lineno)
                callee = self._callee_name(node.func)
                if callee is not None and callee in self.fn_taint:
                    return self.fn_taint[callee]
            elif isinstance(node, ast.Name) and node.id in tainted:
                return tainted[node.id]
            elif isinstance(node, ast.Attribute):
                pseudo = self._self_attr(node)
                if pseudo is not None and pseudo in tainted:
                    return tainted[pseudo]
        return None

    @staticmethod
    def _callee_name(func: ast.expr) -> Optional[str]:
        if isinstance(func, ast.Name):
            return func.id
        if (
            isinstance(func, ast.Attribute)
            and isinstance(func.value, ast.Name)
            and func.value.id == "self"
        ):
            return func.attr
        return None

    @staticmethod
    def _self_attr(node: ast.expr) -> Optional[str]:
        if (
            isinstance(node, ast.Attribute)
            and isinstance(node.value, ast.Name)
            and node.value.id == "self"
        ):
            return f"self.{node.attr}"
        return None

    def _target_names(self, target: ast.expr) -> List[str]:
        if isinstance(target, ast.Name):
            return [target.id]
        pseudo = self._self_attr(target)
        if pseudo is not None:
            return [pseudo]
        if isinstance(target, (ast.Tuple, ast.List)):
            out: List[str] = []
            for elt in target.elts:
                if isinstance(elt, ast.Starred):
                    elt = elt.value
                out.extend(self._target_names(elt))
            return out
        return []

    # -- scope analysis -------------------------------------------------- #

    def _analyze_scope(
        self,
        body: Sequence[ast.stmt],
        emit: bool,
        func_name: Optional[str] = None,
    ) -> Tuple[List[Finding], Optional[_Prov]]:
        """Dataflow over one function scope.

        Returns (findings-if-emitting, provenance of a tainted
        return/yield if any).  Runs the statement scan to a local
        fixpoint first so taint flows regardless of textual order
        (loops can carry values backwards).
        """
        tainted: Dict[str, _Prov] = {}
        for _ in range(self.rule._MAX_FIXPOINT_ROUNDS):
            before = len(tainted)
            self._scan(body, tainted, emit=False, findings=[], func_name=func_name)
            if len(tainted) == before:
                break
        findings: List[Finding] = []
        ret = self._scan(
            body, tainted, emit=emit, findings=findings, func_name=func_name
        )
        return findings, ret

    def _scan(
        self,
        body: Sequence[ast.stmt],
        tainted: Dict[str, _Prov],
        emit: bool,
        findings: List[Finding],
        func_name: Optional[str],
    ) -> Optional[_Prov]:
        escape: Optional[_Prov] = None

        def store(target: ast.expr, prov: _Prov, stmt: ast.stmt) -> None:
            for name in self._target_names(target):
                tainted.setdefault(name, prov)
                if (
                    emit
                    and name.startswith("self.")
                    and prov.line != stmt.lineno
                ):
                    findings.append(
                        Finding(
                            rule=self.rule.id,
                            path=self.ctx.path,
                            line=stmt.lineno,
                            col=stmt.col_offset,
                            message=(
                                f"'{func_name}' stores a value derived from "
                                f"ambient source '{prov.desc}' on "
                                f"'{name}'; object state must be virtual-"
                                "time/seeded-generator derived"
                            ),
                        )
                    )

        for stmt in _scope_statements(body):
            if isinstance(stmt, ast.Assign):
                prov = self._expr_taint(stmt.value, tainted)
                if prov is not None:
                    for target in stmt.targets:
                        store(target, prov, stmt)
            elif isinstance(stmt, ast.AnnAssign) and stmt.value is not None:
                prov = self._expr_taint(stmt.value, tainted)
                if prov is not None:
                    store(stmt.target, prov, stmt)
            elif isinstance(stmt, ast.AugAssign):
                prov = self._expr_taint(stmt.value, tainted)
                if prov is not None:
                    store(stmt.target, prov, stmt)
            elif isinstance(stmt, (ast.For, ast.AsyncFor)):
                prov = self._expr_taint(stmt.iter, tainted)
                if prov is not None:
                    store(stmt.target, prov, stmt)
            elif isinstance(stmt, (ast.With, ast.AsyncWith)):
                for item in stmt.items:
                    prov = self._expr_taint(item.context_expr, tainted)
                    if prov is not None and item.optional_vars is not None:
                        store(item.optional_vars, prov, stmt)
            elif isinstance(stmt, ast.Return):
                prov = self._expr_taint(stmt.value, tainted)
                if prov is not None:
                    escape = escape or prov
                    if emit and prov.line != stmt.lineno:
                        findings.append(
                            Finding(
                                rule=self.rule.id,
                                path=self.ctx.path,
                                line=stmt.lineno,
                                col=stmt.col_offset,
                                message=(
                                    f"'{func_name}' returns a value derived "
                                    f"from ambient source '{prov.desc}'; "
                                    "determinism leaks to every caller -- "
                                    "plumb sim.now or an explicit Generator"
                                ),
                            )
                        )
            elif isinstance(stmt, ast.Expr) and isinstance(
                stmt.value, (ast.Yield, ast.YieldFrom)
            ):
                value = stmt.value.value
                prov = self._expr_taint(value, tainted)
                if prov is not None:
                    escape = escape or prov
                    if emit and prov.line != stmt.lineno:
                        findings.append(
                            Finding(
                                rule=self.rule.id,
                                path=self.ctx.path,
                                line=stmt.lineno,
                                col=stmt.col_offset,
                                message=(
                                    f"'{func_name}' yields a value derived "
                                    f"from ambient source '{prov.desc}'; "
                                    "determinism leaks to every consumer -- "
                                    "plumb sim.now or an explicit Generator"
                                ),
                            )
                        )
        return escape

    # -- module- and class-level state ----------------------------------- #

    def _check_module_and_class_state(self) -> List[Finding]:
        findings: List[Finding] = []
        module_tainted: Dict[str, _Prov] = {}

        def check_body(
            stmts: Sequence[ast.stmt], owner: Optional[str]
        ) -> None:
            for stmt in _scope_statements(stmts):
                if isinstance(stmt, ast.Assign):
                    targets = stmt.targets
                    value = stmt.value
                elif isinstance(stmt, ast.AnnAssign) and stmt.value is not None:
                    targets = [stmt.target]
                    value = stmt.value
                else:
                    continue
                prov = self._expr_taint(value, module_tainted)
                if prov is None:
                    continue
                for target in targets:
                    for name in self._target_names(target):
                        if owner is None:
                            module_tainted.setdefault(name, prov)
                        display = name if owner is None else f"{owner}.{name}"
                        kind = "module-level" if owner is None else "class-level"
                        if prov.line != stmt.lineno:
                            findings.append(
                                Finding(
                                    rule=self.rule.id,
                                    path=self.ctx.path,
                                    line=stmt.lineno,
                                    col=stmt.col_offset,
                                    message=(
                                        f"{kind} state '{display}' is seeded "
                                        f"from ambient source '{prov.desc}'; "
                                        "import-time ambient reads make runs "
                                        "unreproducible"
                                    ),
                                )
                            )

        check_body(self.ctx.tree.body, owner=None)
        for node in ast.walk(self.ctx.tree):
            if isinstance(node, ast.ClassDef):
                check_body(node.body, owner=node.name)
        return findings
