"""State-machine verifier: declared transition tables vs. runtime sites.

The repo hand-maintains two production state machines -- the job
lifecycle (``repro.control.jobs.LEGAL_TRANSITIONS``) and the worker
health ladder (``repro.cluster.health.LEGAL_HEALTH_TRANSITIONS``) --
and enforces them only at runtime, deep inside a simulated day.  This
pass proves the static picture instead:

* **Table well-formedness** -- every enum member has an entry, every
  entry names real members, no declared self-loops (the choke points
  no-op same-state sets), every state reachable from the initial set.
* **Site legality** -- every call site of the choke method (or a
  declared wrapper) with a literal target is checked against the table.
  Where the surrounding code narrows the source state (``if self.health
  is not QUARANTINED: raise`` and ``in (...)``/``not in (...)`` guards,
  including early-exit branches), each possible (source, target) pair
  must be declared; unguarded sites are checked for target
  *enterability* and left to the runtime choke for the rest.
* **Coverage** -- every declared transition must be performable by at
  least one site, so dead table entries (or missing implementations)
  surface at lint time, not in a post-mortem.
* **Choke discipline** -- no assignment writes the state attribute
  outside the choke method (``__init__`` may set an initial state);
  calls with a non-literal target are only legal inside the declared
  choke/wrapper bodies.

Adding a machine is one :class:`MachineSpec` in ``DEFAULT_MACHINES``.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass
from typing import (
    Dict,
    FrozenSet,
    Iterator,
    List,
    Optional,
    Sequence,
    Set,
    Tuple,
)

from repro.analysis.core import Finding
from repro.analysis.project import (
    ModuleInfo,
    ProjectContext,
    ProjectRule,
    register_project,
)

__all__ = ["DEFAULT_MACHINES", "MachineSpec", "StateMachineRule"]


@dataclass(frozen=True)
class MachineSpec:
    """One hand-maintained state machine and where its pieces live."""

    name: str  # human handle used in messages
    enum_module: str  # module defining the state enum
    enum_name: str  # e.g. "JobState"
    table_module: str  # module declaring the transition table
    table_name: str  # e.g. "LEGAL_TRANSITIONS"
    choke_module: str  # module defining the choke point
    choke_class: str  # class owning the choke method
    choke_method: str  # the one method allowed to write the state
    state_attr: str  # attribute holding the state, e.g. "state"
    initial: Tuple[str, ...]  # members legal as constructed state
    #: (module, class, method) triples that forward to the choke with a
    #: dynamic argument; their call sites are treated as choke calls.
    wrappers: Tuple[Tuple[str, str, str], ...] = ()
    #: Top-level packages whose modules are scanned for sites and stray
    #: writes; keeps generic method names from matching unrelated code.
    scope_packages: Tuple[str, ...] = ()


JOB_LIFECYCLE = MachineSpec(
    name="job-lifecycle",
    enum_module="repro.control.jobs",
    enum_name="JobState",
    table_module="repro.control.jobs",
    table_name="LEGAL_TRANSITIONS",
    choke_module="repro.control.jobs",
    choke_class="Job",
    choke_method="transition",
    state_attr="state",
    initial=("QUEUED",),
    wrappers=(("repro.control.queue", "JobLedger", "transition"),),
    scope_packages=("control",),
)

WORKER_HEALTH = MachineSpec(
    name="worker-health",
    enum_module="repro.cluster.health",
    enum_name="HealthState",
    table_module="repro.cluster.health",
    table_name="LEGAL_HEALTH_TRANSITIONS",
    choke_module="repro.cluster.worker",
    choke_class="VcuWorker",
    choke_method="_set_health",
    state_attr="health",
    initial=("HEALTHY",),
    scope_packages=("cluster",),
)

FIRMWARE_ROLLOUT = MachineSpec(
    name="firmware-rollout",
    enum_module="repro.control.canary",
    enum_name="RolloutStage",
    table_module="repro.control.canary",
    table_name="LEGAL_ROLLOUT_TRANSITIONS",
    choke_module="repro.control.canary",
    choke_class="FirmwareRollout",
    choke_method="_set_stage",
    state_attr="stage",
    initial=("BASELINE",),
    scope_packages=("control",),
)

DEFAULT_MACHINES: Tuple[MachineSpec, ...] = (
    JOB_LIFECYCLE,
    WORKER_HEALTH,
    FIRMWARE_ROLLOUT,
)


@dataclass
class _Site:
    """One runtime transition call with a literal target."""

    path: str
    line: int
    col: int
    target: str
    sources: Optional[FrozenSet[str]]  # None = unguarded (any state)


@register_project
class StateMachineRule(ProjectRule):
    """Prove declared transition tables and runtime sites agree."""

    id = "state-machine"
    summary = (
        "transition tables are well-formed, every site is legal, every "
        "declared transition has a site, state writes go through the choke"
    )

    def __init__(self, specs: Optional[Sequence[MachineSpec]] = None) -> None:
        self.specs = tuple(DEFAULT_MACHINES if specs is None else specs)

    def check(self, project: ProjectContext) -> Iterator[Finding]:
        findings: List[Finding] = []
        for spec in self.specs:
            findings.extend(_MachineCheck(self.id, spec, project).run())
        findings.sort(key=lambda f: (f.path, f.line, f.message))
        return iter(findings)


class _MachineCheck:
    def __init__(self, rule_id: str, spec: MachineSpec, project: ProjectContext):
        self.rule_id = rule_id
        self.spec = spec
        self.project = project
        self.findings: List[Finding] = []

    def run(self) -> List[Finding]:
        spec = self.spec
        enum_mod = self.project.modules.get(spec.enum_module)
        if enum_mod is None:
            return []  # machine not present in this project (fixtures)
        members = self._enum_members(enum_mod)
        if members is None:
            self._emit(
                enum_mod.path, 1, 0,
                f"[{spec.name}] enum '{spec.enum_name}' not found in "
                f"{spec.enum_module}",
            )
            return self.findings
        table_mod = self.project.modules.get(spec.table_module)
        table = self._declared_table(table_mod, members) if table_mod else None
        if table is None:
            anchor = table_mod or enum_mod
            self._emit(
                anchor.path, 1, 0,
                f"[{spec.name}] transition table '{spec.table_name}' not "
                f"found in {spec.table_module}; declare it so transitions "
                "are verifiable",
            )
            return self.findings
        declared, table_line = table
        self._check_well_formed(members, declared, table_mod, table_line)
        sites = self._collect_sites(members)
        self._check_legality(members, declared, sites)
        self._check_coverage(members, declared, sites, table_mod, table_line)
        self._check_stray_writes(members)
        return self.findings

    def _emit(self, path: str, line: int, col: int, message: str) -> None:
        self.findings.append(
            Finding(rule=self.rule_id, path=path, line=line, col=col,
                    message=message)
        )

    # -- extraction ------------------------------------------------------- #

    def _enum_members(self, info: ModuleInfo) -> Optional[List[str]]:
        cls = info.classes.get(self.spec.enum_name)
        if cls is None:
            return None
        members: List[str] = []
        for stmt in cls.body:
            if isinstance(stmt, ast.Assign):
                for target in stmt.targets:
                    if isinstance(target, ast.Name) and not target.id.startswith("_"):
                        members.append(target.id)
        return members or None

    def _member_literal(self, expr: ast.expr, members: Sequence[str]) -> Optional[str]:
        """``EnumName.MEMBER`` (or ``mod.EnumName.MEMBER``) -> member name."""
        if not isinstance(expr, ast.Attribute) or expr.attr not in members:
            return None
        base = expr.value
        if isinstance(base, ast.Name) and base.id == self.spec.enum_name:
            return expr.attr
        if isinstance(base, ast.Attribute) and base.attr == self.spec.enum_name:
            return expr.attr
        return None

    def _declared_table(
        self, info: ModuleInfo, members: Sequence[str]
    ) -> Optional[Tuple[Dict[str, Tuple[str, ...]], int]]:
        for stmt in info.tree.body:
            target: Optional[ast.expr] = None
            value: Optional[ast.expr] = None
            if isinstance(stmt, ast.Assign) and len(stmt.targets) == 1:
                target, value = stmt.targets[0], stmt.value
            elif isinstance(stmt, ast.AnnAssign):
                target, value = stmt.target, stmt.value
            if not (
                isinstance(target, ast.Name)
                and target.id == self.spec.table_name
                and isinstance(value, ast.Dict)
            ):
                continue
            table: Dict[str, Tuple[str, ...]] = {}
            for key_expr, value_expr in zip(value.keys, value.values):
                key = self._member_literal(key_expr, members) if key_expr else None
                if key is None:
                    self._emit(
                        info.path, getattr(key_expr, "lineno", stmt.lineno), 0,
                        f"[{self.spec.name}] {self.spec.table_name} key is "
                        f"not a {self.spec.enum_name} member literal",
                    )
                    continue
                targets: List[str] = []
                elts = (
                    value_expr.elts
                    if isinstance(value_expr, (ast.Tuple, ast.List, ast.Set))
                    else [value_expr]
                )
                for elt in elts:
                    member = self._member_literal(elt, members)
                    if member is None:
                        self._emit(
                            info.path, getattr(elt, "lineno", stmt.lineno), 0,
                            f"[{self.spec.name}] {self.spec.table_name}"
                            f"[{key}] contains a non-member entry",
                        )
                        continue
                    targets.append(member)
                table[key] = tuple(targets)
            return table, stmt.lineno
        return None

    # -- well-formedness --------------------------------------------------- #

    def _check_well_formed(
        self,
        members: Sequence[str],
        declared: Dict[str, Tuple[str, ...]],
        info: ModuleInfo,
        line: int,
    ) -> None:
        spec = self.spec
        for member in members:
            if member not in declared:
                self._emit(
                    info.path, line, 0,
                    f"[{spec.name}] state '{member}' has no entry in "
                    f"{spec.table_name}; declare its outgoing transitions "
                    "(empty tuple for terminal states)",
                )
        for source, targets in sorted(declared.items()):
            if source in targets:
                self._emit(
                    info.path, line, 0,
                    f"[{spec.name}] declared self-loop '{source} -> "
                    f"{source}'; the choke point no-ops same-state sets, "
                    "remove the entry",
                )
        for member in spec.initial:
            if member not in members:
                self._emit(
                    info.path, line, 0,
                    f"[{spec.name}] initial state '{member}' is not a "
                    f"{spec.enum_name} member",
                )
        reachable: Set[str] = set(m for m in spec.initial if m in members)
        frontier = list(reachable)
        while frontier:
            state = frontier.pop()
            for target in declared.get(state, ()):
                if target not in reachable:
                    reachable.add(target)
                    frontier.append(target)
        for member in members:
            if member not in reachable:
                self._emit(
                    info.path, line, 0,
                    f"[{spec.name}] state '{member}' is unreachable from "
                    f"initial {{{', '.join(spec.initial)}}}; every state "
                    "must be enterable or deleted",
                )

    # -- site collection ---------------------------------------------------- #

    def _scoped_modules(self) -> List[ModuleInfo]:
        out = []
        for info in self.project.iter_modules():
            pkg = info.package
            if not self.spec.scope_packages or (
                pkg is not None and pkg in self.spec.scope_packages
            ):
                out.append(info)
        return out

    def _is_choke_or_wrapper(
        self, module: str, cls: Optional[str], method: str
    ) -> bool:
        spec = self.spec
        if (
            module == spec.choke_module
            and cls == spec.choke_class
            and method == spec.choke_method
        ):
            return True
        return (module, cls, method) in {
            (m, c, f) for m, c, f in spec.wrappers
        }

    def _collect_sites(self, members: Sequence[str]) -> List[_Site]:
        spec = self.spec
        method_names = {spec.choke_method} | {m for _, _, m in spec.wrappers}
        sites: List[_Site] = []
        for info in self._scoped_modules():
            for qual, func in sorted(
                {**info.functions, **info.methods}.items()
            ):
                cls = qual.split(".", 1)[0] if "." in qual else None
                method = qual.split(".", 1)[1] if "." in qual else qual
                exempt = self._is_choke_or_wrapper(info.name, cls, method)
                narrower = _GuardNarrower(
                    self, members, info, func, method_names, sites, exempt
                )
                narrower.walk(func.body, {})
        return sites

    # -- legality / coverage ------------------------------------------------ #

    def _check_legality(
        self,
        members: Sequence[str],
        declared: Dict[str, Tuple[str, ...]],
        sites: List[_Site],
    ) -> None:
        spec = self.spec
        enterable = {t for targets in declared.values() for t in targets}
        for site in sites:
            if site.sources is not None:
                for source in sorted(site.sources):
                    if source == site.target:
                        continue  # same-state set: the choke no-ops it
                    if site.target not in declared.get(source, ()):
                        self._emit(
                            site.path, site.line, site.col,
                            f"[{spec.name}] transition site performs "
                            f"'{source} -> {site.target}', which "
                            f"{spec.table_name} does not declare",
                        )
            elif site.target not in enterable:
                self._emit(
                    site.path, site.line, site.col,
                    f"[{spec.name}] transition site targets "
                    f"'{site.target}', which no declared transition "
                    "enters; the runtime choke would raise on every call",
                )

    def _check_coverage(
        self,
        members: Sequence[str],
        declared: Dict[str, Tuple[str, ...]],
        sites: List[_Site],
        info: ModuleInfo,
        line: int,
    ) -> None:
        spec = self.spec
        for source in sorted(declared):
            for target in declared[source]:
                covered = any(
                    site.target == target
                    and (site.sources is None or source in site.sources)
                    for site in sites
                )
                if not covered:
                    self._emit(
                        info.path, line, 0,
                        f"[{spec.name}] declared transition '{source} -> "
                        f"{target}' has no runtime site; remove the dead "
                        "table entry or implement the transition",
                    )

    # -- stray writes -------------------------------------------------------- #

    def _check_stray_writes(self, members: Sequence[str]) -> None:
        spec = self.spec
        for info in self._scoped_modules():
            for qual, func in sorted({**info.functions, **info.methods}.items()):
                cls = qual.split(".", 1)[0] if "." in qual else None
                method = qual.split(".", 1)[1] if "." in qual else qual
                if (
                    info.name == spec.choke_module
                    and cls == spec.choke_class
                    and method == spec.choke_method
                ):
                    continue  # the choke itself writes the attribute
                for node in ast.walk(func):
                    targets: List[ast.expr] = []
                    value: Optional[ast.expr] = None
                    if isinstance(node, ast.Assign):
                        targets, value = list(node.targets), node.value
                    elif isinstance(node, ast.AnnAssign):
                        targets, value = [node.target], node.value
                    elif isinstance(node, ast.AugAssign):
                        targets, value = [node.target], node.value
                    for target in targets:
                        if not (
                            isinstance(target, ast.Attribute)
                            and target.attr == spec.state_attr
                        ):
                            continue
                        literal = (
                            self._member_literal(value, members)
                            if value is not None
                            else None
                        )
                        in_choke_class = (
                            info.name == spec.choke_module
                            and cls == spec.choke_class
                        )
                        if literal is None and not in_choke_class:
                            continue  # unrelated attribute named alike
                        if method == "__init__" and literal in spec.initial:
                            continue  # constructors may set an initial state
                        self._emit(
                            info.path, node.lineno, node.col_offset,
                            f"[{spec.name}] direct write to "
                            f"'{spec.state_attr}' bypasses "
                            f"{spec.choke_class}.{spec.choke_method}; all "
                            "transitions must go through the choke point",
                        )

    # helper used by _GuardNarrower
    def member_literal(self, expr: ast.expr, members: Sequence[str]) -> Optional[str]:
        return self._member_literal(expr, members)


class _GuardNarrower:
    """Walk one function body tracking state-attr narrowing per owner.

    The narrowing domain maps an *owner expression* (the text before
    ``.state_attr`` -- ``self``, or the name of the object passed to a
    wrapper) to the set of states it may hold on the current path.
    ``None`` (absent) means "any state".
    """

    def __init__(
        self,
        check: _MachineCheck,
        members: Sequence[str],
        info: ModuleInfo,
        func: ast.FunctionDef,
        method_names: Set[str],
        sites: List[_Site],
        exempt: bool,
    ):
        self.check = check
        self.spec = check.spec
        self.members = tuple(members)
        self.info = info
        self.func = func
        self.method_names = method_names
        self.sites = sites
        self.exempt = exempt

    # -- guard interpretation --------------------------------------------- #

    def _owner_of(self, expr: ast.expr) -> Optional[str]:
        """``<owner>.<state_attr>`` -> textual owner, else None."""
        if not (
            isinstance(expr, ast.Attribute) and expr.attr == self.spec.state_attr
        ):
            return None
        if isinstance(expr.value, ast.Name):
            return expr.value.id
        return None

    def _narrow_test(
        self, test: ast.expr, env: Dict[str, FrozenSet[str]]
    ) -> Tuple[Dict[str, FrozenSet[str]], Dict[str, FrozenSet[str]]]:
        """(then-env, else-env) after a guard."""
        then_env = dict(env)
        else_env = dict(env)
        if isinstance(test, ast.BoolOp) and isinstance(test.op, ast.And):
            # Then-branch narrows through every conjunct; the else branch
            # learns nothing (any conjunct may have failed).
            for sub in test.values:
                then_env, _ = self._narrow_test(sub, then_env)
            return then_env, else_env
        if not isinstance(test, ast.Compare) or len(test.ops) != 1:
            return then_env, else_env
        owner = self._owner_of(test.left)
        if owner is None:
            return then_env, else_env
        op = test.ops[0]
        comparator = test.comparators[0]
        universe = frozenset(self.members)
        current = env.get(owner, universe)
        if isinstance(op, (ast.Is, ast.Eq)):
            member = self.check.member_literal(comparator, self.members)
            if member is not None:
                then_env[owner] = current & {member}
                else_env[owner] = current - {member}
        elif isinstance(op, (ast.IsNot, ast.NotEq)):
            member = self.check.member_literal(comparator, self.members)
            if member is not None:
                then_env[owner] = current - {member}
                else_env[owner] = current & {member}
        elif isinstance(op, (ast.In, ast.NotIn)) and isinstance(
            comparator, (ast.Tuple, ast.List, ast.Set)
        ):
            group = frozenset(
                m
                for elt in comparator.elts
                for m in [self.check.member_literal(elt, self.members)]
                if m is not None
            )
            if group:
                if isinstance(op, ast.In):
                    then_env[owner] = current & group
                    else_env[owner] = current - group
                else:
                    then_env[owner] = current - group
                    else_env[owner] = current & group
        return then_env, else_env

    @staticmethod
    def _always_exits(body: Sequence[ast.stmt]) -> bool:
        for stmt in body:
            if isinstance(stmt, (ast.Return, ast.Raise, ast.Break, ast.Continue)):
                return True
        return False

    # -- traversal ---------------------------------------------------------- #

    def walk(
        self, body: Sequence[ast.stmt], env: Dict[str, FrozenSet[str]]
    ) -> None:
        env = dict(env)
        for stmt in body:
            if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)):
                continue  # nested scopes handled as their own functions
            if isinstance(stmt, ast.If):
                then_env, else_env = self._narrow_test(stmt.test, env)
                self.walk(stmt.body, then_env)
                self.walk(stmt.orelse, else_env)
                # Early-exit narrowing: `if <bad>: return/raise` leaves the
                # else-knowledge in force for the rest of the scope.
                if self._always_exits(stmt.body) and not stmt.orelse:
                    env = else_env
                elif stmt.orelse and self._always_exits(stmt.orelse):
                    env = then_env
                continue
            if isinstance(stmt, (ast.For, ast.AsyncFor, ast.While)):
                self.walk(stmt.body, env)
                self.walk(stmt.orelse, env)
                continue
            if isinstance(stmt, (ast.With, ast.AsyncWith)):
                self.walk(stmt.body, env)
                continue
            if isinstance(stmt, ast.Try):
                self.walk(stmt.body, env)
                for handler in stmt.handlers:
                    self.walk(handler.body, env)
                self.walk(stmt.orelse, env)
                self.walk(stmt.finalbody, env)
                continue
            self._scan_statement(stmt, env)

    def _scan_statement(
        self, stmt: ast.stmt, env: Dict[str, FrozenSet[str]]
    ) -> None:
        for node in ast.walk(stmt):
            if not (
                isinstance(node, ast.Call)
                and isinstance(node.func, ast.Attribute)
                and node.func.attr in self.method_names
            ):
                continue
            target: Optional[str] = None
            index: Optional[int] = None
            for i, arg in enumerate(node.args):
                member = self.check.member_literal(arg, self.members)
                if member is not None:
                    target, index = member, i
                    break
            if target is None:
                for kw in node.keywords:
                    member = (
                        self.check.member_literal(kw.value, self.members)
                        if kw.value is not None
                        else None
                    )
                    if member is not None:
                        target, index = member, 0 if kw.arg == "to" else 1
                        break
            if target is None:
                if not self.exempt:
                    self.check._emit(
                        self.info.path, node.lineno, node.col_offset,
                        f"[{self.spec.name}] call to "
                        f"'{node.func.attr}' with a dynamic target state; "
                        "only the declared choke/wrapper bodies may forward "
                        "dynamically -- pass a literal member here",
                    )
                continue
            # Owner: for a direct choke call the object before the dot;
            # for a wrapper call (literal not in position 0) the first
            # positional argument names the stateful object.
            owner_expr: Optional[ast.expr]
            if index == 0:
                owner_expr = node.func.value
            else:
                owner_expr = node.args[0] if node.args else None
            owner: Optional[str] = None
            if isinstance(owner_expr, ast.Name):
                owner = owner_expr.id
            sources = env.get(owner) if owner is not None else None
            self.sites.append(
                _Site(
                    path=self.info.path,
                    line=node.lineno,
                    col=node.col_offset,
                    target=target,
                    sources=sources,
                )
            )
