"""Committed baseline of grandfathered findings.

New rules land against an existing tree; the baseline lets a rule ship
*today* while pre-existing findings are burned down over time, and makes
CI fail only on findings that are *new* relative to the committed file.

Entries are keyed by ``path::rule::message`` with a multiplicity count
-- line numbers churn on every edit, so matching by line would
invalidate the baseline constantly.  The repo's policy is an
empty-or-minimal baseline: fix or pragma violations rather than
grandfathering them (see DESIGN.md "Static analysis").
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Sequence, Tuple, Union

from repro.analysis.core import Finding

__all__ = ["Baseline", "DEFAULT_BASELINE_NAME"]

#: The conventional baseline file at the repo root.
DEFAULT_BASELINE_NAME = "lint-baseline.json"

_FORMAT_VERSION = 1


@dataclass
class Baseline:
    """A multiset of grandfathered finding fingerprints."""

    entries: Dict[str, int] = field(default_factory=dict)

    @classmethod
    def empty(cls) -> "Baseline":
        return cls()

    @classmethod
    def from_findings(cls, findings: Sequence[Finding]) -> "Baseline":
        entries: Dict[str, int] = {}
        for finding in findings:
            key = finding.key()
            entries[key] = entries.get(key, 0) + 1
        return cls(entries)

    @classmethod
    def load(cls, path: Union[str, Path]) -> "Baseline":
        data = json.loads(Path(path).read_text(encoding="utf-8"))
        if data.get("version") != _FORMAT_VERSION:
            raise ValueError(
                f"unsupported baseline version {data.get('version')!r} "
                f"in {path} (expected {_FORMAT_VERSION})"
            )
        entries = data.get("entries", {})
        if not isinstance(entries, dict) or not all(
            isinstance(k, str) and isinstance(v, int) and v > 0
            for k, v in entries.items()
        ):
            raise ValueError(f"malformed baseline entries in {path}")
        return cls(dict(entries))

    def save(self, path: Union[str, Path]) -> None:
        payload = {
            "version": _FORMAT_VERSION,
            "entries": {key: self.entries[key] for key in sorted(self.entries)},
        }
        Path(path).write_text(
            json.dumps(payload, indent=2) + "\n", encoding="utf-8"
        )

    def filter(
        self, findings: Sequence[Finding]
    ) -> Tuple[List[Finding], int]:
        """Split findings into (new, grandfathered-count).

        Each baseline entry absorbs at most ``count`` findings with the
        same fingerprint; any excess is new (a duplicated violation is a
        new violation).
        """
        budget = dict(self.entries)
        new: List[Finding] = []
        grandfathered = 0
        for finding in findings:
            key = finding.key()
            remaining = budget.get(key, 0)
            if remaining > 0:
                budget[key] = remaining - 1
                grandfathered += 1
            else:
                new.append(finding)
        return new, grandfathered

    def __len__(self) -> int:
        return sum(self.entries.values())
