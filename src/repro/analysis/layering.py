"""Architecture-layering pass: the declared package DAG and its enforcer.

``ALLOWED_DEPS`` is the architecture: for every top-level package under
``repro``, the set of packages it may import at runtime.  The map is the
single place the layering lives — DESIGN.md renders it, ``lint --graph``
draws it, and this pass enforces it.  To sanction a new dependency, add
the edge here (and justify it in DESIGN.md); to sanction a single lazy
import that intentionally violates the layering (the workloads->control
callback shims), pragma the import line:

    from repro.control.jobs import JobRequest  # lint: allow=layering -- reason

Edge semantics:

* ``toplevel`` and ``lazy`` imports are runtime edges and must be
  declared below.  TYPE_CHECKING imports are erased at runtime and
  exempt — annotate freely.
* An import *cycle* over toplevel edges alone is a hard finding on top
  of any allowed-deps findings: it can deadlock or half-initialise the
  interpreter regardless of what the DAG declares.
"""

from __future__ import annotations

from typing import Dict, FrozenSet, Iterator, List, Mapping, Optional, Set, Tuple

from repro.analysis.core import Finding
from repro.analysis.project import ProjectContext, ProjectRule, register_project

__all__ = ["ALLOWED_DEPS", "ArchitectureLayeringRule", "validate_dag"]

#: package -> packages it may import at runtime (toplevel or lazy).
#: Listed bottom-up; every entry's deps must appear earlier — that
#: ordering *is* the layer diagram, and validate_dag() proves it acyclic.
ALLOWED_DEPS: Dict[str, FrozenSet[str]] = {
    # foundation: no runtime deps on any sibling package
    "sim": frozenset(),
    "obs": frozenset(),  # import-only leaf; transcode types via TYPE_CHECKING
    "tco": frozenset(),
    "analysis": frozenset(),  # stdlib-only; runner/cli sit above it
    # modeling stack
    "video": frozenset({"sim"}),
    "metrics": frozenset({"video"}),
    "baselines": frozenset({"video"}),
    "codec": frozenset({"metrics", "video"}),
    "vcu": frozenset({"codec", "obs", "sim", "video"}),
    "harness": frozenset({"codec", "metrics", "video"}),
    "balance": frozenset({"vcu", "video"}),
    # fleet stack
    "transcode": frozenset({"obs", "sim", "vcu", "video"}),
    "failures": frozenset({"obs", "sim", "vcu"}),
    "workloads": frozenset({"baselines", "sim", "transcode", "vcu", "video"}),
    "cluster": frozenset(
        {"baselines", "failures", "obs", "sim", "transcode", "vcu", "workloads"}
    ),
    "control": frozenset(
        {"cluster", "codec", "failures", "obs", "sim", "transcode", "vcu",
         "video", "workloads"}
    ),
    # entry points
    "runner": frozenset(
        {
            "analysis",
            "balance",
            "baselines",
            "cluster",
            "codec",
            "control",
            "harness",
            "metrics",
            "obs",
            "sim",
            "tco",
            "vcu",
            "video",
        }
    ),
    "perfbench": frozenset(
        {"cluster", "codec", "failures", "runner", "sim", "transcode", "vcu", "video"}
    ),
    "cli": frozenset(
        {
            "analysis",
            "balance",
            "baselines",
            "cluster",
            "control",
            "harness",
            "metrics",
            "obs",
            "perfbench",
            "runner",
            "tco",
            "vcu",
            "video",
            "workloads",
        }
    ),
}


def validate_dag(allowed: Mapping[str, FrozenSet[str]]) -> List[str]:
    """Topological order of the declared DAG; raises if it is not one.

    Called at rule construction so a bad edit to ALLOWED_DEPS fails the
    lint run itself (loudly, in CI) rather than silently permitting a
    cycle.
    """
    for pkg, deps in allowed.items():
        for dep in deps:
            if dep not in allowed:
                raise ValueError(
                    f"ALLOWED_DEPS[{pkg!r}] names undeclared package {dep!r}"
                )
        if pkg in deps:
            raise ValueError(f"ALLOWED_DEPS[{pkg!r}] declares a self-dependency")
    order: List[str] = []
    state: Dict[str, int] = {}  # 0 visiting, 1 done

    def visit(pkg: str, stack: Tuple[str, ...]) -> None:
        if state.get(pkg) == 1:
            return
        if state.get(pkg) == 0:
            cycle = " -> ".join(stack[stack.index(pkg) :] + (pkg,))
            raise ValueError(f"ALLOWED_DEPS is cyclic: {cycle}")
        state[pkg] = 0
        for dep in sorted(allowed[pkg]):
            visit(dep, stack + (pkg,))
        state[pkg] = 1
        order.append(pkg)

    for pkg in sorted(allowed):
        visit(pkg, ())
    return order


def _strongly_connected(edges: Mapping[str, Set[str]]) -> List[List[str]]:
    """Tarjan SCCs over a package graph; only multi-node SCCs returned."""
    index: Dict[str, int] = {}
    low: Dict[str, int] = {}
    on_stack: Set[str] = set()
    stack: List[str] = []
    sccs: List[List[str]] = []
    counter = [0]

    def strongconnect(node: str) -> None:
        index[node] = low[node] = counter[0]
        counter[0] += 1
        stack.append(node)
        on_stack.add(node)
        for succ in sorted(edges.get(node, ())):
            if succ not in index:
                strongconnect(succ)
                low[node] = min(low[node], low[succ])
            elif succ in on_stack:
                low[node] = min(low[node], index[succ])
        if low[node] == index[node]:
            component: List[str] = []
            while True:
                member = stack.pop()
                on_stack.discard(member)
                component.append(member)
                if member == node:
                    break
            if len(component) > 1:
                sccs.append(sorted(component))

    for node in sorted(edges):
        if node not in index:
            strongconnect(node)
    return sccs


@register_project
class ArchitectureLayeringRule(ProjectRule):
    """Enforce the declared package DAG over runtime import edges."""

    id = "layering"
    summary = "package imports must follow the declared architecture DAG"

    def __init__(self, allowed: Optional[Mapping[str, FrozenSet[str]]] = None) -> None:
        self.allowed = dict(ALLOWED_DEPS if allowed is None else allowed)
        validate_dag(self.allowed)

    def check(self, project: ProjectContext) -> Iterator[Finding]:
        toplevel_edges: Dict[str, Set[str]] = {}
        edge_sites: Dict[Tuple[str, str], Tuple[str, int, str, str]] = {}
        findings: List[Finding] = []
        for edge in project.edges:
            if edge.kind == "type_checking":
                continue
            src_pkg = project.modules[edge.src].package
            dst_pkg = project.modules[edge.dst].package
            if not src_pkg or not dst_pkg or src_pkg == dst_pkg:
                continue
            if src_pkg not in self.allowed:
                findings.append(
                    Finding(
                        rule=self.id,
                        path=edge.path,
                        line=edge.line,
                        col=0,
                        message=(
                            f"package '{src_pkg}' is not declared in the "
                            "architecture DAG; add it to "
                            "repro.analysis.layering.ALLOWED_DEPS"
                        ),
                    )
                )
                continue
            if edge.kind == "toplevel":
                toplevel_edges.setdefault(src_pkg, set()).add(dst_pkg)
                edge_sites.setdefault(
                    (src_pkg, dst_pkg), (edge.path, edge.line, edge.src, edge.dst)
                )
            if dst_pkg not in self.allowed[src_pkg]:
                findings.append(
                    Finding(
                        rule=self.id,
                        path=edge.path,
                        line=edge.line,
                        col=0,
                        message=(
                            f"package '{src_pkg}' may not import "
                            f"'{dst_pkg}' ({edge.src} imports {edge.dst}, "
                            f"{edge.kind}); declare the edge in "
                            "repro.analysis.layering.ALLOWED_DEPS or pragma "
                            "a sanctioned lazy import"
                        ),
                    )
                )
        # Hard cycles: SCCs over import-time edges only.  The DAG check
        # above already flags at least one direction, but a cycle is a
        # distinct, worse defect (import order dependent half-init), so
        # it gets its own finding anchored at one participating import.
        for component in _strongly_connected(toplevel_edges):
            members = set(component)
            anchor = min(
                site
                for (sp, dp), site in edge_sites.items()
                if sp in members and dp in members
            )
            findings.append(
                Finding(
                    rule=self.id,
                    path=anchor[0],
                    line=anchor[1],
                    col=0,
                    message=(
                        "import-time cycle between packages "
                        f"{', '.join(component)}; break it with a lazy "
                        "import or an inversion, do not pragma it"
                    ),
                )
            )
        findings.sort(key=lambda f: (f.path, f.line, f.message))
        for finding in findings:
            yield finding
