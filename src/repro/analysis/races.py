"""Sim-process race detector and cross-module sim-yield extension.

The engine is single-threaded, but *virtual-time* interleaving is real:
two processes that both mutate one module- or class-level container
observe each other in whatever order the calendar fires them, and a tie
in timestamps makes that order an implementation detail.  The per-file
``sim-yield`` rule cannot see either hazard when the generator, the
spawn site, and the shared state live in different modules.

This project pass:

1. Collects every spawn root -- the generator callables handed to
   ``<sim>.process(...)`` anywhere in the project -- resolving local
   functions, ``self.method`` spawns, and imported callables.
2. Follows ``yield from`` delegation out of those roots and applies the
   sim-yield checks (sanctioned yield shapes, no blocking I/O) to helper
   generators the per-file rule cannot attribute to a process.
3. Builds the intra-project call graph from the roots and flags shared
   mutable state (module globals and class-body containers) written from
   two or more *distinct* roots.  One owner process mutating state is a
   fine pattern; two is a virtual-time race unless an ordering mechanism
   exists -- which is exactly what the pragma reason should name::

       _LEDGER: List[str] = []  # lint: allow=sim-race -- appends are commutative

Findings land on the shared state's definition line (the thing to fix),
with the racing roots named in the message.
"""

from __future__ import annotations

import ast
from typing import Dict, Iterator, List, Optional, Sequence, Set, Tuple

from repro.analysis.core import Finding, dotted_name
from repro.analysis.project import (
    ModuleInfo,
    ProjectContext,
    ProjectRule,
    register_project,
)
from repro.analysis.rules import SimYieldRule, _walk_scope

__all__ = ["SimRaceRule"]

#: (module dotted name, qualname) -- the identity of one project callable.
FuncId = Tuple[str, str]

#: Container mutators that write in place.
_MUTATORS = frozenset(
    {
        "append", "appendleft", "extend", "extendleft", "insert",
        "add", "update", "setdefault", "pop", "popleft", "popitem",
        "remove", "discard", "clear", "push",
    }
)

#: Constructor calls that build mutable containers.
_MUTABLE_CALLS = frozenset(
    {
        "list", "dict", "set", "bytearray",
        "collections.defaultdict", "collections.deque",
        "collections.OrderedDict", "collections.Counter",
        "defaultdict", "deque", "OrderedDict", "Counter",
    }
)


def _is_mutable_literal(node: Optional[ast.expr], imports: Dict[str, str]) -> bool:
    if isinstance(node, (ast.List, ast.Dict, ast.Set, ast.ListComp, ast.DictComp,
                         ast.SetComp)):
        return True
    if isinstance(node, ast.Call):
        dotted = dotted_name(node.func, imports)
        return dotted in _MUTABLE_CALLS
    return False


class _FuncInfo:
    """One project callable with its resolved outgoing edges."""

    def __init__(self, func_id: FuncId, node: ast.FunctionDef, cls: Optional[str]):
        self.id = func_id
        self.node = node
        self.cls = cls
        self.calls: Set[FuncId] = set()  # plain calls + delegations
        self.delegations: Set[FuncId] = set()  # yield-from edges only


@register_project
class SimRaceRule(ProjectRule):
    """Shared mutable state written from two or more sim-process roots."""

    id = "sim-race"
    summary = (
        "module/class mutable state written from >=2 sim-process roots; "
        "yield-from helpers obey sim-yield across modules"
    )

    def check(self, project: ProjectContext) -> Iterator[Finding]:
        index = _ProjectIndex(project)
        findings: List[Finding] = []
        findings.extend(index.delegation_yield_findings(self.id))
        findings.extend(index.race_findings(self.id))
        findings.sort(key=lambda f: (f.path, f.line, f.message))
        return iter(findings)


class _ProjectIndex:
    """Call graph, spawn roots, and shared-state tables for one project."""

    def __init__(self, project: ProjectContext):
        self.project = project
        self.funcs: Dict[FuncId, _FuncInfo] = {}
        #: (module, global name) or (module, "Cls.attr") -> (path, line, kind)
        self.shared: Dict[Tuple[str, str], Tuple[str, int, str]] = {}
        self.roots: Set[FuncId] = set()
        #: Functions whose own file spawns them by name (per-file rule
        #: already applies the yield checks there).
        self.locally_spawned: Set[FuncId] = set()
        for info in project.iter_modules():
            self._index_module(info)
        self._resolve_edges()
        self.reachable_roots = self._propagate_roots()

    # -- per-module indexing --------------------------------------------- #

    def _index_module(self, info: ModuleInfo) -> None:
        for name, node in info.functions.items():
            self.funcs[(info.name, name)] = _FuncInfo((info.name, name), node, None)
        for qual, node in info.methods.items():
            cls = qual.split(".", 1)[0]
            self.funcs[(info.name, qual)] = _FuncInfo((info.name, qual), node, cls)
        local_names = SimYieldRule._process_generator_names(
            _CtxShim(info)  # type: ignore[arg-type]
        )
        for name in local_names:
            for qual in (name, *(q for q in info.methods if q.endswith(f".{name}"))):
                if (info.name, qual) in self.funcs:
                    self.locally_spawned.add((info.name, qual))
        # Shared state: module globals bound to mutable containers...
        for stmt in info.tree.body:
            targets: List[ast.expr] = []
            value: Optional[ast.expr] = None
            if isinstance(stmt, ast.Assign):
                targets, value = list(stmt.targets), stmt.value
            elif isinstance(stmt, ast.AnnAssign):
                targets, value = [stmt.target], stmt.value
            if value is None or not _is_mutable_literal(value, info.imports):
                continue
            for target in targets:
                if isinstance(target, ast.Name):
                    self.shared[(info.name, target.id)] = (
                        info.path, stmt.lineno, "module global",
                    )
        # ...and class-body containers (shared across every instance).
        for cls_name, cls in info.classes.items():
            for stmt in cls.body:
                targets, value = [], None
                if isinstance(stmt, ast.Assign):
                    targets, value = list(stmt.targets), stmt.value
                elif isinstance(stmt, ast.AnnAssign):
                    targets, value = [stmt.target], stmt.value
                if value is None or not _is_mutable_literal(value, info.imports):
                    continue
                for target in targets:
                    if isinstance(target, ast.Name):
                        self.shared[(info.name, f"{cls_name}.{target.id}")] = (
                            info.path, stmt.lineno, "class attribute",
                        )

    # -- call-graph construction ------------------------------------------ #

    def _resolve_callee(
        self, info: ModuleInfo, cls: Optional[str], func: ast.expr
    ) -> Optional[FuncId]:
        if isinstance(func, ast.Name):
            if func.id in info.functions:
                return (info.name, func.id)
            dotted = info.imports.get(func.id)
            if dotted is not None:
                return self._resolve_dotted(dotted)
            return None
        if isinstance(func, ast.Attribute):
            if (
                isinstance(func.value, ast.Name)
                and func.value.id == "self"
                and cls is not None
            ):
                qual = f"{cls}.{func.attr}"
                if (info.name, qual) in self.funcs:
                    return (info.name, qual)
                return None
            dotted = dotted_name(func, info.imports)
            if dotted is not None:
                return self._resolve_dotted(dotted)
        return None

    def _resolve_dotted(self, dotted: str) -> Optional[FuncId]:
        module = self.project.resolve_module(dotted)
        if module is None or module == dotted:
            return None
        remainder = dotted[len(module) + 1 :]
        info = self.project.modules[module]
        if remainder in info.functions or remainder in info.methods:
            return (module, remainder)
        return None

    def _resolve_edges(self) -> None:
        for func_id, finfo in sorted(self.funcs.items()):
            info = self.project.modules[func_id[0]]
            for node in _walk_scope(finfo.node.body):
                if isinstance(node, ast.YieldFrom) and isinstance(
                    node.value, ast.Call
                ):
                    callee = self._resolve_callee(info, finfo.cls, node.value.func)
                    if callee is not None:
                        finfo.delegations.add(callee)
                        finfo.calls.add(callee)
                elif isinstance(node, ast.Call):
                    callee = self._resolve_callee(info, finfo.cls, node.func)
                    if callee is not None:
                        finfo.calls.add(callee)
                    self._maybe_spawn(info, finfo, node)

    def _maybe_spawn(
        self, info: ModuleInfo, finfo: _FuncInfo, node: ast.Call
    ) -> None:
        if not (
            isinstance(node.func, ast.Attribute)
            and node.func.attr == "process"
            and node.args
        ):
            return
        arg = node.args[0]
        target: Optional[FuncId] = None
        if isinstance(arg, ast.Call):
            target = self._resolve_callee(info, finfo.cls, arg.func)
        elif isinstance(arg, ast.Name):
            # `gen = make_proc(...); sim.process(gen)` -- find the binding.
            for stmt in _walk_scope(finfo.node.body):
                if (
                    isinstance(stmt, ast.Assign)
                    and isinstance(stmt.value, ast.Call)
                    and any(
                        isinstance(t, ast.Name) and t.id == arg.id
                        for t in stmt.targets
                    )
                ):
                    target = self._resolve_callee(info, finfo.cls, stmt.value.func)
                    if target is not None:
                        break
            if target is None and arg.id in info.functions:
                target = (info.name, arg.id)
        if target is not None:
            self.roots.add(target)

    def _propagate_roots(self) -> Dict[FuncId, Set[FuncId]]:
        """function -> set of roots that (transitively) reach it."""
        reach: Dict[FuncId, Set[FuncId]] = {}
        for root in sorted(self.roots):
            if root not in self.funcs:
                continue
            stack = [root]
            seen: Set[FuncId] = set()
            while stack:
                current = stack.pop()
                if current in seen:
                    continue
                seen.add(current)
                reach.setdefault(current, set()).add(root)
                finfo = self.funcs.get(current)
                if finfo is None:
                    continue
                stack.extend(sorted(finfo.calls))
        return reach

    # -- extended sim-yield ------------------------------------------------ #

    def delegation_yield_findings(self, rule_id: str) -> List[Finding]:
        """Sim-yield checks on generators reached from roots via yield-from."""
        findings: List[Finding] = []
        targets: Set[FuncId] = set()
        stack = sorted(self.roots)
        seen: Set[FuncId] = set()
        while stack:
            current = stack.pop()
            if current in seen or current not in self.funcs:
                continue
            seen.add(current)
            targets.add(current)
            stack.extend(sorted(self.funcs[current].delegations))
        for func_id in sorted(targets):
            if func_id in self.locally_spawned:
                continue  # the per-file sim-yield rule already covers it
            finfo = self.funcs[func_id]
            info = self.project.modules[func_id[0]]
            scope = list(_walk_scope(finfo.node.body))
            if not any(isinstance(n, (ast.Yield, ast.YieldFrom)) for n in scope):
                continue
            for node in scope:
                if isinstance(node, ast.Yield):
                    problem = SimYieldRule._yield_problem(node)
                    if problem:
                        findings.append(
                            Finding(
                                rule=rule_id,
                                path=info.path,
                                line=node.lineno,
                                col=node.col_offset,
                                message=(
                                    f"process-reachable generator "
                                    f"'{func_id[1]}' yields {problem} "
                                    "(reached via yield from); the engine "
                                    "only accepts float delays, resume "
                                    "tuples, Events, and Processes"
                                ),
                            )
                        )
                elif isinstance(node, ast.Call):
                    dotted = dotted_name(node.func, info.imports)
                    if dotted is None:
                        continue
                    if dotted in SimYieldRule.BLOCKING_EXACT or dotted.startswith(
                        SimYieldRule.BLOCKING_PREFIXES
                    ):
                        findings.append(
                            Finding(
                                rule=rule_id,
                                path=info.path,
                                line=node.lineno,
                                col=node.col_offset,
                                message=(
                                    f"blocking call '{dotted}()' inside "
                                    f"process-reachable generator "
                                    f"'{func_id[1]}' (reached via yield "
                                    "from) stalls the event loop; model "
                                    "latency as a yielded virtual delay"
                                ),
                            )
                        )
        return findings

    # -- races ------------------------------------------------------------- #

    def _writes_of(self, func_id: FuncId) -> Set[Tuple[str, str]]:
        finfo = self.funcs[func_id]
        info = self.project.modules[func_id[0]]
        locals_bound: Set[str] = set()
        for node in _walk_scope(finfo.node.body):
            if isinstance(node, (ast.Assign, ast.AnnAssign)):
                targets = node.targets if isinstance(node, ast.Assign) else [node.target]
                for target in targets:
                    if isinstance(target, ast.Name):
                        locals_bound.add(target.id)
        params = {a.arg for a in finfo.node.args.args}
        locals_bound |= params
        globals_declared: Set[str] = set()
        for node in _walk_scope(finfo.node.body):
            if isinstance(node, ast.Global):
                globals_declared.update(node.names)
        writes: Set[Tuple[str, str]] = set()

        def note(expr: ast.expr) -> None:
            key = self._state_key(info, finfo.cls, expr, locals_bound, globals_declared)
            if key is not None:
                writes.add(key)

        for node in _walk_scope(finfo.node.body):
            if isinstance(node, ast.Call) and isinstance(node.func, ast.Attribute):
                if node.func.attr in _MUTATORS:
                    note(node.func.value)
            elif isinstance(node, (ast.Assign, ast.AugAssign)):
                targets = (
                    node.targets if isinstance(node, ast.Assign) else [node.target]
                )
                for target in targets:
                    if isinstance(target, ast.Subscript):
                        note(target.value)
                    elif isinstance(target, ast.Name) and (
                        target.id in globals_declared
                    ):
                        note(target)
                    elif isinstance(target, ast.Attribute):
                        note(target)
        return writes

    def _state_key(
        self,
        info: ModuleInfo,
        cls: Optional[str],
        expr: ast.expr,
        locals_bound: Set[str],
        globals_declared: Set[str],
    ) -> Optional[Tuple[str, str]]:
        """Resolve an expression to a shared-state key, if it names one."""
        if isinstance(expr, ast.Name):
            if expr.id in locals_bound and expr.id not in globals_declared:
                return None
            if (info.name, expr.id) in self.shared:
                return (info.name, expr.id)
            dotted = info.imports.get(expr.id)
            if dotted is not None:
                return self._shared_from_dotted(dotted)
            return None
        if isinstance(expr, ast.Attribute):
            if (
                isinstance(expr.value, ast.Name)
                and expr.value.id == "self"
                and cls is not None
            ):
                key = (info.name, f"{cls}.{expr.attr}")
                if key in self.shared and not self._instance_shadowed(
                    info, cls, expr.attr
                ):
                    return key
                return None
            dotted = dotted_name(expr, info.imports)
            if dotted is not None:
                return self._shared_from_dotted(dotted)
        return None

    def _shared_from_dotted(self, dotted: str) -> Optional[Tuple[str, str]]:
        module = self.project.resolve_module(dotted)
        if module is None or module == dotted:
            return None
        remainder = dotted[len(module) + 1 :]
        key = (module, remainder)
        return key if key in self.shared else None

    def _instance_shadowed(self, info: ModuleInfo, cls: str, attr: str) -> bool:
        """True if any method rebinds ``self.attr``, making it per-instance."""
        node = info.classes[cls]
        for sub in ast.walk(node):
            if isinstance(sub, (ast.Assign, ast.AnnAssign)):
                targets = (
                    sub.targets if isinstance(sub, ast.Assign) else [sub.target]
                )
                for target in targets:
                    if (
                        isinstance(target, ast.Attribute)
                        and target.attr == attr
                        and isinstance(target.value, ast.Name)
                        and target.value.id == "self"
                    ):
                        return True
        return False

    def race_findings(self, rule_id: str) -> List[Finding]:
        writers: Dict[Tuple[str, str], Set[FuncId]] = {}
        for func_id in sorted(self.funcs):
            roots = self.reachable_roots.get(func_id)
            if not roots:
                continue
            for key in self._writes_of(func_id):
                writers.setdefault(key, set()).update(roots)
        findings: List[Finding] = []
        for key in sorted(writers):
            roots = writers[key]
            if len(roots) < 2:
                continue
            path, line, kind = self.shared[key]
            names = ", ".join(f"{mod}:{qual}" for mod, qual in sorted(roots))
            findings.append(
                Finding(
                    rule=rule_id,
                    path=path,
                    line=line,
                    col=0,
                    message=(
                        f"{kind} '{key[1]}' is written from {len(roots)} "
                        f"sim-process roots ({names}); virtual-time "
                        "interleaving makes the final state order-dependent "
                        "-- route writes through one owner process or pragma "
                        "with the ordering mechanism"
                    ),
                )
            )
        return findings


class _CtxShim:
    """Just enough of FileContext for SimYieldRule's static helper."""

    def __init__(self, info: ModuleInfo):
        self.tree = info.tree
        self.path = info.path
        self.imports = info.imports
