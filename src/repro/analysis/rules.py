"""The repo-specific rule catalogue.

Each rule encodes one runtime contract of the reproduction.  They are
deliberately narrow: a lint that cries wolf gets pragma'd into silence,
so every check here is something a reviewer would genuinely block a PR
over.  See DESIGN.md "Static analysis" for the rationale behind each.
"""

from __future__ import annotations

import ast
from fnmatch import fnmatch
from typing import Dict, Iterator, List, Optional, Sequence, Set, Tuple

from repro.analysis.core import FileContext, Finding, Rule, register

__all__ = [
    "DeterminismRule",
    "ObsHookRule",
    "SimYieldRule",
    "OrderedIterationRule",
    "FloatParityRule",
    "HygieneRule",
]


def _walk_scope(body: Sequence[ast.stmt]) -> Iterator[ast.AST]:
    """Walk statements without descending into nested function/class defs.

    Rules that reason about one scope (a function's locals, a module's
    top level) must not leak conclusions into enclosed scopes.
    """
    stack: List[ast.AST] = list(body)
    while stack:
        node = stack.pop()
        yield node
        if isinstance(
            node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef, ast.Lambda)
        ):
            continue  # the nested scope is yielded but not entered
        stack.extend(ast.iter_child_nodes(node))


def _functions(tree: ast.Module) -> Iterator[ast.FunctionDef]:
    for node in ast.walk(tree):
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            yield node


# --------------------------------------------------------------------- #
# determinism


@register
class DeterminismRule(Rule):
    """All randomness and time must be virtual / explicitly seeded.

    Two runs with the same seed must produce identical schedules, traces,
    and bitstreams; that only holds if every stochastic component takes
    an explicit ``np.random.Generator`` (built via ``repro.sim.rng``) and
    nothing reads the wall clock.  ``sim/rng.py`` is the one sanctioned
    constructor site.  Tests and benchmarks may build their own seeded
    generators (their determinism is local to the test), but wall-clock
    reads and the stdlib ``random`` module stay banned everywhere --
    wall-clock timing belongs to ``perfbench.py``, behind a pragma.
    """

    id = "determinism"
    summary = (
        "randomness must flow through repro.sim.rng generators; "
        "no wall-clock reads outside the pragma'd perf harness"
    )
    exclude = ("src/repro/sim/rng.py",)

    #: Call targets that read the wall clock (non-virtual time).
    WALL_CLOCK = frozenset({
        "time.time", "time.time_ns",
        "time.perf_counter", "time.perf_counter_ns",
        "time.monotonic", "time.monotonic_ns",
        "time.process_time", "time.process_time_ns",
        "datetime.datetime.now", "datetime.datetime.utcnow",
        "datetime.datetime.today", "datetime.date.today",
    })

    #: Paths where seeded ``default_rng(...)`` construction is fine: a
    #: test's generator is its own stream; there is no shared-stream
    #: discipline to protect.
    NP_RANDOM_EXEMPT = ("tests/*", "benchmarks/*")

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        np_random_banned = not any(
            fnmatch(ctx.path, pat) for pat in self.NP_RANDOM_EXEMPT
        )
        for node in ast.walk(ctx.tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    if alias.name == "random" or alias.name.startswith("random."):
                        yield ctx.finding(
                            self.id, node,
                            "stdlib 'random' is banned: take an explicit "
                            "np.random.Generator (see repro.sim.rng)",
                        )
            elif isinstance(node, ast.ImportFrom):
                if node.module == "random" and not node.level:
                    yield ctx.finding(
                        self.id, node,
                        "stdlib 'random' is banned: take an explicit "
                        "np.random.Generator (see repro.sim.rng)",
                    )
            elif isinstance(node, ast.Call):
                dotted = ctx.dotted(node.func)
                if dotted is None:
                    continue
                if dotted in self.WALL_CLOCK:
                    yield ctx.finding(
                        self.id, node,
                        f"wall-clock read '{dotted}()': simulation code must "
                        "use virtual time (sim.now); perf harnesses pragma "
                        "this line",
                    )
                elif dotted.startswith("random."):
                    yield ctx.finding(
                        self.id, node,
                        f"stdlib '{dotted}()' is banned: take an explicit "
                        "np.random.Generator (see repro.sim.rng)",
                    )
                elif np_random_banned and dotted.startswith("numpy.random."):
                    func = dotted[len("numpy.random."):]
                    if func == "default_rng":
                        yield ctx.finding(
                            self.id, node,
                            "bare default_rng(): build streams with "
                            "repro.sim.rng.make_rng/split_rng so components "
                            "stay independently re-seedable",
                        )
                    elif func[:1].islower():  # calls, not Generator/SeedSequence types
                        yield ctx.finding(
                            self.id, node,
                            f"module-level 'np.random.{func}()' uses hidden "
                            "global state: take an explicit np.random.Generator",
                        )


# --------------------------------------------------------------------- #
# obs-hook


@register
class ObsHookRule(Rule):
    """``obs.active()`` results must be None-checked, never captured wide.

    The observability hub is optional by design: with no hub installed,
    ``obs.active()`` returns ``None`` and every hook must cost one load
    plus one comparison.  Using the result without a None check crashes
    un-instrumented runs; caching it at module/attribute scope pins a
    stale hub across install/uninstall cycles (the golden-trace tests
    install and uninstall hubs repeatedly).
    """

    id = "obs-hook"
    summary = "None-check every obs.active() result; no wide hub captures"

    ACTIVE = frozenset({"repro.obs.active", "obs.active"})

    def _is_active_call(self, node: ast.AST, ctx: FileContext) -> bool:
        if not isinstance(node, ast.Call):
            return False
        dotted = ctx.dotted(node.func)
        return dotted in self.ACTIVE

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        # Module-level and attribute-target captures.
        for node in _walk_scope(ctx.tree.body):
            if isinstance(node, (ast.Assign, ast.AnnAssign)) and self._is_active_call(
                getattr(node, "value", None), ctx
            ):
                yield ctx.finding(
                    self.id, node,
                    "module-level hub capture: call obs.active() inside the "
                    "hook, immediately before use",
                )
        for func in _functions(ctx.tree):
            yield from self._check_function(func, ctx)
        # Chained use anywhere: obs.active().emit(...) has no None check.
        for node in ast.walk(ctx.tree):
            if isinstance(node, ast.Attribute) and self._is_active_call(node.value, ctx):
                yield ctx.finding(
                    self.id, node,
                    "obs.active() used without a None check: bind it to a "
                    "local and guard with 'if hub is not None'",
                )

    def _check_function(
        self, func: ast.FunctionDef, ctx: FileContext
    ) -> Iterator[Finding]:
        hub_names: Set[str] = set()
        for node in _walk_scope(func.body):
            if isinstance(node, ast.Assign) and self._is_active_call(node.value, ctx):
                for target in node.targets:
                    if isinstance(target, ast.Name):
                        hub_names.add(target.id)
                    elif isinstance(target, ast.Attribute):
                        yield ctx.finding(
                            self.id, target,
                            "hub captured onto an attribute: obs.active() "
                            "must stay in a local so install/uninstall "
                            "cycles are honoured",
                        )
            elif isinstance(node, ast.AnnAssign) and self._is_active_call(
                node.value, ctx
            ):
                if isinstance(node.target, ast.Name):
                    hub_names.add(node.target.id)
                elif isinstance(node.target, ast.Attribute):
                    yield ctx.finding(
                        self.id, node.target,
                        "hub captured onto an attribute: obs.active() "
                        "must stay in a local so install/uninstall "
                        "cycles are honoured",
                    )
        if not hub_names:
            return
        guarded = self._guarded_names(func, hub_names)
        for node in _walk_scope(func.body):
            if (
                isinstance(node, ast.Attribute)
                and isinstance(node.value, ast.Name)
                and node.value.id in hub_names
                and node.value.id not in guarded
            ):
                yield ctx.finding(
                    self.id, node,
                    f"'{node.value.id}' (from obs.active()) used without a "
                    "None check: guard with "
                    f"'if {node.value.id} is not None'",
                )

    @staticmethod
    def _guarded_names(func: ast.FunctionDef, names: Set[str]) -> Set[str]:
        """Names with at least one None-comparison or truthiness guard.

        This is scope-level, not path-sensitive: one honest guard
        anywhere in the function clears the name.  Cheap, and in practice
        the hook pattern is short enough that it is also accurate.
        """
        guarded: Set[str] = set()
        tests: List[ast.expr] = []
        for node in _walk_scope(func.body):
            if isinstance(node, (ast.If, ast.While, ast.Assert)):
                tests.append(node.test)
            elif isinstance(node, ast.IfExp):
                tests.append(node.test)
        for test in tests:
            for sub in ast.walk(test):
                if isinstance(sub, ast.Compare):
                    operands = [sub.left, *sub.comparators]
                    has_none = any(
                        isinstance(op, ast.Constant) and op.value is None
                        for op in operands
                    )
                    if has_none and any(
                        isinstance(ops, (ast.Is, ast.IsNot, ast.Eq, ast.NotEq))
                        for ops in sub.ops
                    ):
                        for op in operands:
                            if isinstance(op, ast.Name) and op.id in names:
                                guarded.add(op.id)
                elif isinstance(sub, ast.Name) and sub.id in names:
                    # `if hub:` / `if hub and ...:` -- a truthiness guard.
                    guarded.add(sub.id)
        return guarded


# --------------------------------------------------------------------- #
# sim-yield


@register
class SimYieldRule(Rule):
    """Engine process generators only yield sanctioned values.

    :class:`repro.sim.engine.Simulator` resumes a process on exactly
    three yield shapes -- a numeric delay, an :class:`Event`, or another
    :class:`Process` (plus tuple-shaped resume payloads used by helper
    protocols).  Yielding anything else dies at runtime deep inside a
    run; blocking I/O inside a process stalls the whole single-threaded
    event loop.  Both are cheap to catch at parse time.
    """

    id = "sim-yield"
    summary = "process generators yield only engine-sanctioned values, no blocking I/O"

    BLOCKING_EXACT = frozenset({
        "open", "builtins.open", "input",
        "time.sleep", "os.system", "os.popen", "os.wait",
        "socket.create_connection", "select.select",
    })
    BLOCKING_PREFIXES = ("subprocess.", "requests.", "urllib.request.", "http.client.")

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        process_names = self._process_generator_names(ctx)
        if not process_names:
            return
        for func in _functions(ctx.tree):
            if func.name not in process_names:
                continue
            scope = list(_walk_scope(func.body))
            if not any(isinstance(n, (ast.Yield, ast.YieldFrom)) for n in scope):
                continue  # same-named non-generator helper
            for node in scope:
                if isinstance(node, ast.Yield):
                    problem = self._yield_problem(node)
                    if problem:
                        yield ctx.finding(
                            self.id, node,
                            f"process generator '{func.name}' yields {problem}; "
                            "the engine only accepts float delays, resume "
                            "tuples, Events, and Processes",
                        )
                elif isinstance(node, ast.Call):
                    dotted = ctx.dotted(node.func)
                    if dotted is None:
                        continue
                    if dotted in self.BLOCKING_EXACT or dotted.startswith(
                        self.BLOCKING_PREFIXES
                    ):
                        yield ctx.finding(
                            self.id, node,
                            f"blocking call '{dotted}()' inside process "
                            f"generator '{func.name}' stalls the event loop; "
                            "model latency as a yielded virtual delay",
                        )

    @staticmethod
    def _process_generator_names(ctx: FileContext) -> Set[str]:
        """Names of generator callables handed to ``<sim>.process(...)``."""
        names: Set[str] = set()
        for node in ast.walk(ctx.tree):
            if not (
                isinstance(node, ast.Call)
                and isinstance(node.func, ast.Attribute)
                and node.func.attr == "process"
                and node.args
            ):
                continue
            arg = node.args[0]
            if isinstance(arg, ast.Call):
                if isinstance(arg.func, ast.Name):
                    names.add(arg.func.id)
                elif isinstance(arg.func, ast.Attribute):
                    names.add(arg.func.attr)
            elif isinstance(arg, ast.Name):
                names.add(arg.id)  # generator object built earlier from f(...)
        return names

    @staticmethod
    def _yield_problem(node: ast.Yield) -> Optional[str]:
        value = node.value
        if value is None:
            return "nothing (bare yield)"
        if isinstance(value, ast.Constant):
            if value.value is None:
                return "None"
            if isinstance(value.value, bool):
                return f"a bool ({value.value!r})"
            if isinstance(value.value, (str, bytes)):
                return f"a {type(value.value).__name__} literal"
        elif isinstance(value, (ast.Dict, ast.DictComp)):
            return "a dict"
        elif isinstance(value, (ast.List, ast.ListComp)):
            return "a list"
        elif isinstance(value, (ast.Set, ast.SetComp)):
            return "a set"
        elif isinstance(value, ast.GeneratorExp):
            return "a generator expression"
        return None


# --------------------------------------------------------------------- #
# ordered-iteration


@register
class OrderedIterationRule(Rule):
    """No iteration over hash-ordered collections.

    Golden-trace byte-identity and placement replay both require every
    fleet walk to visit workers/tasks in one canonical order.  Iterating
    a ``set`` (or set algebra over ``dict`` views) visits elements in
    hash order, which changes across interpreter runs for strings --
    exactly the ids (``vcu_id``, ``host_id``) these collections hold.
    Wrap the iterable in ``sorted(...)`` or keep a list/dict.
    """

    id = "ordered-iteration"
    summary = "never iterate sets / dict-view algebra; sort first"

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        # Module top level plus each function scope, with simple local
        # set-type tracking; functions inside a class additionally see
        # that class's `self.x = set()` attributes.
        yield from self._check_scope(ctx, ctx.tree.body, set(), None)
        enclosing = self._enclosing_classes(ctx.tree)
        for func in _functions(ctx.tree):
            cls = enclosing.get(func)
            set_attrs = self._set_attributes(cls) if cls is not None else None
            yield from self._check_scope(
                ctx, func.body, self._local_sets(func.body), set_attrs
            )

    @staticmethod
    def _enclosing_classes(
        tree: ast.Module,
    ) -> Dict[ast.FunctionDef, ast.ClassDef]:
        mapping: Dict[ast.FunctionDef, ast.ClassDef] = {}
        for cls in ast.walk(tree):
            if isinstance(cls, ast.ClassDef):
                for node in ast.walk(cls):
                    if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                        mapping.setdefault(node, cls)
        return mapping

    # -- type tracking -------------------------------------------------- #

    @staticmethod
    def _is_set_expr(node: Optional[ast.AST]) -> bool:
        if isinstance(node, (ast.Set, ast.SetComp)):
            return True
        if (
            isinstance(node, ast.Call)
            and isinstance(node.func, ast.Name)
            and node.func.id in ("set", "frozenset")
        ):
            return True
        return False

    @staticmethod
    def _is_set_annotation(annotation: Optional[ast.expr]) -> bool:
        node = annotation
        if isinstance(node, ast.Subscript):
            node = node.value
        if isinstance(node, ast.Name):
            return node.id in ("Set", "FrozenSet", "set", "frozenset", "MutableSet")
        if isinstance(node, ast.Attribute):
            return node.attr in ("Set", "FrozenSet", "MutableSet", "AbstractSet")
        return False

    def _local_sets(self, body: Sequence[ast.stmt]) -> Set[str]:
        names: Set[str] = set()
        for node in _walk_scope(body):
            if isinstance(node, ast.Assign) and self._is_set_expr(node.value):
                for target in node.targets:
                    if isinstance(target, ast.Name):
                        names.add(target.id)
            elif isinstance(node, ast.AnnAssign) and isinstance(node.target, ast.Name):
                if self._is_set_annotation(node.annotation) or self._is_set_expr(
                    node.value
                ):
                    names.add(node.target.id)
        return names

    def _set_attributes(self, cls: ast.ClassDef) -> Set[str]:
        attrs: Set[str] = set()
        for node in ast.walk(cls):
            target: Optional[ast.expr] = None
            value: Optional[ast.expr] = None
            annotation: Optional[ast.expr] = None
            if isinstance(node, ast.Assign):
                value = node.value
                for tgt in node.targets:
                    if self._is_self_attr(tgt):
                        target = tgt
            elif isinstance(node, ast.AnnAssign):
                value, annotation = node.value, node.annotation
                if self._is_self_attr(node.target):
                    target = node.target
            if target is None:
                continue
            if self._is_set_expr(value) or self._is_set_annotation(annotation):
                attrs.add(target.attr)  # type: ignore[union-attr]
        return attrs

    @staticmethod
    def _is_self_attr(node: ast.AST) -> bool:
        return (
            isinstance(node, ast.Attribute)
            and isinstance(node.value, ast.Name)
            and node.value.id == "self"
        )

    # -- iteration checks ------------------------------------------------ #

    def _check_scope(
        self,
        ctx: FileContext,
        body: Sequence[ast.stmt],
        local_sets: Set[str],
        set_attrs: Optional[Set[str]],
    ) -> Iterator[Finding]:
        for node in _walk_scope(body):
            iters: List[ast.expr] = []
            if isinstance(node, (ast.For, ast.AsyncFor)):
                iters.append(node.iter)
            elif isinstance(node, (ast.ListComp, ast.SetComp, ast.DictComp,
                                   ast.GeneratorExp)):
                iters.extend(gen.iter for gen in node.generators)
            for candidate in iters:
                reason = self._hazard(candidate, local_sets, set_attrs)
                if reason:
                    yield ctx.finding(
                        self.id, candidate,
                        f"iteration over {reason} visits elements in hash "
                        "order, which breaks golden-trace/placement replay; "
                        "wrap in sorted(...) or keep an ordered collection",
                    )

    def _hazard(
        self,
        node: ast.expr,
        local_sets: Set[str],
        set_attrs: Optional[Set[str]],
    ) -> Optional[str]:
        if self._is_set_expr(node):
            return "a set expression"
        if isinstance(node, ast.Name) and node.id in local_sets:
            return f"set '{node.id}'"
        if (
            set_attrs is not None
            and self._is_self_attr(node)
            and node.attr in set_attrs  # type: ignore[union-attr]
        ):
            return f"set attribute 'self.{node.attr}'"  # type: ignore[union-attr]
        if isinstance(node, ast.BinOp) and isinstance(
            node.op, (ast.BitOr, ast.BitAnd, ast.Sub, ast.BitXor)
        ):
            if self._viewish(node.left) or self._viewish(node.right):
                return "set algebra over dict views"
        return None

    def _viewish(self, node: ast.expr) -> bool:
        if self._is_set_expr(node):
            return True
        return (
            isinstance(node, ast.Call)
            and isinstance(node.func, ast.Attribute)
            and node.func.attr in ("keys", "items", "values")
        )


# --------------------------------------------------------------------- #
# float-parity


@register
class FloatParityRule(Rule):
    """Bit-exactness files must compare with ``np.array_equal``.

    The PR-3 contract is that fast and reference codec/scheduler paths
    are *bit-identical*, not approximately equal.  A tolerance
    comparison in a parity file silently weakens that contract and lets
    real drift through; this rule pins the files that carry it.
    """

    id = "float-parity"
    summary = "parity files compare exactly (np.array_equal), never approximately"
    include = (
        "src/repro/codec/kernels.py",
        "tests/test_codec_kernels.py",
        "tests/test_cluster_scheduler.py",
    )

    APPROX = frozenset({
        "numpy.allclose", "numpy.isclose",
        "numpy.testing.assert_allclose", "numpy.testing.assert_almost_equal",
        "numpy.testing.assert_array_almost_equal",
        "math.isclose", "pytest.approx",
    })

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        for node in ast.walk(ctx.tree):
            if isinstance(node, ast.Call):
                dotted = ctx.dotted(node.func)
                if dotted in self.APPROX:
                    yield ctx.finding(
                        self.id, node,
                        f"'{dotted}' in a bit-exactness file: the parity "
                        "contract requires np.array_equal",
                    )
                elif (
                    isinstance(node.func, ast.Attribute)
                    and node.func.attr == "all"
                    and isinstance(node.func.value, ast.Compare)
                    and any(isinstance(op, ast.Eq) for op in node.func.value.ops)
                ):
                    yield ctx.finding(
                        self.id, node,
                        "'(a == b).all()' in a bit-exactness file: use "
                        "np.array_equal, which also rejects shape mismatches",
                    )


# --------------------------------------------------------------------- #
# hygiene


@register
class HygieneRule(Rule):
    """Mutable default arguments and bare ``except:``.

    A mutable default is shared across every call -- in a fleet model
    that means cross-run state leaking between supposedly independent
    simulations.  A bare ``except:`` swallows ``Interrupt`` (the
    watchdog's kill signal) and ``KeyboardInterrupt`` alike.
    """

    id = "hygiene"
    summary = "no mutable default arguments; no bare except"

    MUTABLE_CALLS = frozenset({
        "list", "dict", "set", "bytearray",
        "collections.defaultdict", "collections.deque", "collections.OrderedDict",
    })

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        for func in _functions(ctx.tree):
            defaults = list(func.args.defaults) + [
                d for d in func.args.kw_defaults if d is not None
            ]
            for default in defaults:
                problem = self._mutable(default, ctx)
                if problem:
                    yield ctx.finding(
                        self.id, default,
                        f"mutable default argument ({problem}) in "
                        f"'{func.name}' is shared across calls; default to "
                        "None and build inside",
                    )
        for node in ast.walk(ctx.tree):
            if isinstance(node, ast.ExceptHandler) and node.type is None:
                yield ctx.finding(
                    self.id, node,
                    "bare 'except:' swallows Interrupt/KeyboardInterrupt; "
                    "name the exceptions you mean",
                )

    def _mutable(self, node: ast.expr, ctx: FileContext) -> Optional[str]:
        if isinstance(node, ast.List):
            return "list literal"
        if isinstance(node, ast.Dict):
            return "dict literal"
        if isinstance(node, ast.Set):
            return "set literal"
        if isinstance(node, ast.Call):
            dotted = ctx.dotted(node.func)
            if dotted in self.MUTABLE_CALLS:
                return f"{dotted}()"
        return None
