"""``repro.analysis``: the simulation-safety static analyzer.

The paper's fleet is operable because its software stack is *auditable
at scale* -- golden-task screening and black-holing mitigation run
continuously against every VCU (Section 5).  This package is the
reproduction's equivalent for the codebase itself: an AST-based lint
engine whose rules encode the repo's runtime contracts so a PR cannot
silently break them.

Rules (each one guards an invariant another subsystem depends on):

* ``determinism``       -- all randomness flows through explicit
  ``np.random.Generator`` streams built by :mod:`repro.sim.rng`; no
  wall-clock reads outside the perf harness.
* ``obs-hook``          -- every ``obs.active()`` result is None-checked
  before use and never captured beyond a local.
* ``sim-yield``         -- engine process generators only yield
  sanctioned values and never call blocking I/O.
* ``ordered-iteration`` -- no iteration over sets (or set-algebra on
  dict views) whose order could differ across runs.
* ``float-parity``      -- bit-exactness files use ``np.array_equal``,
  never tolerance comparisons.
* ``hygiene``           -- no mutable default arguments, no bare
  ``except:``.

The engine supports per-line and per-file pragma suppressions
(``# lint: allow=<rule>``), a committed baseline of grandfathered
findings (``lint-baseline.json``), and text/JSON reporters, all surfaced
through ``repro-bench lint``.  Everything here is numpy-free so the CLI
subcommand loads in milliseconds, like ``repro-bench report``.
"""

from __future__ import annotations

from repro.analysis.baseline import DEFAULT_BASELINE_NAME, Baseline
from repro.analysis.core import (
    FileContext,
    Finding,
    LintResult,
    Rule,
    analyze_source,
    default_rules,
    imported_modules,
    iter_python_files,
    register,
    run_lint,
)
from repro.analysis.reporters import render_json, render_text

# Importing the rules module populates the registry as a side effect.
from repro.analysis import rules as _rules  # noqa: F401  (registration import)

__all__ = [
    "Baseline",
    "DEFAULT_BASELINE_NAME",
    "FileContext",
    "Finding",
    "LintResult",
    "Rule",
    "analyze_source",
    "default_rules",
    "imported_modules",
    "iter_python_files",
    "register",
    "render_json",
    "render_text",
    "run_lint",
]
