"""``repro.analysis``: the simulation-safety static analyzer.

The paper's fleet is operable because its software stack is *auditable
at scale* -- golden-task screening and black-holing mitigation run
continuously against every VCU (Section 5).  This package is the
reproduction's equivalent for the codebase itself: an AST-based lint
engine whose rules encode the repo's runtime contracts so a PR cannot
silently break them.

Per-file rules (each guards an invariant another subsystem depends on):

* ``determinism``       -- all randomness flows through explicit
  ``np.random.Generator`` streams built by :mod:`repro.sim.rng`; no
  wall-clock reads outside the perf harness.
* ``determinism-taint`` -- flow-sensitive companion to the above:
  values *derived from* ambient time/RNG must not be returned, yielded,
  or stored into object/module state (catches laundering through
  locals and helper functions).
* ``obs-hook``          -- every ``obs.active()`` result is None-checked
  before use and never captured beyond a local.
* ``sim-yield``         -- engine process generators only yield
  sanctioned values and never call blocking I/O.
* ``ordered-iteration`` -- no iteration over sets (or set-algebra on
  dict views) whose order could differ across runs.
* ``float-parity``      -- bit-exactness files use ``np.array_equal``,
  never tolerance comparisons.
* ``hygiene``           -- no mutable default arguments, no bare
  ``except:``.

Whole-program passes (see :mod:`repro.analysis.project`) run over the
full source tree and land findings in ordinary files:

* ``layering``      -- package imports follow the declared architecture
  DAG (:data:`repro.analysis.layering.ALLOWED_DEPS`); hard import-time
  cycles are flagged separately.  ``repro-bench lint --graph`` emits the
  computed graph as DOT or versioned JSON.
* ``sim-race``      -- call graph rooted at ``Simulator.process`` spawn
  sites: extends sim-yield checks across ``yield from`` chains and
  flags shared mutable state written from two or more process roots.
* ``state-machine`` -- the declared job-lifecycle and worker-health
  transition tables are well-formed, every runtime transition site is
  legal, and every declared transition has a site.

The engine supports per-line and per-file pragma suppressions
(``# lint: allow=<rule>``), a committed baseline of grandfathered
findings (``lint-baseline.json``), and text/JSON reporters, all surfaced
through ``repro-bench lint``.  Everything here is numpy-free so the CLI
subcommand loads in milliseconds, like ``repro-bench report``.
"""

from __future__ import annotations

from repro.analysis.baseline import DEFAULT_BASELINE_NAME, Baseline
from repro.analysis.core import (
    FileContext,
    Finding,
    LintResult,
    Rule,
    analyze_source,
    default_rules,
    imported_modules,
    iter_python_files,
    register,
    run_lint,
)
from repro.analysis.project import (
    ImportEdge,
    ModuleInfo,
    ProjectContext,
    ProjectRule,
    default_project_rules,
    graph_document,
    load_project,
    register_project,
    render_dot,
)
from repro.analysis.reporters import render_json, render_text

# Importing the rule modules populates the registries as a side effect.
from repro.analysis import rules as _rules  # noqa: F401  (registration import)
from repro.analysis import taint as _taint  # noqa: F401  (registration import)
from repro.analysis import layering as _layering  # noqa: F401  (registration)
from repro.analysis import races as _races  # noqa: F401  (registration import)
from repro.analysis import machines as _machines  # noqa: F401  (registration)

__all__ = [
    "Baseline",
    "DEFAULT_BASELINE_NAME",
    "FileContext",
    "Finding",
    "ImportEdge",
    "LintResult",
    "ModuleInfo",
    "ProjectContext",
    "ProjectRule",
    "Rule",
    "analyze_source",
    "default_project_rules",
    "default_rules",
    "graph_document",
    "imported_modules",
    "iter_python_files",
    "load_project",
    "register",
    "register_project",
    "render_dot",
    "render_json",
    "render_text",
    "run_lint",
]
