"""Render a :class:`~repro.analysis.core.LintResult` as text or JSON.

The text reporter prints one ``path:line:col: rule-id message`` row per
new finding (the format editors and CI annotations understand); the JSON
reporter emits a stable machine-readable document::

    {
      "version": 1,
      "clean": false,
      "files_scanned": 123,
      "suppressed": 4,
      "grandfathered": 0,
      "parse_errors": [],
      "findings": [
        {"rule": "determinism", "path": "src/...", "line": 7,
         "col": 4, "message": "..."}
      ]
    }

``findings`` holds only *new* findings (post-pragma, post-baseline) --
the set that should gate CI.
"""

from __future__ import annotations

import json
from typing import Any, Dict, List

from repro.analysis.core import LintResult

__all__ = ["render_text", "render_json", "to_document"]

JSON_VERSION = 1


def render_text(result: LintResult) -> str:
    lines: List[str] = []
    for error in result.parse_errors:
        lines.append(f"PARSE ERROR: {error}")
    for finding in result.new_findings:
        lines.append(f"{finding.location()}: {finding.rule} {finding.message}")
    summary = (
        f"{len(result.new_findings)} new finding(s) in "
        f"{result.files_scanned} file(s)"
    )
    extras: List[str] = []
    if result.grandfathered:
        extras.append(f"{result.grandfathered} grandfathered by baseline")
    if result.suppressed:
        extras.append(f"{result.suppressed} pragma-suppressed")
    if extras:
        summary += f" ({', '.join(extras)})"
    lines.append(summary)
    return "\n".join(lines)


def to_document(result: LintResult) -> Dict[str, Any]:
    return {
        "version": JSON_VERSION,
        "clean": result.clean,
        "files_scanned": result.files_scanned,
        "suppressed": result.suppressed,
        "grandfathered": result.grandfathered,
        "parse_errors": list(result.parse_errors),
        "findings": [
            {
                "rule": finding.rule,
                "path": finding.path,
                "line": finding.line,
                "col": finding.col,
                "message": finding.message,
            }
            for finding in result.new_findings
        ],
    }


def render_json(result: LintResult) -> str:
    return json.dumps(to_document(result), indent=2)
