"""A deterministic discrete-event simulation engine.

The engine is intentionally small: a priority queue of timestamped events
plus generator-based processes.  Processes are plain Python generators that
``yield`` either a delay (``float``/``int`` seconds of virtual time) or an
:class:`Event` to wait on.  Determinism matters for the reproduction -- two
runs with the same seed must produce identical schedules -- so ties in the
event queue are broken by a monotonically increasing sequence number.
"""

from __future__ import annotations

import heapq
import itertools
from typing import Any, Callable, Generator, Iterable, List, Optional, Tuple


class Event:
    """A one-shot event that processes can wait on.

    An event starts *pending*; :meth:`succeed` fires it with an optional
    value and wakes every waiter.  Firing twice is an error -- that almost
    always indicates a logic bug in a model.
    """

    __slots__ = ("sim", "_value", "_fired", "_waiters")

    def __init__(self, sim: "Simulator"):
        self.sim = sim
        self._value: Any = None
        self._fired = False
        self._waiters: List["Process"] = []

    @property
    def fired(self) -> bool:
        return self._fired

    @property
    def value(self) -> Any:
        if not self._fired:
            raise RuntimeError("event value read before the event fired")
        return self._value

    def succeed(self, value: Any = None) -> "Event":
        """Fire the event, waking all waiting processes at the current time."""
        if self._fired:
            raise RuntimeError("event fired twice")
        self._fired = True
        self._value = value
        for process in self._waiters:
            self.sim._schedule_resume(process, self._value)
        self._waiters.clear()
        return self

    def _add_waiter(self, process: "Process") -> None:
        if self._fired:
            self.sim._schedule_resume(process, self._value)
        else:
            self._waiters.append(process)


class Process:
    """A running generator-based simulation process.

    The underlying generator yields delays or events.  When the generator
    returns, the process's completion event fires with the return value.
    """

    __slots__ = ("sim", "name", "_generator", "done")

    def __init__(self, sim: "Simulator", generator: Generator, name: str = ""):
        self.sim = sim
        self.name = name or getattr(generator, "__name__", "process")
        self._generator = generator
        self.done = Event(sim)

    def _resume(self, value: Any) -> None:
        try:
            yielded = self._generator.send(value)
        except StopIteration as stop:
            self.done.succeed(stop.value)
            return
        if isinstance(yielded, Event):
            yielded._add_waiter(self)
        elif isinstance(yielded, Process):
            yielded.done._add_waiter(self)
        elif isinstance(yielded, (int, float)):
            if yielded < 0:
                raise ValueError(f"process {self.name!r} yielded negative delay {yielded}")
            self.sim._schedule_resume(self, None, delay=float(yielded))
        else:
            raise TypeError(
                f"process {self.name!r} yielded {type(yielded).__name__}; "
                "expected a delay, Event, or Process"
            )


class Simulator:
    """The event loop: a virtual clock plus a deterministic event queue."""

    def __init__(self):
        self._now = 0.0
        self._queue: List[Tuple[float, int, Callable[[], None]]] = []
        self._sequence = itertools.count()

    @property
    def now(self) -> float:
        """Current virtual time in seconds."""
        return self._now

    def event(self) -> Event:
        return Event(self)

    def process(self, generator: Generator, name: str = "") -> Process:
        """Start a new process; it first runs at the current virtual time."""
        process = Process(self, generator, name=name)
        self._schedule_resume(process, None)
        return process

    def call_at(self, when: float, callback: Callable[[], None]) -> None:
        """Schedule a plain callback at an absolute virtual time."""
        if when < self._now:
            raise ValueError(f"cannot schedule at {when} before now={self._now}")
        heapq.heappush(self._queue, (when, next(self._sequence), callback))

    def call_in(self, delay: float, callback: Callable[[], None]) -> None:
        self.call_at(self._now + delay, callback)

    def timeout(self, delay: float, value: Any = None) -> Event:
        """An event that fires after ``delay`` seconds of virtual time."""
        event = self.event()
        self.call_in(delay, lambda: event.succeed(value))
        return event

    def all_of(self, events: Iterable[Event]) -> Event:
        """An event that fires once every input event has fired."""
        events = list(events)
        combined = self.event()
        remaining = len(events)
        if remaining == 0:
            combined.succeed([])
            return combined
        results: List[Any] = [None] * remaining
        outstanding = [remaining]

        def _collector(index: int, source: Event) -> Generator:
            results[index] = yield source
            outstanding[0] -= 1
            if outstanding[0] == 0:
                combined.succeed(list(results))

        for index, source in enumerate(events):
            self.process(_collector(index, source), name=f"all_of[{index}]")
        return combined

    def run(self, until: Optional[float] = None) -> float:
        """Run events until the queue drains or the clock passes ``until``.

        Returns the final virtual time.
        """
        while self._queue:
            when, _, callback = self._queue[0]
            if until is not None and when > until:
                self._now = until
                return self._now
            heapq.heappop(self._queue)
            self._now = when
            callback()
        if until is not None and until > self._now:
            self._now = until
        return self._now

    def _schedule_resume(self, process: Process, value: Any, delay: float = 0.0) -> None:
        self.call_in(delay, lambda: process._resume(value))
