"""A deterministic discrete-event simulation engine.

The engine is intentionally small: generator-based processes scheduled on
a bucketed event calendar (:mod:`repro.sim.calendar`).  Processes are
plain Python generators that ``yield`` either a delay (``float``/``int``
seconds of virtual time) or an :class:`Event` to wait on.  Determinism
matters for the reproduction -- two runs with the same seed must produce
identical schedules -- so events dispatch in ``(when, seq)`` order: time
order with ties broken by schedule order, exactly the contract of the
original single-heapq loop (kept verbatim in :mod:`repro.sim.reference`).

The calendar core exists for fleet scale: same-timestamp buckets are
drained in one batched pass instead of one heap pop per event, and the
dominant ``yield <float>`` resume is dispatched inline in :meth:`run`
with a reused entry tuple, so a step completion costs a dict lookup and
a list append rather than two ``O(log n)`` heap operations.

Three primitives support the fleet-resilience subsystem:

* :meth:`Simulator.call_at` / :meth:`Simulator.call_in` return a
  :class:`Timer` handle whose :meth:`Timer.cancel` defuses the callback
  (cancelled entries are dropped without advancing the clock, so stale
  watchdog deadlines do not stretch a run's end time);
* :meth:`Process.interrupt` throws :class:`Interrupt` into a running
  process, terminating it unless the generator catches the exception --
  how a watchdog kills a hung step; and
* :meth:`Simulator.any_of` builds a first-of-N event so a step's
  completion can race its deadline.
"""

from __future__ import annotations

from heapq import heappop, heappush
from typing import Any, Callable, Generator, Iterable, List, Optional, Tuple

from repro.sim.calendar import CalendarQueue


class Interrupt(Exception):
    """Thrown into a process by :meth:`Process.interrupt`.

    ``cause`` carries why the process was interrupted (e.g. the watchdog
    deadline that fired).  A process may catch it and keep running; if it
    propagates, the process terminates and its ``done`` event fires with
    the :class:`Interrupt` instance as its value so waiters can tell a
    cancellation from a normal return.
    """

    def __init__(self, cause: Any = None):
        super().__init__(cause)
        self.cause = cause


class Timer:
    """A handle for one scheduled callback; ``cancel()`` defuses it."""

    __slots__ = ("when", "cancelled")

    def __init__(self, when: float):
        self.when = when
        self.cancelled = False

    def cancel(self) -> None:
        self.cancelled = True


class Event:
    """A one-shot event that processes can wait on.

    An event starts *pending*; :meth:`succeed` fires it with an optional
    value and wakes every waiter.  Firing twice is an error -- that almost
    always indicates a logic bug in a model.
    """

    __slots__ = ("sim", "_value", "_fired", "_waiters")

    def __init__(self, sim: "Simulator"):
        self.sim = sim
        self._value: Any = None
        self._fired = False
        # (process, wait_epoch): the epoch lets an interrupted process
        # ignore a wake-up from an event it was no longer waiting on.
        self._waiters: List[Tuple["Process", int]] = []

    @property
    def fired(self) -> bool:
        return self._fired

    @property
    def value(self) -> Any:
        if not self._fired:
            raise RuntimeError("event value read before the event fired")
        return self._value

    def succeed(self, value: Any = None) -> "Event":
        """Fire the event, waking all waiting processes at the current time."""
        if self._fired:
            raise RuntimeError("event fired twice")
        self._fired = True
        self._value = value
        for process, epoch in self._waiters:
            self.sim._schedule_resume(process, self._value, epoch=epoch)
        self._waiters.clear()
        return self

    def _add_waiter(self, process: "Process") -> None:
        if self._fired:
            self.sim._schedule_resume(process, self._value)
        else:
            self._waiters.append((process, process._epoch))


class Process:
    """A running generator-based simulation process.

    The underlying generator yields delays or events.  When the generator
    returns, the process's completion event fires with the return value.
    """

    __slots__ = ("sim", "name", "_generator", "_send", "done", "_epoch", "interrupted")

    def __init__(self, sim: "Simulator", generator: Generator, name: str = ""):
        self.sim = sim
        self.name = name or getattr(generator, "__name__", "process")
        self._generator = generator
        # Pre-bound ``generator.send`` so the run loop skips two attribute
        # lookups per dispatch on the dominant resume path.
        self._send = generator.send
        self.done = Event(sim)
        # Bumped on interrupt *and* on termination, so a queued resume is
        # stale iff its captured epoch mismatches -- one int compare in
        # the run loop, no ``done.fired`` re-check needed.
        self._epoch = 0
        self.interrupted = False

    @property
    def is_alive(self) -> bool:
        return not self.done.fired

    def interrupt(self, cause: Any = None) -> bool:
        """Throw :class:`Interrupt` into the process at the current time.

        Returns False (a no-op) when the process already finished -- the
        natural race between a watchdog and a completing step.  If the
        generator does not catch the exception the process terminates and
        ``done`` fires with the :class:`Interrupt` as its value.
        """
        if self.done.fired:
            return False
        self._epoch += 1
        self.interrupted = True
        self._advance(lambda: self._generator.throw(Interrupt(cause)))
        return True

    def _advance(self, step: Callable[[], Any]) -> None:
        # Span context for the observability layer: while the generator
        # runs, this process is the simulator's active process, so trace
        # spans emitted from inside it can name their causal process.
        previous = self.sim.active_process
        self.sim.active_process = self
        try:
            try:
                yielded = step()
            except StopIteration as stop:
                self._epoch += 1  # retire: any queued resume is now stale
                self.done.succeed(stop.value)
                return
            except Interrupt as interrupt:
                # The generator let the interrupt propagate: terminated.
                self._epoch += 1
                self.done.succeed(interrupt)
                return
            self._handle_yield(yielded)
        finally:
            self.sim.active_process = previous

    def _handle_yield(self, yielded: Any) -> None:
        """Schedule the process's next resume according to what it yielded.

        One ladder for every yield type: exact ``float``/``int`` take the
        first branch, and well-behaved numeric *subclasses* fold into the
        same delay path -- except ``bool``, which is an ``int`` subclass
        by accident of history, not a duration: ``yield True`` is always
        a bug (usually a mistyped ``yield event``), so it is rejected
        loudly instead of silently sleeping 1.0s.
        """
        cls = type(yielded)
        if cls is float or cls is int:
            delay = yielded
        elif isinstance(yielded, Event):
            yielded._add_waiter(self)
            return
        elif isinstance(yielded, Process):
            yielded.done._add_waiter(self)
            return
        elif cls is not bool and isinstance(yielded, (int, float)):
            delay = float(yielded)
        else:
            detail = (
                f"a bool ({yielded!r}), which is never a delay"
                if cls is bool
                else cls.__name__
            )
            raise TypeError(
                f"process {self.name!r} yielded {detail}; "
                "expected a delay, Event, or Process"
            )
        if delay < 0:
            raise ValueError(f"process {self.name!r} yielded negative delay {delay}")
        sim = self.sim
        sim._calendar.push(sim._now + delay, (self._epoch, self, None))


class Simulator:
    """The event loop: a virtual clock plus a deterministic event calendar."""

    def __init__(self):
        self._now = 0.0
        # Three entry shapes share the calendar, dispatched by length and
        # then by the first element's type in run():
        #   (epoch, process, value)  -- pre-bound process resumes
        #   (timer, callback)        -- Timer entries
        #   (event, value)           -- pre-bound timeout completions
        # Ordering lives entirely in the calendar (when + push order), so
        # entries carry no timestamps or sequence numbers of their own.
        self._calendar = CalendarQueue()
        #: The process whose generator is currently advancing, if any --
        #: the span context the observability layer stamps onto trace
        #: events emitted from inside simulation processes.
        self.active_process: Optional[Process] = None

    @property
    def now(self) -> float:
        """Current virtual time in seconds."""
        return self._now

    @property
    def active_process_name(self) -> Optional[str]:
        process = self.active_process
        return process.name if process is not None else None

    def event(self) -> Event:
        return Event(self)

    def process(self, generator: Generator, name: str = "") -> Process:
        """Start a new process; it first runs at the current virtual time."""
        process = Process(self, generator, name=name)
        self._calendar.push(self._now, (process._epoch, process, None))
        return process

    def call_at(self, when: float, callback: Callable[[], object]) -> Timer:
        """Schedule a plain callback at an absolute virtual time.

        The callback's return value is discarded, so any callable works
        (``object`` rather than ``None`` keeps value-returning lambdas
        like ``lambda: plane.submit(r)`` well-typed at call sites).
        """
        if when < self._now:
            raise ValueError(f"cannot schedule at {when} before now={self._now}")
        timer = Timer(when)
        self._calendar.push(when, (timer, callback))
        return timer

    def call_in(self, delay: float, callback: Callable[[], object]) -> Timer:
        return self.call_at(self._now + delay, callback)

    def timeout(self, delay: float, value: Any = None) -> Event:
        """An event that fires after ``delay`` seconds of virtual time.

        The dominant deadline pattern, so it gets a pre-bound calendar
        entry like process resumes do: no :class:`Timer`, no closure --
        the run loop calls ``event.succeed(value)`` directly.  (It cannot
        be cancelled, which is fine: nothing ever cancelled the closure
        variant either, and waiters race it with :meth:`any_of`.)
        """
        when = self._now + delay
        if when < self._now:
            raise ValueError(f"cannot schedule at {when} before now={self._now}")
        event = Event(self)
        self._calendar.push(when, (event, value))
        return event

    def all_of(self, events: Iterable[Event]) -> Event:
        """An event that fires once every input event has fired."""
        events = list(events)
        combined = self.event()
        remaining = len(events)
        if remaining == 0:
            combined.succeed([])
            return combined
        results: List[Any] = [None] * remaining
        outstanding = [remaining]

        def _collector(index: int, source: Event) -> Generator:
            results[index] = yield source
            outstanding[0] -= 1
            if outstanding[0] == 0:
                combined.succeed(list(results))

        for index, source in enumerate(events):
            self.process(_collector(index, source), name=f"all_of[{index}]")
        return combined

    def any_of(self, events: Iterable[Event]) -> Event:
        """An event firing with ``(index, value)`` of the first to fire.

        Ties are deterministic: the lowest input index wins.  This is the
        combinator that lets a step race a watchdog deadline.
        """
        events = list(events)
        if not events:
            raise ValueError("any_of needs at least one event")
        combined = self.event()

        def _racer(index: int, source: Event) -> Generator:
            value = yield source
            if not combined.fired:
                combined.succeed((index, value))

        for index, source in enumerate(events):
            self.process(_racer(index, source), name=f"any_of[{index}]")
        return combined

    def run(self, until: Optional[float] = None) -> float:
        """Run events until the calendar drains or the clock passes ``until``.

        Returns the final virtual time.  Dispatch is batched: the whole
        same-timestamp bucket is drained in one pass, in push order --
        exactly the ``(when, seq)`` order of the reference heapq loop.
        Entries scheduled *at the currently dispatching timestamp* land
        in a fresh bucket popped on the next loop iteration, i.e. after
        the already-queued ties, which again matches the heapq.

        Cancelled timers are discarded without advancing the clock; a
        resume whose process moved on (interrupted or finished) still
        advances the clock to its timestamp, exactly as before.

        The dominant ``yield <float>`` resume is inlined here: staleness
        is one epoch compare, the generator's pre-bound ``send`` is
        called directly, and when the process yields a plain delay its
        entry tuple is pushed back verbatim (the ``(epoch, process,
        None)`` triple is immutable across such hops), so the steady
        state allocates nothing per event.
        """
        cal = self._calendar
        buckets = cal.buckets
        times = cal.times
        horizon = cal.horizon
        while True:
            if not times:
                if not cal.overflow:
                    break
                cal.advance()
                horizon = cal.horizon
            when = times[0]
            if until is not None and when > until:
                self._now = until
                return until
            heappop(times)
            batch = buckets.pop(when)
            for entry in batch:
                if len(entry) == 3:
                    epoch = entry[0]
                    process = entry[1]
                    if process._epoch != epoch:
                        self._now = when
                        continue
                    self._now = when
                    self.active_process = process
                    try:
                        yielded = process._send(entry[2])
                    except StopIteration as stop:
                        self.active_process = None
                        process._epoch = epoch + 1
                        process.done.succeed(stop.value)
                        continue
                    except Interrupt as interrupt:
                        self.active_process = None
                        process._epoch = epoch + 1
                        process.done.succeed(interrupt)
                        continue
                    except BaseException:
                        # A model bug escaping the generator: clear the
                        # span context before propagating, as the old
                        # ``_advance`` finally-block did.
                        self.active_process = None
                        raise
                    self.active_process = None
                    cls = type(yielded)
                    if cls is float or cls is int:
                        if yielded < 0:
                            raise ValueError(
                                f"process {process.name!r} yielded "
                                f"negative delay {yielded}"
                            )
                        nxt = when + yielded
                        if entry[2] is not None:
                            entry = (epoch, process, None)
                        if nxt < horizon:
                            bucket = buckets.get(nxt)
                            if bucket is None:
                                buckets[nxt] = [entry]
                                heappush(times, nxt)
                            else:
                                bucket.append(entry)
                        else:
                            cal.push_far(nxt, entry)
                    else:
                        process._handle_yield(yielded)
                else:
                    first = entry[0]
                    if first.__class__ is Timer:
                        if first.cancelled:
                            continue
                        self._now = when
                        entry[1]()
                    else:
                        self._now = when
                        first.succeed(entry[1])
        if until is not None and until > self._now:
            self._now = until
        return self._now

    def _schedule_resume(
        self,
        process: Process,
        value: Any,
        delay: float = 0.0,
        epoch: Optional[int] = None,
    ) -> None:
        """Queue a process resume as a pre-bound calendar entry.

        No Timer, no closure: the staleness check (epoch mismatch) happens
        at dispatch time in :meth:`run`.
        """
        wait_epoch = process._epoch if epoch is None else epoch
        self._calendar.push(self._now + delay, (wait_epoch, process, value))
