"""A bucketed event calendar for the simulation engine.

The engine's event volume is dominated by *ties*: at fleet scale,
thousands of step completions land on the same virtual timestamp (aligned
segment boundaries, synchronized samplers, batched arrivals).  A single
``heapq`` pays ``O(log n)`` per event and re-heapifies through every one
of those ties.  The calendar exploits the tie structure directly:

* **Near tier** -- a dict of buckets keyed by *exact* timestamp plus a
  min-heap of the distinct timestamps present.  A push is a dict lookup
  and a list append; a pop drains an entire same-timestamp bucket in one
  pass (*batched dispatch*).  Classic calendar queues quantize timestamps
  into fixed-width bins and sort within a bin; we key buckets on the
  exact float instead, which degenerates the intra-bucket sort away
  entirely (see the determinism argument below) and keeps float
  comparisons bit-exact.
* **Overflow tier** -- entries at or beyond a sliding ``horizon`` go to a
  conventional ``(when, seq, entry)`` min-heap.  Far-future events
  (watchdog deadlines, end-of-day markers) are rare, so they can afford
  heap ordering; keeping them out of the near tier bounds the
  distinct-times heap to the active window.  When the near tier drains,
  the horizon advances by ``span`` past the earliest overflow entry and
  everything inside the new window migrates into near buckets.

Determinism argument
--------------------

The engine's contract is the ``(when, seq)`` total order of the old
heapq: events fire in timestamp order, ties broken by schedule order.
The calendar preserves it structurally rather than by sorting:

1. Sequence numbers are assigned in push order, so within one bucket the
   list-append order *is* the sequence order -- no sort needed.
2. Near buckets hold only ``when < horizon`` and overflow only
   ``when >= horizon`` (the horizon never moves backwards), so a
   timestamp can never be split across tiers out of order: by the time a
   near push to timestamp *t* is possible, every overflow entry at *t*
   has already migrated -- and migration itself pops the overflow heap
   in ``(when, seq)`` order, appending to buckets in sequence order.
3. The distinct-times heap yields buckets in strictly increasing
   timestamp order, and every near timestamp is below every overflow
   timestamp (point 2), so batch dispatch visits timestamps globally in
   order.

Entries pushed *to the timestamp currently being dispatched* (a process
scheduling another process at the same instant) land in a fresh bucket
which the consumer pops on its next iteration -- exactly where the heapq
would have dispatched them, after the already-queued ties.
"""

from __future__ import annotations

import heapq
from typing import Any, Dict, List, Optional, Tuple

DEFAULT_SPAN = 64.0


class CalendarQueue:
    """Exact-timestamp buckets + distinct-times heap + far-future overflow.

    The engine's run loop reaches into ``buckets`` / ``times`` /
    ``horizon`` directly (they are plain attributes by design -- the hot
    path cannot afford method calls); everything else should go through
    :meth:`push` / :meth:`peek_when` / :meth:`pop_batch`.

    Entries are opaque to the calendar: it orders them by the ``when``
    passed to :meth:`push` and preserves push order within a timestamp.
    """

    __slots__ = ("buckets", "times", "overflow", "horizon", "span", "_far_seq")

    def __init__(self, span: float = DEFAULT_SPAN) -> None:
        if span <= 0:
            raise ValueError(f"calendar span must be positive, got {span}")
        self.buckets: Dict[float, List[Any]] = {}
        self.times: List[float] = []
        self.overflow: List[Tuple[float, int, Any]] = []
        self.horizon = span
        self.span = span
        # Overflow needs an explicit tie-break; near buckets get ordering
        # for free from list append order.
        self._far_seq = 0

    def push(self, when: float, entry: Any) -> None:
        """Insert ``entry`` at timestamp ``when`` (push order preserved)."""
        if when < self.horizon:
            bucket = self.buckets.get(when)
            if bucket is None:
                self.buckets[when] = [entry]
                heapq.heappush(self.times, when)
            else:
                bucket.append(entry)
        else:
            self.push_far(when, entry)

    def push_far(self, when: float, entry: Any) -> None:
        seq = self._far_seq
        self._far_seq = seq + 1
        heapq.heappush(self.overflow, (when, seq, entry))

    def advance(self) -> None:
        """Slide the horizon past the earliest overflow entry and migrate.

        Precondition: the near tier is empty (the engine only advances
        when ``times`` drains, which also guarantees no near timestamp is
        skipped).  Migration pops the overflow heap in ``(when, seq)``
        order, so bucket append order stays sequence order.
        """
        overflow = self.overflow
        horizon = overflow[0][0] + self.span
        buckets = self.buckets
        times = self.times
        while overflow and overflow[0][0] < horizon:
            when, _, entry = heapq.heappop(overflow)
            bucket = buckets.get(when)
            if bucket is None:
                buckets[when] = [entry]
                heapq.heappush(times, when)
            else:
                bucket.append(entry)
        self.horizon = horizon

    def peek_when(self) -> Optional[float]:
        """The next timestamp to dispatch, or ``None`` when empty."""
        if not self.times:
            if not self.overflow:
                return None
            self.advance()
        return self.times[0]

    def pop_batch(self) -> Tuple[float, list]:
        """Remove and return ``(when, entries)`` for the earliest timestamp.

        Raises ``IndexError`` when the calendar is empty, mirroring
        ``heapq.heappop`` on an empty heap.
        """
        if not self.times:
            if not self.overflow:
                raise IndexError("pop from an empty calendar")
            self.advance()
        when = heapq.heappop(self.times)
        return when, self.buckets.pop(when)

    def __bool__(self) -> bool:
        return bool(self.times or self.overflow)

    def pending_count(self) -> int:
        """Total queued entries (test/diagnostic helper, O(buckets))."""
        return sum(len(b) for b in self.buckets.values()) + len(self.overflow)
