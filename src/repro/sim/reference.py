"""The frozen single-heapq engine, kept as the parity and perf baseline.

This is the event loop exactly as it shipped before the calendar-wheel
core replaced it: one ``heapq`` ordered by ``(when, seq)`` with per-event
tuple dispatch.  Two things depend on it staying bit-for-bit faithful:

* the equivalence suite (``tests/test_sim_calendar.py``) replays random
  schedules through both engines and asserts identical dispatch order,
  clocks, and results; and
* the perf floors (``benchmarks/perf``, ``repro-bench perf``) measure the
  calendar engine's speedup *relative to this implementation* on the same
  interpreter and machine, which is robust where absolute events/s is not.

Do not optimize this module; its value is that it does not change.
"""

from __future__ import annotations

import heapq
import itertools
from typing import Any, Callable, Generator, Iterable, List, Optional, Tuple


class Interrupt(Exception):
    """Thrown into a process by :meth:`Process.interrupt`.

    ``cause`` carries why the process was interrupted (e.g. the watchdog
    deadline that fired).  A process may catch it and keep running; if it
    propagates, the process terminates and its ``done`` event fires with
    the :class:`Interrupt` instance as its value so waiters can tell a
    cancellation from a normal return.
    """

    def __init__(self, cause: Any = None):
        super().__init__(cause)
        self.cause = cause


class Timer:
    """A handle for one scheduled callback; ``cancel()`` defuses it."""

    __slots__ = ("when", "cancelled")

    def __init__(self, when: float):
        self.when = when
        self.cancelled = False

    def cancel(self) -> None:
        self.cancelled = True


class Event:
    """A one-shot event that processes can wait on.

    An event starts *pending*; :meth:`succeed` fires it with an optional
    value and wakes every waiter.  Firing twice is an error -- that almost
    always indicates a logic bug in a model.
    """

    __slots__ = ("sim", "_value", "_fired", "_waiters")

    def __init__(self, sim: "Simulator"):
        self.sim = sim
        self._value: Any = None
        self._fired = False
        # (process, wait_epoch): the epoch lets an interrupted process
        # ignore a wake-up from an event it was no longer waiting on.
        self._waiters: List[Tuple["Process", int]] = []

    @property
    def fired(self) -> bool:
        return self._fired

    @property
    def value(self) -> Any:
        if not self._fired:
            raise RuntimeError("event value read before the event fired")
        return self._value

    def succeed(self, value: Any = None) -> "Event":
        """Fire the event, waking all waiting processes at the current time."""
        if self._fired:
            raise RuntimeError("event fired twice")
        self._fired = True
        self._value = value
        for process, epoch in self._waiters:
            self.sim._schedule_resume(process, self._value, epoch=epoch)
        self._waiters.clear()
        return self

    def _add_waiter(self, process: "Process") -> None:
        if self._fired:
            self.sim._schedule_resume(process, self._value)
        else:
            self._waiters.append((process, process._epoch))


class Process:
    """A running generator-based simulation process.

    The underlying generator yields delays or events.  When the generator
    returns, the process's completion event fires with the return value.
    """

    __slots__ = ("sim", "name", "_generator", "done", "_epoch", "interrupted")

    def __init__(self, sim: "Simulator", generator: Generator, name: str = ""):
        self.sim = sim
        self.name = name or getattr(generator, "__name__", "process")
        self._generator = generator
        self.done = Event(sim)
        # Bumped on interrupt so stale scheduled resumes are dropped.
        self._epoch = 0
        self.interrupted = False

    @property
    def is_alive(self) -> bool:
        return not self.done.fired

    def interrupt(self, cause: Any = None) -> bool:
        """Throw :class:`Interrupt` into the process at the current time.

        Returns False (a no-op) when the process already finished -- the
        natural race between a watchdog and a completing step.  If the
        generator does not catch the exception the process terminates and
        ``done`` fires with the :class:`Interrupt` as its value.
        """
        if self.done.fired:
            return False
        self._epoch += 1
        self.interrupted = True
        self._advance(lambda: self._generator.throw(Interrupt(cause)))
        return True

    def _resume(self, value: Any) -> None:
        self._advance(lambda: self._generator.send(value))

    def _advance(self, step: Callable[[], Any]) -> None:
        # Span context for the observability layer: while the generator
        # runs, this process is the simulator's active process, so trace
        # spans emitted from inside it can name their causal process.
        previous = self.sim.active_process
        self.sim.active_process = self
        try:
            self._advance_inner(step)
        finally:
            self.sim.active_process = previous

    def _advance_inner(self, step: Callable[[], Any]) -> None:
        try:
            yielded = step()
        except StopIteration as stop:
            self.done.succeed(stop.value)
            return
        except Interrupt as interrupt:
            # The generator let the interrupt propagate: terminated.
            self.done.succeed(interrupt)
            return
        # Fast path first: ``yield <float>`` dominates the simulation's
        # event volume (every step duration), so it skips both isinstance
        # checks and the _schedule_resume indirection.
        cls = type(yielded)
        if cls is float or cls is int:
            if yielded < 0:
                raise ValueError(f"process {self.name!r} yielded negative delay {yielded}")
            sim = self.sim
            heapq.heappush(
                sim._queue,
                (sim._now + yielded, next(sim._sequence), self._epoch, self, None),
            )
        elif isinstance(yielded, Event):
            yielded._add_waiter(self)
        elif isinstance(yielded, Process):
            yielded.done._add_waiter(self)
        elif isinstance(yielded, (int, float)):  # int/float subclasses
            if yielded < 0:
                raise ValueError(f"process {self.name!r} yielded negative delay {yielded}")
            self.sim._schedule_resume(self, None, delay=float(yielded))
        else:
            raise TypeError(
                f"process {self.name!r} yielded {type(yielded).__name__}; "
                "expected a delay, Event, or Process"
            )


class Simulator:
    """The event loop: a virtual clock plus a deterministic event queue."""

    def __init__(self):
        self._now = 0.0
        # Two entry shapes share the heap, dispatched by length in run():
        #   (when, seq, timer, callback)        -- Timer entries
        #   (when, seq, epoch, process, value)  -- pre-bound process resumes
        # The (when, seq) prefix is unique (seq is monotonic), so heap
        # comparisons never reach the mixed third element.
        self._queue: List[tuple] = []
        self._sequence = itertools.count()
        #: The process whose generator is currently advancing, if any --
        #: the span context the observability layer stamps onto trace
        #: events emitted from inside simulation processes.
        self.active_process: Optional[Process] = None

    @property
    def now(self) -> float:
        """Current virtual time in seconds."""
        return self._now

    @property
    def active_process_name(self) -> Optional[str]:
        process = self.active_process
        return process.name if process is not None else None

    def event(self) -> Event:
        return Event(self)

    def process(self, generator: Generator, name: str = "") -> Process:
        """Start a new process; it first runs at the current virtual time."""
        process = Process(self, generator, name=name)
        self._schedule_resume(process, None)
        return process

    def call_at(self, when: float, callback: Callable[[], None]) -> Timer:
        """Schedule a plain callback at an absolute virtual time."""
        if when < self._now:
            raise ValueError(f"cannot schedule at {when} before now={self._now}")
        timer = Timer(when)
        heapq.heappush(self._queue, (when, next(self._sequence), timer, callback))
        return timer

    def call_in(self, delay: float, callback: Callable[[], None]) -> Timer:
        return self.call_at(self._now + delay, callback)

    def timeout(self, delay: float, value: Any = None) -> Event:
        """An event that fires after ``delay`` seconds of virtual time."""
        event = self.event()
        self.call_in(delay, lambda: event.succeed(value))
        return event

    def all_of(self, events: Iterable[Event]) -> Event:
        """An event that fires once every input event has fired."""
        events = list(events)
        combined = self.event()
        remaining = len(events)
        if remaining == 0:
            combined.succeed([])
            return combined
        results: List[Any] = [None] * remaining
        outstanding = [remaining]

        def _collector(index: int, source: Event) -> Generator:
            results[index] = yield source
            outstanding[0] -= 1
            if outstanding[0] == 0:
                combined.succeed(list(results))

        for index, source in enumerate(events):
            self.process(_collector(index, source), name=f"all_of[{index}]")
        return combined

    def any_of(self, events: Iterable[Event]) -> Event:
        """An event firing with ``(index, value)`` of the first to fire.

        Ties are deterministic: the lowest input index wins.  This is the
        combinator that lets a step race a watchdog deadline.
        """
        events = list(events)
        if not events:
            raise ValueError("any_of needs at least one event")
        combined = self.event()

        def _racer(index: int, source: Event) -> Generator:
            value = yield source
            if not combined.fired:
                combined.succeed((index, value))

        for index, source in enumerate(events):
            self.process(_racer(index, source), name=f"any_of[{index}]")
        return combined

    def run(self, until: Optional[float] = None) -> float:
        """Run events until the queue drains or the clock passes ``until``.

        Returns the final virtual time.  Cancelled timers are discarded
        without advancing the clock; a resume whose process moved on
        (interrupted or finished) still advances the clock to its
        timestamp, exactly as the closure-based entries did.
        """
        queue = self._queue
        pop = heapq.heappop
        while queue:
            entry = queue[0]
            if len(entry) == 4 and entry[2].cancelled:
                pop(queue)
                continue
            when = entry[0]
            if until is not None and when > until:
                self._now = until
                return self._now
            pop(queue)
            self._now = when
            if len(entry) == 4:
                entry[3]()
            else:
                _, _, epoch, process, value = entry
                if process._epoch == epoch and not process.done.fired:
                    process._resume(value)
        if until is not None and until > self._now:
            self._now = until
        return self._now

    def _schedule_resume(
        self,
        process: Process,
        value: Any,
        delay: float = 0.0,
        epoch: Optional[int] = None,
    ) -> None:
        """Queue a process resume as a pre-bound heap tuple.

        No Timer, no closure: the staleness check (epoch mismatch or an
        already-finished process) happens at dispatch time in :meth:`run`.
        """
        wait_epoch = process._epoch if epoch is None else epoch
        heapq.heappush(
            self._queue,
            (self._now + delay, next(self._sequence), wait_epoch, process, value),
        )
