"""Counted and multi-dimensional resources for the event engine.

:class:`MultiResource` is the primitive behind the paper's bin-packing
scheduler (Section 3.3.3): each worker advertises named scalar dimensions
("millidecode", "milliencode", "dram_bytes", "host_cpu", plus synthetic
dimensions), and requests reserve a vector across all of them atomically.
"""

from __future__ import annotations

from collections import deque
from typing import Deque, Dict, Mapping, Optional, Tuple

from repro.sim.engine import Event, Simulator


class InsufficientCapacity(Exception):
    """Raised when a request can never be satisfied by a resource."""


class CapacityResource:
    """A single-dimensional counted resource with FIFO waiters."""

    def __init__(self, sim: Simulator, capacity: float, name: str = ""):
        if capacity <= 0:
            raise ValueError("capacity must be positive")
        self.sim = sim
        self.name = name
        self.capacity = float(capacity)
        self.available = float(capacity)
        self._waiters: Deque[Tuple[float, Event]] = deque()

    @property
    def in_use(self) -> float:
        return self.capacity - self.available

    @property
    def utilization(self) -> float:
        return self.in_use / self.capacity

    def acquire(self, amount: float = 1.0) -> Event:
        """Reserve ``amount``; the returned event fires when the reservation holds."""
        if amount > self.capacity:
            raise InsufficientCapacity(
                f"{self.name or 'resource'}: requested {amount} > capacity {self.capacity}"
            )
        event = self.sim.event()
        if not self._waiters and amount <= self.available:
            self.available -= amount
            event.succeed()
        else:
            self._waiters.append((amount, event))
        return event

    def try_acquire(self, amount: float = 1.0) -> bool:
        """Non-blocking reserve; returns whether it succeeded."""
        if self._waiters or amount > self.available:
            return False
        self.available -= amount
        return True

    def release(self, amount: float = 1.0) -> None:
        self.available += amount
        if self.available > self.capacity + 1e-9:
            raise ValueError(f"{self.name or 'resource'}: released more than acquired")
        self._drain()

    def _drain(self) -> None:
        while self._waiters and self._waiters[0][0] <= self.available:
            amount, event = self._waiters.popleft()
            self.available -= amount
            event.succeed()


class MultiResource:
    """A vector of named scalar dimensions reserved atomically.

    This mirrors the worker-resource model of Section 3.3.3: a request
    either fits in *every* dimension or does not fit at all.  Unlike
    :class:`CapacityResource` this is non-blocking by design -- the cluster
    scheduler, not the resource, decides where unfit requests go.
    """

    def __init__(self, capacities: Mapping[str, float], name: str = ""):
        if not capacities:
            raise ValueError("at least one dimension is required")
        for dim, cap in capacities.items():
            if cap < 0:
                raise ValueError(f"dimension {dim!r} has negative capacity {cap}")
        self.name = name
        self.capacity: Dict[str, float] = dict(capacities)
        self.available: Dict[str, float] = dict(capacities)

    def dimensions(self) -> Tuple[str, ...]:
        return tuple(self.capacity)

    @staticmethod
    def _epsilon(scale: float) -> float:
        """Float-comparison slack, relative to the magnitude involved."""
        return max(1e-9, 1e-9 * abs(scale))

    def fits(self, request: Mapping[str, float]) -> bool:
        """Whether the request fits the *current* availability.

        Dimensions absent from this resource do not fit (a CPU-only worker
        cannot host a request that needs encoder cores).
        """
        for dim, amount in request.items():
            if amount <= 0:
                continue
            if dim not in self.available:
                return False
            if self.available[dim] + self._epsilon(amount) < amount:
                return False
        return True

    def could_ever_fit(self, request: Mapping[str, float]) -> bool:
        """Whether the request fits total capacity (ignoring current use)."""
        for dim, amount in request.items():
            if amount <= 0:
                continue
            if dim not in self.capacity:
                return False
            if self.capacity[dim] + self._epsilon(amount) < amount:
                return False
        return True

    def acquire(self, request: Mapping[str, float]) -> bool:
        """Atomically reserve the vector; returns whether it succeeded."""
        if not self.fits(request):
            return False
        for dim, amount in request.items():
            if amount > 0:
                self.available[dim] -= amount
        return True

    def release(self, request: Mapping[str, float]) -> None:
        for dim, amount in request.items():
            if amount <= 0:
                continue
            self.available[dim] += amount
            cap = self.capacity[dim]
            if self.available[dim] > cap + max(1e-6, 1e-9 * cap):
                raise ValueError(
                    f"{self.name or 'resource'}: dimension {dim!r} released more than acquired"
                )
            # Clamp accumulated float error so long runs stay exact.
            if self.available[dim] > cap:
                self.available[dim] = cap

    def utilization(self, dim: Optional[str] = None) -> float:
        """Utilization of one dimension, or the max across dimensions."""
        if dim is not None:
            cap = self.capacity[dim]
            return 0.0 if cap == 0 else (cap - self.available[dim]) / cap
        fractions = [
            (cap - self.available[d]) / cap
            for d, cap in self.capacity.items()
            if cap > 0
        ]
        return max(fractions) if fractions else 0.0

    def headroom(self) -> Dict[str, float]:
        return dict(self.available)

    def is_idle(self) -> bool:
        return all(
            abs(self.available[d] - cap) < 1e-9 for d, cap in self.capacity.items()
        )
