"""Discrete-event simulation substrate.

The warehouse-scale portions of the reproduction (clusters, schedulers,
workers, failure management) run on this small deterministic discrete-event
engine.  It provides:

* :class:`~repro.sim.engine.Simulator` -- an event loop with a virtual clock,
  process scheduling, and deterministic tie-breaking.
* :class:`~repro.sim.resources.CapacityResource` /
  :class:`~repro.sim.resources.MultiResource` -- counted and
  multi-dimensional resources with FIFO waiters (the multi-dimensional
  variant underpins the paper's bin-packing scheduler).
* :func:`~repro.sim.rng.make_rng` -- seeded, stream-split random number
  generators so every experiment is reproducible.
"""

from repro.sim.engine import Event, Interrupt, Process, Simulator, Timer
from repro.sim.resources import CapacityResource, InsufficientCapacity, MultiResource
from repro.sim.rng import make_rng, split_rng

__all__ = [
    "Event",
    "Interrupt",
    "Process",
    "Simulator",
    "Timer",
    "CapacityResource",
    "MultiResource",
    "InsufficientCapacity",
    "make_rng",
    "split_rng",
]
