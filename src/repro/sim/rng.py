"""Seeded random-number helpers.

Every stochastic component takes an explicit ``numpy.random.Generator`` so
experiments are reproducible and components can be re-seeded independently.
``split_rng`` derives independent child streams from a parent seed so that,
for example, the workload generator and the failure injector never share a
stream (adding a failure must not perturb arrivals).
"""

from __future__ import annotations

from typing import Union

import numpy as np

SeedLike = Union[int, np.random.Generator, None]


def make_rng(seed: SeedLike = 0) -> np.random.Generator:
    """Return a generator; passes through an existing generator unchanged."""
    if isinstance(seed, np.random.Generator):
        return seed
    return np.random.default_rng(0 if seed is None else seed)


def split_rng(seed: SeedLike, stream: str) -> np.random.Generator:
    """Derive an independent child stream named ``stream`` from ``seed``."""
    if isinstance(seed, np.random.Generator):
        # Spawn from the generator's bit stream deterministically.
        child_seed = int(seed.integers(0, 2**63 - 1))
    else:
        child_seed = 0 if seed is None else int(seed)
    mix = np.random.SeedSequence([child_seed, _stream_tag(stream)])
    return np.random.default_rng(mix)


def _stream_tag(stream: str) -> int:
    """A stable 63-bit tag for a stream name (not Python's salted hash)."""
    tag = 1469598103934665603  # FNV-1a offset basis
    for byte in stream.encode("utf-8"):
        tag ^= byte
        tag = (tag * 1099511628211) % (2**63)
    return tag
