"""Chunk assembly and playability integrity checks (Sections 2.2 / 4.4).

The video system breaks uploads into chunks, fans them out, and assembles
the results into playable videos.  Assembly is also where the high-level
integrity checks live: "video length must match the input" detects and
prevents most corruption from escaping.  This module implements both the
bookkeeping (which variants are complete) and the checks.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Set, Tuple

from repro.transcode.pipeline import Step, StepGraph, StepKind


@dataclass(frozen=True)
class VariantKey:
    """One output variant of a video: codec + resolution name."""

    codec: str
    resolution: str


@dataclass
class AssembledVariant:
    """The assembled output for one variant."""

    key: VariantKey
    chunk_indices: List[int]
    total_frames: int
    corrupt_chunks: int

    @property
    def playable(self) -> bool:
        return self.corrupt_chunks == 0


@dataclass
class AssemblyReport:
    """Result of assembling one video from its completed step graph."""

    video_id: str
    expected_frames: int
    variants: Dict[VariantKey, AssembledVariant]
    missing_chunks: List[Tuple[VariantKey, int]]

    @property
    def length_check_passed(self) -> bool:
        """The paper's integrity check: output length must match input."""
        return not self.missing_chunks and all(
            v.total_frames == self.expected_frames for v in self.variants.values()
        )

    @property
    def playable(self) -> bool:
        return self.length_check_passed and all(
            v.playable for v in self.variants.values()
        )

    def corrupt_variant_count(self) -> int:
        return sum(1 for v in self.variants.values() if not v.playable)


def assemble(graph: StepGraph, expected_frames: int) -> AssemblyReport:
    """Assemble a completed graph's transcode outputs into variants.

    Works for both MOT graphs (one step covers a whole ladder per chunk)
    and SOT graphs (one step per rung per chunk).
    """
    variants: Dict[VariantKey, Dict[int, Tuple[int, bool]]] = {}
    chunk_count = 0
    for step in graph.transcode_steps():
        chunk_index = _chunk_index_of(step)
        chunk_count = max(chunk_count, chunk_index + 1)
        task = step.vcu_task
        for output in task.outputs:
            key = VariantKey(codec=task.codec, resolution=output.name)
            per_chunk = variants.setdefault(key, {})
            per_chunk[chunk_index] = (task.frame_count, step.corrupt_output)

    assembled: Dict[VariantKey, AssembledVariant] = {}
    missing: List[Tuple[VariantKey, int]] = []
    for key, per_chunk in variants.items():
        indices = sorted(per_chunk)
        for expected_index in range(chunk_count):
            if expected_index not in per_chunk:
                missing.append((key, expected_index))
        assembled[key] = AssembledVariant(
            key=key,
            chunk_indices=indices,
            total_frames=sum(frames for frames, _ in per_chunk.values()),
            corrupt_chunks=sum(1 for _, corrupt in per_chunk.values() if corrupt),
        )
    return AssemblyReport(
        video_id=graph.video_id,
        expected_frames=expected_frames,
        variants=assembled,
        missing_chunks=missing,
    )


def _chunk_index_of(step: Step) -> int:
    """Chunk index from the step id (``video/<chunk>/<codec>/...``)."""
    parts = step.step_id.split("/")
    if len(parts) < 2:
        raise ValueError(f"unexpected step id {step.step_id!r}")
    return int(parts[1])


def fault_correlation(
    graphs: Sequence[StepGraph],
) -> Dict[str, List[str]]:
    """Map VCU id -> video ids with corrupt chunks processed there.

    This is the correlation the software records each chunk's VCU for
    (Section 4.4): when corruption is discovered later, the culprit VCUs
    are identified and every touched video can be reprocessed.
    """
    suspects: Dict[str, Set[str]] = {}
    for graph in graphs:
        for step in graph.transcode_steps():
            if step.corrupt_output and step.processed_by:
                suspects.setdefault(step.processed_by, set()).add(graph.video_id)
    return {vcu: sorted(videos) for vcu, videos in suspects.items()}
