"""Transcoding pipelines: output ladders, encoding modes, and step graphs.

This package turns "a video arrived" into the acyclic task-dependency
graph the warehouse scheduler executes (Section 2.2): chunking, per-chunk
MOT or SOT transcode steps, non-transcoding steps (thumbnails,
fingerprinting), and final assembly.
"""

from repro.transcode.ladder import LadderPolicy, PopularityBucket, variants_for
from repro.transcode.modes import WORKLOAD_MODES, WorkloadClass, mode_for
from repro.transcode.pipeline import (
    Step,
    StepGraph,
    StepKind,
    build_transcode_graph,
)

__all__ = [
    "PopularityBucket",
    "LadderPolicy",
    "variants_for",
    "WorkloadClass",
    "WORKLOAD_MODES",
    "mode_for",
    "Step",
    "StepGraph",
    "StepKind",
    "build_transcode_graph",
]
