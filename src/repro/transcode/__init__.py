"""Transcoding pipelines: output ladders, encoding modes, and step graphs.

This package turns "a video arrived" into the acyclic task-dependency
graph the warehouse scheduler executes (Section 2.2): chunking, per-chunk
MOT or SOT transcode steps, non-transcoding steps (thumbnails,
fingerprinting), and final assembly.  Segment-level streaming --
watchers releasing source segments over virtual time, per-(codec, rung)
tasks, and manifest alignment barriers -- lives in
:mod:`repro.transcode.segments`; the cluster-facing stream sessions are
in :mod:`repro.transcode.streaming`.
"""

from repro.transcode.ladder import LadderPolicy, PopularityBucket, variants_for
from repro.transcode.modes import WORKLOAD_MODES, WorkloadClass, mode_for
from repro.transcode.pipeline import (
    Step,
    StepGraph,
    StepKind,
    build_transcode_graph,
    codec_ladders,
    ladder_steps,
)
from repro.transcode.segments import (
    BarrierViolation,
    ManifestAssembler,
    ManifestEntry,
    SegmentRelease,
    SegmentState,
    SegmentWatcher,
    StreamKind,
    StreamSpec,
    build_segment_graph,
)
from repro.transcode.streaming import LadderDispatcher, StreamSession

__all__ = [
    "PopularityBucket",
    "LadderPolicy",
    "variants_for",
    "WorkloadClass",
    "WORKLOAD_MODES",
    "mode_for",
    "Step",
    "StepGraph",
    "StepKind",
    "build_transcode_graph",
    "codec_ladders",
    "ladder_steps",
    "BarrierViolation",
    "ManifestAssembler",
    "ManifestEntry",
    "SegmentRelease",
    "SegmentState",
    "SegmentWatcher",
    "StreamKind",
    "StreamSpec",
    "build_segment_graph",
    "LadderDispatcher",
    "StreamSession",
]
