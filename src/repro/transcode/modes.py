"""Workload classes and their encoding modes / latency targets.

The platform serves several video-centric workloads with wildly different
end-to-end latency requirements (Section 2.2): from YouTube Live's ~100 ms
steps to batch upload processing measured in minutes-to-hours, plus
Stadia's interactive encoding.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Dict

from repro.vcu.spec import EncodingMode


class WorkloadClass(enum.Enum):
    UPLOAD = "upload"  # YouTube uploads: offline two-pass, best quality
    ARCHIVE = "archive"  # Photos/Drive: offline two-pass, batch priority
    LIVE = "live"  # Live streams: lagged two-pass, bounded latency
    GAMING = "gaming"  # Stadia: low-latency two-pass, interactive


@dataclass(frozen=True)
class WorkloadMode:
    """Encoding mode plus the latency envelope for a workload class."""

    mode: EncodingMode
    #: End-to-end latency target, seconds (None = throughput-oriented).
    latency_target_seconds: float = None
    #: Scheduling priority: lower number = more critical.
    priority: int = 1


WORKLOAD_MODES: Dict[WorkloadClass, WorkloadMode] = {
    WorkloadClass.UPLOAD: WorkloadMode(
        EncodingMode.OFFLINE_TWO_PASS, latency_target_seconds=3600.0, priority=1
    ),
    WorkloadClass.ARCHIVE: WorkloadMode(
        EncodingMode.OFFLINE_TWO_PASS, latency_target_seconds=None, priority=2
    ),
    WorkloadClass.LIVE: WorkloadMode(
        EncodingMode.LAGGED_TWO_PASS, latency_target_seconds=5.0, priority=0
    ),
    WorkloadClass.GAMING: WorkloadMode(
        EncodingMode.LOW_LATENCY_TWO_PASS, latency_target_seconds=0.05, priority=0
    ),
}


def mode_for(workload: WorkloadClass) -> WorkloadMode:
    return WORKLOAD_MODES[workload]
