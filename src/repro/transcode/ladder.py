"""Output variant selection by popularity (Section 2.2).

Video popularity follows a stretched power law with three buckets:

* ``HOT`` -- the very popular head: worth extra compute to cut egress
  bandwidth, so it gets both H.264 and VP9 across the full ladder.
* ``WARM`` -- modestly watched: both formats, moderate effort.
* ``COLD`` -- the long tail: minimize transcode + storage cost while
  keeping playability, so H.264 only.

Before the VCU, VP9 was only produced *after* a video proved popular
(cheap batch CPU); with VCUs both formats are produced at upload
(Section 4.5) -- the ``vp9_at_upload`` flag switches between the eras.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Dict, List, Tuple

from repro.video.frame import Resolution, output_ladder


class PopularityBucket(enum.Enum):
    HOT = "hot"
    WARM = "warm"
    COLD = "cold"


#: Fraction of uploads per bucket (head is tiny; the tail is most videos).
BUCKET_UPLOAD_FRACTIONS: Dict[PopularityBucket, float] = {
    PopularityBucket.HOT: 0.01,
    PopularityBucket.WARM: 0.14,
    PopularityBucket.COLD: 0.85,
}

#: Fraction of watch time per bucket (the head dominates).
BUCKET_WATCH_FRACTIONS: Dict[PopularityBucket, float] = {
    PopularityBucket.HOT: 0.70,
    PopularityBucket.WARM: 0.25,
    PopularityBucket.COLD: 0.05,
}


@dataclass(frozen=True)
class LadderPolicy:
    """Which (format, resolution) variants a video gets."""

    #: With VCUs, VP9 is affordable at upload time for non-tail videos.
    vp9_at_upload: bool = True

    def formats_for(self, bucket: PopularityBucket) -> List[str]:
        if bucket is PopularityBucket.COLD:
            return ["h264"]
        if self.vp9_at_upload:
            return ["h264", "vp9"]
        # Software era: VP9 deferred to post-hoc batch for popular videos.
        return ["h264"]

    def variants(
        self, source: Resolution, bucket: PopularityBucket
    ) -> List[Tuple[str, Resolution]]:
        """All (codec, resolution) outputs for one source video."""
        ladder = output_ladder(source)
        return [(codec, rung) for codec in self.formats_for(bucket) for rung in ladder]


def variants_for(
    source: Resolution,
    bucket: PopularityBucket,
    policy: LadderPolicy = LadderPolicy(),
) -> List[Tuple[str, Resolution]]:
    """Convenience wrapper over :meth:`LadderPolicy.variants`."""
    return policy.variants(source, bucket)
