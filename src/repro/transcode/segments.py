"""Segment-level streaming ladders: release, encode, align, manifest.

Live and upload serving is *segmented*: the source arrives as short
closed-GOP segments, every ladder rung of a segment is encoded as its
own task with a rung-sized hardware footprint, and an HLS-style manifest
advances only when **all** rungs of a segment are done (the alignment
barrier) and every earlier segment has already been published (manifests
are strictly in segment order).  This module holds the three pieces of
that dataflow that are independent of any particular cluster:

* :class:`StreamSpec` -- the immutable description of one stream;
* :class:`SegmentWatcher` -- a sim process releasing source segments
  over virtual time (live streams drip one segment per segment duration,
  uploads arrive whole);
* :class:`ManifestAssembler` -- the pure barrier algebra.  It is
  driven entirely by ``release``/``complete_rung`` calls with explicit
  timestamps, so property tests can exercise it without a simulator.

The assembler is also the loss/duplication oracle: releasing a segment
twice, completing a rung twice (a double encode), or completing a rung
of an unknown segment raises :class:`BarrierViolation`.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Set, Tuple

from repro.sim.engine import Process, Simulator
from repro.transcode.modes import WorkloadClass, mode_for
from repro.transcode.pipeline import Step, StepGraph, ladder_steps
from repro.video.frame import Resolution, output_ladder, resolution
from repro.video.gop import Chunk

#: Rungs at or below this output size (360p) may fall back to software
#: opportunistically when every hardware slot is busy (Section 2.2: the
#: low rungs are cheap enough that CPU encoding meets live deadlines).
OPPORTUNISTIC_MAX_PIXELS: int = resolution("360p").pixels

#: Codecs both the VCU spec tables and the CPU model can encode.
SUPPORTED_STREAM_CODECS: Tuple[str, ...] = ("h264", "vp9")


class StreamKind(enum.Enum):
    LIVE = "live"  # segments drip in real time as they are captured
    UPLOAD = "upload"  # the whole file is present at arrival


@dataclass(frozen=True)
class StreamSpec:
    """Immutable description of one segmented stream."""

    stream_id: str
    kind: StreamKind
    source: Resolution
    #: Number of source segments in the stream.
    segment_count: int
    segment_seconds: float = 2.0
    fps: float = 30.0
    codecs: Tuple[str, ...] = ("h264",)
    #: Per-segment SLO: the manifest entry is due this many seconds
    #: after the segment is released (None = no deadline tracking).
    deadline_seconds: Optional[float] = None
    #: Output-pixel ceiling for opportunistic software fallback.
    opportunistic_max_pixels: int = OPPORTUNISTIC_MAX_PIXELS

    def __post_init__(self) -> None:
        if self.segment_count <= 0:
            raise ValueError("stream must contain at least one segment")
        if self.segment_seconds <= 0:
            raise ValueError("segment_seconds must be positive")
        if self.fps <= 0:
            raise ValueError("fps must be positive")
        if not self.codecs:
            raise ValueError("stream needs at least one output codec")
        for codec in self.codecs:
            if codec not in SUPPORTED_STREAM_CODECS:
                raise ValueError(f"unknown codec {codec!r}")
        if self.deadline_seconds is not None and self.deadline_seconds <= 0:
            raise ValueError("deadline_seconds must be positive")

    @property
    def segment_frames(self) -> int:
        return max(1, int(round(self.segment_seconds * self.fps)))

    def rungs(self) -> List[Resolution]:
        """Output ladder for the stream's source (descending, <= source)."""
        return output_ladder(self.source)

    def rung_keys(self) -> Tuple[str, ...]:
        """The (codec, rung) barrier keys every segment must complete."""
        return tuple(
            f"{codec}/{rung.name}" for codec in self.codecs for rung in self.rungs()
        )

    @property
    def workload(self) -> WorkloadClass:
        return (
            WorkloadClass.LIVE
            if self.kind is StreamKind.LIVE
            else WorkloadClass.UPLOAD
        )


@dataclass(frozen=True)
class SegmentRelease:
    """One source segment becoming available for encoding."""

    stream_id: str
    index: int
    released_at: float
    #: Absolute virtual-time manifest deadline (None = untracked).
    deadline: Optional[float] = None


def build_segment_graph(
    spec: StreamSpec, release: SegmentRelease
) -> StepGraph:
    """Per-(segment, codec, rung) SOT step graph for one released segment.

    Routes through the same :func:`~repro.transcode.pipeline.ladder_steps`
    builder as the whole-chunk path, so segment tasks carry the exact
    per-rung VCU footprints the bin-packing scheduler sees elsewhere.
    """
    chunk = Chunk(
        video_id=spec.stream_id,
        index=release.index,
        frame_count=spec.segment_frames,
        fps=spec.fps,
        nominal=spec.source,
    )
    by_codec = {codec: spec.rungs() for codec in spec.codecs}
    steps = ladder_steps(
        chunk,
        by_codec,
        mode_for(spec.workload).mode,
        use_mot=False,
        opportunistic_max_pixels=spec.opportunistic_max_pixels,
        deadline=release.deadline,
    )
    return StepGraph(
        video_id=f"{spec.stream_id}#{release.index}",
        steps=steps,
        workload=spec.workload,
        submitted_at=release.released_at,
    )


def segment_index_of(step: Step) -> int:
    """Recover the segment index from a segment step's id.

    Segment step ids follow the chunk convention
    ``{stream_id}/{index}/{codec}/sot-{rung}``.
    """
    return int(step.step_id.rsplit("/", 3)[1])


def rung_key_of(step: Step) -> str:
    """The barrier key ``{codec}/{rung}`` a transcode step completes."""
    if step.vcu_task is None or step.rung is None:
        raise ValueError(f"step {step.step_id} is not a per-rung transcode")
    return f"{step.vcu_task.codec}/{step.rung}"


class SegmentWatcher:
    """Releases a stream's source segments over virtual time.

    A LIVE stream's segment ``i`` becomes available once it has been
    captured, ``(i + 1) * segment_seconds`` after the stream starts.  An
    UPLOAD's file is already complete, so every segment is released the
    moment the watcher starts.
    """

    def __init__(
        self,
        sim: Simulator,
        spec: StreamSpec,
        on_release: Callable[[SegmentRelease], None],
    ) -> None:
        self.sim = sim
        self.spec = spec
        self.on_release = on_release
        self.released: List[SegmentRelease] = []
        self.started_at: Optional[float] = None

    def start(self) -> Process:
        if self.started_at is not None:
            raise RuntimeError(f"watcher for {self.spec.stream_id} already started")
        self.started_at = self.sim.now
        return self.sim.process(self._run(), name=f"watch:{self.spec.stream_id}")

    def _run(self):  # pragma: no cover - exercised via Simulator
        spec = self.spec
        if spec.kind is StreamKind.UPLOAD:
            for index in range(spec.segment_count):
                self._release(index)
            return
        for index in range(spec.segment_count):
            yield spec.segment_seconds
            self._release(index)

    def _release(self, index: int) -> None:
        now = self.sim.now
        deadline = (
            None
            if self.spec.deadline_seconds is None
            else now + self.spec.deadline_seconds
        )
        release = SegmentRelease(
            stream_id=self.spec.stream_id,
            index=index,
            released_at=now,
            deadline=deadline,
        )
        self.released.append(release)
        self.on_release(release)


class BarrierViolation(RuntimeError):
    """A segment was lost, double-released, or double-encoded."""


class SegmentState(enum.Enum):
    ENCODING = "encoding"  # released; at least one rung outstanding
    ALIGNED = "aligned"  # all rungs done; waiting for in-order emit
    EMITTED = "emitted"  # manifest entry published


@dataclass(frozen=True)
class ManifestEntry:
    """One published manifest line: a fully aligned segment."""

    index: int
    released_at: float
    #: When the last rung completed (the alignment barrier fired).
    aligned_at: float
    #: When the entry was published (>= aligned_at: in-order emission).
    emitted_at: float
    #: Head-of-line blocking behind earlier segments' barriers.
    stall_seconds: float
    deadline_missed: bool
    #: Rungs whose output escaped integrity checking corrupted.
    corrupt_rungs: int


@dataclass
class _SegmentProgress:
    released_at: float
    deadline: Optional[float]
    outstanding: Set[str]
    aligned_at: Optional[float] = None
    corrupt_rungs: int = 0
    completions: Dict[str, float] = field(default_factory=dict)


class ManifestAssembler:
    """The alignment-barrier algebra behind HLS-style manifest assembly.

    Pure bookkeeping: callers supply timestamps, and the assembler
    guarantees (a) a barrier fires only when every rung key of a segment
    has completed exactly once, and (b) entries are emitted strictly in
    segment order -- segment ``i`` is published only after segments
    ``0..i-1``, even if it aligned first (the stall is recorded).
    """

    def __init__(
        self,
        stream_id: str,
        rung_keys: Tuple[str, ...],
        started_at: float = 0.0,
    ) -> None:
        if not rung_keys:
            raise ValueError("a manifest needs at least one rung key")
        if len(set(rung_keys)) != len(rung_keys):
            raise ValueError("rung keys must be unique")
        self.stream_id = stream_id
        self.rung_keys = tuple(rung_keys)
        self.started_at = started_at
        self.entries: List[ManifestEntry] = []
        self.time_to_first_segment: Optional[float] = None
        self._segments: Dict[int, _SegmentProgress] = {}
        self._emitted: Set[int] = set()
        self._next_emit = 0

    def state_of(self, index: int) -> Optional[SegmentState]:
        """Current state of a segment (None = never released)."""
        if index in self._emitted:
            return SegmentState.EMITTED
        progress = self._segments.get(index)
        if progress is None:
            return None
        return (
            SegmentState.ALIGNED
            if not progress.outstanding
            else SegmentState.ENCODING
        )

    def pending_indices(self) -> List[int]:
        """Released-but-unpublished segments (loss oracle for soaks)."""
        return sorted(self._segments)

    def release(
        self, index: int, at: float, deadline: Optional[float] = None
    ) -> None:
        if index < 0:
            raise ValueError("segment index must be non-negative")
        if index in self._segments or index in self._emitted:
            raise BarrierViolation(
                f"{self.stream_id}: segment {index} released twice"
            )
        self._segments[index] = _SegmentProgress(
            released_at=at,
            deadline=deadline,
            outstanding=set(self.rung_keys),
        )

    def complete_rung(
        self, index: int, rung_key: str, at: float, corrupt: bool = False
    ) -> List[ManifestEntry]:
        """Record one rung finishing; returns any entries it unblocked.

        The returned list is empty unless this completion fired the
        segment's barrier *and* the segment (plus possibly later,
        already-aligned segments) was next in emission order.
        """
        progress = self._segments.get(index)
        if progress is None:
            what = "emitted" if index in self._emitted else "unreleased"
            raise BarrierViolation(
                f"{self.stream_id}: rung {rung_key} completed for "
                f"{what} segment {index}"
            )
        if rung_key not in self.rung_keys:
            raise BarrierViolation(
                f"{self.stream_id}: unknown rung key {rung_key!r}"
            )
        if rung_key not in progress.outstanding:
            raise BarrierViolation(
                f"{self.stream_id}: segment {index} rung {rung_key} "
                "completed twice (double encode)"
            )
        progress.outstanding.discard(rung_key)
        progress.completions[rung_key] = at
        if corrupt:
            progress.corrupt_rungs += 1
        if progress.outstanding:
            return []
        progress.aligned_at = at
        return self._emit_ready(at)

    def _emit_ready(self, at: float) -> List[ManifestEntry]:
        emitted: List[ManifestEntry] = []
        while True:
            progress = self._segments.get(self._next_emit)
            if progress is None or progress.aligned_at is None:
                break
            index = self._next_emit
            entry = ManifestEntry(
                index=index,
                released_at=progress.released_at,
                aligned_at=progress.aligned_at,
                emitted_at=at,
                stall_seconds=at - progress.aligned_at,
                deadline_missed=(
                    progress.deadline is not None and at > progress.deadline
                ),
                corrupt_rungs=progress.corrupt_rungs,
            )
            if self.time_to_first_segment is None:
                self.time_to_first_segment = at - self.started_at
            del self._segments[index]
            self._emitted.add(index)
            self.entries.append(entry)
            emitted.append(entry)
            self._next_emit += 1
        return emitted
