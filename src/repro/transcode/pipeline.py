"""Step graphs: the acyclic task-dependency graph for one video.

Processing starts by deciding output variants, then building a DAG whose
nodes are variable-sized "steps" (Section 2.2): per-chunk transcodes (MOT
or SOT), non-transcoding work (thumbnails, fingerprinting, search
signals), and a final assembly step gated on every transcode.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.transcode.ladder import LadderPolicy, PopularityBucket
from repro.transcode.modes import WorkloadClass, mode_for
from repro.vcu.chip import VcuTask
from repro.vcu.spec import EncodingMode
from repro.video.frame import Resolution
from repro.video.gop import Chunk, chunk_metadata


class StepKind(enum.Enum):
    TRANSCODE = "transcode"
    THUMBNAIL = "thumbnail"
    FINGERPRINT = "fingerprint"
    SEARCH_SIGNALS = "search_signals"
    ASSEMBLE = "assemble"


@dataclass(eq=False)
class Step:
    """One schedulable unit of work (identity semantics: two steps are
    never "equal", they are the same object or different work)."""

    step_id: str
    kind: StepKind
    video_id: str
    #: For TRANSCODE steps: the accelerator task description.
    vcu_task: Optional[VcuTask] = None
    #: For CPU steps: core-seconds of work.
    cpu_core_seconds: float = 0.0
    depends_on: List["Step"] = field(default_factory=list)
    #: Filled by the cluster: which VCU processed it (fault correlation,
    #: Section 4.4 records the VCUs each chunk ran on).
    processed_by: Optional[str] = None
    attempts: int = 0
    corrupt_output: bool = False
    #: Force the legacy software path (pre-VCU era workload share).
    software_only: bool = False
    #: For per-rung (SOT) steps: the output rung's resolution name.
    rung: Optional[str] = None
    #: Low rungs in a streaming ladder may run on CPU immediately when
    #: every hardware slot is busy, instead of queueing for a VCU.
    fallback_opportunistic: bool = False
    #: Filled by the cluster: virtual time the step last became runnable.
    ready_at: float = 0.0
    #: Absolute virtual-time SLO for segment steps (None = throughput work).
    deadline: Optional[float] = None

    def is_transcode(self) -> bool:
        return self.kind is StepKind.TRANSCODE


@dataclass
class StepGraph:
    """The DAG for one video, plus bookkeeping the cluster updates."""

    video_id: str
    steps: List[Step]
    workload: WorkloadClass
    submitted_at: float = 0.0
    completed_at: Optional[float] = None

    def __post_init__(self) -> None:
        self._validate_acyclic()

    def transcode_steps(self) -> List[Step]:
        return [s for s in self.steps if s.is_transcode()]

    def output_megapixels(self) -> float:
        return sum(s.vcu_task.output_pixels for s in self.transcode_steps()) / 1e6

    def _validate_acyclic(self) -> None:
        seen: Dict[int, int] = {}  # id -> 0 visiting, 1 done

        def visit(step: Step) -> None:
            state = seen.get(id(step))
            if state == 0:
                raise ValueError(f"dependency cycle through step {step.step_id}")
            if state == 1:
                return
            seen[id(step)] = 0
            for dep in step.depends_on:
                visit(dep)
            seen[id(step)] = 1

        for step in self.steps:
            visit(step)



def build_transcode_graph(
    video_id: str,
    source: Resolution,
    total_frames: int,
    fps: float,
    workload: WorkloadClass = WorkloadClass.UPLOAD,
    bucket: PopularityBucket = PopularityBucket.WARM,
    policy: LadderPolicy = LadderPolicy(),
    use_mot: bool = True,
    gop_frames: int = 150,
    software_decode: bool = False,
) -> StepGraph:
    """Build the full step graph for one uploaded video.

    With ``use_mot`` each (chunk, codec) pair becomes one MOT step encoding
    the whole ladder; otherwise each (chunk, codec, rung) is its own SOT
    step re-decoding the input (Figure 2).
    """
    chunks = chunk_metadata(video_id, total_frames, fps, source, gop_frames)
    mode = mode_for(workload).mode
    by_codec = codec_ladders(policy.variants(source, bucket))

    steps: List[Step] = []
    transcode_steps: List[Step] = []
    for chunk in chunks:
        transcode_steps.extend(
            ladder_steps(
                chunk,
                by_codec,
                mode,
                use_mot=use_mot,
                software_decode=software_decode,
            )
        )
    steps.extend(transcode_steps)

    for kind, core_seconds in (
        (StepKind.THUMBNAIL, 2.0),
        (StepKind.FINGERPRINT, 6.0),
        (StepKind.SEARCH_SIGNALS, 4.0),
    ):
        steps.append(
            Step(
                step_id=f"{video_id}/{kind.value}",
                kind=kind,
                video_id=video_id,
                cpu_core_seconds=core_seconds * total_frames / 1800.0,
            )
        )

    assemble = Step(
        step_id=f"{video_id}/assemble",
        kind=StepKind.ASSEMBLE,
        video_id=video_id,
        cpu_core_seconds=0.5,
        depends_on=list(transcode_steps),
    )
    steps.append(assemble)
    return StepGraph(video_id=video_id, steps=steps, workload=workload)


def codec_ladders(
    variants: Sequence[Tuple[str, Resolution]],
) -> Dict[str, List[Resolution]]:
    """Group a ladder policy's (codec, rung) variants per codec."""
    by_codec: Dict[str, List[Resolution]] = {}
    for codec, rung in variants:
        by_codec.setdefault(codec, []).append(rung)
    return by_codec


def ladder_steps(
    chunk: Chunk,
    by_codec: Dict[str, List[Resolution]],
    mode: EncodingMode,
    *,
    use_mot: bool,
    software_decode: bool = False,
    opportunistic_max_pixels: int = 0,
    deadline: Optional[float] = None,
) -> List[Step]:
    """All transcode steps for one chunk/segment of the ladder.

    This is the single step-graph builder both the whole-chunk path
    (:func:`build_transcode_graph`) and segment mode route through: with
    ``use_mot`` each codec becomes one MOT step encoding the whole
    ladder, otherwise each (codec, rung) is its own SOT step re-decoding
    the input (Figure 2).  Rungs whose output pixel count is at most
    ``opportunistic_max_pixels`` are marked eligible for immediate
    software fallback when hardware slots are saturated.
    """
    steps: List[Step] = []
    for codec, ladder in by_codec.items():
        if use_mot:
            steps.append(
                _transcode_step(chunk, codec, ladder, mode, True, software_decode)
            )
        else:
            for rung in ladder:
                step = _transcode_step(
                    chunk, codec, [rung], mode, False, software_decode
                )
                step.fallback_opportunistic = (
                    0 < rung.pixels <= opportunistic_max_pixels
                )
                step.deadline = deadline
                steps.append(step)
    return steps


def _transcode_step(
    chunk: Chunk,
    codec: str,
    outputs: Sequence[Resolution],
    mode: EncodingMode,
    is_mot: bool,
    software_decode: bool,
) -> Step:
    task = VcuTask(
        codec=codec,
        mode=mode,
        input_resolution=chunk.nominal,
        outputs=list(outputs),
        frame_count=chunk.frame_count,
        fps=chunk.fps,
        is_mot=is_mot,
        software_decode=software_decode,
    )
    suffix = "mot" if is_mot else f"sot-{outputs[0].name}"
    return Step(
        step_id=f"{chunk.chunk_id}/{codec}/{suffix}",
        kind=StepKind.TRANSCODE,
        video_id=chunk.video_id,
        vcu_task=task,
        rung=None if is_mot else outputs[0].name,
    )
