"""Stream sessions: wiring segment dataflow onto a transcode cluster.

:class:`LadderDispatcher` owns the cluster's step-completion hook and
routes each finished per-rung step back to the :class:`StreamSession`
that submitted it.  A session is the per-stream conductor: its
:class:`~repro.transcode.segments.SegmentWatcher` releases source
segments over virtual time, each release becomes a per-(codec, rung)
step graph on the cluster, and completions feed the
:class:`~repro.transcode.segments.ManifestAssembler` barrier until the
final manifest entry is published.

Latency accounting flows into one shared
:class:`~repro.obs.latency.LadderMetrics`: the dispatcher installs it on
the cluster (per-rung queue waits, opportunistic fallbacks) and the
sessions record releases, time-to-first-segment, manifest stalls, and
deadline misses.  When an observability hub is installed the sessions
additionally emit ``stream`` / ``segment`` / ``manifest`` spans, so
ladder traces line up with the cluster's ``step`` spans.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Callable, Dict, List, Optional

from repro import obs
from repro.obs.latency import LadderMetrics
from repro.sim.engine import Simulator
from repro.transcode.pipeline import Step
from repro.transcode.segments import (
    ManifestAssembler,
    SegmentRelease,
    SegmentWatcher,
    StreamSpec,
    build_segment_graph,
    rung_key_of,
    segment_index_of,
)

if TYPE_CHECKING:  # deferred: repro.cluster imports back into transcode
    from repro.cluster.cluster import TranscodeCluster


class StreamSession:
    """One stream's watcher -> encode -> manifest lifecycle."""

    def __init__(
        self,
        dispatcher: "LadderDispatcher",
        spec: StreamSpec,
        on_final: Optional[Callable[["StreamSession"], None]] = None,
    ) -> None:
        self.dispatcher = dispatcher
        self.spec = spec
        self.on_final = on_final
        self.started_at = dispatcher.sim.now
        self.finished_at: Optional[float] = None
        self.assembler = ManifestAssembler(
            spec.stream_id, spec.rung_keys(), started_at=self.started_at
        )
        self.watcher = SegmentWatcher(
            dispatcher.sim, spec, self._segment_released
        )
        self._ttfs_recorded = False

    @property
    def done(self) -> bool:
        return self.finished_at is not None

    def start(self) -> None:
        self.dispatcher.metrics.note_stream_started()
        hub = obs.active()
        if hub is not None:
            hub.count("ladder.streams.started")
            hub.emit(
                "stream", self.spec.stream_id, t0=self.started_at,
                attrs={
                    "kind": self.spec.kind.value,
                    "segments": self.spec.segment_count,
                },
            )
        self.watcher.start()

    # -- segment release ----------------------------------------------

    def _segment_released(self, release: SegmentRelease) -> None:
        self.assembler.release(
            release.index, at=release.released_at, deadline=release.deadline
        )
        self.dispatcher.metrics.note_release()
        hub = obs.active()
        if hub is not None:
            hub.count("ladder.segments.released")
            hub.emit(
                "segment", f"{self.spec.stream_id}/{release.index}",
                t0=release.released_at,
            )
        self.dispatcher.cluster.submit(build_segment_graph(self.spec, release))

    # -- rung completion ----------------------------------------------

    def _rung_done(self, step: Step, corrupt: bool) -> None:
        now = self.dispatcher.sim.now
        entries = self.assembler.complete_rung(
            segment_index_of(step), rung_key_of(step), at=now, corrupt=corrupt
        )
        if not entries:
            return
        metrics = self.dispatcher.metrics
        tracked = self.spec.deadline_seconds is not None
        hub = obs.active()
        for entry in entries:
            metrics.note_manifest(entry, deadline_tracked=tracked)
            if hub is not None:
                hub.count("ladder.manifests.emitted")
                hub.observe("ladder.manifest_stall_seconds", entry.stall_seconds)
                hub.emit(
                    "manifest", f"{self.spec.stream_id}/{entry.index}",
                    t0=entry.aligned_at, t1=entry.emitted_at,
                    attrs={
                        "stall": round(entry.stall_seconds, 9),
                        "deadline_missed": entry.deadline_missed,
                    },
                )
        ttfs = self.assembler.time_to_first_segment
        if ttfs is not None and not self._ttfs_recorded:
            self._ttfs_recorded = True
            metrics.note_ttfs(ttfs)
            if hub is not None:
                hub.observe("ladder.ttfs_seconds", ttfs)
        if len(self.assembler.entries) == self.spec.segment_count:
            self._finalize(now)

    def _finalize(self, now: float) -> None:
        self.finished_at = now
        self.dispatcher.metrics.note_stream_completed()
        hub = obs.active()
        if hub is not None:
            hub.count("ladder.streams.completed")
            hub.emit(
                "stream", self.spec.stream_id, t0=self.started_at, t1=now,
                attrs={
                    "segments": self.spec.segment_count,
                    "ttfs": round(self.assembler.time_to_first_segment or 0.0, 9),
                },
            )
        if self.on_final is not None:
            self.on_final(self)


class LadderDispatcher:
    """Routes cluster step completions to their stream sessions."""

    def __init__(
        self,
        sim: Simulator,
        cluster: "TranscodeCluster",
        metrics: Optional[LadderMetrics] = None,
    ) -> None:
        self.sim = sim
        self.cluster = cluster
        self.metrics = metrics if metrics is not None else LadderMetrics()
        self._sessions: Dict[str, StreamSession] = {}
        cluster.ladder_metrics = self.metrics
        cluster.on_step_done = self._step_done

    def start_stream(
        self,
        spec: StreamSpec,
        on_final: Optional[Callable[[StreamSession], None]] = None,
    ) -> StreamSession:
        if spec.stream_id in self._sessions:
            raise ValueError(f"stream {spec.stream_id!r} already started")
        session = StreamSession(self, spec, on_final)
        self._sessions[spec.stream_id] = session
        session.start()
        return session

    def session(self, stream_id: str) -> StreamSession:
        return self._sessions[stream_id]

    def sessions(self) -> List[StreamSession]:
        """All sessions, in stream-id order (deterministic)."""
        return [self._sessions[k] for k in sorted(self._sessions)]

    def unfinished(self) -> List[StreamSession]:
        return [s for s in self.sessions() if not s.done]

    def _step_done(self, step: Step, corrupt: bool) -> None:
        if step.rung is None:
            return  # not a per-rung segment step (legacy MOT work)
        session = self._sessions.get(step.video_id)
        if session is None:
            return  # per-rung work submitted outside the streaming path
        session._rung_done(step, corrupt)
