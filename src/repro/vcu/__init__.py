"""The VCU accelerator model: chips, cores, memory system, firmware, hosts.

This package models the paper's hardware at the level its evaluation needs:
throughput, bandwidth, capacity, and utilization.  Components:

* :mod:`~repro.vcu.spec` -- speeds & feeds calibrated to Section 3.3.1 and
  Appendix A (encoder core 2160p60 realtime, 4x32b LPDDR4-3200, 8 GiB...).
* :mod:`~repro.vcu.framebuf` -- a *functional* lossless frame-buffer
  compressor (DPCM + exp-Golomb cost) that really achieves ~2x on video
  planes, backing the "~50% reference-read bandwidth" claim.
* :mod:`~repro.vcu.reference_store` -- the SRAM motion-search window with
  LRU eviction; counts DRAM fetches so store sizing can be ablated.
* :mod:`~repro.vcu.cores` -- encoder/decoder core performance models
  (pixel rates by codec and encoding mode, DRAM bytes per pixel).
* :mod:`~repro.vcu.chip` -- a VCU ASIC: 10 encoder + 3 decoder cores,
  DRAM bandwidth/capacity as schedulable resources, task cost estimation.
* :mod:`~repro.vcu.firmware` -- userspace command queues with round-robin
  dispatch onto stateless, interchangeable cores.
* :mod:`~repro.vcu.host` -- cards, trays, and the 20-VCU host with its
  NIC, PCIe, and NUMA model.
* :mod:`~repro.vcu.telemetry` -- per-VCU health/fault counters feeding the
  failure-management stack.
"""

from repro.vcu.spec import (
    DEFAULT_HOST_SPEC,
    DEFAULT_VCU_SPEC,
    EncodingMode,
    HostSpec,
    VcuSpec,
)
from repro.vcu.cores import DecoderCoreModel, EncoderCoreModel
from repro.vcu.chip import Vcu, VcuTask
from repro.vcu.firmware import CommandKind, FirmwareCommand, VcuFirmware, WorkQueue
from repro.vcu.host import VcuCard, VcuHost, VcuTray
from repro.vcu.telemetry import FaultKind, VcuTelemetry

__all__ = [
    "VcuSpec",
    "HostSpec",
    "EncodingMode",
    "DEFAULT_VCU_SPEC",
    "DEFAULT_HOST_SPEC",
    "EncoderCoreModel",
    "DecoderCoreModel",
    "Vcu",
    "VcuTask",
    "VcuFirmware",
    "WorkQueue",
    "FirmwareCommand",
    "CommandKind",
    "VcuCard",
    "VcuTray",
    "VcuHost",
    "VcuTelemetry",
    "FaultKind",
]
