"""Cards, trays, and the 20-VCU accelerator host (Section 3.3.1).

The physical hierarchy matters to failure management: the *rack* is the
unit of deployment, the card/chassis/cable is the unit of repair, each
VCU has an independent power rail (so a VCU can be disabled alone), and a
host accumulates component faults until it is marked unusable.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Optional

from repro.vcu.chip import Vcu
from repro.vcu.spec import HostSpec, VcuSpec


class VcuCard:
    """A full-length PCIe card carrying two VCU ASICs."""

    _ids = itertools.count()

    def __init__(self, spec: VcuSpec = None, host_spec: HostSpec = None):
        spec = spec or VcuSpec()
        host_spec = host_spec or HostSpec()
        self.card_id = f"card-{next(self._ids)}"
        self.vcus = [
            Vcu(spec, vcu_id=f"{self.card_id}/vcu{i}")
            for i in range(host_spec.vcus_per_card)
        ]

    def healthy_vcus(self) -> List[Vcu]:
        return [v for v in self.vcus if not v.disabled]


class VcuTray:
    """An accelerator expansion chassis holding five cards."""

    _ids = itertools.count()

    def __init__(self, spec: VcuSpec = None, host_spec: HostSpec = None):
        host_spec = host_spec or HostSpec()
        self.tray_id = f"tray-{next(self._ids)}"
        self.cards = [
            VcuCard(spec, host_spec) for _ in range(host_spec.cards_per_tray)
        ]

    @property
    def vcus(self) -> List[Vcu]:
        return [vcu for card in self.cards for vcu in card.vcus]


class VcuHost:
    """One accelerator host: 2 trays x 5 cards x 2 VCUs = 20 VCUs.

    ``numa_aware`` gates the post-launch NUMA scheduling fix; the
    oblivious configuration pays :attr:`HostSpec.numa_penalty` on
    throughput (Section 4.3: fixing it gained 16-25%).
    """

    _ids = itertools.count()

    def __init__(
        self,
        spec: VcuSpec = None,
        host_spec: HostSpec = None,
        numa_aware: bool = True,
        host_id: Optional[str] = None,
    ):
        self.spec = spec or VcuSpec()
        self.host_spec = host_spec or HostSpec()
        self.host_id = host_id or f"host-{next(self._ids)}"
        self.numa_aware = numa_aware
        self.trays = [
            VcuTray(self.spec, self.host_spec)
            for _ in range(self.host_spec.trays_per_host)
        ]
        self.unusable = False
        self.component_faults = 0
        #: Faults before the host is queued for repair (dozens of discrete
        #: components; a handful of hard faults takes it out).
        self.fault_budget = 6

    @property
    def vcus(self) -> List[Vcu]:
        return [vcu for tray in self.trays for vcu in tray.vcus]

    def healthy_vcus(self) -> List[Vcu]:
        if self.unusable:
            return []
        return [v for v in self.vcus if not v.disabled]

    @property
    def throughput_multiplier(self) -> float:
        """Host-level efficiency: NUMA-oblivious scheduling costs ~17%."""
        return 1.0 if self.numa_aware else 1.0 / self.host_spec.numa_penalty

    def record_component_fault(self) -> None:
        """A chassis/cable/PSU-level fault; enough of them disables the host."""
        self.component_faults += 1
        if self.component_faults >= self.fault_budget:
            self.unusable = True

    def disable_vcu(self, vcu_id: str) -> None:
        """Disable one VCU (independent power rails make this possible)."""
        for vcu in self.vcus:
            if vcu.vcu_id == vcu_id:
                vcu.disable()
                return
        raise KeyError(f"no VCU {vcu_id!r} on host {self.host_id}")

    def sweep_telemetry(self) -> List[Vcu]:
        """Disable any VCU whose fault counters crossed a threshold.

        Returns the VCUs disabled by this sweep (the host-level fault
        collection workflow of Section 4.4).
        """
        newly_disabled = []
        for vcu in self.vcus:
            if not vcu.disabled and vcu.telemetry.should_disable():
                vcu.disable()
                newly_disabled.append(vcu)
                self.component_faults += 1
        if self.component_faults >= self.fault_budget:
            self.unusable = True
        return newly_disabled
