"""The SRAM reference store with LRU eviction (Section 3.2).

The motion-search window lives in a 144K-pixel SRAM array (768 x 192):
wide enough for a 512-pixel tile column plus a 128-pixel horizontal search
margin each side, tall enough for the 64-pixel macroblock row plus two
64-pixel vertical windows.  Sized right, each reference pixel is fetched
from DRAM at most once per tile column and twice per frame.

The model is a functional block cache: lookups are in units of aligned
macroblock tiles, misses count DRAM traffic, and eviction is true LRU.
``tests/test_vcu_reference_store.py`` checks the paper's fetch-bound
property, and the ablation bench shrinks the store to show bandwidth blow
up.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass
from typing import Iterator, Tuple

#: Default geometry from the paper (footnote 4).
DEFAULT_STORE_PIXELS = 768 * 192
#: Tile granularity tracked by the store (one 64x64 superblock's worth of
#: reference pixels is fetched as 16 of these 64x16 sub-tiles).
TILE_WIDTH = 64
TILE_HEIGHT = 16
TILE_PIXELS = TILE_WIDTH * TILE_HEIGHT


@dataclass
class StoreStats:
    """Hit/miss accounting in pixels."""

    hits: int = 0
    misses: int = 0

    @property
    def dram_pixels_fetched(self) -> int:
        return self.misses * TILE_PIXELS

    @property
    def hit_rate(self) -> float:
        total = self.hits + self.misses
        return self.hits / total if total else 0.0


class ReferenceStore:
    """An LRU cache of reference-frame tiles, capacity in pixels."""

    def __init__(self, capacity_pixels: int = DEFAULT_STORE_PIXELS):
        if capacity_pixels < TILE_PIXELS:
            raise ValueError("store must hold at least one tile")
        self.capacity_tiles = capacity_pixels // TILE_PIXELS
        self._tiles: "OrderedDict[Tuple[int, int, int], None]" = OrderedDict()
        self.stats = StoreStats()

    def __len__(self) -> int:
        return len(self._tiles)

    def access(self, ref_id: int, tile_y: int, tile_x: int) -> bool:
        """Touch one tile; returns True on hit, False on a DRAM fetch."""
        key = (ref_id, tile_y, tile_x)
        if key in self._tiles:
            self._tiles.move_to_end(key)
            self.stats.hits += 1
            return True
        self.stats.misses += 1
        self._tiles[key] = None
        if len(self._tiles) > self.capacity_tiles:
            self._tiles.popitem(last=False)  # evict true LRU
        return False

    def access_window(
        self, ref_id: int, centre_y: int, centre_x: int,
        window_height: int, window_width: int,
    ) -> int:
        """Touch every tile overlapping a search window; returns misses."""
        misses = 0
        y0 = max(0, centre_y - window_height // 2)
        x0 = max(0, centre_x - window_width // 2)
        for tile_y in range(y0 // TILE_HEIGHT, (y0 + window_height - 1) // TILE_HEIGHT + 1):
            for tile_x in range(x0 // TILE_WIDTH, (x0 + window_width - 1) // TILE_WIDTH + 1):
                if not self.access(ref_id, tile_y, tile_x):
                    misses += 1
        return misses

    def reset_stats(self) -> None:
        self.stats = StoreStats()


def simulate_tile_column_walk(
    store: ReferenceStore,
    frame_height: int,
    column_width: int = 512,
    search_margin: int = 128,
    macroblock: int = 64,
    references: int = 1,
) -> StoreStats:
    """Walk a tile column top-to-bottom as the encoder pipeline does.

    For each macroblock row the motion-search window (column width plus the
    horizontal margins, two vertical windows) is touched in every
    reference.  With the default store geometry this fetches each pixel
    from DRAM at most once per column.
    """
    store.reset_stats()
    window_width = column_width + 2 * search_margin
    window_height = 3 * macroblock
    for row in range(0, frame_height, macroblock):
        for ref_id in range(references):
            store.access_window(
                ref_id,
                centre_y=row + macroblock // 2,
                centre_x=window_width // 2,
                window_height=window_height,
                window_width=window_width,
            )
    return store.stats
