"""Encoder and decoder core performance models.

The encoder core model covers what the evaluation depends on: effective
pixel rate by codec and encoding mode, DRAM traffic per processed pixel,
and a pipeline-stage model showing why FIFO decoupling matters (pipeline
stages are balanced for *expected* throughput but block/mode variability
would stall a rigid pipeline -- Section 3.2).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Sequence

from repro.vcu.spec import EncodingMode, VcuSpec


@dataclass(frozen=True)
class PipelineStage:
    """One encoder pipeline stage: mean cycles per macroblock plus the
    coefficient of variation of that cost across blocks/modes."""

    name: str
    mean_cycles_per_block: float
    cost_variability: float  # std/mean of per-block cycles


#: The three-stage functional pipeline of Figure 4.  Motion estimation /
#: RDO dominates and is the most variable; entropy coding is
#: sequential-logic heavy; reconstruction/loop-filter is steady.
DEFAULT_PIPELINE: List[PipelineStage] = [
    PipelineStage("motion_estimation_rdo", mean_cycles_per_block=6600, cost_variability=0.55),
    PipelineStage("entropy_decode_filter", mean_cycles_per_block=6400, cost_variability=0.40),
    PipelineStage("reconstruction_compress", mean_cycles_per_block=5800, cost_variability=0.15),
]


def pipeline_efficiency(
    stages: Sequence[PipelineStage] = tuple(DEFAULT_PIPELINE),
    fifo_depth: int = 8,
) -> float:
    """Fraction of bottleneck-stage throughput the pipeline achieves.

    With no decoupling, every stage stalls on the instantaneous slowest
    stage, so throughput degrades with the summed variability; each doubling
    of FIFO depth absorbs roughly half of the remaining variability penalty.
    This is a standard queueing-flavoured approximation, good enough to
    rank the design choice (it is ablated in the benchmarks, not used to
    produce Table 1 numbers).
    """
    if fifo_depth < 0:
        raise ValueError("fifo_depth must be >= 0")
    variability = max(stage.cost_variability for stage in stages)
    penalty = variability / (1.0 + fifo_depth)
    return 1.0 / (1.0 + penalty)


@dataclass(frozen=True)
class EncoderCoreModel:
    """Performance model for one encoder core."""

    spec: VcuSpec = field(default_factory=VcuSpec)

    def pixel_rate(self, codec: str, mode: EncodingMode) -> float:
        """Sustained encode rate, pixels per second."""
        return self.spec.encode_rate(codec, mode)

    def encode_seconds(self, output_pixels: float, codec: str, mode: EncodingMode) -> float:
        """Core-seconds to encode ``output_pixels`` at full quality."""
        if output_pixels < 0:
            raise ValueError("output_pixels must be >= 0")
        return output_pixels / self.pixel_rate(codec, mode)

    def dram_bytes(
        self, pixels: float, reference_compression: bool = True, worst_case: bool = False
    ) -> float:
        """DRAM traffic to encode ``pixels``.

        Reference compression halves reference reads; disabling it (the
        ablation) reverts to the raw per-pixel traffic.
        """
        spec = self.spec
        if not reference_compression:
            per_pixel = spec.encode_bytes_per_pixel_raw
        elif worst_case:
            per_pixel = spec.encode_bytes_per_pixel_worst
        else:
            per_pixel = spec.encode_bytes_per_pixel_typical
        return pixels * per_pixel

    def realtime_fps(self, codec: str, width: int, height: int, mode: EncodingMode) -> float:
        """Frames per second one core sustains at a resolution."""
        return self.pixel_rate(codec, mode) / (width * height)


@dataclass(frozen=True)
class DecoderCoreModel:
    """Performance model for one (off-the-shelf, ECC-hardened) decoder core."""

    spec: VcuSpec = field(default_factory=VcuSpec)

    def pixel_rate(self) -> float:
        return self.spec.decode_pixel_rate

    def decode_seconds(self, input_pixels: float) -> float:
        if input_pixels < 0:
            raise ValueError("input_pixels must be >= 0")
        return input_pixels / self.spec.decode_pixel_rate

    def dram_bytes(self, seconds_active: float) -> float:
        """Decoder DRAM traffic: a steady 2.2 GiB/s while active."""
        return seconds_active * self.spec.decoder_bandwidth
