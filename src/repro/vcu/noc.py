"""NoC and DRAM-controller arbitration model (Figure 3b, Section 3.2).

The encoder cores, decoder cores, and the PCIe DMA engine share the
LPDDR4 controllers through the network-on-chip.  Two properties of the
design matter for throughput and are modelled here:

* **Memory-level parallelism**: the encoding core's architecture
  eliminates most hazards, so each core keeps *dozens* of memory
  operations in flight; Little's law then says achievable bandwidth is
  ``outstanding x request_size / latency`` until the controller's peak
  binds.  With one outstanding request a core would starve; with deep
  prefetch it saturates its share -- the paper's "high memory subsystem
  latency tolerance".
* **Fair arbitration**: a weighted round-robin arbiter shares the
  controller so a bandwidth-hungry requester cannot starve the others.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Sequence

from repro.vcu.spec import VcuSpec


@dataclass(frozen=True)
class Requester:
    """One NoC client: a codec core or DMA engine."""

    name: str
    #: Memory operations it keeps in flight (prefetch depth).
    outstanding_requests: int
    #: Bytes per memory transaction (one DRAM burst).
    request_bytes: int = 64
    #: Demand ceiling, bytes/s (None = will take whatever it can get).
    demand: float = None
    #: Arbitration weight.
    weight: float = 1.0

    def __post_init__(self) -> None:
        if self.outstanding_requests < 1:
            raise ValueError("need at least one outstanding request")
        if self.request_bytes < 1:
            raise ValueError("request_bytes must be >= 1")
        if self.weight <= 0:
            raise ValueError("weight must be positive")

    def mlp_bandwidth_limit(self, latency_seconds: float) -> float:
        """Little's-law bandwidth ceiling from memory-level parallelism."""
        if latency_seconds <= 0:
            raise ValueError("latency must be positive")
        return self.outstanding_requests * self.request_bytes / latency_seconds


@dataclass
class ArbitrationResult:
    """Granted bandwidth per requester plus controller utilization."""

    grants: Dict[str, float]
    peak_bandwidth: float

    @property
    def total_granted(self) -> float:
        return sum(self.grants.values())

    @property
    def utilization(self) -> float:
        return self.total_granted / self.peak_bandwidth


def arbitrate(
    requesters: Sequence[Requester],
    peak_bandwidth: float,
    dram_latency_seconds: float = 150e-9,
) -> ArbitrationResult:
    """Weighted max-min fair sharing of the memory controller.

    Each requester is capped by its own MLP limit (and demand, if set);
    unclaimed bandwidth redistributes to requesters that can still use it
    -- the water-filling algorithm behind weighted fair queueing.
    """
    if peak_bandwidth <= 0:
        raise ValueError("peak bandwidth must be positive")
    names = [r.name for r in requesters]
    if len(set(names)) != len(names):
        raise ValueError("requester names must be unique")

    caps = {
        r.name: min(
            r.mlp_bandwidth_limit(dram_latency_seconds),
            r.demand if r.demand is not None else float("inf"),
        )
        for r in requesters
    }
    grants = {r.name: 0.0 for r in requesters}
    active = {r.name: r for r in requesters}
    remaining = peak_bandwidth
    while active and remaining > 1e-6:
        total_weight = sum(r.weight for r in active.values())
        next_active = {}
        consumed = 0.0
        for name, requester in active.items():
            fair_share = remaining * requester.weight / total_weight
            headroom = caps[name] - grants[name]
            take = min(fair_share, headroom)
            grants[name] += take
            consumed += take
            if caps[name] - grants[name] > 1e-6:
                next_active[name] = requester
        if consumed <= 1e-9:
            break
        remaining -= consumed
        active = next_active
    return ArbitrationResult(grants=grants, peak_bandwidth=peak_bandwidth)


def vcu_requesters(
    spec: VcuSpec = None,
    encoder_outstanding: int = 32,
    decoder_outstanding: int = 16,
) -> List[Requester]:
    """The VCU's NoC clients at full realtime load."""
    spec = spec or VcuSpec()
    requesters = [
        Requester(
            name=f"enc{i}",
            outstanding_requests=encoder_outstanding,
            demand=spec.encode_pixel_rate["h264"] * spec.encode_bytes_per_pixel_typical,
        )
        for i in range(spec.encoder_cores)
    ]
    requesters += [
        Requester(
            name=f"dec{i}",
            outstanding_requests=decoder_outstanding,
            demand=spec.decoder_bandwidth,
        )
        for i in range(spec.decoder_cores)
    ]
    requesters.append(
        Requester(name="dma", outstanding_requests=8, demand=2e9, weight=0.5)
    )
    return requesters
