"""Speeds & feeds for the VCU and its host (Section 3.3.1 / Appendix A).

Every number here is either stated in the paper or derived from its
anchors; derivations are noted inline.  Tests in
``tests/test_vcu_spec.py`` assert the paper-stated identities (e.g. that
one encoder core sustains 2160p at 60 FPS, and that a 20-VCU system lands
at Table 1's throughput).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Dict

GiB = 1024**3
Gbps = 1e9  # bits per second


class EncodingMode(enum.Enum):
    """The paper's four encoding modes (Section 2.1)."""

    LOW_LATENCY_ONE_PASS = "low_latency_one_pass"
    LOW_LATENCY_TWO_PASS = "low_latency_two_pass"
    LAGGED_TWO_PASS = "lagged_two_pass"
    OFFLINE_TWO_PASS = "offline_two_pass"


#: Encoder time cost multiplier per output pixel, relative to the realtime
#: low-latency point (one encoder core = 2160p60).  Low-latency two-pass
#: piggybacks first-pass statistics on hardware preprocessing (Section 4.3
#: "better use of hardware statistics"), so it keeps the realtime rate --
#: this is what lets Stadia run 4K60 on a single core.  Offline two-pass
#: spends a separate first pass (+0.5) and runs the deepest search/RDO
#: settings; the 6.7x total is derived from Table 1 (747 Mpix/s per VCU /
#: 10 cores vs the 500 Mpix/s realtime core rate).
MODE_COST_FACTOR: Dict[EncodingMode, float] = {
    EncodingMode.LOW_LATENCY_ONE_PASS: 1.0,
    EncodingMode.LOW_LATENCY_TWO_PASS: 1.0,
    EncodingMode.LAGGED_TWO_PASS: 1.2,
    EncodingMode.OFFLINE_TWO_PASS: 6.7,
}

#: In MOT, source analysis (first pass, fade/flash detection, altref
#: selection) is shared across the output ladder instead of repeated per
#: output, which is where MOT's 1.2-1.3x throughput advantage over SOT
#: comes from (Section 4.1).  This is the fraction of per-output encode
#: cost that the shared analysis represents for two-pass modes.
SHARED_ANALYSIS_FRACTION = 0.2


@dataclass(frozen=True)
class VcuSpec:
    """One VCU ASIC's resources and rates."""

    encoder_cores: int = 10
    decoder_cores: int = 3
    #: Realtime encode pixel rate per core (2160p = 3840*2160 at 60 FPS).
    #: VP9 is marginally faster per pixel in silicon (larger superblocks
    #: amortize per-block control); the 2.5% delta is derived from
    #: Table 1's 15,306 vs 14,932 Mpix/s.
    encode_pixel_rate: Dict[str, float] = field(
        default_factory=lambda: {"h264": 500.2e6, "vp9": 512.75e6}
    )
    #: Decode pixel rate per decoder core (hardware decode of any format).
    decode_pixel_rate: float = 525e6
    #: Raw DRAM bandwidth: four 32-bit LPDDR4-3200 channels (~36 GiB/s).
    dram_raw_bandwidth: float = 36 * GiB
    #: Achievable fraction of raw bandwidth (deep prefetch + aligned
    #: full-line writes, Section 3.2 -> high efficiency for a DRAM system).
    dram_efficiency: float = 0.80
    #: Usable device DRAM (six x32 chips; extra capacity is side-band ECC).
    dram_capacity: int = 8 * GiB
    #: Encoder DRAM traffic per processed pixel, bytes.  At 2160p60 the
    #: paper gives 3.5 GiB/s raw (~7 B/px), ~3 GiB/s worst and ~2 GiB/s
    #: typical with reference compression (~4.3 B/px typical).
    encode_bytes_per_pixel_raw: float = 7.0
    encode_bytes_per_pixel_typical: float = 4.3
    encode_bytes_per_pixel_worst: float = 6.5
    #: Decoder core DRAM traffic while active (paper: 2.2 GiB/s).
    decoder_bandwidth: float = 2.2 * GiB
    #: Scheduler-visible resource dimensions (Section 3.3.3).
    millidecode: int = 3000
    milliencode: int = 10000

    @property
    def effective_dram_bandwidth(self) -> float:
        return self.dram_raw_bandwidth * self.dram_efficiency

    def encode_rate(self, codec: str, mode: EncodingMode) -> float:
        """Per-core encode pixel rate for a codec in a given mode."""
        try:
            base = self.encode_pixel_rate[codec]
        except KeyError:
            raise ValueError(f"unknown codec {codec!r}") from None
        return base / MODE_COST_FACTOR[mode]

    @property
    def total_encode_rate_realtime(self) -> float:
        """Aggregate realtime encode pixels/s (H.264) across all cores."""
        return self.encoder_cores * self.encode_pixel_rate["h264"]

    @property
    def total_decode_rate(self) -> float:
        return self.decoder_cores * self.decode_pixel_rate


@dataclass(frozen=True)
class HostSpec:
    """The accelerator host machine (Appendix A, Figure 11)."""

    vcus_per_card: int = 2
    cards_per_tray: int = 5
    trays_per_host: int = 2
    #: Dual-socket Skylake host: ~100 usable logical cores.
    logical_cores: int = 100
    host_dram_bandwidth: float = 1600 * Gbps / 8  # bytes/s
    host_dram_capacity: int = 350 * GiB
    #: 100 Gbps Ethernet NIC, all control + video data.
    network_bandwidth_bits: float = 100 * Gbps
    #: Each expansion chassis attaches via PCIe Gen3 x16 (~100 Gbps).
    pcie_bandwidth_bits_per_tray: float = 100 * Gbps
    #: Throughput penalty of NUMA-oblivious scheduling; fixing it gained
    #: 16-25% (Section 4.3), i.e. the oblivious baseline runs at ~1/1.2.
    numa_penalty: float = 1.20

    @property
    def vcus_per_host(self) -> int:
        return self.vcus_per_card * self.cards_per_tray * self.trays_per_host

    @property
    def network_bandwidth_bytes(self) -> float:
        return self.network_bandwidth_bits / 8


DEFAULT_VCU_SPEC = VcuSpec()
DEFAULT_HOST_SPEC = HostSpec()
