"""Lossless frame-buffer compression (Section 3.2).

The VCU losslessly compresses each reconstructed macroblock with a
proprietary algorithm to halve reference-frame read bandwidth.  We model it
with a real lossless scheme of the same flavour: per-block left-neighbour
DPCM with exp-Golomb-coded residuals.  ``compressed_bits`` is an honest
achievable size (the scheme could actually be implemented bit-for-bit), so
the ~2x ratio measured on reconstructed video planes is a genuine
measurement, not an assumed constant.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.codec.entropy import exp_golomb_bits

#: Compression block edge (the unit a reference fetch decompresses).
BLOCK = 16


@dataclass(frozen=True)
class CompressionResult:
    """Outcome of compressing one plane."""

    raw_bits: int
    compressed_bits: int

    @property
    def ratio(self) -> float:
        """Raw / compressed (2.0 means bandwidth halved)."""
        return self.raw_bits / self.compressed_bits

    @property
    def bandwidth_fraction(self) -> float:
        """Fraction of raw read bandwidth still needed after compression."""
        return self.compressed_bits / self.raw_bits


def block_compressed_bits(block: np.ndarray) -> float:
    """Lossless size of one block: DPCM against the left neighbour.

    Each row's first sample is coded raw (8 bits); the rest are
    exp-Golomb-coded horizontal differences.  Never worse than raw + the
    one-bit-per-block escape that a real implementation would include.
    """
    quantized = np.round(block).astype(np.int64)
    raw_bits = 8.0 * quantized.size
    first_column = 8.0 * quantized.shape[0]
    diffs = np.diff(quantized, axis=1)
    payload = first_column + exp_golomb_bits(diffs) + float(np.count_nonzero(diffs == 0))
    return min(payload, raw_bits) + 1.0


def compress_plane(plane: np.ndarray) -> CompressionResult:
    """Compress a whole plane block-by-block and report the ratio."""
    if plane.ndim != 2:
        raise ValueError("plane must be 2-D")
    height, width = plane.shape
    total = 0.0
    for y in range(0, height, BLOCK):
        for x in range(0, width, BLOCK):
            total += block_compressed_bits(plane[y : y + BLOCK, x : x + BLOCK])
    return CompressionResult(raw_bits=8 * plane.size, compressed_bits=int(np.ceil(total)))


def reference_read_fraction(plane: np.ndarray) -> float:
    """Fraction of reference-read bandwidth needed with compression on.

    The paper reports "approximately 50%"; smooth reconstructed planes
    land near there, noisy ones higher.
    """
    return compress_plane(plane).bandwidth_fraction
