"""The on-chip management firmware's userspace interface (Section 3.3.2).

The codec cores are opaque to the firmware; userspace processes map queues
exposing exactly four commands -- ``run-on-core``, ``copy-to-device``,
``copy-from-device``, ``wait-for-done``.  ``run-on-core`` deliberately
does *not* name a core: cores are stateless and interchangeable, and the
firmware dispatches to any idle core, draining the per-process queues
round-robin for fairness and utilization.

The model runs on the discrete-event engine so tests can assert the two
scheduling properties the paper calls out: fairness (every queue makes
forward progress) and work conservation (no core idles while compatible
work is queued).

Firmware is also the fleet's most dangerous deployment artifact: one bad
build lands on every VCU at once (Section 5's canary discipline exists
because of this).  :class:`FirmwareVersion` models a *release* as its
observable behaviour deltas -- per-step host overhead and device-fault
pressure -- so the control plane's canary-rollout scenario can stage a
candidate on a slice of hosts and detect the regression from scorecards
alone, exactly as production would.
"""

from __future__ import annotations

import enum
import itertools
from collections import deque
from dataclasses import dataclass, field
from typing import Deque, Dict, List, Optional

from repro import obs
from repro.sim.engine import Event, Simulator


@dataclass(frozen=True)
class FirmwareVersion:
    """One firmware release, described by its observable behaviour.

    The codec cores are opaque; what a firmware build changes, from the
    fleet's point of view, is the per-step host overhead (queue setup,
    scheduling) and the device-fault pressure it induces.  A release
    with every knob at its default is behaviourally identical to the
    launch build.
    """

    version: str
    #: Multiplier on each worker's fixed per-step overhead (1.0 = the
    #: launch build's dispatch path).
    step_overhead_multiplier: float = 1.0
    #: Poisson device-stall pressure this build adds, per VCU-hour;
    #: stalls clear after ``hang_duration_seconds`` (a wedged dispatch
    #: loop recovers itself) but strike the cluster watchdog meanwhile.
    hang_rate_per_hour: float = 0.0
    hang_duration_seconds: float = 25.0
    #: Poisson silent-corruption pressure, per VCU-hour (the dangerous
    #: regression class: caught only by integrity checking).
    corruption_rate_per_hour: float = 0.0
    notes: str = ""

    def __post_init__(self) -> None:
        if not self.version:
            raise ValueError("firmware version needs a name")
        if self.step_overhead_multiplier <= 0:
            raise ValueError("step_overhead_multiplier must be positive")
        if self.hang_rate_per_hour < 0 or self.corruption_rate_per_hour < 0:
            raise ValueError("fault rates must be >= 0")
        if self.hang_duration_seconds <= 0:
            raise ValueError("hang_duration_seconds must be positive")

    @property
    def regressive(self) -> bool:
        """Whether this build is worse than launch on any axis."""
        return (
            self.step_overhead_multiplier > 1.0
            or self.hang_rate_per_hour > 0.0
            or self.corruption_rate_per_hour > 0.0
        )


#: The launch build every VCU boots with.
BASELINE_FIRMWARE = FirmwareVersion("fw-1.0.0", notes="launch build")

#: The known releases, keyed by version.  ``rc1`` carries the regression
#: the canary-rollout experiment must catch (a slow dispatch path plus a
#: wedging stall bug); ``rc2`` is the respin that should promote.
FIRMWARE_RELEASES: Dict[str, FirmwareVersion] = {
    release.version: release
    for release in (
        BASELINE_FIRMWARE,
        FirmwareVersion(
            "fw-1.1.0-rc1",
            step_overhead_multiplier=3.0,
            hang_rate_per_hour=120.0,
            hang_duration_seconds=25.0,
            notes="regressed queue-setup path; dispatch loop wedges under load",
        ),
        FirmwareVersion(
            "fw-1.1.0-rc2",
            step_overhead_multiplier=0.95,
            notes="rc1 regression fixed; slightly faster dispatch",
        ),
    )
}


def firmware_release(version: str) -> FirmwareVersion:
    """Look up a release by version; raises with the known set."""
    try:
        return FIRMWARE_RELEASES[version]
    except KeyError:
        known = ", ".join(sorted(FIRMWARE_RELEASES))
        raise KeyError(
            f"unknown firmware version {version!r}; known: {known}"
        ) from None


class CommandKind(enum.Enum):
    RUN_ON_CORE = "run_on_core"
    COPY_TO_DEVICE = "copy_to_device"
    COPY_FROM_DEVICE = "copy_from_device"
    WAIT_FOR_DONE = "wait_for_done"


@dataclass
class FirmwareCommand:
    """One queued command; ``seconds`` is its modelled execution time."""

    kind: CommandKind
    seconds: float = 0.0
    #: For RUN_ON_CORE: which core class must execute it.
    core_class: str = "encoder"
    #: Commands this one depends on (data-dependency graph, Section 3.3.2);
    #: the firmware may start commands out of order as long as these hold.
    depends_on: List["FirmwareCommand"] = field(default_factory=list)
    done: Optional[Event] = None
    executed_on: Optional[int] = None

    def __post_init__(self) -> None:
        if self.seconds < 0:
            raise ValueError("command duration must be >= 0")


class WorkQueue:
    """One userspace process's mapped command queue."""

    _ids = itertools.count()

    def __init__(self, name: str = ""):
        self.name = name or f"queue-{next(self._ids)}"
        self.pending: Deque[FirmwareCommand] = deque()

    def enqueue(self, command: FirmwareCommand) -> FirmwareCommand:
        self.pending.append(command)
        return command

    def ready_command(self, can_run=None) -> Optional[FirmwareCommand]:
        """The first queued command whose dependencies have all completed.

        ``can_run`` (optional predicate) lets the dispatcher skip commands
        whose core class has no idle core, so a stalled decode at the head
        of the queue does not block encodes that could run right now --
        the out-of-order execution Section 3.3.2 describes.
        """
        for command in self.pending:
            if not all(
                dep.done is not None and dep.done.fired for dep in command.depends_on
            ):
                continue
            if can_run is not None and not can_run(command):
                continue
            return command
        return None


class VcuFirmware:
    """Round-robin dispatcher multiplexing queues onto stateless cores."""

    def __init__(
        self,
        sim: Simulator,
        encoder_cores: int = 10,
        decoder_cores: int = 3,
        copy_engines: int = 1,
    ):
        self.sim = sim
        self._idle: Dict[str, List[int]] = {
            "encoder": list(range(encoder_cores)),
            "decoder": list(range(decoder_cores)),
            "copy": list(range(copy_engines)),
        }
        self._queues: List[WorkQueue] = []
        self._rr_next = 0
        self.dispatched: List[FirmwareCommand] = []

    def attach(self, queue: WorkQueue) -> WorkQueue:
        self._queues.append(queue)
        return queue

    def submit(self, queue: WorkQueue, command: FirmwareCommand) -> Event:
        """Enqueue a command; returns the event fired on completion."""
        command.done = self.sim.event()
        if command.kind is CommandKind.WAIT_FOR_DONE:
            # Pure synchronisation: fires when its dependencies have fired.
            barrier = self.sim.all_of(
                [dep.done for dep in command.depends_on if dep.done is not None]
            )

            def _propagate():
                done = command.done
                yield barrier
                done.succeed()

            self.sim.process(_propagate(), name="wait_for_done")
            return command.done
        queue.enqueue(command)
        self.sim.call_in(0.0, self._dispatch)
        return command.done

    def _core_class(self, command: FirmwareCommand) -> str:
        if command.kind is CommandKind.RUN_ON_CORE:
            return command.core_class
        return "copy"

    def _has_idle_core(self, command: FirmwareCommand) -> bool:
        core_class = self._core_class(command)
        idle = self._idle.get(core_class)
        if idle is None:
            raise ValueError(f"unknown core class {core_class!r}")
        return bool(idle)

    def _dispatch(self) -> None:
        """Drain queues round-robin while idle cores and ready work remain."""
        if not self._queues:
            return
        progressed = True
        while progressed:
            progressed = False
            for offset in range(len(self._queues)):
                queue = self._queues[(self._rr_next + offset) % len(self._queues)]
                command = queue.ready_command(can_run=self._has_idle_core)
                if command is None:
                    continue
                core_class = self._core_class(command)
                queue.pending.remove(command)
                core = self._idle[core_class].pop(0)
                command.executed_on = core
                self.dispatched.append(command)
                hub = obs.active()
                if hub is not None:
                    hub.count("fw.dispatched")
                    hub.emit(
                        "fw", command.kind.value,
                        t0=self.sim.now, t1=self.sim.now + command.seconds,
                        attrs={
                            "queue": queue.name,
                            "core_class": core_class,
                            "core": core,
                        },
                    )
                self._start(command, core_class, core)
                # Advance the round-robin pointer past the served queue.
                self._rr_next = (self._rr_next + offset + 1) % len(self._queues)
                progressed = True
                break

    def _start(self, command: FirmwareCommand, core_class: str, core: int) -> None:
        def _finish():
            self._idle[core_class].append(core)
            self._idle[core_class].sort()
            command.done.succeed()
            self._dispatch()

        self.sim.call_in(command.seconds, _finish)

    def idle_cores(self, core_class: str) -> int:
        return len(self._idle[core_class])
