"""One VCU ASIC as a schedulable, monitorable device.

A :class:`Vcu` exposes the scheduler-visible resource dimensions of
Section 3.3.3 (3,000 millidecode cores, 10,000 milliencode cores, DRAM
bytes) through a :class:`~repro.sim.resources.MultiResource`, estimates
per-task costs, and carries the telemetry/fault state the failure
management stack operates on (Section 4.4).
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from repro import obs
from repro.sim.resources import MultiResource
from repro.vcu.spec import (
    SHARED_ANALYSIS_FRACTION,
    EncodingMode,
    VcuSpec,
)
from repro.vcu.telemetry import VcuTelemetry
from repro.vcu.throughput import decode_passes
from repro.video.frame import Resolution

MiB = 1024**2


@dataclass(frozen=True)
class VcuTask:
    """One transcoding step: a chunk in, one or more encoded variants out."""

    codec: str
    mode: EncodingMode
    input_resolution: Resolution
    outputs: Sequence[Resolution]
    frame_count: int
    fps: float
    #: MOT encodes the whole ladder in one task; SOT tasks carry one output.
    is_mot: bool = True
    #: When True the host CPU decodes and ships raw frames over PCIe
    #: (the opportunistic software-decode optimization of Figure 9c).
    software_decode: bool = False

    def __post_init__(self) -> None:
        if not self.outputs:
            raise ValueError("task needs at least one output")
        if self.frame_count <= 0 or self.fps <= 0:
            raise ValueError("frame_count and fps must be positive")
        if not self.is_mot and len(self.outputs) != 1:
            raise ValueError("an SOT task has exactly one output")

    @property
    def input_pixels(self) -> float:
        return float(self.input_resolution.pixels * self.frame_count)

    @property
    def output_pixels(self) -> float:
        return float(sum(r.pixels for r in self.outputs) * self.frame_count)

    @property
    def duration_seconds(self) -> float:
        """Content duration (not processing time)."""
        return self.frame_count / self.fps


def encode_core_seconds(task: VcuTask, spec: VcuSpec) -> float:
    """Encoder core-seconds the task needs."""
    shared = (
        SHARED_ANALYSIS_FRACTION
        if task.is_mot and task.mode is not EncodingMode.LOW_LATENCY_ONE_PASS
        else 0.0
    )
    return task.output_pixels * (1.0 - shared) / spec.encode_rate(task.codec, task.mode)


def decode_core_seconds(task: VcuTask, spec: VcuSpec) -> float:
    """Hardware decoder core-seconds (zero when decoding in software)."""
    if task.software_decode:
        return 0.0
    return decode_passes(task.mode) * task.input_pixels / spec.decode_pixel_rate


def dram_footprint_bytes(task: VcuTask, spec: VcuSpec) -> float:
    """Device DRAM footprint, following Appendix A.4's accounting.

    Reference frames for decode + each encode (9 frames each at the
    relevant resolution, +5% for compression padding), a 15-frame lag
    window for two-pass modes, plus padding/ephemeral buffers.
    """
    bytes_per_pixel = 1.5  # 10-bit luma + subsampled chroma, padded
    ref_frames = 9  # 8 references + 1 output (Appendix A.4)
    decode_refs = task.input_resolution.pixels * bytes_per_pixel * ref_frames * 1.05
    encode_refs = sum(
        r.pixels * bytes_per_pixel * ref_frames * 1.05 for r in task.outputs
    )
    lag_frames = 15 if task.mode is not EncodingMode.LOW_LATENCY_ONE_PASS else 3
    lag_window = task.input_resolution.pixels * bytes_per_pixel * lag_frames
    ephemeral = 0.18 * (decode_refs + encode_refs + lag_window)
    return decode_refs + encode_refs + lag_window + ephemeral


def resource_request(
    task: VcuTask, spec: VcuSpec, target_speedup: float = 1.0,
    decode_safety_factor: float = 1.0,
) -> Dict[str, float]:
    """The scheduler-visible resource vector for a task (Section 3.3.3).

    ``target_speedup`` is how much faster than realtime the task should
    finish (1.0 = process at content speed); millicores are sized so the
    granted fraction sustains that rate, mirroring the per-worker-type
    mapping from step requests to resource amounts.

    ``decode_safety_factor`` over-provisions the millidecode request.
    The paper's estimations "were initially based on measurements ... in
    an unconstrained environment and then tuned using production
    observations"; conservative decode estimates are what made hardware
    decoding a scheduling bottleneck that stranded encoder capacity until
    opportunistic software decoding relieved it (Figure 9c).
    """
    if target_speedup <= 0:
        raise ValueError("target_speedup must be positive")
    if decode_safety_factor < 1.0:
        raise ValueError("decode_safety_factor must be >= 1")
    wall = task.duration_seconds / target_speedup
    encode_fraction = encode_core_seconds(task, spec) / wall
    decode_fraction = decode_core_seconds(task, spec) / wall * decode_safety_factor
    return {
        "milliencode": min(1000.0 * encode_fraction, float(spec.milliencode)),
        "millidecode": min(1000.0 * decode_fraction, float(spec.millidecode)),
        "dram_bytes": dram_footprint_bytes(task, spec),
        # Synthetic dimension standing in for host/PCIe work when the host
        # decodes in software (Section 3.3.3's synthetic resources).
        "host_decode": (
            decode_passes(task.mode) * task.input_pixels / wall / 1e6
            if task.software_decode
            else 0.0
        ),
    }


def processing_seconds(
    task: VcuTask, spec: VcuSpec, granted: Dict[str, float]
) -> float:
    """Wall time to finish the task with the granted millicore vector."""
    encode_need = encode_core_seconds(task, spec)
    decode_need = decode_core_seconds(task, spec)
    times = []
    if encode_need > 0:
        if granted.get("milliencode", 0) <= 0:
            raise ValueError("task needs encoder millicores but got none")
        times.append(encode_need / (granted["milliencode"] / 1000.0))
    if decode_need > 0:
        if granted.get("millidecode", 0) <= 0:
            raise ValueError("task needs decoder millicores but got none")
        times.append(decode_need / (granted["millidecode"] / 1000.0))
    return max(times) if times else 0.0


_vcu_ids = itertools.count()


class Vcu:
    """One VCU: resources plus health state.

    ``corrupt`` models a failing-but-fast device: it keeps accepting work
    (quickly!) but produces bad output -- the black-holing hazard of
    Section 4.4.  Golden-task screening (in :mod:`repro.failures`) relies
    on the deterministic :meth:`golden_check`.
    """

    def __init__(
        self,
        spec: VcuSpec = None,
        vcu_id: Optional[str] = None,
        host_decode_capacity: float = 500.0,
    ):
        self.spec = spec or VcuSpec()
        self.vcu_id = vcu_id or f"vcu-{next(_vcu_ids)}"
        self.resources = MultiResource(
            {
                "milliencode": float(self.spec.milliencode),
                "millidecode": float(self.spec.millidecode),
                "dram_bytes": float(self.spec.dram_capacity),
                "host_decode": host_decode_capacity,
            },
            name=self.vcu_id,
        )
        self.telemetry = VcuTelemetry(self.vcu_id)
        self.disabled = False
        self.corrupt = False
        #: A wedged device: in-flight steps never complete on their own.
        #: Only a watchdog deadline (or a repair) gets the work back.
        self.hung = False
        self._completed_tasks = 0

    def try_admit(self, request: Dict[str, float]) -> bool:
        """Reserve a task's resource vector; False if it does not fit."""
        if self.disabled:
            return False
        return self.resources.acquire(request)

    def release(self, request: Dict[str, float]) -> None:
        self.resources.release(request)
        self._completed_tasks += 1

    @property
    def completed_tasks(self) -> int:
        return self._completed_tasks

    def encoder_utilization(self) -> float:
        return self.resources.utilization("milliencode")

    def decoder_utilization(self) -> float:
        return self.resources.utilization("millidecode")

    def golden_check(self) -> bool:
        """Run the short 'golden' transcode battery across every core.

        The real system relies on core determinism: a known input must
        produce a bit-exact known output.  Here the device-level corrupt
        flag decides the outcome deterministically; a hung device fails
        the battery too (it never returns the reference output).
        """
        return not self.corrupt and not self.hung

    def _device_event(self, name: str) -> None:
        """Trace raw device-state flips (injected faults, disables)."""
        hub = obs.active()
        if hub is not None:
            hub.count(f"device.{name}")
            hub.emit("device", name, attrs={"vcu": self.vcu_id})

    def mark_corrupt(self) -> None:
        self.corrupt = True
        self._device_event("mark_corrupt")

    def mark_hung(self) -> None:
        self.hung = True
        self._device_event("mark_hung")

    def clear_hang(self) -> None:
        self.hung = False
        self._device_event("clear_hang")

    def disable(self) -> None:
        self.disabled = True
        self._device_event("disable")

    def enable(self) -> None:
        self.disabled = False
        self.corrupt = False
        self.hung = False
        self._device_event("enable")
