"""Analytic steady-state VCU throughput (the Table 1 / Figure 8 model).

A VCU saturated with transcoding work is limited by whichever runs out
first: encoder core-seconds, decoder core-seconds, or DRAM bandwidth.
These functions compute the binding constraint for SOT and MOT workloads
and report throughput in the paper's Mpix/s (output pixels per second).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence

from repro.vcu.spec import (
    SHARED_ANALYSIS_FRACTION,
    EncodingMode,
    VcuSpec,
)
from repro.video.frame import Resolution, output_ladder

#: Decode passes by mode: two-pass offline re-decodes the source for the
#: second pass (device DRAM cannot hold a whole raw chunk, Appendix A.4).
def decode_passes(mode: EncodingMode) -> int:
    return 2 if mode is EncodingMode.OFFLINE_TWO_PASS else 1


@dataclass(frozen=True)
class ThroughputBreakdown:
    """Per-constraint throughput limits; the minimum binds."""

    encoder_limit: float  # output Mpix/s if only encoder cores bound
    decoder_limit: float
    dram_limit: float

    @property
    def throughput(self) -> float:
        return min(self.encoder_limit, self.decoder_limit, self.dram_limit)

    @property
    def binding_constraint(self) -> str:
        limits = {
            "encoder": self.encoder_limit,
            "decoder": self.decoder_limit,
            "dram": self.dram_limit,
        }
        return min(limits, key=limits.get)


def _throughput(
    spec: VcuSpec,
    codec: str,
    mode: EncodingMode,
    output_pixels: float,
    input_pixels: float,
    encode_cost_pixels: float,
    reference_compression: bool = True,
) -> ThroughputBreakdown:
    """Common core: all quantities are per unit of task (one frame-set)."""
    encode_rate = spec.encoder_cores * spec.encode_rate(codec, mode)
    decode_rate = spec.decoder_cores * spec.decode_pixel_rate

    encoder_limit = encode_rate * output_pixels / encode_cost_pixels
    decode_demand = decode_passes(mode) * input_pixels
    decoder_limit = (
        decode_rate * output_pixels / decode_demand if decode_demand else float("inf")
    )

    if reference_compression:
        encode_bytes = encode_cost_pixels * spec.encode_bytes_per_pixel_typical
    else:
        encode_bytes = encode_cost_pixels * spec.encode_bytes_per_pixel_raw
    # Decoder bandwidth: 2.2 GiB/s while active, i.e. per decoded pixel at
    # the decoder's pixel rate.
    decode_bytes = decode_demand * spec.decoder_bandwidth / spec.decode_pixel_rate
    bytes_per_output_pixel = (encode_bytes + decode_bytes) / output_pixels
    dram_limit = spec.effective_dram_bandwidth / bytes_per_output_pixel

    scale = 1e6  # report Mpix/s
    return ThroughputBreakdown(
        encoder_limit=encoder_limit / scale,
        decoder_limit=decoder_limit / scale,
        dram_limit=dram_limit / scale,
    )


def sot_throughput(
    spec: VcuSpec,
    codec: str,
    mode: EncodingMode,
    input_resolution: Resolution,
    output_resolution: Resolution = None,
    reference_compression: bool = True,
) -> ThroughputBreakdown:
    """Single-output transcode throughput per VCU (default: same-res out)."""
    output_resolution = output_resolution or input_resolution
    out_px = float(output_resolution.pixels)
    in_px = float(input_resolution.pixels)
    return _throughput(
        spec, codec, mode,
        output_pixels=out_px,
        input_pixels=in_px,
        encode_cost_pixels=out_px,
        reference_compression=reference_compression,
    )


def mot_throughput(
    spec: VcuSpec,
    codec: str,
    mode: EncodingMode,
    input_resolution: Resolution,
    outputs: Sequence[Resolution] = None,
    reference_compression: bool = True,
) -> ThroughputBreakdown:
    """Multiple-output transcode throughput per VCU.

    Decoding happens once for the whole ladder, and two-pass source
    analysis is shared across outputs, discounting per-output encode cost
    by :data:`SHARED_ANALYSIS_FRACTION` (this is MOT's 1.2-1.3x win).
    """
    if outputs is None:
        ladder: List[Resolution] = output_ladder(input_resolution)
    else:
        ladder = list(outputs)
    if not ladder:
        raise ValueError("MOT needs at least one output")
    out_px = float(sum(r.pixels for r in ladder))
    in_px = float(input_resolution.pixels)
    shared = SHARED_ANALYSIS_FRACTION if mode is not EncodingMode.LOW_LATENCY_ONE_PASS else 0.0
    encode_cost = out_px * (1.0 - shared)
    return _throughput(
        spec, codec, mode,
        output_pixels=out_px,
        input_pixels=in_px,
        encode_cost_pixels=encode_cost,
        reference_compression=reference_compression,
    )


def vbench_sot_system_throughput(
    spec: VcuSpec, codec: str, vcus: int, mode: EncodingMode = EncodingMode.OFFLINE_TWO_PASS
) -> float:
    """System Mpix/s for the Table 1 SOT benchmark configuration.

    The vbench load keeps every VCU saturated with parallel same-resolution
    SOT transcodes, so the per-VCU figure scales linearly with VCU count
    (VCU hosts run nothing else, Appendix A).
    """
    from repro.video.frame import resolution

    per_vcu = sot_throughput(spec, codec, mode, resolution("1080p")).throughput
    return per_vcu * vcus
