"""Per-VCU health telemetry (Section 4.4).

The firmware reports temperature, resets, and ECC counters; the host
aggregates them and marks itself unusable once enough faults accumulate.
DRAM has SECDED ECC; many embedded SRAMs are detect-only (double-error
detect), so uncorrectable counts matter more than corrected ones.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Dict, List, Tuple


class FaultKind(enum.Enum):
    ECC_CORRECTED = "ecc_corrected"
    ECC_UNCORRECTABLE = "ecc_uncorrectable"
    RESET = "reset"
    THERMAL = "thermal"
    PCIE = "pcie"
    #: A step blew through its watchdog deadline on this device -- the
    #: firmware-hang signature the resilience subsystem detects.
    HANG = "hang"
    #: The device failed a golden re-screen battery while quarantined.
    GOLDEN_FAIL = "golden_fail"


#: Faults of each kind tolerated before the device should be disabled.
DISABLE_THRESHOLDS: Dict[FaultKind, int] = {
    FaultKind.ECC_CORRECTED: 1000,
    FaultKind.ECC_UNCORRECTABLE: 3,
    FaultKind.RESET: 5,
    FaultKind.THERMAL: 10,
    FaultKind.PCIE: 3,
    FaultKind.HANG: 3,
    FaultKind.GOLDEN_FAIL: 2,
}


@dataclass
class VcuTelemetry:
    """Counters mirrored from device firmware."""

    vcu_id: str
    temperature_c: float = 55.0
    counters: Dict[FaultKind, int] = field(
        default_factory=lambda: {kind: 0 for kind in FaultKind}
    )
    history: List[Tuple[float, FaultKind]] = field(default_factory=list)

    def record(self, kind: FaultKind, at_time: float = 0.0, count: int = 1) -> None:
        if count < 1:
            raise ValueError("count must be >= 1")
        self.counters[kind] += count
        self.history.append((at_time, kind))

    def should_disable(self) -> bool:
        """Whether accumulated faults cross any disable threshold."""
        return any(
            self.counters[kind] >= threshold
            for kind, threshold in DISABLE_THRESHOLDS.items()
        )

    def total_faults(self) -> int:
        return sum(self.counters.values())

    def snapshot(self) -> Dict[str, float]:
        """A flat metrics view, as the fleet monitoring system would see."""
        view: Dict[str, float] = {"temperature_c": self.temperature_c}
        for kind, value in self.counters.items():
            view[kind.value] = float(value)
        return view
