"""``repro.obs``: the fleet observability layer.

The paper's fleet is operable only because every VCU, worker, and
scheduler decision is continuously measured (Section 4, Figures 8-10 are
longitudinal telemetry).  This package is the reproduction's equivalent:
one :class:`Observability` hub bundling a
:class:`~repro.obs.registry.MetricsRegistry` (counters, gauges,
fixed-bucket histograms, time-weighted gauges) with a bounded
:class:`~repro.obs.trace.TraceLog` of step-level
:class:`~repro.obs.trace.TraceSpan` events stamped with virtual time.

The hub is **process-wide but explicitly instantiated**: nothing is
recorded until a caller installs a hub, and every instrumentation hook in
the simulator, cluster, scheduler, workers, failure managers, and
firmware reduces to one module-global load plus a ``None`` check when no
hub is installed -- codec/benchmark hot paths pay (almost) nothing for
the plumbing.

Usage::

    from repro import obs

    with obs.installed() as hub:
        ...  # build a Simulator/TranscodeCluster and run it
        hub.trace.write_jsonl("run_trace.jsonl")
        snapshot = hub.metrics.snapshot(now=sim.now)

Emitters inside the tree follow the cheap-hook pattern::

    hub = obs.active()
    if hub is not None:
        hub.emit("retry", step.step_id, t0=self.sim.now, attrs={...})

This module (and everything it imports) is numpy-free so the CLI's
``report`` subcommand loads without the numeric stack.
"""

from __future__ import annotations

from contextlib import contextmanager
from typing import Any, Callable, Dict, Iterator, Optional, Sequence

from repro.obs.registry import (
    Counter,
    DEFAULT_SECONDS_BUCKETS,
    Gauge,
    Histogram,
    MetricsRegistry,
    TimeWeightedGauge,
    UtilizationTracker,
)
from repro.obs.latency import LadderMetrics
from repro.obs.trace import TraceLog, TraceSpan

__all__ = [
    "Observability",
    "MetricsRegistry",
    "Counter",
    "Gauge",
    "Histogram",
    "LadderMetrics",
    "TimeWeightedGauge",
    "UtilizationTracker",
    "TraceLog",
    "TraceSpan",
    "DEFAULT_SECONDS_BUCKETS",
    "install",
    "uninstall",
    "active",
    "installed",
]


class Observability:
    """One run's worth of metrics and trace, with a virtual clock binding.

    The hub does not know about the simulator; whoever owns the run binds
    a clock (and optionally a context provider naming the active sim
    process) via :meth:`bind_clock`.  :class:`~repro.cluster.cluster.
    TranscodeCluster` does this automatically at construction, so spans
    emitted from components that have no simulator handle (workers,
    schedulers, devices) still carry correct virtual timestamps.
    """

    def __init__(self, max_trace_events: int = 200_000) -> None:
        self.metrics = MetricsRegistry()
        self.trace = TraceLog(max_events=max_trace_events)
        self._clock: Optional[Callable[[], float]] = None
        self._context: Optional[Callable[[], Optional[str]]] = None

    # ------------------------------------------------------------------ #
    # Clock binding

    def bind_clock(
        self,
        clock: Callable[[], float],
        context: Optional[Callable[[], Optional[str]]] = None,
    ) -> None:
        """Bind the virtual clock (and optional span-context provider)."""
        self._clock = clock
        self._context = context

    def now(self) -> float:
        """Current virtual time, 0.0 before any clock is bound."""
        return self._clock() if self._clock is not None else 0.0

    # ------------------------------------------------------------------ #
    # Emission

    def emit(
        self,
        kind: str,
        name: str,
        t0: Optional[float] = None,
        t1: Optional[float] = None,
        attrs: Optional[Dict[str, Any]] = None,
    ) -> Optional[TraceSpan]:
        """Append one span; timestamps default to the bound clock.

        When a context provider is bound and reports an active simulator
        process, its name lands in the span's ``proc`` attribute -- the
        span context that ties events back to the process that caused
        them (``vcu:v1/chunk3`` and friends).
        """
        if t0 is None:
            t0 = self.now()
        if self._context is not None:
            proc = self._context()
            if proc is not None:
                attrs = dict(attrs) if attrs else {}
                attrs.setdefault("proc", proc)
        return self.trace.append(kind, name, t0, t1, attrs)

    def count(self, name: str, amount: float = 1.0) -> None:
        self.metrics.counter(name).inc(amount)

    def observe(
        self,
        name: str,
        value: float,
        bounds: Sequence[float] = DEFAULT_SECONDS_BUCKETS,
    ) -> None:
        self.metrics.histogram(name, bounds).observe(value)


_installed: Optional[Observability] = None


def active() -> Optional[Observability]:
    """The installed hub, or ``None`` -- THE hot-path guard.

    Call sites keep the result in a local and skip all work when it is
    ``None``; with no hub installed an instrumentation hook costs one
    function call, one global load, and one comparison.
    """
    return _installed


def install(hub: Optional[Observability] = None) -> Observability:
    """Install ``hub`` (or a fresh one) as the process-wide hub."""
    global _installed
    if _installed is not None:
        raise RuntimeError("an observability hub is already installed")
    _installed = hub if hub is not None else Observability()
    return _installed


def uninstall() -> Optional[Observability]:
    """Remove and return the installed hub (``None`` when absent)."""
    global _installed
    hub, _installed = _installed, None
    return hub


@contextmanager
def installed(hub: Optional[Observability] = None) -> Iterator[Observability]:
    """Context-managed :func:`install`/:func:`uninstall` pair."""
    active_hub = install(hub)
    try:
        yield active_hub
    finally:
        uninstall()
