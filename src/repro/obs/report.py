"""Render a human report from a saved JSONL trace.

``repro-bench report run_trace.jsonl`` turns the raw span log back into
the operator's view of a run: per-pool utilization, retry/hang/fallback
counts, corruption outcomes, and the health-transition timeline -- the
same quantities Figures 8-10 plot longitudinally for the real fleet.

Everything here is numpy-free and imports in a few milliseconds, so the
CLI stays light when all you want is to look at a trace.
"""

from __future__ import annotations

from collections import Counter as TallyCounter
from dataclasses import dataclass, field
from typing import Dict, List, Sequence, Tuple, Union

from repro.obs.trace import TraceLog, TraceSpan

__all__ = ["TraceSummary", "summarize", "render", "load", "report_text"]


@dataclass
class PoolUsage:
    """Busy-time accounting for one worker pool (vcu / cpu / sw)."""

    busy_seconds: float = 0.0
    steps: int = 0
    workers: Dict[str, float] = field(default_factory=dict)

    def utilization(self, horizon: float) -> float:
        denominator = horizon * max(1, len(self.workers))
        return self.busy_seconds / denominator if denominator > 0 else 0.0


@dataclass
class TraceSummary:
    """Everything the report renders, reconcilable against ClusterStats."""

    spans: int = 0
    horizon: float = 0.0
    kinds: Dict[str, int] = field(default_factory=dict)
    pools: Dict[str, PoolUsage] = field(default_factory=dict)
    step_outcomes: Dict[str, int] = field(default_factory=dict)
    hangs: int = 0
    retries: int = 0
    fallbacks: int = 0
    corrupt_caught: int = 0
    corrupt_escaped: int = 0
    backoff_seconds: float = 0.0
    graphs_completed: int = 0
    graph_latencies: List[float] = field(default_factory=list)
    health_timeline: List[Tuple[float, str, str, str]] = field(default_factory=list)
    host_events: List[Tuple[float, str, str]] = field(default_factory=list)
    sweeps: int = 0
    repairs: int = 0
    fw_dispatches: int = 0


SpanLike = Union[TraceSpan, dict]


def _as_span(span: SpanLike) -> TraceSpan:
    return span if isinstance(span, TraceSpan) else TraceSpan.from_dict(span)


def load(path: str) -> List[TraceSpan]:
    """Load a JSONL trace dump back into spans."""
    return TraceLog.read_jsonl(path)


def summarize(spans: Sequence[SpanLike]) -> TraceSummary:
    summary = TraceSummary()
    kinds: TallyCounter = TallyCounter()
    for raw in spans:
        span = _as_span(raw)
        summary.spans += 1
        summary.horizon = max(summary.horizon, span.t1)
        kinds[span.kind] += 1
        attrs = span.attrs
        if span.kind == "step":
            pool = str(attrs.get("pool", "?"))
            usage = summary.pools.setdefault(pool, PoolUsage())
            usage.busy_seconds += span.duration
            usage.steps += 1
            worker = str(attrs.get("worker", "?"))
            usage.workers[worker] = usage.workers.get(worker, 0.0) + span.duration
            outcome = str(attrs.get("outcome", "ok"))
            summary.step_outcomes[outcome] = summary.step_outcomes.get(outcome, 0) + 1
            if outcome == "corrupt_caught":
                summary.corrupt_caught += 1
            elif outcome == "corrupt_escaped":
                summary.corrupt_escaped += 1
        elif span.kind == "hang":
            summary.hangs += 1
        elif span.kind == "retry":
            summary.retries += 1
            summary.backoff_seconds += float(attrs.get("delay", 0.0))
        elif span.kind == "fallback":
            summary.fallbacks += 1
        elif span.kind == "health":
            summary.health_timeline.append(
                (span.t0, span.name, str(attrs.get("from", "?")),
                 str(attrs.get("to", "?")))
            )
        elif span.kind == "host":
            summary.host_events.append((span.t0, span.name, str(attrs.get("host", "?"))))
        elif span.kind == "graph":
            summary.graphs_completed += 1
            summary.graph_latencies.append(span.duration)
        elif span.kind == "sweep":
            summary.sweeps += 1
        elif span.kind == "repair":
            summary.repairs += 1
        elif span.kind == "fw":
            summary.fw_dispatches += 1
    summary.kinds = dict(sorted(kinds.items()))
    return summary


def render(summary: TraceSummary, timeline_limit: int = 30) -> str:
    """The operator-facing text report."""
    lines: List[str] = []
    out = lines.append
    out(f"Trace report: {summary.spans} spans over "
        f"{summary.horizon:.1f}s of virtual time")
    out("")
    out("Span counts by kind:")
    for kind, count in summary.kinds.items():
        out(f"  {kind:<10s} {count}")
    out("")
    out("Per-pool utilization (busy-seconds / horizon x workers):")
    if not summary.pools:
        out("  (no step spans)")
    for pool in sorted(summary.pools):
        usage = summary.pools[pool]
        out(f"  {pool:<4s} {usage.steps:5d} steps, "
            f"{usage.busy_seconds:9.1f}s busy on {len(usage.workers)} workers "
            f"-> {usage.utilization(summary.horizon):6.1%}")
        for worker in sorted(usage.workers):
            out(f"       {worker:<24s} {usage.workers[worker]:9.1f}s")
    out("")
    out("Resilience counters:")
    out(f"  hangs detected      {summary.hangs}")
    out(f"  retries             {summary.retries} "
        f"(total backoff {summary.backoff_seconds:.1f}s)")
    out(f"  software fallbacks  {summary.fallbacks}")
    out(f"  corruption caught   {summary.corrupt_caught}, "
        f"escaped {summary.corrupt_escaped}")
    out(f"  sweeps {summary.sweeps}, repairs {summary.repairs}, "
        f"firmware dispatches {summary.fw_dispatches}")
    if summary.graphs_completed:
        latencies = sorted(summary.graph_latencies)
        p50 = latencies[len(latencies) // 2]
        out(f"  graphs completed    {summary.graphs_completed} "
            f"(p50 latency {p50:.1f}s, max {latencies[-1]:.1f}s)")
    out("")
    out("Health-transition timeline:")
    if not summary.health_timeline:
        out("  (no transitions)")
    shown = summary.health_timeline[:timeline_limit]
    for when, worker, old, new in shown:
        out(f"  t={when:9.1f}  {worker:<24s} {old} -> {new}")
    hidden = len(summary.health_timeline) - len(shown)
    if hidden > 0:
        out(f"  ... {hidden} more transitions")
    if summary.host_events:
        out("")
        out("Host events:")
        for when, name, host in summary.host_events[:timeline_limit]:
            out(f"  t={when:9.1f}  {host:<12s} {name}")
    return "\n".join(lines) + "\n"


def report_text(path: str, timeline_limit: int = 30) -> str:
    """Load + summarize + render in one call (what the CLI uses)."""
    return render(summarize(load(path)), timeline_limit=timeline_limit)
