"""Step-level trace events with virtual timestamps.

A :class:`TraceSpan` records one thing the fleet did -- a step execution,
a placement decision, a watchdog strike, a health transition -- stamped
with *virtual* (simulator) time, never wall-clock time, so two same-seed
runs produce byte-identical traces.  Spans live in a bounded in-memory
:class:`TraceLog`; when the cap is hit new spans are counted as dropped
rather than growing the log (the fleet must never OOM because someone
left tracing on).

Determinism rules every emitter must follow (the golden-trace regression
test enforces the sum of them):

* attribute values are JSON scalars or sorted lists -- never sets, never
  ``id()``-derived values, never wall-clock times;
* floats are rounded to 9 decimals at serialization, so accumulated
  float noise below that threshold cannot flip a byte;
* span ordering is the emission order of a deterministic simulator run,
  tie-broken by the monotone ``seq`` assigned at append time.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Any, Dict, Iterator, List, Optional

__all__ = ["TraceSpan", "TraceLog"]

#: Canonical span kinds, for reference (emitters may add new ones, the
#: log does not restrict them):
#:
#: ========== ==========================================================
#: ``step``    one execution attempt of a task-graph step (t0..t1)
#: ``graph``   a completed step graph (submit..complete)
#: ``sched``   a scheduler placement decision
#: ``hang``    a watchdog deadline expiring over a wedged device
#: ``retry``   a step re-entering the queue with backoff
#: ``fallback`` a step diverted to software transcoding
#: ``health``  a worker health-state transition (from -> to)
#: ``domain``  fault-domain correlation events (fault / evict)
#: ``host``    host-level lifecycle (evict / repaired)
#: ``sweep``   one failure-sweeper telemetry pass
#: ``repair``  a technician repair (start..finish)
#: ``device``  raw device events (mark_hung, mark_corrupt, ...)
#: ``fw``      a firmware command-queue dispatch
#: ========== ==========================================================


def _clean(value: Any) -> Any:
    """Coerce an attribute value into a deterministic JSON scalar."""
    if isinstance(value, bool) or value is None or isinstance(value, (int, str)):
        return value
    if isinstance(value, float):
        return round(value, 9)
    if isinstance(value, (list, tuple)):
        return [_clean(v) for v in value]
    if isinstance(value, (set, frozenset)):
        return sorted(_clean(v) for v in value)
    # numpy scalars and other numerics: fall back through float().
    try:
        return round(float(value), 9)
    except (TypeError, ValueError):
        return str(value)


@dataclass
class TraceSpan:
    """One traced event: a point (``t0 == t1``) or an interval."""

    seq: int
    kind: str
    name: str
    t0: float
    t1: float
    attrs: Dict[str, Any] = field(default_factory=dict)

    @property
    def duration(self) -> float:
        return self.t1 - self.t0

    def to_dict(self) -> Dict[str, Any]:
        return {
            "seq": self.seq,
            "kind": self.kind,
            "name": self.name,
            "t0": round(self.t0, 9),
            "t1": round(self.t1, 9),
            "attrs": {k: _clean(v) for k, v in sorted(self.attrs.items())},
        }

    def to_json(self) -> str:
        return json.dumps(self.to_dict(), sort_keys=True, separators=(",", ":"))

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "TraceSpan":
        return cls(
            seq=int(data["seq"]),
            kind=str(data["kind"]),
            name=str(data["name"]),
            t0=float(data["t0"]),
            t1=float(data["t1"]),
            attrs=dict(data.get("attrs", {})),
        )


class TraceLog:
    """A bounded, append-only event log."""

    def __init__(self, max_events: int = 200_000) -> None:
        if max_events < 1:
            raise ValueError("max_events must be >= 1")
        self.max_events = max_events
        self._spans: List[TraceSpan] = []
        self.dropped = 0
        self._seq = 0

    def __len__(self) -> int:
        return len(self._spans)

    def __iter__(self) -> Iterator[TraceSpan]:
        return iter(self._spans)

    @property
    def spans(self) -> List[TraceSpan]:
        return list(self._spans)

    def append(
        self,
        kind: str,
        name: str,
        t0: float,
        t1: Optional[float] = None,
        attrs: Optional[Dict[str, Any]] = None,
    ) -> Optional[TraceSpan]:
        """Append one span; returns ``None`` when the cap dropped it."""
        seq = self._seq
        self._seq += 1
        if len(self._spans) >= self.max_events:
            self.dropped += 1
            return None
        span = TraceSpan(
            seq=seq, kind=kind, name=name,
            t0=t0, t1=t0 if t1 is None else t1,
            attrs=attrs or {},
        )
        self._spans.append(span)
        return span

    def to_jsonl(self) -> str:
        """The whole log as JSON Lines (one span per line, sorted keys)."""
        return "".join(span.to_json() + "\n" for span in self._spans)

    def write_jsonl(self, path: str) -> int:
        """Dump the log to ``path``; returns the number of spans written."""
        with open(path, "w", encoding="utf-8") as handle:
            handle.write(self.to_jsonl())
        return len(self._spans)

    @staticmethod
    def read_jsonl(path: str) -> List[TraceSpan]:
        spans: List[TraceSpan] = []
        with open(path, "r", encoding="utf-8") as handle:
            for line in handle:
                line = line.strip()
                if line:
                    spans.append(TraceSpan.from_dict(json.loads(line)))
        return spans
