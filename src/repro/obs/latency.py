"""Latency scorecard instruments for the streaming ladder pipeline.

Throughput metrics (``repro.obs.registry`` counters, utilization
trackers) say how much work the fleet did; this module measures the
axis that dominates *live* serving (Section 2.2): how long until the
first playable segment, how long each rung waited for a slot, and how
long finished segments stalled behind the alignment barrier.

:class:`LadderMetrics` is plain bookkeeping over the fixed-bucket
:class:`~repro.obs.registry.Histogram` -- deterministic, mergeable, and
numpy-free like the rest of ``repro.obs``.  The cluster records
per-rung queue waits into it as segment steps start; the stream
sessions record releases, manifests, and time-to-first-segment.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Dict, List, Optional, Sequence, Tuple

from repro.obs.registry import Histogram

if TYPE_CHECKING:  # avoid importing numpy-backed transcode modules here
    from repro.transcode.segments import ManifestEntry

#: Time-to-first-segment bounds: a live segment is playable within a few
#: capture periods, so sub-minute resolution matters most.
TTFS_BOUNDS: Tuple[float, ...] = (
    0.5, 1.0, 2.0, 3.0, 4.0, 6.0, 8.0, 12.0, 16.0, 24.0, 32.0, 48.0,
    64.0, 128.0, 256.0,
)

#: Manifest-stall bounds: head-of-line blocking behind earlier segments
#: is usually a fraction of a segment duration when the fleet is healthy.
STALL_BOUNDS: Tuple[float, ...] = (
    0.05, 0.1, 0.25, 0.5, 1.0, 2.0, 4.0, 8.0, 16.0, 32.0, 64.0,
)

#: Per-rung queue-wait bounds (time from runnable to started).
QUEUE_WAIT_BOUNDS: Tuple[float, ...] = (
    0.05, 0.1, 0.25, 0.5, 1.0, 2.0, 4.0, 8.0, 16.0, 32.0, 64.0, 128.0,
)


class LadderMetrics:
    """Mutable latency scorecard for one streaming-ladder run."""

    def __init__(self) -> None:
        self.ttfs = Histogram("ladder.ttfs_seconds", TTFS_BOUNDS)
        self.manifest_stall = Histogram(
            "ladder.manifest_stall_seconds", STALL_BOUNDS
        )
        self.queue_wait: Dict[str, Histogram] = {}
        self.streams_started = 0
        self.streams_completed = 0
        self.segments_released = 0
        self.manifests_emitted = 0
        self.deadlines_tracked = 0
        self.deadlines_missed = 0
        self.corrupt_rungs = 0
        self.opportunistic_fallbacks = 0

    # -- recording -----------------------------------------------------

    def note_stream_started(self) -> None:
        self.streams_started += 1

    def note_stream_completed(self) -> None:
        self.streams_completed += 1

    def note_release(self) -> None:
        self.segments_released += 1

    def note_ttfs(self, seconds: float) -> None:
        self.ttfs.observe(seconds)

    def note_manifest(
        self, entry: "ManifestEntry", deadline_tracked: bool
    ) -> None:
        self.manifests_emitted += 1
        self.manifest_stall.observe(entry.stall_seconds)
        self.corrupt_rungs += entry.corrupt_rungs
        if deadline_tracked:
            self.deadlines_tracked += 1
            if entry.deadline_missed:
                self.deadlines_missed += 1

    def note_opportunistic_fallback(self) -> None:
        self.opportunistic_fallbacks += 1

    def observe_queue_wait(self, rung: str, wait_seconds: float) -> None:
        histogram = self.queue_wait.get(rung)
        if histogram is None:
            histogram = Histogram(
                f"ladder.queue_wait.{rung}", QUEUE_WAIT_BOUNDS
            )
            self.queue_wait[rung] = histogram
        histogram.observe(wait_seconds)

    # -- reporting -----------------------------------------------------

    def rungs_seen(self) -> List[str]:
        return sorted(self.queue_wait)

    def scorecard(
        self, rungs: Optional[Sequence[str]] = None
    ) -> Dict[str, object]:
        """Flat ``ladder.*`` scorecard entries, sorted by key.

        ``rungs`` pins the per-rung key set (scenario scorecards need a
        static schema even when a rung saw no work); by default only the
        rungs actually observed appear.
        """
        rung_names = list(rungs) if rungs is not None else self.rungs_seen()
        card: Dict[str, object] = {
            "ladder.streams.started": self.streams_started,
            "ladder.streams.completed": self.streams_completed,
            "ladder.segments.released": self.segments_released,
            "ladder.segments.manifested": self.manifests_emitted,
            "ladder.ttfs.p50": self.ttfs.quantile(0.5),
            "ladder.ttfs.p90": self.ttfs.quantile(0.9),
            "ladder.ttfs.p99": self.ttfs.quantile(0.99),
            "ladder.stall.p50": self.manifest_stall.quantile(0.5),
            "ladder.stall.p99": self.manifest_stall.quantile(0.99),
            "ladder.deadline.tracked": self.deadlines_tracked,
            "ladder.deadline.missed": self.deadlines_missed,
            "ladder.corrupt_rungs": self.corrupt_rungs,
            "ladder.fallback.opportunistic": self.opportunistic_fallbacks,
        }
        empty = Histogram("ladder.queue_wait.empty", QUEUE_WAIT_BOUNDS)
        for rung in rung_names:
            histogram = self.queue_wait.get(rung, empty)
            card[f"ladder.rung.{rung}.queue_p50"] = histogram.quantile(0.5)
            card[f"ladder.rung.{rung}.queue_p99"] = histogram.quantile(0.99)
        return dict(sorted(card.items()))
