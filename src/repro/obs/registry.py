"""The unified metrics registry: counters, gauges, histograms.

Every instrument is pure Python (no numpy) so the registry can be
imported by the CLI's ``report`` path without dragging in the numeric
stack.  Three instrument families cover the fleet's needs:

* :class:`Counter` -- monotone event counts (retries, hangs, fallbacks).
* :class:`Gauge` -- last-value-wins samples (healthy workers right now).
* :class:`Histogram` -- fixed-bucket distributions (step seconds, backoff
  delays).  Buckets are upper bounds with an implicit +inf overflow
  bucket, so two histograms with the same bounds merge exactly.
* :class:`TimeWeightedGauge` -- a gauge integrated over *virtual* time via
  :class:`UtilizationTracker` (which lives here now; the cluster's
  utilization accounting builds on the same primitive).

A :class:`MetricsRegistry` is a flat namespace of instruments keyed by
dotted name.  ``snapshot()`` renders everything into one flat dict -- the
exchange format the benchmark jobs archive (``BENCH_PR2.json``) and the
reconciliation tests diff against :class:`~repro.cluster.cluster.ClusterStats`.
"""

from __future__ import annotations

import bisect
from typing import Any, Dict, Iterable, List, Optional, Sequence, Tuple, Type, TypeVar

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "TimeWeightedGauge",
    "UtilizationTracker",
    "MetricsRegistry",
    "DEFAULT_SECONDS_BUCKETS",
]

#: Default duration buckets (seconds): sub-second dispatch latencies up to
#: multi-minute repair windows, with an implicit +inf overflow bucket.
DEFAULT_SECONDS_BUCKETS: Tuple[float, ...] = (
    0.1, 0.5, 1.0, 2.0, 5.0, 10.0, 30.0, 60.0, 120.0, 300.0, 600.0, 1800.0,
)

#: Instrument type variable for the registry's get-or-create accessors.
_I = TypeVar("_I", bound=object)


class UtilizationTracker:
    """Integrates a usage fraction over virtual time.

    Call :meth:`record` whenever usage changes; :meth:`average` returns
    the time-weighted mean over the observed span.
    """

    def __init__(self, start_time: float = 0.0) -> None:
        self._last_time = start_time
        self._last_value = 0.0
        self._area = 0.0
        self._start = start_time

    def record(self, now: float, value: float) -> None:
        if now < self._last_time:
            raise ValueError("time moved backwards")
        self._area += self._last_value * (now - self._last_time)
        self._last_time = now
        self._last_value = value

    def average(self, now: Optional[float] = None) -> float:
        end = self._last_time if now is None else now
        if end < self._last_time:
            raise ValueError("time moved backwards")
        area = self._area + self._last_value * (end - self._last_time)
        span = end - self._start
        return area / span if span > 0 else 0.0

    @property
    def current(self) -> float:
        return self._last_value


class Counter:
    """A monotonically increasing event count."""

    __slots__ = ("name", "value")

    def __init__(self, name: str) -> None:
        self.name = name
        self.value = 0.0

    def inc(self, amount: float = 1.0) -> None:
        if amount < 0:
            raise ValueError("counters only go up")
        self.value += amount


class Gauge:
    """A last-value-wins sample."""

    __slots__ = ("name", "value")

    def __init__(self, name: str) -> None:
        self.name = name
        self.value = 0.0

    def set(self, value: float) -> None:
        self.value = float(value)


class Histogram:
    """A fixed-bucket histogram: upper bounds plus an implicit +inf bucket.

    ``counts[i]`` is the number of observations with
    ``value <= bounds[i]`` (and greater than the previous bound);
    ``counts[-1]`` is the overflow.  Fixed bounds make merging exact:
    histograms recorded by different components of one run -- or by two
    runs -- combine by bucketwise addition, which is associative and
    commutative (the property tests lock this down).
    """

    __slots__ = ("name", "bounds", "counts", "total", "sum")

    def __init__(
        self, name: str, bounds: Sequence[float] = DEFAULT_SECONDS_BUCKETS
    ) -> None:
        bounds = tuple(float(b) for b in bounds)
        if not bounds:
            raise ValueError("histogram needs at least one bucket bound")
        if any(b2 <= b1 for b1, b2 in zip(bounds, bounds[1:])):
            raise ValueError("bucket bounds must be strictly increasing")
        self.name = name
        self.bounds = bounds
        self.counts: List[int] = [0] * (len(bounds) + 1)
        self.total = 0
        self.sum = 0.0

    def observe(self, value: float) -> None:
        self.counts[bisect.bisect_left(self.bounds, value)] += 1
        self.total += 1
        self.sum += value

    def observe_many(self, values: Iterable[float]) -> None:
        """Bulk :meth:`observe`: one pass with hoisted lookups.

        Bucket state after the call is identical to observing each value
        individually (bucket increments commute), which is what lets the
        sampled-telemetry path buffer observations and deliver them at
        sample boundaries without changing final snapshots.  Stays pure
        Python by design -- the registry must import without numpy.
        """
        counts = self.counts
        bounds = self.bounds
        bisect_left = bisect.bisect_left
        batch_total = 0
        batch_sum = 0.0
        for value in values:
            counts[bisect_left(bounds, value)] += 1
            batch_total += 1
            batch_sum += value
        self.total += batch_total
        self.sum += batch_sum

    def quantile(self, q: float) -> float:
        """Upper-bound estimate of the ``q``-quantile (0 < q <= 1).

        Returns the smallest bucket bound whose cumulative count covers
        ``q`` of the observations.  Observations in the overflow bucket
        report the largest finite bound (the histogram cannot resolve
        beyond it); an empty histogram reports 0.0.  Bucket-resolution
        quantiles are coarse but deterministic and mergeable -- exactly
        what the SLO scorecards need.
        """
        if not 0.0 < q <= 1.0:
            raise ValueError("quantile requires 0 < q <= 1")
        if self.total == 0:
            return 0.0
        target = q * self.total
        running = 0
        for bound, count in zip(self.bounds, self.counts):
            running += count
            if running >= target:
                return bound
        return self.bounds[-1]

    def cumulative(self) -> List[int]:
        """Cumulative counts per bucket (a monotone CDF in counts)."""
        out: List[int] = []
        running = 0
        for count in self.counts:
            running += count
            out.append(running)
        return out

    def merge(self, other: "Histogram") -> "Histogram":
        """Bucketwise sum; both histograms must share bounds."""
        if self.bounds != other.bounds:
            raise ValueError("cannot merge histograms with different bounds")
        merged = Histogram(self.name, self.bounds)
        merged.counts = [a + b for a, b in zip(self.counts, other.counts)]
        merged.total = self.total + other.total
        merged.sum = self.sum + other.sum
        return merged


class TimeWeightedGauge:
    """A gauge whose average is weighted by virtual time between sets."""

    __slots__ = ("name", "_tracker")

    def __init__(self, name: str, start_time: float = 0.0) -> None:
        self.name = name
        self._tracker = UtilizationTracker(start_time)

    def set(self, now: float, value: float) -> None:
        self._tracker.record(now, float(value))

    def average(self, now: Optional[float] = None) -> float:
        return self._tracker.average(now)

    @property
    def current(self) -> float:
        return self._tracker.current


class MetricsRegistry:
    """A flat, typed namespace of instruments, keyed by dotted name.

    ``counter``/``gauge``/``histogram``/``time_gauge`` get-or-create; a
    name registered as one instrument type cannot be re-registered as
    another (that is always a wiring bug, so it raises).
    """

    def __init__(self) -> None:
        self._instruments: Dict[str, object] = {}

    def _get_or_create(self, name: str, kind: Type[_I], *args: Any) -> _I:
        instrument = self._instruments.get(name)
        if instrument is None:
            created = kind(name, *args)
            self._instruments[name] = created
            return created
        if not isinstance(instrument, kind):
            raise ValueError(
                f"{name!r} is already a {type(instrument).__name__}, "
                f"not a {kind.__name__}"
            )
        return instrument

    def counter(self, name: str) -> Counter:
        return self._get_or_create(name, Counter)

    def gauge(self, name: str) -> Gauge:
        return self._get_or_create(name, Gauge)

    def histogram(
        self, name: str, bounds: Sequence[float] = DEFAULT_SECONDS_BUCKETS
    ) -> Histogram:
        return self._get_or_create(name, Histogram, bounds)

    def time_gauge(self, name: str, start_time: float = 0.0) -> TimeWeightedGauge:
        return self._get_or_create(name, TimeWeightedGauge, start_time)

    def merge(self, other: "MetricsRegistry") -> None:
        """Fold ``other``'s instruments into this registry, in place.

        Counters and histograms merge exactly (sums / bucketwise adds --
        the associative instruments); plain gauges take ``other``'s
        value (last-wins, matching their semantics).  Time-weighted
        gauges integrate a *virtual* clock that cannot be re-based after
        the fact, so merging one is always a wiring bug and raises.
        Used by the experiment runner to roll a run's private registry
        into the installed hub.
        """
        for name in other.names():
            instrument = other._instruments[name]
            if isinstance(instrument, Counter):
                self.counter(name).inc(instrument.value)
            elif isinstance(instrument, Gauge):
                self.gauge(name).set(instrument.value)
            elif isinstance(instrument, Histogram):
                mine = self.histogram(name, instrument.bounds)
                merged = mine.merge(instrument)
                mine.counts = merged.counts
                mine.total = merged.total
                mine.sum = merged.sum
            else:
                raise ValueError(
                    f"cannot merge {type(instrument).__name__} {name!r}: "
                    "time-weighted gauges have no mergeable clock basis"
                )

    def __contains__(self, name: str) -> bool:
        return name in self._instruments

    def names(self) -> List[str]:
        return sorted(self._instruments)

    def snapshot(self, now: Optional[float] = None) -> Dict[str, float]:
        """Every instrument flattened into one deterministic dict.

        Counters/gauges export their value under their own name;
        histograms export ``name.count``, ``name.sum``, and one
        ``name.le.<bound>`` cumulative entry per bucket; time-weighted
        gauges export ``name.avg`` (up to ``now`` when given) and
        ``name.current``.  Keys come out sorted so two same-seed runs
        serialize byte-identically.
        """
        flat: Dict[str, float] = {}
        for name in sorted(self._instruments):
            instrument = self._instruments[name]
            if isinstance(instrument, (Counter, Gauge)):
                flat[name] = round(float(instrument.value), 9)
            elif isinstance(instrument, Histogram):
                flat[f"{name}.count"] = float(instrument.total)
                flat[f"{name}.sum"] = round(instrument.sum, 9)
                cumulative = instrument.cumulative()
                for bound, running in zip(instrument.bounds, cumulative):
                    flat[f"{name}.le.{bound:g}"] = float(running)
                flat[f"{name}.le.inf"] = float(cumulative[-1])
            elif isinstance(instrument, TimeWeightedGauge):
                flat[f"{name}.avg"] = round(instrument.average(now), 9)
                flat[f"{name}.current"] = round(instrument.current, 9)
        return dict(sorted(flat.items()))
