"""Perf-regression harness: measures the batched hot paths vs their
pre-batching reference implementations.

Three layers carry explicit fast/reference pairs (bit-identical results,
very different speed):

* the codec -- batched kernels + SAD-map motion search vs the per-block
  scalar walk (``Encoder(fast=...)``);
* the bin-packing scheduler -- indexed availability arrays vs the linear
  fleet scan (``place`` vs ``place_scan``);
* the event engine and the batched transform kernels, reported as
  absolute throughput (their references live in the same functions).

``repro-bench perf`` runs everything and writes ``BENCH_PR3.json`` so CI
can archive the numbers per commit; ``--smoke`` shrinks the workload for
a quick regression signal.  Wall-clock measurements are best-of-N to cut
scheduler noise.
"""

from __future__ import annotations

import time
from typing import Callable, Dict, List

import numpy as np

from repro.sim.rng import make_rng

ENCODE_PROFILES = ("libx264", "libvpx", "vcu-h264", "vcu-vp9")


def _best_of(repeats: int, fn: Callable[[], None]) -> float:
    best = float("inf")
    for _ in range(repeats):
        t0 = time.perf_counter()  # lint: allow=determinism -- wall-clock harness
        fn()
        best = min(best, time.perf_counter() - t0)  # lint: allow=determinism -- wall-clock harness
    return best


def _pair(fast_s: float, reference_s: float) -> Dict[str, float]:
    return {
        "fast_s": round(fast_s, 4),
        "reference_s": round(reference_s, 4),
        "speedup": round(reference_s / fast_s, 2),
    }


def _synthetic_frames(
    height: int, width: int, count: int, seed: int = 11
) -> List[np.ndarray]:
    """Smoothed noise with per-frame global motion -- textured enough to
    exercise every mode decision, moving enough to exercise the search."""
    rng = make_rng(seed)
    base = rng.uniform(0, 255, (height + 8 * count, width + 8 * count))
    for _ in range(2):
        base = (
            base
            + np.roll(base, 1, 0) + np.roll(base, 1, 1)
            + np.roll(base, -1, 0) + np.roll(base, -1, 1)
        ) / 5.0
    frames = []
    for i in range(count):
        oy, ox = 2 * i, 3 * i
        data = base[oy : oy + height, ox : ox + width] + rng.normal(
            0.0, 2.0, (height, width)
        )
        frames.append(np.clip(data, 0, 255).astype(np.float32))
    return frames


def bench_encode(smoke: bool = False, repeats: int = 3) -> Dict[str, Dict]:
    """Whole-frame encode, fast vs reference, per Figure-7 profile."""
    from repro.codec.encoder import Encoder
    from repro.codec.profiles import PROFILES_BY_NAME
    from repro.video.frame import Frame, Resolution

    height, width, count = (64, 96, 2) if smoke else (96, 160, 4)
    repeats = 1 if smoke else repeats
    frames = _synthetic_frames(height, width, count)
    nominal = Resolution(
        pixels=width * height, width=width, height=height, name="perfbench"
    )

    def encode(profile, fast: bool) -> None:
        encoder = Encoder(profile, keyframe_interval=150, fast=fast)
        for i, data in enumerate(frames):
            encoder.encode_frame(Frame(data, nominal, i), 30.0)

    results: Dict[str, Dict] = {}
    total_fast = total_reference = 0.0
    for name in ENCODE_PROFILES:
        profile = PROFILES_BY_NAME[name]
        fast_s = _best_of(repeats, lambda: encode(profile, True))
        reference_s = _best_of(repeats, lambda: encode(profile, False))
        total_fast += fast_s
        total_reference += reference_s
        results[name] = _pair(fast_s, reference_s)
    results["aggregate"] = _pair(total_fast, total_reference)
    results["aggregate"]["frames"] = count
    results["aggregate"]["resolution"] = f"{width}x{height}"
    return results


def _scheduler_stream(
    scheduler, place: Callable, placements: int, seed: int = 3
) -> int:
    """Drive ``placements`` placement attempts with interleaved releases.

    Requests vary in shape; ~8 in-flight steps per worker keep the fleet
    near saturation, which is where the linear scan hurts the most (every
    placement probes many full workers).  Returns accepted placements.
    """
    rng = make_rng(seed)
    shapes = [
        {"millidecode": 250.0, "milliencode": 1200.0, "dram_bytes": 40e6},
        {"millidecode": 500.0, "milliencode": 3750.0, "dram_bytes": 160e6},
        {"millidecode": 120.0, "milliencode": 600.0, "dram_bytes": 20e6},
        {"millidecode": 1000.0, "milliencode": 7500.0, "dram_bytes": 330e6},
    ]
    choices = rng.integers(0, len(shapes), size=placements)
    in_flight: List = []
    accepted = 0
    for i in range(placements):
        request = shapes[choices[i]]
        worker = place(request)
        if worker is not None:
            accepted += 1
            in_flight.append((worker, request))
        else:
            # Fleet full: drain the oldest half before continuing.
            drain = max(1, len(in_flight) // 2)
            for worker, request in in_flight[:drain]:
                scheduler.release(worker, request)
            del in_flight[:drain]
    for worker, request in in_flight:
        scheduler.release(worker, request)
    return accepted


def bench_scheduler(smoke: bool = False, repeats: int = 3) -> Dict[str, Dict]:
    """10k placements on a 200-VCU fleet: indexed place vs linear scan."""
    from repro.cluster.scheduler import BinPackingScheduler
    from repro.cluster.worker import VcuWorker
    from repro.vcu.chip import Vcu
    from repro.vcu.spec import DEFAULT_VCU_SPEC

    workers_n, placements = (40, 1000) if smoke else (200, 10_000)
    repeats = 1 if smoke else repeats

    def run(indexed: bool) -> None:
        workers = [
            VcuWorker(Vcu(DEFAULT_VCU_SPEC, vcu_id=f"bench-vcu{i}"))
            for i in range(workers_n)
        ]
        scheduler = BinPackingScheduler(workers)
        place = scheduler.place if indexed else scheduler.place_scan
        _scheduler_stream(scheduler, place, placements)

    fast_s = _best_of(repeats, lambda: run(True))
    reference_s = _best_of(repeats, lambda: run(False))
    result = _pair(fast_s, reference_s)
    result["workers"] = workers_n
    result["placements"] = placements
    return {"bin_packing": result}


def bench_engine(smoke: bool = False) -> Dict[str, float]:
    """Raw event-loop throughput: pre-bound resume tuples + float yields."""
    from repro.sim.engine import Simulator

    events = 10_000 if smoke else 100_000
    sim = Simulator()
    per_process = events // 100

    def ticker() -> object:
        for _ in range(per_process):
            yield 0.001

    for i in range(100):
        sim.process(ticker(), name=f"ticker{i}")
    t0 = time.perf_counter()  # lint: allow=determinism -- wall-clock harness
    sim.run()
    seconds = time.perf_counter() - t0  # lint: allow=determinism -- wall-clock harness
    return {
        "events": 100 * per_process,
        "seconds": round(seconds, 4),
        "events_per_s": round(100 * per_process / seconds),
    }


def bench_kernels(smoke: bool = False, repeats: int = 5) -> Dict[str, Dict]:
    """Batched transform stack vs the equivalent per-block scalar loop."""
    from repro.codec.kernels import batch_transform_rd
    from repro.codec.transform import transform_rd

    blocks, size = (64, 8) if smoke else (256, 8)
    repeats = 2 if smoke else repeats
    rng = make_rng(5)
    stack = rng.uniform(-128, 128, (blocks, size, size))

    fast_s = _best_of(repeats, lambda: batch_transform_rd(stack, 30.0))
    reference_s = _best_of(
        repeats, lambda: [transform_rd(block, 30.0) for block in stack]
    )
    result = _pair(fast_s, reference_s)
    result["blocks"] = blocks
    return {"transform_rd": result}


def run_all(smoke: bool = False) -> Dict[str, Dict]:
    report = {
        "benchmark": "PR3 hot-path overhaul",
        "smoke": smoke,
        "encode": bench_encode(smoke=smoke),
        "scheduler": bench_scheduler(smoke=smoke),
        "engine": bench_engine(smoke=smoke),
        "kernels": bench_kernels(smoke=smoke),
    }
    return report


def write_report(path: str, smoke: bool = False) -> Dict[str, Dict]:
    from repro.runner.manifest import dump_json

    report = run_all(smoke=smoke)
    dump_json(path, report)
    return report


def render(report: Dict[str, Dict]) -> str:
    lines = [f"perf harness ({'smoke' if report['smoke'] else 'full'} mode)"]
    lines.append("  whole-frame encode (fast vs reference):")
    for name, row in report["encode"].items():
        lines.append(
            f"    {name:10s} {row['fast_s']:8.3f}s vs {row['reference_s']:8.3f}s"
            f"  -> {row['speedup']:.2f}x"
        )
    sched = report["scheduler"]["bin_packing"]
    lines.append(
        f"  scheduler ({sched['placements']} placements, {sched['workers']} workers):"
        f" {sched['fast_s']:.3f}s vs {sched['reference_s']:.3f}s"
        f" -> {sched['speedup']:.2f}x"
    )
    engine = report["engine"]
    lines.append(
        f"  engine: {engine['events']} events in {engine['seconds']:.3f}s"
        f" ({engine['events_per_s']:,} events/s)"
    )
    kern = report["kernels"]["transform_rd"]
    lines.append(
        f"  batched transform ({kern['blocks']} blocks):"
        f" {kern['speedup']:.2f}x vs per-block loop"
    )
    return "\n".join(lines)
