"""Perf-regression harness: measures the batched hot paths vs their
pre-batching reference implementations.

Three layers carry explicit fast/reference pairs (bit-identical results,
very different speed):

* the codec -- batched kernels + SAD-map motion search vs the per-block
  scalar walk (``Encoder(fast=...)``);
* the bin-packing scheduler -- indexed availability arrays vs the linear
  fleet scan (``place`` vs ``place_scan``);
* the event engine -- the calendar-queue loop (:mod:`repro.sim.engine`)
  vs the frozen single-heap engine (:mod:`repro.sim.reference`), on both
  a tie-heavy (aligned) and a tie-free (scattered) workload;
* the batched transform kernels, reported as absolute throughput.

``bench_fleet`` is the end-to-end face of the same work: a 50k-VCU
cluster (``fleet_mode=True``, sampled telemetry) runs a multi-hour
simulated day -- uploads arriving continuously, the failure sweeper
disabling and repairing devices underneath -- and reports how many
simulated seconds each wall second buys.

``repro-bench perf`` runs everything and writes ``BENCH_PR8.json`` so CI
can archive the numbers per commit; ``--smoke`` shrinks the workload for
a quick regression signal and ``--fleet`` runs the fleet day at full
50k-VCU scale.  Wall-clock measurements are best-of-N to cut scheduler
noise.
"""

from __future__ import annotations

import time
from typing import Callable, Dict, List

import numpy as np

from repro.sim.rng import make_rng

ENCODE_PROFILES = ("libx264", "libvpx", "vcu-h264", "vcu-vp9")


def _best_of(repeats: int, fn: Callable[[], None]) -> float:
    best = float("inf")
    for _ in range(repeats):
        t0 = time.perf_counter()  # lint: allow=determinism -- wall-clock harness
        fn()
        best = min(best, time.perf_counter() - t0)  # lint: allow=determinism -- wall-clock harness
    return best


def _pair(fast_s: float, reference_s: float) -> Dict[str, float]:
    return {
        "fast_s": round(fast_s, 4),
        "reference_s": round(reference_s, 4),
        "speedup": round(reference_s / fast_s, 2),
    }


def _synthetic_frames(
    height: int, width: int, count: int, seed: int = 11
) -> List[np.ndarray]:
    """Smoothed noise with per-frame global motion -- textured enough to
    exercise every mode decision, moving enough to exercise the search."""
    rng = make_rng(seed)
    base = rng.uniform(0, 255, (height + 8 * count, width + 8 * count))
    for _ in range(2):
        base = (
            base
            + np.roll(base, 1, 0) + np.roll(base, 1, 1)
            + np.roll(base, -1, 0) + np.roll(base, -1, 1)
        ) / 5.0
    frames = []
    for i in range(count):
        oy, ox = 2 * i, 3 * i
        data = base[oy : oy + height, ox : ox + width] + rng.normal(
            0.0, 2.0, (height, width)
        )
        frames.append(np.clip(data, 0, 255).astype(np.float32))
    return frames


def bench_encode(smoke: bool = False, repeats: int = 3) -> Dict[str, Dict]:
    """Whole-frame encode, fast vs reference, per Figure-7 profile."""
    from repro.codec.encoder import Encoder
    from repro.codec.profiles import PROFILES_BY_NAME
    from repro.video.frame import Frame, Resolution

    height, width, count = (64, 96, 2) if smoke else (96, 160, 4)
    repeats = 1 if smoke else repeats
    frames = _synthetic_frames(height, width, count)
    nominal = Resolution(
        pixels=width * height, width=width, height=height, name="perfbench"
    )

    def encode(profile, fast: bool) -> None:
        encoder = Encoder(profile, keyframe_interval=150, fast=fast)
        for i, data in enumerate(frames):
            encoder.encode_frame(Frame(data, nominal, i), 30.0)

    results: Dict[str, Dict] = {}
    total_fast = total_reference = 0.0
    for name in ENCODE_PROFILES:
        profile = PROFILES_BY_NAME[name]
        fast_s = _best_of(repeats, lambda: encode(profile, True))
        reference_s = _best_of(repeats, lambda: encode(profile, False))
        total_fast += fast_s
        total_reference += reference_s
        results[name] = _pair(fast_s, reference_s)
    results["aggregate"] = _pair(total_fast, total_reference)
    results["aggregate"]["frames"] = count
    results["aggregate"]["resolution"] = f"{width}x{height}"
    return results


def _scheduler_stream(
    scheduler, place: Callable, placements: int, seed: int = 3
) -> int:
    """Drive ``placements`` placement attempts with interleaved releases.

    Requests vary in shape; ~8 in-flight steps per worker keep the fleet
    near saturation, which is where the linear scan hurts the most (every
    placement probes many full workers).  Returns accepted placements.
    """
    rng = make_rng(seed)
    shapes = [
        {"millidecode": 250.0, "milliencode": 1200.0, "dram_bytes": 40e6},
        {"millidecode": 500.0, "milliencode": 3750.0, "dram_bytes": 160e6},
        {"millidecode": 120.0, "milliencode": 600.0, "dram_bytes": 20e6},
        {"millidecode": 1000.0, "milliencode": 7500.0, "dram_bytes": 330e6},
    ]
    choices = rng.integers(0, len(shapes), size=placements)
    in_flight: List = []
    accepted = 0
    for i in range(placements):
        request = shapes[choices[i]]
        worker = place(request)
        if worker is not None:
            accepted += 1
            in_flight.append((worker, request))
        else:
            # Fleet full: drain the oldest half before continuing.
            drain = max(1, len(in_flight) // 2)
            for worker, request in in_flight[:drain]:
                scheduler.release(worker, request)
            del in_flight[:drain]
    for worker, request in in_flight:
        scheduler.release(worker, request)
    return accepted


def bench_scheduler(smoke: bool = False, repeats: int = 3) -> Dict[str, Dict]:
    """10k placements on a 200-VCU fleet: indexed place vs linear scan."""
    from repro.cluster.scheduler import BinPackingScheduler
    from repro.cluster.worker import VcuWorker
    from repro.vcu.chip import Vcu
    from repro.vcu.spec import DEFAULT_VCU_SPEC

    workers_n, placements = (40, 1000) if smoke else (200, 10_000)
    repeats = 1 if smoke else repeats

    def run(indexed: bool) -> None:
        workers = [
            VcuWorker(Vcu(DEFAULT_VCU_SPEC, vcu_id=f"bench-vcu{i}"))
            for i in range(workers_n)
        ]
        scheduler = BinPackingScheduler(workers)
        place = scheduler.place if indexed else scheduler.place_scan
        _scheduler_stream(scheduler, place, placements)

    fast_s = _best_of(repeats, lambda: run(True))
    reference_s = _best_of(repeats, lambda: run(False))
    result = _pair(fast_s, reference_s)
    result["workers"] = workers_n
    result["placements"] = placements
    return {"bin_packing": result}


def bench_engine(smoke: bool = False, repeats: int = 3) -> Dict[str, float]:
    """Raw event-loop throughput: calendar buckets + batched dispatch."""
    from repro.sim import engine

    events = 10_000 if smoke else 100_000
    per_process = events // 100
    repeats = 1 if smoke else repeats
    seconds = _best_of(repeats, lambda: _engine_run(engine, False, per_process))
    return {
        "events": 100 * per_process,
        "seconds": round(seconds, 4),
        "events_per_s": round(100 * per_process / seconds),
    }


def _engine_run(module, scattered: bool, per_process: int) -> None:
    """100 tickers on ``module``'s Simulator; aligned or scattered clocks.

    Aligned tickers share every timestamp (100-deep calendar buckets, the
    batched-dispatch best case); scattered tickers use coprime-ish
    periods so almost every event sits alone at its timestamp (the
    bucketing worst case -- the calendar must still win on heap traffic
    alone).
    """
    sim = module.Simulator()

    def ticker(delay: float) -> object:
        for _ in range(per_process):
            yield delay

    for i in range(100):
        delay = 0.001 + i * 0.0001937 if scattered else 0.001
        sim.process(ticker(delay), name=f"ticker{i}")
    sim.run()


def bench_calendar(smoke: bool = False, repeats: int = 3) -> Dict[str, Dict]:
    """Calendar-queue engine vs the frozen single-heap reference.

    Both engines run the exact same workload in-process, so the speedup
    is machine-independent in a way an absolute events/s floor is not;
    the absolute rate is reported alongside for the curious.
    """
    from repro.sim import engine, reference

    per_process = 100 if smoke else 1_000
    repeats = 1 if smoke else repeats
    events = 100 * per_process

    results: Dict[str, Dict] = {}
    for key, scattered in (("aligned", False), ("scattered", True)):
        fast_s = _best_of(
            repeats, lambda: _engine_run(engine, scattered, per_process)
        )
        reference_s = _best_of(
            repeats, lambda: _engine_run(reference, scattered, per_process)
        )
        row = _pair(fast_s, reference_s)
        row["events"] = events
        row["events_per_s"] = round(events / fast_s)
        results[key] = row
    return results


def bench_fleet(smoke: bool = False, full_scale: bool = False) -> Dict[str, object]:
    """A day in the life of the fleet, end to end.

    Builds a ``fleet_mode`` cluster with sampled telemetry, submits an
    upload stream for a multi-hour simulated day, and runs the failure
    sweeper underneath (hard faults disabling VCUs, capped repairs
    returning them).  The headline number is ``sim_seconds_per_wall_s``:
    how much fleet time one wall second simulates.  ``full_scale`` is the
    paper-scale configuration -- 2500 hosts x 20 VCUs = 50,000 devices.
    """
    from repro.cluster import CpuWorker, TranscodeCluster, VcuWorker
    from repro.failures import FailureManager, FailureSweeper, FaultInjector
    from repro.sim.engine import Simulator
    from repro.transcode import PopularityBucket, build_transcode_graph
    from repro.vcu.host import VcuHost
    from repro.vcu.telemetry import FaultKind
    from repro.video.frame import resolution

    if full_scale:
        hosts_n, cpus_n, horizon, interval = 2500, 500, 4 * 3600.0, 2.0
    elif smoke:
        hosts_n, cpus_n, horizon, interval = 10, 8, 900.0, 3.0
    else:
        hosts_n, cpus_n, horizon, interval = 100, 40, 3600.0, 1.5

    sim = Simulator()
    hosts = [VcuHost(host_id=f"fleet-{i}") for i in range(hosts_n)]
    vcu_workers = [
        VcuWorker(vcu, host=host, golden_screening=False)
        for host in hosts
        for vcu in host.vcus
    ]
    cpu_workers = [CpuWorker(cores=16) for _ in range(cpus_n)]
    cluster = TranscodeCluster(
        sim,
        vcu_workers,
        cpu_workers,
        fleet_mode=True,
        telemetry_mode="sampled",
        telemetry_sample_seconds=15.0,
        seed=8,
    )
    manager = FailureManager(hosts, repair_cap=8, card_swap_threshold=2)
    sweeper = FailureSweeper(
        sim, manager, interval_seconds=60.0, repair_seconds=900.0,
        cluster=cluster,
    )
    sweeper.start(until=horizon)
    injector = FaultInjector(
        sim, [vcu for host in hosts for vcu in host.vcus], seed=17
    )
    # A light hard-fault drizzle: enough to disable devices and exercise
    # the repair + availability-notification paths, not enough to turn
    # the day into a fault benchmark.
    faults = injector.random_hard_faults(
        0.0005, until=horizon, kind=FaultKind.ECC_UNCORRECTABLE, count=3,
    )

    source = resolution("720p")
    submitted = 0

    def uploader() -> object:
        nonlocal submitted
        while sim.now + interval <= horizon:
            yield interval
            cluster.submit(
                build_transcode_graph(
                    video_id=f"day-v{submitted}",
                    source=source,
                    total_frames=300,
                    fps=30.0,
                    bucket=PopularityBucket.WARM,
                )
            )
            submitted += 1

    sim.process(uploader(), name="fleet-uploader")
    t0 = time.perf_counter()  # lint: allow=determinism -- wall-clock harness
    sim.run()
    wall_s = time.perf_counter() - t0  # lint: allow=determinism -- wall-clock harness
    telemetry_flushes = (
        cluster._fleet_telemetry.flushes if cluster._fleet_telemetry else 0
    )
    return {
        "scale": "50k" if full_scale else ("smoke" if smoke else "2k"),
        "vcus": len(vcu_workers),
        "hosts": hosts_n,
        "cpu_workers": cpus_n,
        "simulated_hours": round(sim.now / 3600.0, 2),
        "graphs_submitted": submitted,
        "graphs_completed": cluster.stats.completed_graphs,
        "steps_completed": cluster.stats.completed_steps,
        "faults_injected": len(faults),
        "sweeps": sweeper.sweeps,
        "repairs_completed": sweeper.repairs_completed,
        "telemetry_flushes": telemetry_flushes,
        "wall_s": round(wall_s, 2),
        "sim_seconds_per_wall_s": round(sim.now / wall_s) if wall_s > 0 else 0,
    }


def bench_kernels(smoke: bool = False, repeats: int = 5) -> Dict[str, Dict]:
    """Batched transform stack vs the equivalent per-block scalar loop."""
    from repro.codec.kernels import batch_transform_rd
    from repro.codec.transform import transform_rd

    blocks, size = (64, 8) if smoke else (256, 8)
    repeats = 2 if smoke else repeats
    rng = make_rng(5)
    stack = rng.uniform(-128, 128, (blocks, size, size))

    fast_s = _best_of(repeats, lambda: batch_transform_rd(stack, 30.0))
    reference_s = _best_of(
        repeats, lambda: [transform_rd(block, 30.0) for block in stack]
    )
    result = _pair(fast_s, reference_s)
    result["blocks"] = blocks
    return {"transform_rd": result}


def run_all(smoke: bool = False, fleet: bool = False) -> Dict[str, Dict]:
    report = {
        "benchmark": "PR8 calendar engine + fleet-scale hot paths",
        "smoke": smoke,
        "encode": bench_encode(smoke=smoke),
        "scheduler": bench_scheduler(smoke=smoke),
        "engine": bench_engine(smoke=smoke),
        "calendar": bench_calendar(smoke=smoke),
        "kernels": bench_kernels(smoke=smoke),
        "fleet": bench_fleet(smoke=smoke, full_scale=fleet),
    }
    return report


def write_report(
    path: str, smoke: bool = False, fleet: bool = False
) -> Dict[str, Dict]:
    from repro.runner.manifest import dump_json

    report = run_all(smoke=smoke, fleet=fleet)
    dump_json(path, report)
    return report


def render(report: Dict[str, Dict]) -> str:
    lines = [f"perf harness ({'smoke' if report['smoke'] else 'full'} mode)"]
    lines.append("  whole-frame encode (fast vs reference):")
    for name, row in report["encode"].items():
        lines.append(
            f"    {name:10s} {row['fast_s']:8.3f}s vs {row['reference_s']:8.3f}s"
            f"  -> {row['speedup']:.2f}x"
        )
    sched = report["scheduler"]["bin_packing"]
    lines.append(
        f"  scheduler ({sched['placements']} placements, {sched['workers']} workers):"
        f" {sched['fast_s']:.3f}s vs {sched['reference_s']:.3f}s"
        f" -> {sched['speedup']:.2f}x"
    )
    engine = report["engine"]
    lines.append(
        f"  engine: {engine['events']} events in {engine['seconds']:.3f}s"
        f" ({engine['events_per_s']:,} events/s)"
    )
    lines.append("  calendar engine vs single-heap reference:")
    for key, row in report["calendar"].items():
        lines.append(
            f"    {key:10s} {row['events_per_s']:>10,} events/s"
            f" -> {row['speedup']:.2f}x"
        )
    kern = report["kernels"]["transform_rd"]
    lines.append(
        f"  batched transform ({kern['blocks']} blocks):"
        f" {kern['speedup']:.2f}x vs per-block loop"
    )
    fleet = report["fleet"]
    lines.append(
        f"  fleet day ({fleet['scale']}: {fleet['vcus']:,} VCUs,"
        f" {fleet['graphs_completed']:,} graphs,"
        f" {fleet['simulated_hours']:.1f}h simulated):"
        f" {fleet['wall_s']:.1f}s wall"
        f" ({fleet['sim_seconds_per_wall_s']:,} sim-s per wall-s)"
    )
    return "\n".join(lines)
