"""Correlated-outage chaos campaign at fleet scale (Section 5).

The failure mode the paper's serving stack is engineered around is not
the lone flaky card -- it is the *correlated* event: a bad PCIe riser
batch, a rack power event, an uncorrectable-ECC storm that takes whole
hosts out at once while the repair pipeline can only drain and re-card
a bounded number of them concurrently.  This campaign sweeps blast
radius (hosts hit by a simultaneous ECC storm) against repair capacity
(the :class:`~repro.failures.management.FailureManager` concurrency
cap) on a fleet-mode cluster driven by the bucketed calendar engine,
with a regional power outage layered mid-run for good measure.

Two invariants are scored per arm and gated in CI:

* **conservation** -- every submitted job completes despite disables,
  drains, and repairs (retries and CPU fallback absorb the blast);
* **availability bookkeeping** -- the incremental fleet-mode healthy-VCU
  counter exactly matches a full recount at drain.

As with every catalog scenario the run is a pure function of
``(config, seed)``: static :func:`scorecard_keys`, byte-identical
scorecards at any ``--jobs``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, List, Tuple

from repro.cluster.cluster import TranscodeCluster
from repro.cluster.worker import CpuWorker, VcuWorker
from repro.control.live_ladder import stable_host
from repro.failures.injector import FaultInjector
from repro.failures.management import FailureManager, FailureSweeper
from repro.sim.engine import Simulator
from repro.sim.rng import SeedLike, split_rng
from repro.transcode.modes import WorkloadClass
from repro.transcode.pipeline import build_transcode_graph
from repro.vcu.telemetry import FaultKind
from repro.video.frame import resolution

#: Bump when the scorecard's key set or semantics change.
SCORECARD_VERSION = 1

_GLOBAL_FIELDS: Tuple[str, ...] = (
    "schema_version",
    "campaign.blast_hosts", "campaign.repair_cap",
    "jobs.submitted", "jobs.completed",
    "steps.completed", "cluster.retries", "cluster.hangs",
    "cluster.corrupt_caught", "cluster.software_fallbacks",
    "cluster.workers_quarantined", "cluster.workers_rehabilitated",
    "cluster.host_evictions",
    "fleet.vcus", "fleet.available_end", "fleet.disabled_by_sweeps",
    "sweeper.sweeps", "sweeper.repairs_started", "sweeper.repairs_completed",
    "repair.hosts_repaired",
    "availability.exact", "conservation.ok",
)


def scorecard_keys() -> Tuple[str, ...]:
    """The exact, sorted key set every campaign scorecard carries."""
    return tuple(sorted(_GLOBAL_FIELDS))


@dataclass(frozen=True)
class ChaosCampaignConfig:
    """One (blast radius, repair capacity) arm, fully specified."""

    #: Arrivals stop at the horizon; the backlog drains past it.
    horizon_seconds: float = 900.0
    hosts: int = 8
    vcus_per_host: int = 2
    cpu_workers: int = 2
    #: Hosts hit by the simultaneous uncorrectable-ECC storm.
    blast_hosts: int = 2
    #: FailureManager concurrency cap on in-flight host repairs.
    repair_cap: int = 2
    #: Disabled-VCU count that queues a host for card-swap repair.
    card_swap_threshold: int = 2
    blast_at_frac: float = 0.25
    #: Uncorrectable-ECC faults per VCU in the storm; at or above the
    #: telemetry disable threshold so the next sweep disables the card.
    blast_faults_per_vcu: int = 3
    blast_stagger_seconds: float = 2.0
    #: A regional power event on the tail hosts, layered mid-run.
    outage_hosts: int = 2
    outage_start_frac: float = 0.55
    outage_duration_frac: float = 0.10
    outage_stagger_seconds: float = 3.0
    #: A transient hang storm on the fleet's first host -- the one the
    #: first-fit scheduler keeps busiest -- shortly *before* the blast,
    #: so the watchdog/retry path is exercised against in-flight work in
    #: every arm regardless of blast/repair timing.
    storm_at_frac: float = 0.15
    storm_duration_seconds: float = 30.0
    storm_stagger_seconds: float = 1.0
    sweep_interval_seconds: float = 30.0
    repair_seconds: float = 120.0
    #: Fixed-interval upload demand (small clips) across the horizon,
    #: heavy enough that the blasted hosts carry in-flight work.
    job_interval_seconds: float = 0.2
    frames_per_job: int = 90
    source: str = "480p"

    def __post_init__(self) -> None:
        if self.horizon_seconds <= 0:
            raise ValueError("horizon_seconds must be positive")
        if self.hosts <= 0 or self.vcus_per_host <= 0:
            raise ValueError("fleet dimensions must be positive")
        if not 0 < self.blast_hosts < self.hosts:
            raise ValueError("blast_hosts must be in 1..hosts-1")
        if self.blast_hosts + self.outage_hosts >= self.hosts:
            raise ValueError(
                "blast, storm, and outage host sets must not overlap"
            )
        if not 0.0 < self.storm_at_frac < 1.0:
            raise ValueError("storm_at_frac must be in (0, 1)")
        if self.repair_cap <= 0:
            raise ValueError("repair_cap must be positive")
        if not 0.0 < self.blast_at_frac < 1.0:
            raise ValueError("blast_at_frac must be in (0, 1)")
        if not 0.0 < self.outage_start_frac < 1.0:
            raise ValueError("outage_start_frac must be in (0, 1)")
        if self.job_interval_seconds <= 0 or self.frames_per_job <= 0:
            raise ValueError("demand parameters must be positive")


@dataclass
class ChaosResult:
    """Everything a caller might inspect after the campaign drains."""

    config: ChaosCampaignConfig
    cluster: TranscodeCluster
    manager: FailureManager
    sweeper: FailureSweeper
    submitted: int
    end_time: float
    scorecard: Dict[str, Any]


def build_scorecard(
    config: ChaosCampaignConfig,
    cluster: TranscodeCluster,
    manager: FailureManager,
    sweeper: FailureSweeper,
    workers: List[VcuWorker],
    submitted: int,
) -> Dict[str, Any]:
    """The flat campaign scorecard, keys sorted."""
    stats = cluster.stats
    available = sum(1 for worker in workers if worker.available())
    card: Dict[str, Any] = {
        "schema_version": SCORECARD_VERSION,
        "campaign.blast_hosts": config.blast_hosts,
        "campaign.repair_cap": config.repair_cap,
        "jobs.submitted": submitted,
        "jobs.completed": stats.completed_graphs,
        "steps.completed": stats.completed_steps,
        "cluster.retries": stats.retries,
        "cluster.hangs": stats.hangs_detected,
        "cluster.corrupt_caught": stats.corrupt_caught,
        "cluster.software_fallbacks": stats.software_fallbacks,
        "cluster.workers_quarantined": stats.workers_quarantined,
        "cluster.workers_rehabilitated": stats.workers_rehabilitated,
        "cluster.host_evictions": stats.host_evictions,
        "fleet.vcus": len(workers),
        "fleet.available_end": available,
        "fleet.disabled_by_sweeps": len(manager.disabled_vcus),
        "sweeper.sweeps": sweeper.sweeps,
        "sweeper.repairs_started": sweeper.repairs_started,
        "sweeper.repairs_completed": sweeper.repairs_completed,
        "repair.hosts_repaired": len(manager.repair_queue.repaired),
        "availability.exact": bool(cluster.healthy_vcu_count() == available),
        "conservation.ok": bool(submitted == stats.completed_graphs),
    }
    if tuple(sorted(card)) != scorecard_keys():
        raise RuntimeError("scorecard keys drifted from scorecard_keys()")
    return dict(sorted(card.items()))


def run_chaos_campaign(
    config: ChaosCampaignConfig, seed: SeedLike = 0
) -> ChaosResult:
    """Simulate one campaign arm end to end and score it.

    Arrivals stop at the horizon but the simulation runs until the
    event queue drains (in-flight repairs included), so the verdicts
    describe a settled fleet.
    """
    sim = Simulator()
    hosts = [
        stable_host(f"chaos-h{i:02d}", config.vcus_per_host)
        for i in range(config.hosts)
    ]
    workers = [
        VcuWorker(vcu, host=host, golden_screening=False)
        for host in hosts
        for vcu in host.vcus
    ]
    cpus = [
        CpuWorker(cores=16, name=f"chaos-cpu{i}")
        for i in range(config.cpu_workers)
    ]
    cluster = TranscodeCluster(
        sim, workers, cpus,
        fleet_mode=True,
        telemetry_mode="sampled",
        telemetry_sample_seconds=15.0,
        seed=split_rng(seed, "chaos/cluster"),
    )
    injector = FaultInjector(
        sim,
        [vcu for host in hosts for vcu in host.vcus],
        seed=split_rng(seed, "chaos/faults"),
    )
    t_blast = config.blast_at_frac * config.horizon_seconds
    for index, host in enumerate(hosts[: config.blast_hosts]):
        injector.correlated_host_fault(
            t_blast + index * config.blast_stagger_seconds,
            host,
            kind=FaultKind.ECC_UNCORRECTABLE,
            count_per_vcu=config.blast_faults_per_vcu,
            stagger_seconds=0.5,
        )
    injector.correlated_hangs(
        config.storm_at_frac * config.horizon_seconds,
        hosts[0].vcus,
        duration=config.storm_duration_seconds,
        stagger_seconds=config.storm_stagger_seconds,
    )
    if config.outage_hosts > 0:
        injector.regional_outage(
            config.outage_start_frac * config.horizon_seconds,
            hosts[-config.outage_hosts:],
            duration=config.outage_duration_frac * config.horizon_seconds,
            stagger_seconds=config.outage_stagger_seconds,
        )
    manager = FailureManager(
        hosts,
        repair_cap=config.repair_cap,
        card_swap_threshold=config.card_swap_threshold,
    )
    sweeper = FailureSweeper(
        sim, manager,
        interval_seconds=config.sweep_interval_seconds,
        repair_seconds=config.repair_seconds,
        cluster=cluster,
    )
    sweeper.start(until=config.horizon_seconds)

    source = resolution(config.source)
    submitted = 0
    index = 0
    while True:
        arrival = index * config.job_interval_seconds
        if arrival >= config.horizon_seconds:
            break
        index += 1
        submitted += 1
        graph = build_transcode_graph(
            video_id=f"chaos-{index:05d}",
            source=source,
            total_frames=config.frames_per_job,
            fps=30.0,
            workload=WorkloadClass.UPLOAD,
        )
        sim.call_at(arrival, lambda g=graph: cluster.submit(g))

    sim.run()
    return ChaosResult(
        config=config,
        cluster=cluster,
        manager=manager,
        sweeper=sweeper,
        submitted=submitted,
        end_time=sim.now,
        scorecard=build_scorecard(
            config, cluster, manager, sweeper, workers, submitted
        ),
    )
