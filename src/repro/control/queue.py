"""Durable job bookkeeping: the ledger, class queues, and dead letters.

"Durable" here means *accounted for*: the :class:`JobLedger` records
every job ever submitted and every transition it took, so at any point
the sum over states equals the number of submissions -- the conservation
invariant the flagship scenario's tests enforce.  Jobs that exhaust
their retry budget land in the :class:`DeadLetterLedger` with their full
history attached; nothing is ever dropped without a record saying when,
where, and why.

:class:`ClassQueue` is the strict-priority FIFO used both for the global
parking queue and for each site's dispatch queue: pops serve LIVE before
UPLOAD before BATCH, FIFO within a class; shedding removes from the
*tail* of a class (the newest arrivals -- survivors keep their FIFO
position, and the jobs dropped are the ones that would have waited
longest anyway).
"""

from __future__ import annotations

import json
from collections import deque
from dataclasses import dataclass, field
from typing import Any, Deque, Dict, List, Optional

from repro.control.jobs import CLASS_ORDER, Job, JobState, SHED_ORDER, SloClass


@dataclass(frozen=True)
class TransitionRecord:
    """One ledger line: who moved where, when, and why."""

    at: float
    job_id: str
    from_state: Optional[JobState]  # None for the submission record
    to_state: JobState
    site: Optional[str]
    attempt: int
    reason: str

    def to_dict(self) -> Dict[str, Any]:
        return {
            "at": round(self.at, 9),
            "job": self.job_id,
            "from": None if self.from_state is None else self.from_state.value,
            "to": self.to_state.value,
            "site": self.site,
            "attempt": self.attempt,
            "reason": self.reason,
        }


@dataclass(frozen=True)
class DeadLetter:
    """One permanently-failed job, with everything needed to debug it."""

    job_id: str
    slo_class: SloClass
    at: float
    attempts: int
    reason: str
    history: tuple  # ((time, state_value), ...)


class DeadLetterLedger:
    """FAILED jobs never vanish; they land here with their history."""

    def __init__(self) -> None:
        self.entries: List[DeadLetter] = []

    def record(self, job: Job, at: float, reason: str) -> DeadLetter:
        entry = DeadLetter(
            job_id=job.job_id,
            slo_class=job.slo_class,
            at=at,
            attempts=job.attempts,
            reason=reason,
            history=tuple((round(t, 9), s.value) for t, s in job.history),
        )
        self.entries.append(entry)
        return entry

    def __len__(self) -> int:
        return len(self.entries)


class JobLedger:
    """Every job ever submitted, plus its append-only transition log."""

    def __init__(self) -> None:
        #: Insertion-ordered: submission order is the canonical job order.
        self.jobs: Dict[str, Job] = {}
        self.records: List[TransitionRecord] = []

    def register(self, job: Job, reason: str = "submit") -> None:
        if job.job_id in self.jobs:
            raise ValueError(f"duplicate job id {job.job_id!r}")
        self.jobs[job.job_id] = job
        self.records.append(TransitionRecord(
            at=job.request.arrival_time, job_id=job.job_id,
            from_state=None, to_state=job.state,
            site=job.site, attempt=job.attempts, reason=reason,
        ))

    def transition(self, job: Job, to: JobState, at: float, reason: str) -> None:
        """Move ``job`` through its state machine and log the hop."""
        from_state = job.state
        job.transition(to, at)
        self.records.append(TransitionRecord(
            at=at, job_id=job.job_id, from_state=from_state, to_state=to,
            site=job.site, attempt=job.attempts, reason=reason,
        ))

    # ------------------------------------------------------------------ #
    # Conservation

    def state_counts(self) -> Dict[str, int]:
        """Jobs per current state (every state present, zero-filled)."""
        counts = {state.value: 0 for state in JobState}
        for job in self.jobs.values():
            counts[job.state.value] += 1
        return counts

    def conservation_report(self) -> Dict[str, Any]:
        """The invariant, checkable: submissions == sum over states.

        ``ok`` additionally requires every job to be terminal -- the
        fully-drained condition the flagship scenario asserts.  A job can
        only be in one state (``Job.state`` is scalar), so "exactly one
        terminal state" reduces to "terminal at drain time" plus the
        count identity.
        """
        counts = self.state_counts()
        submitted = len(self.jobs)
        accounted = sum(counts.values())
        nonterminal = [
            job.job_id for job in self.jobs.values() if not job.terminal
        ]
        return {
            "submitted": submitted,
            "accounted": accounted,
            "counts": counts,
            "nonterminal": nonterminal,
            "ok": submitted == accounted and not nonterminal,
        }

    def write_jsonl(self, path: str) -> None:
        """Dump the transition log, one record per line (the durable form)."""
        with open(path, "w", encoding="utf-8") as handle:
            for record in self.records:
                handle.write(json.dumps(record.to_dict(), sort_keys=True) + "\n")

    def __len__(self) -> int:
        return len(self.jobs)


class ClassQueue:
    """Strict-priority FIFO over the SLO classes."""

    def __init__(self) -> None:
        self._queues: Dict[SloClass, Deque[Job]] = {
            cls: deque() for cls in CLASS_ORDER
        }

    def push(self, job: Job) -> None:
        self._queues[job.slo_class].append(job)

    def pop(self) -> Optional[Job]:
        """Highest-priority job, FIFO within a class; ``None`` when empty."""
        for cls in CLASS_ORDER:
            queue = self._queues[cls]
            if queue:
                return queue.popleft()
        return None

    def shed_one(self, at_or_below: SloClass) -> Optional[Job]:
        """Remove the newest job of the *lowest* populated class.

        Only classes at or below ``at_or_below`` priority (numerically
        >=) are eligible, so a sweep targeting BATCH never touches LIVE.
        """
        for cls in SHED_ORDER:
            if cls < at_or_below:
                continue
            queue = self._queues[cls]
            if queue:
                return queue.pop()
        return None

    def drain(self) -> List[Job]:
        """Remove and return everything, priority-then-FIFO ordered."""
        drained: List[Job] = []
        for cls in CLASS_ORDER:
            queue = self._queues[cls]
            drained.extend(queue)
            queue.clear()
        return drained

    def depth(self, cls: SloClass) -> int:
        return len(self._queues[cls])

    def depths(self) -> Dict[SloClass, int]:
        return {cls: len(self._queues[cls]) for cls in CLASS_ORDER}

    def __len__(self) -> int:
        return sum(len(q) for q in self._queues.values())

    def __bool__(self) -> bool:
        return any(self._queues[cls] for cls in CLASS_ORDER)
