"""Admission control: SLO classes shed in priority order under overload.

Section 2.2's global scheduler does not reject blindly when the fleet is
hot -- it protects the traffic that cannot wait.  The controller models
that as per-class *load-factor ceilings*: a job is admitted while the
fleet's load factor (work outstanding per available slot) is below its
class's ceiling.  Batch has the lowest ceiling, live the highest, so as
overload builds the classes shed strictly in order: batch first, then
upload, and live only under extreme pressure.

Two verbs cover the two ways overload arrives:

* :meth:`AdmissionController.decide` gates each *new* submission (and
  each retry re-entering the queue) against the current load factor.
* :meth:`AdmissionController.shed_excess` is the sweep the control
  plane runs after a *capacity loss* (a regional outage): already-queued
  low-priority jobs are shed until the survivors fit under the ceilings
  again, freeing the surviving regions for the traffic that matters.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, List, Optional

from repro.control.jobs import Job, SHED_ORDER, SloClass
from repro.control.queue import ClassQueue


@dataclass(frozen=True)
class AdmissionConfig:
    """Per-class load-factor ceilings (outstanding work per slot).

    A load factor of 1.0 means exactly one outstanding job per slot;
    the defaults admit live traffic up to 8x oversubscription while
    batch sheds as soon as the fleet runs ~1.5x hot.
    """

    live_ceiling: float = 8.0
    upload_ceiling: float = 4.0
    batch_ceiling: float = 1.5

    def __post_init__(self) -> None:
        if not 0 < self.batch_ceiling <= self.upload_ceiling <= self.live_ceiling:
            raise ValueError(
                "ceilings must satisfy 0 < batch <= upload <= live "
                "(shedding must be class-ordered)"
            )

    def ceiling_for(self, cls: SloClass) -> float:
        if cls is SloClass.LIVE:
            return self.live_ceiling
        if cls is SloClass.UPLOAD:
            return self.upload_ceiling
        return self.batch_ceiling


class AdmissionController:
    """Stateless decisions plus per-class accounting."""

    def __init__(self, config: Optional[AdmissionConfig] = None) -> None:
        self.config = config or AdmissionConfig()
        self.admitted = {cls: 0 for cls in SloClass}
        self.shed = {cls: 0 for cls in SloClass}

    @staticmethod
    def load_factor(outstanding: int, capacity: int) -> float:
        """Outstanding jobs per available slot; +inf with no capacity."""
        if capacity <= 0:
            return float("inf")
        return outstanding / capacity

    def decide(self, job: Job, load_factor: float) -> bool:
        """True = admit, False = shed.  Pure in (class, load factor)."""
        if load_factor < self.config.ceiling_for(job.slo_class):
            self.admitted[job.slo_class] += 1
            return True
        self.shed[job.slo_class] += 1
        return False

    def shed_excess(
        self,
        queues: List[ClassQueue],
        outstanding: Callable[[], int],
        capacity: int,
    ) -> List[Job]:
        """Shed queued low-priority jobs until the load fits again.

        ``queues`` are visited round-robin in the given (deterministic)
        order; within the sweep, each class is fully shed across all
        queues before the next-higher class is touched, so the result is
        class-ordered no matter how jobs were distributed.  Returns the
        shed jobs; the caller owns the state transitions.
        """
        shed: List[Job] = []
        if capacity <= 0:
            # Total blackout: shedding everything would punish jobs that
            # merely need to wait for a region to return.  Park instead.
            return shed
        for cls in SHED_ORDER:
            ceiling = self.config.ceiling_for(cls)
            progress = True
            while self.load_factor(outstanding(), capacity) >= ceiling and progress:
                progress = False
                for queue in queues:
                    if self.load_factor(outstanding(), capacity) < ceiling:
                        break
                    job = queue.shed_one(at_or_below=cls)
                    if job is not None:
                        self.shed[job.slo_class] += 1
                        shed.append(job)
                        progress = True
        return shed
