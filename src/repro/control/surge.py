"""Demand-disturbance scenarios: popularity surge and live mix shift.

Two variations on the platform day whose stressor is the *workload*
rather than the infrastructure (no outage):

* ``popularity-surge`` -- a viral window mid-day where upload and batch
  arrival rates triple (a premiere driving ingest plus the
  popularity-driven re-encode wave behind it), then fall back;
* ``live-mix-shift`` -- from mid-day on, the class mix tilts for the
  rest of the day: live arrivals jump 2.5x while uploads dip (a global
  live event), exercising strict-priority scheduling and the capacity
  autoscaler under a mix the sites were not sized for.

Both run the full control plane -- admission, retries, spill routing,
autoscaling -- over :class:`~repro.workloads.events.EventedDayWorkload`
demand, and score the same per-class SLO fields as the flagship
``platform-day`` scorecard plus the event-window accounting.  As with
every catalog scenario the run is a pure function of ``(config, seed)``:
static :func:`scorecard_keys`, byte-identical scorecards at any
``--jobs``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, List, Tuple

from repro.cluster.autoscale import CapacityAutoscaleConfig
from repro.control.jobs import JobRequest, RetryPolicy, SloClass
from repro.control.plane import ControlPlane, ModeledExecutor, make_sites
from repro.control.scenario import DEFAULT_SITES
from repro.sim.engine import Simulator
from repro.sim.rng import SeedLike
from repro.workloads.events import EventedDayWorkload, MixShiftSpec, SurgeSpec
from repro.workloads.platform import PlatformDayConfig

#: Bump when the scorecard's key set or semantics change.
SCORECARD_VERSION = 1

#: The two registered disturbance scenarios.
SCENARIOS: Tuple[str, ...] = ("popularity-surge", "live-mix-shift")

_PER_CLASS_FIELDS = (
    "submitted", "done", "failed", "shed", "retries",
    "completion_rate", "shed_rate", "queue_p50", "queue_p90", "queue_p99",
)
_GLOBAL_FIELDS = (
    "schema_version", "scenario",
    "event.start", "event.end", "event.jobs_in_window",
    "jobs.submitted", "jobs.done", "jobs.failed", "jobs.shed",
    "failover.routed", "spill.routed",
    "autoscale.actions", "autoscale.peak_slots",
    "dead_letter.count",
    "conservation.ok",
)


def scorecard_keys() -> Tuple[str, ...]:
    """The exact, sorted key set every disturbance scorecard carries."""
    keys = list(_GLOBAL_FIELDS)
    for cls in SloClass:
        keys.extend(f"class.{cls.label}.{f}" for f in _PER_CLASS_FIELDS)
    return tuple(sorted(keys))


@dataclass(frozen=True)
class SurgeMixConfig:
    """One demand-disturbance run, fully specified."""

    scenario: str = "popularity-surge"
    day_seconds: float = 3600.0
    failure_rate: float = 0.02
    autoscale_interval_seconds: float = 60.0
    max_slots_factor: int = 2
    surge: SurgeSpec = SurgeSpec()
    mix_shift: MixShiftSpec = MixShiftSpec()
    site_specs: Tuple[Tuple[str, str, Tuple[float, float], int], ...] = (
        DEFAULT_SITES
    )

    def __post_init__(self) -> None:
        if self.scenario not in SCENARIOS:
            raise ValueError(
                f"unknown scenario {self.scenario!r}; known: {SCENARIOS}"
            )
        if self.day_seconds <= 0:
            raise ValueError("day_seconds must be positive")

    def workload(self, seed: SeedLike) -> EventedDayWorkload:
        config = PlatformDayConfig(day_seconds=self.day_seconds)
        if self.scenario == "popularity-surge":
            return EventedDayWorkload(config, seed=seed, surge=self.surge)
        return EventedDayWorkload(config, seed=seed, mix_shift=self.mix_shift)

    def event_window(self) -> Tuple[float, float]:
        """The disturbance's [start, end) in sim seconds."""
        if self.scenario == "popularity-surge":
            start = self.surge.start_frac * self.day_seconds
            return (
                start,
                start + self.surge.duration_frac * self.day_seconds,
            )
        return (self.mix_shift.start_frac * self.day_seconds, self.day_seconds)


@dataclass
class SurgeMixResult:
    """Everything a caller might inspect after the day drains."""

    config: SurgeMixConfig
    plane: ControlPlane
    requests: List[JobRequest]
    end_time: float
    scorecard: Dict[str, Any]


def build_scorecard(
    plane: ControlPlane,
    config: SurgeMixConfig,
    jobs_in_window: int,
) -> Dict[str, Any]:
    """The flat disturbance scorecard, keys sorted, values rounded."""
    card: Dict[str, Any] = {"schema_version": SCORECARD_VERSION}
    counts = plane.class_counts()
    totals = {"submitted": 0, "done": 0, "failed": 0, "shed": 0}
    for cls in SloClass:
        bucket = counts[cls.label]
        submitted = bucket["submitted"]
        for key in totals:
            totals[key] += bucket[key]
        hist = plane.queue_wait[cls]
        prefix = f"class.{cls.label}"
        card[f"{prefix}.submitted"] = submitted
        card[f"{prefix}.done"] = bucket["done"]
        card[f"{prefix}.failed"] = bucket["failed"]
        card[f"{prefix}.shed"] = bucket["shed"]
        card[f"{prefix}.retries"] = bucket["retries"]
        card[f"{prefix}.completion_rate"] = round(
            bucket["done"] / submitted if submitted else 0.0, 6
        )
        card[f"{prefix}.shed_rate"] = round(
            bucket["shed"] / submitted if submitted else 0.0, 6
        )
        card[f"{prefix}.queue_p50"] = round(hist.quantile(0.50), 9)
        card[f"{prefix}.queue_p90"] = round(hist.quantile(0.90), 9)
        card[f"{prefix}.queue_p99"] = round(hist.quantile(0.99), 9)
    start, end = config.event_window()
    card["scenario"] = config.scenario
    card["event.start"] = round(start, 9)
    card["event.end"] = round(end, 9)
    card["event.jobs_in_window"] = jobs_in_window
    card["jobs.submitted"] = totals["submitted"]
    card["jobs.done"] = totals["done"]
    card["jobs.failed"] = totals["failed"]
    card["jobs.shed"] = totals["shed"]
    card["failover.routed"] = plane.router.failover_routed
    card["spill.routed"] = plane.router.spill_routed
    autoscaler = plane.autoscaler
    card["autoscale.actions"] = 0 if autoscaler is None else autoscaler.actions
    card["autoscale.peak_slots"] = plane.peak_capacity
    card["dead_letter.count"] = len(plane.dead_letters)
    card["conservation.ok"] = bool(plane.ledger.conservation_report()["ok"])
    if tuple(sorted(card)) != scorecard_keys():
        raise RuntimeError("scorecard keys drifted from scorecard_keys()")
    return dict(sorted(card.items()))


def run_surge_mix(
    config: SurgeMixConfig, seed: SeedLike = 0
) -> SurgeMixResult:
    """Simulate one disturbance day end to end and score it.

    Arrivals stop at the day boundary; the simulation drains the
    backlog past it so every job is terminal at return.
    """
    sim = Simulator()
    sites = make_sites(
        config.site_specs, max_slots_factor=config.max_slots_factor
    )
    plane = ControlPlane(
        sim,
        sites,
        retry=RetryPolicy(),
        autoscale=CapacityAutoscaleConfig(),
        autoscale_interval_seconds=config.autoscale_interval_seconds,
        executor=ModeledExecutor(
            sim, seed=seed, failure_rate=config.failure_rate
        ),
        seed=seed,
    )
    requests = config.workload(seed).requests(until=config.day_seconds)
    for request in requests:
        sim.call_at(
            request.arrival_time,
            lambda r=request: plane.submit(r),
        )
    plane.start_autoscaler(until=config.day_seconds)
    sim.run()
    start, end = config.event_window()
    jobs_in_window = sum(
        1 for request in requests if start <= request.arrival_time < end
    )
    return SurgeMixResult(
        config=config,
        plane=plane,
        requests=requests,
        end_time=sim.now,
        scorecard=build_scorecard(plane, config, jobs_in_window),
    )
