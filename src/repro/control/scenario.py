"""The flagship "global platform day" scenario and its SLO scorecard.

One simulated day of diurnal upload + live + batch traffic over a
four-region fleet; mid-day, one region drops out for a fifth of the day.
The control plane drains the lost region to the survivors, admission
sheds class-ordered load while capacity is short, the capacity
autoscaler grows the surviving sites, and the region rejoins.  The
output is a flat, deterministic **SLO scorecard**: per-class completion
and shed rates, retry counts, queue-wait percentiles, failover/spill
accounting, autoscale activity, and the conservation verdict (every
submitted job in exactly one terminal state).

The scorecard's key set is static (:func:`scorecard_keys`), which is
what the CI smoke job checks: a refactor that silently drops a metric
fails the key diff before anyone reads a dashboard.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, List, Tuple

from repro.cluster.autoscale import CapacityAutoscaleConfig
from repro.control.jobs import JobRequest, RetryPolicy, SloClass
from repro.control.plane import ControlPlane, ModeledExecutor, make_sites
from repro.sim.engine import Simulator
from repro.sim.rng import SeedLike
from repro.workloads.platform import PlatformDayConfig, PlatformDayWorkload

#: Bump when the scorecard's key set or semantics change.
SCORECARD_VERSION = 1

#: The default fleet: four regions, 180 slots total, sized so the
#: diurnal peak (~166 slot-equivalents) fits with a little margin --
#: the healthy fleet sheds nothing -- while the loss of us-east
#: (64 slots) leaves the survivors genuinely short and forces
#: class-ordered shedding.
DEFAULT_SITES: Tuple[Tuple[str, str, Tuple[float, float], int], ...] = (
    ("us-west", "us", (0.0, 0.0), 44),
    ("us-east", "us", (40.0, 0.0), 64),
    ("eu-west", "eu", (90.0, 10.0), 40),
    ("ap-south", "apac", (160.0, -10.0), 32),
)

_PER_CLASS_FIELDS = (
    "submitted", "done", "failed", "shed", "retries",
    "completion_rate", "shed_rate", "queue_p50", "queue_p90", "queue_p99",
)
_GLOBAL_FIELDS = (
    "schema_version",
    "jobs.submitted", "jobs.done", "jobs.failed", "jobs.shed",
    "failover.routed", "failover.drained_queued", "failover.drained_running",
    "spill.routed",
    "autoscale.actions", "autoscale.peak_slots",
    "outages.count", "dead_letter.count",
    "conservation.ok",
)


def scorecard_keys() -> Tuple[str, ...]:
    """The exact, sorted key set every scorecard carries."""
    keys = list(_GLOBAL_FIELDS)
    for cls in SloClass:
        keys.extend(f"class.{cls.label}.{f}" for f in _PER_CLASS_FIELDS)
    return tuple(sorted(keys))


@dataclass(frozen=True)
class ScenarioConfig:
    """One global-platform-day run, fully specified."""

    #: Length of the (compressed) day; rates are per second regardless.
    day_seconds: float = 3600.0
    #: Whether the mid-day regional outage happens at all (the control
    #: arm of the experiment runs with it off).
    outage: bool = True
    outage_site: str = "us-east"
    outage_start_frac: float = 0.40
    outage_duration_frac: float = 0.20
    #: Per-attempt execution fault probability (drives retries).
    failure_rate: float = 0.02
    autoscale: bool = True
    autoscale_interval_seconds: float = 60.0
    #: Autoscale ceiling as a multiple of each site's base slots.
    max_slots_factor: int = 2
    site_specs: Tuple[Tuple[str, str, Tuple[float, float], int], ...] = (
        DEFAULT_SITES
    )

    def __post_init__(self) -> None:
        if self.day_seconds <= 0:
            raise ValueError("day_seconds must be positive")
        if not 0.0 <= self.outage_start_frac < 1.0:
            raise ValueError("outage_start_frac must be in [0, 1)")
        if self.outage_duration_frac <= 0:
            raise ValueError("outage_duration_frac must be positive")
        names = [name for name, _, _, _ in self.site_specs]
        if self.outage and self.outage_site not in names:
            raise ValueError(
                f"outage_site {self.outage_site!r} not in {names}"
            )

    def workload_config(self) -> PlatformDayConfig:
        return PlatformDayConfig(day_seconds=self.day_seconds)


@dataclass
class ScenarioResult:
    """Everything a caller might inspect after the day drains."""

    config: ScenarioConfig
    plane: ControlPlane
    requests: List[JobRequest]
    end_time: float
    scorecard: Dict[str, Any]


def build_scorecard(plane: ControlPlane) -> Dict[str, Any]:
    """The flat SLO scorecard, keys sorted, values rounded."""
    card: Dict[str, Any] = {"schema_version": SCORECARD_VERSION}
    counts = plane.class_counts()
    totals = {"submitted": 0, "done": 0, "failed": 0, "shed": 0}
    for cls in SloClass:
        bucket = counts[cls.label]
        submitted = bucket["submitted"]
        for key in totals:
            totals[key] += bucket[key]
        hist = plane.queue_wait[cls]
        prefix = f"class.{cls.label}"
        card[f"{prefix}.submitted"] = submitted
        card[f"{prefix}.done"] = bucket["done"]
        card[f"{prefix}.failed"] = bucket["failed"]
        card[f"{prefix}.shed"] = bucket["shed"]
        card[f"{prefix}.retries"] = bucket["retries"]
        card[f"{prefix}.completion_rate"] = round(
            bucket["done"] / submitted if submitted else 0.0, 6
        )
        card[f"{prefix}.shed_rate"] = round(
            bucket["shed"] / submitted if submitted else 0.0, 6
        )
        card[f"{prefix}.queue_p50"] = round(hist.quantile(0.50), 9)
        card[f"{prefix}.queue_p90"] = round(hist.quantile(0.90), 9)
        card[f"{prefix}.queue_p99"] = round(hist.quantile(0.99), 9)
    card["jobs.submitted"] = totals["submitted"]
    card["jobs.done"] = totals["done"]
    card["jobs.failed"] = totals["failed"]
    card["jobs.shed"] = totals["shed"]
    card["failover.routed"] = plane.router.failover_routed
    card["failover.drained_queued"] = plane.drained_queued
    card["failover.drained_running"] = plane.drained_running
    card["spill.routed"] = plane.router.spill_routed
    autoscaler = plane.autoscaler
    card["autoscale.actions"] = 0 if autoscaler is None else autoscaler.actions
    card["autoscale.peak_slots"] = plane.peak_capacity
    card["outages.count"] = plane.outages_started
    card["dead_letter.count"] = len(plane.dead_letters)
    card["conservation.ok"] = bool(plane.ledger.conservation_report()["ok"])
    if tuple(sorted(card)) != scorecard_keys():
        raise RuntimeError("scorecard keys drifted from scorecard_keys()")
    return dict(sorted(card.items()))


def run_global_platform_day(
    config: ScenarioConfig, seed: SeedLike = 0
) -> ScenarioResult:
    """Simulate one platform day end to end and score it.

    The simulation runs past ``day_seconds`` until the event queue
    drains -- arrivals stop at the day boundary, but the backlog's tail
    (including retry backoffs) is allowed to finish, so the conservation
    invariant is checkable: every job is terminal at return.
    """
    sim = Simulator()
    sites = make_sites(
        config.site_specs, max_slots_factor=config.max_slots_factor
    )
    plane = ControlPlane(
        sim,
        sites,
        retry=RetryPolicy(),
        autoscale=CapacityAutoscaleConfig() if config.autoscale else None,
        autoscale_interval_seconds=config.autoscale_interval_seconds,
        executor=ModeledExecutor(
            sim, seed=seed, failure_rate=config.failure_rate
        ),
        seed=seed,
    )
    workload = PlatformDayWorkload(config.workload_config(), seed=seed)
    requests = workload.requests(until=config.day_seconds)
    for request in requests:
        sim.call_at(
            request.arrival_time,
            lambda r=request: plane.submit(r),
        )
    if config.outage:
        plane.schedule_outage(
            config.outage_site,
            at=config.outage_start_frac * config.day_seconds,
            duration_seconds=config.outage_duration_frac * config.day_seconds,
        )
    if config.autoscale:
        plane.start_autoscaler(until=config.day_seconds)
    sim.run()
    return ScenarioResult(
        config=config,
        plane=plane,
        requests=requests,
        end_time=sim.now,
        scorecard=build_scorecard(plane),
    )
