"""The control plane: the service tying the fleet substrate together.

One :class:`ControlPlane` instance is the robustness layer the paper's
deployment story implies above the per-cluster machinery: it owns the
durable job ledger, runs admission control, routes admitted jobs across
regions, dispatches them onto per-site execution slots, retries failures
with deterministic backoff, dead-letters jobs that exhaust their budget,
sheds class-ordered load after capacity losses, and drains a downed
region's queued and in-flight work to the survivors.

Execution is pluggable: the :class:`ModeledExecutor` serves fleet-scale
scenarios (a slot is an abstract VCU-worker share, service time comes
from the job request), while :class:`ClusterExecutor` drives a real
:class:`~repro.cluster.cluster.TranscodeCluster` so the control plane's
lifecycle sits on genuine step-graph execution in integration tests.

Determinism contract: all randomness flows through one stream split
from the plane's seed; sites are visited in name order everywhere; and
backoff is a pure function of the attempt number -- two same-seed runs
produce byte-identical ledgers and scorecards.
"""

from __future__ import annotations

from typing import (
    TYPE_CHECKING,
    Callable,
    Dict,
    Generator,
    List,
    Optional,
    Protocol,
    Sequence,
    Tuple,
)

from repro import obs
from repro.cluster.autoscale import CapacityAutoscaleConfig, CapacityAutoscaler
from repro.cluster.regions import ClusterSite
from repro.control.admission import AdmissionConfig, AdmissionController
from repro.control.failover import FailoverRouter, SiteRuntime
from repro.control.jobs import (
    Job,
    JobRequest,
    JobState,
    RetryPolicy,
    SloClass,
)
from repro.control.queue import ClassQueue, DeadLetterLedger, JobLedger
from repro.obs.registry import Histogram
from repro.sim.engine import Simulator, Timer
from repro.sim.rng import SeedLike, split_rng

if TYPE_CHECKING:  # deferred: only needed for the cluster-backed executor
    from repro.cluster.cluster import TranscodeCluster
    from repro.transcode.pipeline import StepGraph

#: Queue-wait histogram bounds (seconds): sub-second dispatch up to the
#: hours-long waits a day-scale outage can produce.
QUEUE_WAIT_BOUNDS: Tuple[float, ...] = (
    0.5, 1.0, 2.0, 5.0, 10.0, 20.0, 40.0, 80.0, 160.0, 320.0, 640.0,
    1280.0, 2560.0, 5120.0,
)

#: A completion callback: (job, ok).
DoneFn = Callable[[Job, bool], None]


class Executor(Protocol):
    """What the control plane needs from an execution backend.

    ``start`` returns a cancellable handle when the backend supports
    mid-flight cancellation (the modeled executor) and ``None`` when it
    does not (the cluster-backed executor, whose graphs must drain).
    """

    def start(
        self, job: Job, site: SiteRuntime, on_done: DoneFn
    ) -> Optional[Timer]:
        ...


class ModeledExecutor:
    """Executes jobs as timed slot occupancy with a failure draw.

    The attempt's fate is drawn *at dispatch* (not completion) so that a
    cancelled completion -- a site dying mid-flight -- consumes exactly
    the same RNG stream as an undisturbed run: determinism survives
    outage timing changes.
    """

    def __init__(
        self,
        sim: Simulator,
        seed: SeedLike = 0,
        failure_rate: float = 0.0,
        speed: float = 1.0,
    ) -> None:
        if not 0.0 <= failure_rate < 1.0:
            raise ValueError("failure_rate must be in [0, 1)")
        if speed <= 0:
            raise ValueError("speed must be positive")
        self.sim = sim
        self.failure_rate = failure_rate
        self.speed = speed
        self._rng = split_rng(seed, "control/executor")

    def start(self, job: Job, site: SiteRuntime, on_done: DoneFn) -> Timer:
        ok = True
        if self.failure_rate > 0.0:
            ok = float(self._rng.random()) >= self.failure_rate
        duration = job.request.service_seconds / self.speed
        return self.sim.call_in(duration, lambda: on_done(job, ok))


class ClusterExecutor:
    """Runs control-plane jobs as real step graphs on one cluster.

    Jobs dispatched here cannot be killed mid-flight (there is no
    per-graph cancel), so :meth:`start` returns ``None`` and an outage
    drain lets in-flight cluster jobs finish naturally -- matching how a
    real drain waits out work already on devices.
    """

    def __init__(
        self,
        cluster: "TranscodeCluster",
        graph_builder: Optional[Callable[[Job], "StepGraph"]] = None,
    ) -> None:
        self.cluster = cluster
        self._builder = graph_builder or default_graph_builder
        self._inflight: Dict[int, Tuple[Job, DoneFn]] = {}
        cluster.on_graph_done = self._graph_done

    def start(self, job: Job, site: SiteRuntime, on_done: DoneFn) -> None:
        graph = self._builder(job)
        self._inflight[id(graph)] = (job, on_done)
        self.cluster.submit(graph)
        return None

    def _graph_done(self, graph: "StepGraph") -> None:
        entry = self._inflight.pop(id(graph), None)
        if entry is None:
            return  # a graph submitted outside the control plane
        job, on_done = entry
        on_done(job, True)


def default_graph_builder(job: Job) -> "StepGraph":
    """A small deterministic upload graph sized by the job's demand."""
    from repro.transcode.modes import WorkloadClass
    from repro.transcode.pipeline import build_transcode_graph
    from repro.video.frame import resolution

    # ~1 frame of 480p work per modelled service second, floor of one GOP.
    frames = max(30, int(job.request.service_seconds) * 30)
    return build_transcode_graph(
        video_id=job.job_id,
        source=resolution("480p"),
        total_frames=frames,
        fps=30.0,
        workload=WorkloadClass.UPLOAD,
    )


class ControlPlane:
    """Admission, routing, dispatch, retry, shedding, and failover."""

    def __init__(
        self,
        sim: Simulator,
        sites: Sequence[SiteRuntime],
        admission: Optional[AdmissionConfig] = None,
        retry: Optional[RetryPolicy] = None,
        autoscale: Optional[CapacityAutoscaleConfig] = None,
        autoscale_interval_seconds: float = 60.0,
        executor: Optional[Executor] = None,
        seed: SeedLike = 0,
    ) -> None:
        self.sim = sim
        self.router = FailoverRouter(sites)
        self.admission = AdmissionController(admission)
        self.retry = retry or RetryPolicy()
        self.ledger = JobLedger()
        self.dead_letters = DeadLetterLedger()
        self.executor: Executor = (
            executor if executor is not None else ModeledExecutor(sim, seed=seed)
        )
        self._autoscaler = (
            CapacityAutoscaler(autoscale) if autoscale is not None else None
        )
        self._autoscale_interval = autoscale_interval_seconds
        #: Jobs admitted but unroutable (every site down): held, not lost.
        self.parked = ClassQueue()
        #: job_id -> cancellable completion handle (modeled executor).
        self._handles: Dict[str, Optional[Timer]] = {}
        self.retries = {cls: 0 for cls in SloClass}
        self.queue_wait = {
            cls: Histogram(f"control.queue_wait.{cls.label}", QUEUE_WAIT_BOUNDS)
            for cls in SloClass
        }
        self.drained_queued = 0
        self.drained_running = 0
        self.outages_started = 0
        self.peak_capacity = self.router.total_capacity()

    # ------------------------------------------------------------------ #
    # Accounting helpers

    def _count(self, name: str, amount: float = 1.0) -> None:
        hub = obs.active()
        if hub is not None:
            hub.count(name, amount)

    def _waiting_total(self) -> int:
        return len(self.parked) + sum(
            len(site.queue) for site in self.router.sites if site.up
        )

    def _running_total(self) -> int:
        return sum(len(site.running) for site in self.router.sites)

    def outstanding(self) -> int:
        """Admission's numerator: everything competing for slots now."""
        return self._waiting_total() + self._running_total()

    def load_factor(self) -> float:
        return self.admission.load_factor(
            self.outstanding(), self.router.total_capacity()
        )

    # ------------------------------------------------------------------ #
    # Submission and admission

    def submit(self, request: JobRequest) -> Job:
        """Register one arriving job and push it through admission."""
        job = Job(request)
        self.ledger.register(job)
        self._count(f"control.submitted.{job.slo_class.label}")
        self._try_admit(job, reason="arrival")
        return job

    def _try_admit(self, job: Job, reason: str) -> None:
        """QUEUED -> ADMITTED (routed) | SHED | parked (no capacity)."""
        capacity = self.router.total_capacity()
        if capacity <= 0:
            # Total blackout: hold the job rather than shed it; a region
            # coming back will drain the parking queue.
            self.parked.push(job)
            return
        load = self.admission.load_factor(self.outstanding(), capacity)
        if not self.admission.decide(job, load):
            self._shed(job, reason=f"overload:{reason}")
            return
        site = self.router.choose(job.request.origin)
        if site is None:  # pragma: no cover - capacity>0 implies a site
            self.parked.push(job)
            return
        self.ledger.transition(job, JobState.ADMITTED, self.sim.now, reason)
        job.site = site.name
        site.queue.push(job)
        self._count(f"control.admitted.{job.slo_class.label}")
        self._dispatch(site)

    def _shed(self, job: Job, reason: str) -> None:
        self.ledger.transition(job, JobState.SHED, self.sim.now, reason)
        job.site = None
        self._count(f"control.shed.{job.slo_class.label}")
        hub = obs.active()
        if hub is not None:
            hub.emit(
                "shed", job.job_id, t0=self.sim.now,
                attrs={"class": job.slo_class.label, "reason": reason},
            )

    def _admit_parked(self) -> None:
        """Re-run admission over the parking queue (capacity returned)."""
        while self.router.total_capacity() > 0:
            job = self.parked.pop()
            if job is None:
                return
            self._try_admit(job, reason="unparked")

    # ------------------------------------------------------------------ #
    # Dispatch and completion

    def _dispatch(self, site: SiteRuntime) -> None:
        while site.up and site.headroom() > 0:
            job = site.queue.pop()
            if job is None:
                return
            self.ledger.transition(job, JobState.RUNNING, self.sim.now, "dispatch")
            job.attempts += 1
            site.running[job.job_id] = job
            site.dispatched_total += 1
            self._handles[job.job_id] = self.executor.start(
                job, site, self._on_done
            )

    def _dispatch_all(self) -> None:
        for site in self.router.sites:  # name-sorted
            if site.up:
                self._dispatch(site)

    def _on_done(self, job: Job, ok: bool) -> None:
        self._handles.pop(job.job_id, None)
        site = self.router.site(job.site) if job.site is not None else None
        if site is not None:
            site.running.pop(job.job_id, None)
        if ok:
            self.ledger.transition(job, JobState.DONE, self.sim.now, "complete")
            self.queue_wait[job.slo_class].observe(job.queue_seconds)
            self._count(f"control.done.{job.slo_class.label}")
            hub = obs.active()
            if hub is not None:
                hub.observe(
                    f"control.queue_wait.{job.slo_class.label}",
                    job.queue_seconds, bounds=QUEUE_WAIT_BOUNDS,
                )
        else:
            self._fail_attempt(job, reason="execution_fault")
        if site is not None and site.up:
            self._dispatch(site)
        self._admit_parked()

    def _fail_attempt(self, job: Job, reason: str) -> None:
        """RUNNING -> RETRY_WAIT (backoff) or FAILED (budget spent)."""
        if self.retry.exhausted(job.attempts):
            self.ledger.transition(job, JobState.FAILED, self.sim.now, reason)
            self.dead_letters.record(job, self.sim.now, reason)
            job.site = None
            self._count(f"control.failed.{job.slo_class.label}")
            return
        self.ledger.transition(job, JobState.RETRY_WAIT, self.sim.now, reason)
        job.site = None
        self.retries[job.slo_class] += 1
        self._count(f"control.retries.{job.slo_class.label}")
        delay = self.retry.delay_for(job.attempts)
        self.sim.call_in(delay, lambda: self._retry_requeue(job))

    def _retry_requeue(self, job: Job) -> None:
        self.ledger.transition(job, JobState.QUEUED, self.sim.now, "backoff_done")
        self._try_admit(job, reason="retry")

    # ------------------------------------------------------------------ #
    # Regional outage / failover

    def schedule_outage(
        self, site_name: str, at: float, duration_seconds: float
    ) -> None:
        """Arrange a regional outage: down at ``at``, back after ``duration``."""
        self.router.site(site_name)  # validate early
        if duration_seconds <= 0:
            raise ValueError("outage duration must be positive")
        self.sim.call_at(at, lambda: self.site_down(site_name))
        self.sim.call_at(
            at + duration_seconds, lambda: self.site_up(site_name)
        )

    def site_down(self, site_name: str) -> None:
        """Regional outage: drain the site to survivors, shed the excess."""
        self.outages_started += 1
        queued, running = self.router.mark_down(site_name)
        hub = obs.active()
        if hub is not None:
            hub.count("control.outages")
            hub.emit(
                "outage", site_name, t0=self.sim.now,
                attrs={
                    "queued_drained": len(queued),
                    "running_drained": len(running),
                },
            )
        # In-flight work dies with the region: cancel the modelled
        # completions and send each job through the retry path (the
        # attempt was genuinely consumed).  Cluster-backed jobs have no
        # cancel handle and simply finish on the surviving devices.
        for job in running:
            handle = self._handles.pop(job.job_id, None)
            if handle is None:
                site = self.router.site(site_name)
                site.running[job.job_id] = job  # still genuinely in flight
                continue
            handle.cancel()
            self.drained_running += 1
            self._fail_attempt(job, reason=f"outage:{site_name}")
        # Queued-but-undispatched jobs lose nothing but their place:
        # back to QUEUED, then re-admitted under the survivors' load.
        for job in queued:
            self.drained_queued += 1
            self.ledger.transition(
                job, JobState.QUEUED, self.sim.now, f"drain:{site_name}"
            )
            job.site = None
            self._try_admit(job, reason="failover")
        # The capacity just vanished; shed whatever no longer fits,
        # lowest class first.
        self._overload_sweep(reason=f"outage:{site_name}")

    def site_up(self, site_name: str) -> None:
        site = self.router.mark_up(site_name)
        hub = obs.active()
        if hub is not None:
            hub.count("control.recoveries")
            hub.emit("recovery", site_name, t0=self.sim.now)
        self._note_capacity()
        self._admit_parked()
        self._dispatch(site)

    def _overload_sweep(self, reason: str) -> None:
        queues = [self.parked] + [
            site.queue for site in self.router.sites if site.up
        ]
        shed = self.admission.shed_excess(
            queues, self.outstanding, self.router.total_capacity()
        )
        for job in shed:
            self._shed(job, reason=reason)

    # ------------------------------------------------------------------ #
    # Autoscaling

    def start_autoscaler(self, until: float) -> None:
        """Run periodic capacity ticks up to the ``until`` horizon.

        Horizon-bounded (like :class:`~repro.failures.management.
        FailureSweeper`) so a drained run's event queue actually empties.
        """
        autoscaler = self._autoscaler
        if autoscaler is None:
            raise RuntimeError("plane built without an autoscale config")
        self.sim.process(
            self._autoscale_loop(autoscaler, until), name="control:autoscale"
        )

    def _autoscale_loop(
        self, autoscaler: CapacityAutoscaler, until: float
    ) -> Generator[float, None, None]:
        while self.sim.now + self._autoscale_interval <= until:
            yield self._autoscale_interval
            for site in self.router.sites:  # name-sorted
                if not site.up:
                    continue
                new_slots = autoscaler.evaluate(
                    site.name,
                    waiting=len(site.queue),
                    running=len(site.running),
                    slots=site.slots,
                    min_slots=site.min_slots,
                    max_slots=site.max_slots,
                    at=self.sim.now,
                )
                if new_slots != site.slots:
                    site.slots = new_slots
                    self._count("control.autoscale_actions")
                    self._dispatch(site)
            self._note_capacity()

    @property
    def autoscaler(self) -> Optional[CapacityAutoscaler]:
        return self._autoscaler

    # ------------------------------------------------------------------ #
    # Introspection

    def _note_capacity(self) -> None:
        self.peak_capacity = max(self.peak_capacity, self.router.total_capacity())

    def class_counts(self) -> Dict[str, Dict[str, int]]:
        """Per-class terminal/total accounting straight off the ledger."""
        out: Dict[str, Dict[str, int]] = {}
        for cls in SloClass:
            out[cls.label] = {
                "submitted": 0, "done": 0, "failed": 0, "shed": 0,
                "retries": self.retries[cls],
            }
        for job in self.ledger.jobs.values():
            bucket = out[job.slo_class.label]
            bucket["submitted"] += 1
            if job.state is JobState.DONE:
                bucket["done"] += 1
            elif job.state is JobState.FAILED:
                bucket["failed"] += 1
            elif job.state is JobState.SHED:
                bucket["shed"] += 1
        return out


def make_sites(
    specs: Sequence[Tuple[str, str, Tuple[float, float], int]],
    max_slots_factor: int = 4,
    min_slots: int = 1,
) -> List[SiteRuntime]:
    """Build site runtimes from (name, region, location, slots) tuples."""
    return [
        SiteRuntime(
            site=ClusterSite(name, region, location, capacity=slots),
            slots=slots,
            min_slots=min_slots,
            max_slots=slots * max_slots_factor,
        )
        for name, region, location, slots in specs
    ]
