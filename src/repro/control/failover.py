"""Multi-region routing with failover: sites, selection, and drains.

Builds the stateful layer the control plane needs on top of the
geometry in :mod:`repro.cluster.regions`: each
:class:`~repro.cluster.regions.ClusterSite` is wrapped in a
:class:`SiteRuntime` carrying the *dynamic* picture -- autoscaled slot
count, the per-site dispatch queue, and the running set.

Routing preference mirrors the paper's Section 2.2 behaviour: a job
lands on the nearest *up* site with free slots; with no free slot
anywhere it queues at the least-loaded up site (ties broken by
distance, then name -- always deterministic).  When the nearest site of
all is down and the job lands elsewhere, that is a **failover** (counted
separately from ordinary capacity spills).

:meth:`FailoverRouter.mark_down` is the regional-outage entry point: it
flips the site down and hands back both its queued and its in-flight
jobs so the control plane can drain them to surviving regions under the
same admission rules as fresh traffic.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.cluster.regions import ClusterSite, distance
from repro.control.jobs import Job
from repro.control.queue import ClassQueue


@dataclass
class SiteRuntime:
    """One site's dynamic state as the control plane sees it."""

    site: ClusterSite
    #: Current dispatch slots (autoscaling moves this between min/max).
    slots: int = 0
    min_slots: int = 1
    max_slots: int = 0
    queue: ClassQueue = field(default_factory=ClassQueue)
    #: job_id -> Job, insertion-ordered (dispatch order).
    running: Dict[str, Job] = field(default_factory=dict)
    dispatched_total: int = 0

    def __post_init__(self) -> None:
        if self.slots <= 0:
            self.slots = self.site.capacity
        if self.max_slots <= 0:
            self.max_slots = self.slots * 4
        if not self.min_slots <= self.slots <= self.max_slots:
            raise ValueError(
                f"site {self.name}: need min_slots <= slots <= max_slots"
            )

    @property
    def name(self) -> str:
        return self.site.name

    @property
    def region(self) -> str:
        return self.site.region

    @property
    def up(self) -> bool:
        return self.site.up

    def headroom(self) -> int:
        return self.slots - len(self.running)

    def outstanding(self) -> int:
        return len(self.queue) + len(self.running)

    def load(self) -> float:
        """Outstanding jobs per slot (the routing tie-breaker)."""
        return self.outstanding() / self.slots if self.slots else float("inf")


class FailoverRouter:
    """Deterministic site selection plus outage drain bookkeeping."""

    def __init__(self, sites: Sequence[SiteRuntime]) -> None:
        if not sites:
            raise ValueError("need at least one site")
        names = [s.name for s in sites]
        if len(set(names)) != len(names):
            raise ValueError("site names must be unique")
        #: Name-sorted so every fleet walk has one canonical order.
        self.sites: List[SiteRuntime] = sorted(sites, key=lambda s: s.name)
        self._by_name = {s.name: s for s in self.sites}
        self.failover_routed = 0
        self.spill_routed = 0

    def site(self, name: str) -> SiteRuntime:
        try:
            return self._by_name[name]
        except KeyError:
            known = ", ".join(s.name for s in self.sites)
            raise KeyError(f"unknown site {name!r}; have: {known}") from None

    def up_sites(self) -> List[SiteRuntime]:
        return [s for s in self.sites if s.up]

    def total_capacity(self) -> int:
        """Slots across up sites -- the admission controller's divisor."""
        return sum(s.slots for s in self.sites if s.up)

    def nearest(self, origin: Tuple[float, float]) -> SiteRuntime:
        """Nearest site regardless of health (the failover reference)."""
        return min(
            self.sites,
            key=lambda s: (distance(origin, s.site.location), s.name),
        )

    def choose(self, origin: Tuple[float, float]) -> Optional[SiteRuntime]:
        """Where an admitted job should queue, or ``None`` (all down).

        Preference: nearest up site with a free slot; otherwise the
        least-loaded up site (distance, then name, break ties).  Updates
        the spill/failover accounting as a side effect.
        """
        candidates = self.up_sites()
        if not candidates:
            return None
        with_headroom = [s for s in candidates if s.headroom() > 0]
        if with_headroom:
            chosen = min(
                with_headroom,
                key=lambda s: (distance(origin, s.site.location), s.name),
            )
        else:
            chosen = min(
                candidates,
                key=lambda s: (
                    s.load(), distance(origin, s.site.location), s.name,
                ),
            )
        nearest = self.nearest(origin)
        if chosen.name != nearest.name:
            if nearest.up:
                self.spill_routed += 1
            else:
                self.failover_routed += 1
        return chosen

    # ------------------------------------------------------------------ #
    # Outage lifecycle

    def mark_down(self, name: str) -> Tuple[List[Job], List[Job]]:
        """Take a site down; returns (queued, running) jobs to drain.

        The queued jobs come back priority-then-FIFO ordered; the
        running list is in dispatch order.  Both lists are *detached*
        from the site -- the caller owns their next transition.
        """
        site = self.site(name)
        site.site.up = False
        queued = site.queue.drain()
        running = list(site.running.values())
        site.running.clear()
        return queued, running

    def mark_up(self, name: str) -> SiteRuntime:
        site = self.site(name)
        site.site.up = True
        return site
