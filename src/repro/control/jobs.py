"""Jobs, SLO classes, and the per-job lifecycle state machine.

The control plane never loses a job silently: every job moves through an
explicit state machine and every transition is legality-checked at the
single choke point (:meth:`Job.transition`), so an illegal hop is a bug
that raises immediately instead of a job quietly evaporating.

::

    QUEUED ----> ADMITTED ----> RUNNING ----> DONE
      | ^           |  |          |
      | |           |  +--> SHED  +--> FAILED        (retries exhausted)
      | +-----------+             |
      +--> SHED                   +--> RETRY_WAIT --> QUEUED
                                           |
                                           +--> FAILED

* ``QUEUED -> ADMITTED``: admission control accepted the job and routed
  it to a site.
* ``QUEUED | ADMITTED -> SHED``: admission (or an overload sweep after a
  capacity loss) dropped the job; shedding is class-ordered, batch
  before upload before live.
* ``ADMITTED -> QUEUED``: the assigned site went down before dispatch;
  the job drains back to the global queue at no cost to its retry
  budget.
* ``RUNNING -> RETRY_WAIT``: the attempt failed (device fault or the
  site died mid-flight); a deterministic exponential backoff runs
  before the job re-enters ``QUEUED``.
* ``RUNNING | RETRY_WAIT -> FAILED``: the bounded retry budget is
  exhausted; the job lands in the dead-letter ledger with its full
  transition history.

``DONE``, ``FAILED``, and ``SHED`` are terminal: the conservation
invariant (every submitted job in exactly one terminal state once the
plane drains) is what the flagship scenario's tests assert.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple


class SloClass(enum.IntEnum):
    """Priority classes, most critical first (live > upload > batch)."""

    LIVE = 0
    UPLOAD = 1
    BATCH = 2

    @property
    def label(self) -> str:
        return self.name.lower()


#: Classes in admission-priority order (dispatch serves LIVE first).
CLASS_ORDER: Tuple[SloClass, ...] = (SloClass.LIVE, SloClass.UPLOAD, SloClass.BATCH)
#: Classes in shedding order (overload drops BATCH first, LIVE last).
SHED_ORDER: Tuple[SloClass, ...] = (SloClass.BATCH, SloClass.UPLOAD, SloClass.LIVE)


class JobState(enum.Enum):
    QUEUED = "queued"
    ADMITTED = "admitted"
    RUNNING = "running"
    RETRY_WAIT = "retry_wait"
    DONE = "done"
    FAILED = "failed"
    SHED = "shed"


#: The only states a job may rest in when the plane is fully drained.
TERMINAL_STATES = frozenset((JobState.DONE, JobState.FAILED, JobState.SHED))

#: Legal transitions; anything else raises at the choke point.
LEGAL_TRANSITIONS: Dict[JobState, Tuple[JobState, ...]] = {
    JobState.QUEUED: (JobState.ADMITTED, JobState.SHED),
    JobState.ADMITTED: (JobState.RUNNING, JobState.QUEUED, JobState.SHED),
    JobState.RUNNING: (JobState.DONE, JobState.RETRY_WAIT, JobState.FAILED),
    JobState.RETRY_WAIT: (JobState.QUEUED, JobState.FAILED),
    JobState.DONE: (),
    JobState.FAILED: (),
    JobState.SHED: (),
}


class IllegalTransition(RuntimeError):
    """An attempted state hop the lifecycle diagram does not allow."""


@dataclass(frozen=True)
class JobRequest:
    """One unit of demand as the workload generators produce it."""

    job_id: str
    slo_class: SloClass
    #: Abstract map coordinates of the submitter (drives routing).
    origin: Tuple[float, float]
    arrival_time: float
    #: Modelled service time on one site slot, in sim seconds.
    service_seconds: float
    #: Output volume, for throughput-flavoured accounting.
    megapixels: float = 0.0


@dataclass(eq=False)
class Job:
    """One job's live lifecycle record (identity semantics, like Step)."""

    request: JobRequest
    state: JobState = JobState.QUEUED
    attempts: int = 0
    #: Name of the site currently responsible for the job, if any.
    site: Optional[str] = None
    #: Full (time, state) history, starting with the QUEUED entry.
    history: List[Tuple[float, JobState]] = field(default_factory=list)
    #: Cumulative seconds spent waiting (QUEUED + ADMITTED states).
    queue_seconds: float = 0.0
    #: Cumulative seconds spent in retry backoff.
    retry_wait_seconds: float = 0.0
    _state_since: float = 0.0

    def __post_init__(self) -> None:
        if not self.history:
            self.history.append((self.request.arrival_time, self.state))
            self._state_since = self.request.arrival_time

    @property
    def job_id(self) -> str:
        return self.request.job_id

    @property
    def slo_class(self) -> SloClass:
        return self.request.slo_class

    @property
    def terminal(self) -> bool:
        return self.state in TERMINAL_STATES

    def transition(self, to: JobState, at: float) -> None:
        """The single legality-checked choke point for state changes."""
        if to not in LEGAL_TRANSITIONS[self.state]:
            raise IllegalTransition(
                f"job {self.job_id}: illegal transition "
                f"{self.state.value} -> {to.value} at t={at}"
            )
        elapsed = at - self._state_since
        if elapsed < 0:
            raise ValueError(f"job {self.job_id}: time moved backwards")
        if self.state in (JobState.QUEUED, JobState.ADMITTED):
            self.queue_seconds += elapsed
        elif self.state is JobState.RETRY_WAIT:
            self.retry_wait_seconds += elapsed
        self.state = to
        self._state_since = at
        self.history.append((at, to))

    def completed_at(self) -> Optional[float]:
        """Time of the terminal transition, ``None`` while in flight."""
        if not self.terminal:
            return None
        return self.history[-1][0]


@dataclass(frozen=True)
class RetryPolicy:
    """Bounded retries with *deterministic* exponential backoff.

    Unlike the cluster's jittered :class:`~repro.failures.watchdog.
    BackoffPolicy`, the control plane's backoff is a pure function of the
    attempt number: the durable ledger must replay byte-identically at
    any executor parallelism, so no RNG stream may be consumed here.
    """

    base_delay_seconds: float = 2.0
    multiplier: float = 2.0
    max_delay_seconds: float = 120.0
    #: Total attempts a job may consume before dead-lettering.
    max_attempts: int = 4

    def __post_init__(self) -> None:
        if self.base_delay_seconds < 0:
            raise ValueError("base_delay_seconds must be >= 0")
        if self.multiplier < 1.0:
            raise ValueError("multiplier must be >= 1")
        if self.max_attempts < 1:
            raise ValueError("max_attempts must be >= 1")

    def delay_for(self, attempt: int) -> float:
        """Backoff before retry number ``attempt + 1`` (attempt >= 1)."""
        if attempt < 1:
            raise ValueError("attempt numbers start at 1")
        return min(
            self.max_delay_seconds,
            self.base_delay_seconds * self.multiplier ** (attempt - 1),
        )

    def exhausted(self, attempts: int) -> bool:
        return attempts >= self.max_attempts
