"""The fleet control plane: durable job lifecycle above the clusters.

The paper's deployment story (Sections 2.2 and 4) implies a service
layer above any single cluster: admission control that protects live
traffic, multi-region routing with failover, bounded retries, and
accounting good enough that no job is ever lost silently.  This package
is that layer for the simulated fleet:

* :mod:`repro.control.jobs` -- SLO classes, the per-job state machine,
  and the deterministic retry policy.
* :mod:`repro.control.queue` -- the durable job ledger (conservation
  invariant), strict-priority class queues, and the dead-letter ledger.
* :mod:`repro.control.admission` -- per-class load-factor ceilings and
  the class-ordered shedding sweep.
* :mod:`repro.control.failover` -- site runtimes and deterministic
  routing with failover/spill accounting and outage drains.
* :mod:`repro.control.plane` -- the :class:`ControlPlane` service tying
  it together over pluggable executors.
* :mod:`repro.control.scenario` -- the flagship "global platform day"
  scenario and its SLO scorecard.
* :mod:`repro.control.streaming` -- the segment-streaming executor that
  turns LIVE/UPLOAD jobs into ladder stream sessions.
* :mod:`repro.control.live_ladder` -- the "live ladder" scenario and its
  time-to-first-segment latency scorecard.
"""

from repro.control.admission import AdmissionConfig, AdmissionController
from repro.control.failover import FailoverRouter, SiteRuntime
from repro.control.jobs import (
    CLASS_ORDER,
    SHED_ORDER,
    TERMINAL_STATES,
    IllegalTransition,
    Job,
    JobRequest,
    JobState,
    RetryPolicy,
    SloClass,
)
from repro.control.live_ladder import (
    LiveLadderConfig,
    LiveLadderResult,
    run_live_ladder,
)
from repro.control.plane import (
    ClusterExecutor,
    ControlPlane,
    ModeledExecutor,
    make_sites,
)
from repro.control.queue import (
    ClassQueue,
    DeadLetter,
    DeadLetterLedger,
    JobLedger,
    TransitionRecord,
)
from repro.control.scenario import (
    ScenarioConfig,
    ScenarioResult,
    build_scorecard,
    run_global_platform_day,
    scorecard_keys,
)
from repro.control.streaming import StreamingExecutor

# repro.control.live_ladder's own ``scorecard_keys``/``build_scorecard``
# are intentionally NOT re-exported here (the names belong to the
# flagship scenario); import them from the module directly.

__all__ = [
    "AdmissionConfig",
    "AdmissionController",
    "CLASS_ORDER",
    "ClassQueue",
    "ClusterExecutor",
    "ControlPlane",
    "DeadLetter",
    "DeadLetterLedger",
    "FailoverRouter",
    "IllegalTransition",
    "Job",
    "JobLedger",
    "JobRequest",
    "JobState",
    "LiveLadderConfig",
    "LiveLadderResult",
    "ModeledExecutor",
    "RetryPolicy",
    "SHED_ORDER",
    "ScenarioConfig",
    "ScenarioResult",
    "SiteRuntime",
    "SloClass",
    "StreamingExecutor",
    "TERMINAL_STATES",
    "TransitionRecord",
    "build_scorecard",
    "make_sites",
    "run_global_platform_day",
    "run_live_ladder",
    "scorecard_keys",
]
