"""The fleet control plane: durable job lifecycle above the clusters.

The paper's deployment story (Sections 2.2 and 4) implies a service
layer above any single cluster: admission control that protects live
traffic, multi-region routing with failover, bounded retries, and
accounting good enough that no job is ever lost silently.  This package
is that layer for the simulated fleet:

* :mod:`repro.control.jobs` -- SLO classes, the per-job state machine,
  and the deterministic retry policy.
* :mod:`repro.control.queue` -- the durable job ledger (conservation
  invariant), strict-priority class queues, and the dead-letter ledger.
* :mod:`repro.control.admission` -- per-class load-factor ceilings and
  the class-ordered shedding sweep.
* :mod:`repro.control.failover` -- site runtimes and deterministic
  routing with failover/spill accounting and outage drains.
* :mod:`repro.control.plane` -- the :class:`ControlPlane` service tying
  it together over pluggable executors.
* :mod:`repro.control.scenario` -- the flagship "global platform day"
  scenario and its SLO scorecard.
* :mod:`repro.control.streaming` -- the segment-streaming executor that
  turns LIVE/UPLOAD jobs into ladder stream sessions.
* :mod:`repro.control.live_ladder` -- the "live ladder" scenario and its
  time-to-first-segment latency scorecard.
* :mod:`repro.control.catalog` -- the scenario catalog: grids, seeds,
  and scorecard-key dispatch for every deployment-narrative experiment.
* :mod:`repro.control.canary` -- the firmware canary-rollout scenario
  (stage, detect regression from scorecards, roll back or promote).
* :mod:`repro.control.chaos` -- the correlated-outage chaos campaign
  (blast radius x repair capacity on a fleet-mode cluster).
* :mod:`repro.control.surge` -- popularity-surge / live-mix-shift
  demand disturbances over the platform-day machinery.

Re-exports resolve lazily (PEP 562): ``repro.control.catalog`` is
import-light by contract (a cache-hot ``repro-bench run`` expands grids
without touching the cluster simulator), so importing the package must
not eagerly pull the heavy scenario modules either.
"""

from typing import TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover - static-analysis aid only
    from repro.control.admission import AdmissionConfig, AdmissionController
    from repro.control.failover import FailoverRouter, SiteRuntime
    from repro.control.jobs import (
        CLASS_ORDER,
        SHED_ORDER,
        TERMINAL_STATES,
        IllegalTransition,
        Job,
        JobRequest,
        JobState,
        RetryPolicy,
        SloClass,
    )
    from repro.control.live_ladder import (
        LiveLadderConfig,
        LiveLadderResult,
        run_live_ladder,
    )
    from repro.control.plane import (
        ClusterExecutor,
        ControlPlane,
        ModeledExecutor,
        make_sites,
    )
    from repro.control.queue import (
        ClassQueue,
        DeadLetter,
        DeadLetterLedger,
        JobLedger,
        TransitionRecord,
    )
    from repro.control.scenario import (
        ScenarioConfig,
        ScenarioResult,
        build_scorecard,
        run_global_platform_day,
        scorecard_keys,
    )
    from repro.control.streaming import StreamingExecutor

# name -> defining submodule; repro.control.live_ladder's own
# ``scorecard_keys``/``build_scorecard`` are intentionally NOT
# re-exported here (the names belong to the flagship scenario), and the
# canary/chaos/surge/catalog scenario APIs are module-scoped by design:
# import them from their modules directly.
_EXPORTS = {
    "AdmissionConfig": "admission",
    "AdmissionController": "admission",
    "CLASS_ORDER": "jobs",
    "ClassQueue": "queue",
    "ClusterExecutor": "plane",
    "ControlPlane": "plane",
    "DeadLetter": "queue",
    "DeadLetterLedger": "queue",
    "FailoverRouter": "failover",
    "IllegalTransition": "jobs",
    "Job": "jobs",
    "JobLedger": "queue",
    "JobRequest": "jobs",
    "JobState": "jobs",
    "LiveLadderConfig": "live_ladder",
    "LiveLadderResult": "live_ladder",
    "ModeledExecutor": "plane",
    "RetryPolicy": "jobs",
    "SHED_ORDER": "jobs",
    "ScenarioConfig": "scenario",
    "ScenarioResult": "scenario",
    "SiteRuntime": "failover",
    "SloClass": "jobs",
    "StreamingExecutor": "streaming",
    "TERMINAL_STATES": "jobs",
    "TransitionRecord": "queue",
    "build_scorecard": "scenario",
    "make_sites": "plane",
    "run_global_platform_day": "scenario",
    "run_live_ladder": "live_ladder",
    "scorecard_keys": "scenario",
}

__all__ = sorted(_EXPORTS)


def __getattr__(name: str):
    try:
        module_name = _EXPORTS[name]
    except KeyError:
        raise AttributeError(
            f"module 'repro.control' has no attribute {name!r}"
        ) from None
    import importlib

    module = importlib.import_module(f"repro.control.{module_name}")
    value = getattr(module, name)
    globals()[name] = value  # cache: next access skips __getattr__
    return value


def __dir__():
    return sorted(set(globals()) | set(_EXPORTS))
