"""Control-plane executor that runs jobs as segment streams.

:class:`StreamingExecutor` plugs the PR 6 job lifecycle into the
segment-level dataflow: a dispatched LIVE job becomes a dripping
:class:`~repro.transcode.segments.StreamSpec` with a per-segment
manifest deadline, while UPLOAD (and BATCH) jobs become whole-arrival
streams whose segments are all released at dispatch.  The job completes
when the stream's final manifest entry is published -- the latency the
control plane's queue-wait histograms see is therefore end-to-end real:
admission + dispatch + encode + alignment.

Like :class:`~repro.control.plane.ClusterExecutor`, streams cannot be
killed mid-flight (there is no per-graph cancel), so :meth:`start`
returns ``None`` and an outage drain lets in-flight streams finish on
the surviving devices.
"""

from __future__ import annotations

from typing import Optional, Tuple

from repro.control.jobs import Job, SloClass
from repro.control.failover import SiteRuntime
from repro.control.plane import DoneFn
from repro.transcode.segments import StreamKind, StreamSpec
from repro.transcode.streaming import LadderDispatcher, StreamSession
from repro.video.frame import Resolution, resolution


class StreamingExecutor:
    """Executes control-plane jobs as segment streams on one cluster."""

    def __init__(
        self,
        dispatcher: LadderDispatcher,
        segment_seconds: float = 2.0,
        live_source: Optional[Resolution] = None,
        upload_source: Optional[Resolution] = None,
        live_deadline_seconds: Optional[float] = 6.0,
        codecs: Tuple[str, ...] = ("h264",),
    ) -> None:
        if segment_seconds <= 0:
            raise ValueError("segment_seconds must be positive")
        self.dispatcher = dispatcher
        self.segment_seconds = segment_seconds
        self.live_source = live_source or resolution("1080p")
        self.upload_source = upload_source or resolution("720p")
        self.live_deadline_seconds = live_deadline_seconds
        self.codecs = codecs
        self.started_streams = 0

    def spec_for(self, job: Job) -> StreamSpec:
        """The stream a job's modelled demand maps to.

        ``service_seconds`` is read as seconds of source content; a live
        leg drips that many seconds of capture, an upload has them all
        on disk already.
        """
        live = job.slo_class is SloClass.LIVE
        segments = max(
            1, int(round(job.request.service_seconds / self.segment_seconds))
        )
        return StreamSpec(
            stream_id=job.job_id,
            kind=StreamKind.LIVE if live else StreamKind.UPLOAD,
            source=self.live_source if live else self.upload_source,
            segment_count=segments,
            segment_seconds=self.segment_seconds,
            codecs=self.codecs,
            deadline_seconds=self.live_deadline_seconds if live else None,
        )

    def start(self, job: Job, site: SiteRuntime, on_done: DoneFn) -> None:
        def finished(session: StreamSession, job: Job = job) -> None:
            on_done(job, True)

        self.dispatcher.start_stream(self.spec_for(job), on_final=finished)
        self.started_streams += 1
        return None
