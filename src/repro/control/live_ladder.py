"""The live-ladder scenario: segment streams under the control plane.

The latency-axis counterpart of :mod:`repro.control.scenario`: instead
of modelled slot occupancy, every dispatched job runs as a *segment
stream* on a real :class:`~repro.cluster.cluster.TranscodeCluster` --
live legs drip source segments in virtual real time, uploads burst
whole files, each segment fans out into per-(codec, rung) VCU tasks,
and manifests advance through alignment barriers.  Optionally, Poisson
device faults run throughout and one region's hosts hang mid-run (the
regional outage), forcing watchdog recovery and opportunistic software
fallback while live deadlines keep ticking.

The output is the **latency SLO scorecard**: time-to-first-segment and
manifest-stall percentiles, per-rung queue waits, deadline-miss rates,
and fallback/retry accounting next to the job-conservation verdict.
As with the platform-day scenario the key set is static
(:func:`scorecard_keys`) and guarded at build time, and the whole run
is a pure function of ``(config, seed)`` -- byte-identical scorecards
at any ``--jobs``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Sequence, Tuple

from repro.cluster.cluster import TranscodeCluster
from repro.cluster.worker import CpuWorker, VcuWorker
from repro.control.jobs import JobRequest, RetryPolicy, SloClass
from repro.control.plane import ControlPlane, make_sites
from repro.control.streaming import StreamingExecutor
from repro.failures.injector import FaultInjector
from repro.obs.latency import LadderMetrics
from repro.sim.engine import Simulator
from repro.sim.rng import SeedLike, split_rng
from repro.transcode.streaming import LadderDispatcher
from repro.vcu.host import VcuHost
from repro.vcu.spec import HostSpec
from repro.video.frame import output_ladder, resolution
from repro.workloads.streams import LadderDemandConfig, LadderDemandWorkload

#: Bump when the scorecard's key set or semantics change.
SCORECARD_VERSION = 1

#: Default per-rung key set: the full ladder of a 1080p live source.
DEFAULT_RUNGS: Tuple[str, ...] = tuple(
    r.name for r in output_ladder(resolution("1080p"))
)

_CLASSES = ("live", "upload")
_PER_CLASS_FIELDS = ("submitted", "done", "shed", "queue_p50", "queue_p99")
_GLOBAL_FIELDS = (
    "schema_version",
    "jobs.submitted", "jobs.done", "jobs.failed", "jobs.shed",
    "streams.started", "streams.completed",
    "segments.released", "segments.manifested", "segments.lost",
    "ttfs.p50", "ttfs.p90", "ttfs.p99",
    "stall.p50", "stall.p99",
    "deadline.tracked", "deadline.missed", "deadline.miss_rate",
    "fallback.software", "fallback.opportunistic",
    "cluster.retries", "cluster.hangs", "cluster.corrupt_caught",
    "cluster.host_evictions",
    "outages.count",
    "conservation.ok",
)


def scorecard_keys(rungs: Optional[Sequence[str]] = None) -> Tuple[str, ...]:
    """The exact, sorted key set every live-ladder scorecard carries."""
    keys = list(_GLOBAL_FIELDS)
    for label in _CLASSES:
        keys.extend(f"class.{label}.{f}" for f in _PER_CLASS_FIELDS)
    for rung in (DEFAULT_RUNGS if rungs is None else tuple(rungs)):
        keys.append(f"rung.{rung}.queue_p50")
        keys.append(f"rung.{rung}.queue_p99")
    return tuple(sorted(keys))


@dataclass(frozen=True)
class LiveLadderConfig:
    """One live-ladder run, fully specified."""

    #: Arrivals stop at the horizon; the backlog drains past it.
    horizon_seconds: float = 480.0
    live_rate: float = 0.01
    upload_rate: float = 0.02
    live_duration_seconds: float = 30.0
    upload_duration_mean: float = 16.0
    segment_seconds: float = 2.0
    #: Manifest due this long after each live segment's release.
    live_deadline_seconds: float = 8.0
    codecs: Tuple[str, ...] = ("h264",)
    live_source: str = "1080p"
    upload_source: str = "720p"
    #: Fleet shape: regions x hosts x VCUs (stable ids throughout).
    regions: Tuple[str, ...] = ("east", "west")
    hosts_per_region: int = 2
    vcus_per_host: int = 2
    cpu_workers: int = 3
    #: Concurrent streams the control-plane site admits.
    site_slots: int = 64
    #: Mid-run regional outage (the experiment's treatment arm).
    outage: bool = False
    outage_region: str = "east"
    outage_start_frac: float = 0.40
    outage_duration_frac: float = 0.15
    outage_stagger_seconds: float = 5.0
    #: Poisson device-fault pressure, per VCU-hour (0 = healthy run).
    hang_rate_per_hour: float = 0.0
    corruption_rate_per_hour: float = 0.0

    def __post_init__(self) -> None:
        if self.horizon_seconds <= 0:
            raise ValueError("horizon_seconds must be positive")
        if self.segment_seconds <= 0:
            raise ValueError("segment_seconds must be positive")
        if self.hosts_per_region <= 0 or self.vcus_per_host <= 0:
            raise ValueError("fleet must contain at least one VCU")
        if not 0.0 <= self.outage_start_frac < 1.0:
            raise ValueError("outage_start_frac must be in [0, 1)")
        if self.outage_duration_frac <= 0:
            raise ValueError("outage_duration_frac must be positive")
        if self.outage and self.outage_region not in self.regions:
            raise ValueError(
                f"outage_region {self.outage_region!r} not in {self.regions}"
            )

    def rung_names(self) -> Tuple[str, ...]:
        return tuple(r.name for r in output_ladder(resolution(self.live_source)))

    def demand_config(self) -> LadderDemandConfig:
        return LadderDemandConfig(
            live_rate=self.live_rate,
            upload_rate=self.upload_rate,
            live_duration_seconds=self.live_duration_seconds,
            upload_duration_mean=self.upload_duration_mean,
        )


@dataclass
class LiveLadderResult:
    """Everything a caller might inspect after the run drains."""

    config: LiveLadderConfig
    plane: ControlPlane
    cluster: TranscodeCluster
    dispatcher: LadderDispatcher
    metrics: LadderMetrics
    requests: List[JobRequest]
    end_time: float
    scorecard: Dict[str, Any]


def stable_host(tag: str, vcus: int) -> VcuHost:
    """A host with run-independent ids (the global counters differ
    between runs in one process, which would break golden traces)."""
    host = VcuHost(
        host_spec=HostSpec(vcus_per_card=vcus, cards_per_tray=1, trays_per_host=1),
        host_id=tag,
    )
    for index, vcu in enumerate(host.vcus):
        vcu.vcu_id = f"{tag}-v{index}"
        vcu.telemetry.vcu_id = vcu.vcu_id
    return host


def build_fleet(
    config: LiveLadderConfig,
) -> Tuple[List[VcuHost], List[VcuWorker], List[CpuWorker]]:
    """The scenario's stable-id fleet, grouped per region."""
    hosts = [
        stable_host(f"{region}-h{i}", config.vcus_per_host)
        for region in config.regions
        for i in range(config.hosts_per_region)
    ]
    workers = [
        VcuWorker(vcu, host=host) for host in hosts for vcu in host.vcus
    ]
    cpus = [
        CpuWorker(cores=16, name=f"lad-cpu{i}")
        for i in range(config.cpu_workers)
    ]
    return hosts, workers, cpus


def build_scorecard(
    plane: ControlPlane,
    cluster: TranscodeCluster,
    dispatcher: LadderDispatcher,
    rungs: Sequence[str],
) -> Dict[str, Any]:
    """The flat latency scorecard, keys sorted, values rounded."""
    metrics = dispatcher.metrics
    card: Dict[str, Any] = {"schema_version": SCORECARD_VERSION}
    counts = plane.class_counts()
    totals = {"submitted": 0, "done": 0, "failed": 0, "shed": 0}
    for cls in SloClass:
        for key in totals:
            totals[key] += counts[cls.label][key]
    for cls in (SloClass.LIVE, SloClass.UPLOAD):
        bucket = counts[cls.label]
        hist = plane.queue_wait[cls]
        prefix = f"class.{cls.label}"
        card[f"{prefix}.submitted"] = bucket["submitted"]
        card[f"{prefix}.done"] = bucket["done"]
        card[f"{prefix}.shed"] = bucket["shed"]
        card[f"{prefix}.queue_p50"] = round(hist.quantile(0.50), 9)
        card[f"{prefix}.queue_p99"] = round(hist.quantile(0.99), 9)
    card["jobs.submitted"] = totals["submitted"]
    card["jobs.done"] = totals["done"]
    card["jobs.failed"] = totals["failed"]
    card["jobs.shed"] = totals["shed"]
    card["streams.started"] = metrics.streams_started
    card["streams.completed"] = metrics.streams_completed
    card["segments.released"] = metrics.segments_released
    card["segments.manifested"] = metrics.manifests_emitted
    lost = metrics.segments_released - metrics.manifests_emitted
    card["segments.lost"] = lost
    card["ttfs.p50"] = round(metrics.ttfs.quantile(0.50), 9)
    card["ttfs.p90"] = round(metrics.ttfs.quantile(0.90), 9)
    card["ttfs.p99"] = round(metrics.ttfs.quantile(0.99), 9)
    card["stall.p50"] = round(metrics.manifest_stall.quantile(0.50), 9)
    card["stall.p99"] = round(metrics.manifest_stall.quantile(0.99), 9)
    card["deadline.tracked"] = metrics.deadlines_tracked
    card["deadline.missed"] = metrics.deadlines_missed
    card["deadline.miss_rate"] = round(
        metrics.deadlines_missed / metrics.deadlines_tracked
        if metrics.deadlines_tracked else 0.0, 6
    )
    card["fallback.software"] = cluster.stats.software_fallbacks
    card["fallback.opportunistic"] = cluster.stats.opportunistic_fallbacks
    card["cluster.retries"] = cluster.stats.retries
    card["cluster.hangs"] = cluster.stats.hangs_detected
    card["cluster.corrupt_caught"] = cluster.stats.corrupt_caught
    card["cluster.host_evictions"] = cluster.stats.host_evictions
    card["outages.count"] = plane.outages_started
    card["conservation.ok"] = bool(
        plane.ledger.conservation_report()["ok"]
        and lost == 0
        and not dispatcher.unfinished()
    )
    ladder_card = metrics.scorecard(rungs=rungs)
    for rung in rungs:
        card[f"rung.{rung}.queue_p50"] = round(
            float(ladder_card[f"ladder.rung.{rung}.queue_p50"]), 9
        )
        card[f"rung.{rung}.queue_p99"] = round(
            float(ladder_card[f"ladder.rung.{rung}.queue_p99"]), 9
        )
    if tuple(sorted(card)) != scorecard_keys(rungs):
        raise RuntimeError("scorecard keys drifted from scorecard_keys()")
    return dict(sorted(card.items()))


def run_live_ladder(
    config: LiveLadderConfig, seed: SeedLike = 0
) -> LiveLadderResult:
    """Simulate one live-ladder run end to end and score it.

    Arrivals stop at the horizon but the simulation runs until the event
    queue drains, so every stream's last manifest is published and the
    conservation verdict is checkable at return.
    """
    sim = Simulator()
    hosts, workers, cpus = build_fleet(config)
    cluster = TranscodeCluster(
        sim, workers, cpus, seed=split_rng(seed, "ladder/cluster"),
    )
    dispatcher = LadderDispatcher(sim, cluster)
    executor = StreamingExecutor(
        dispatcher,
        segment_seconds=config.segment_seconds,
        live_source=resolution(config.live_source),
        upload_source=resolution(config.upload_source),
        live_deadline_seconds=config.live_deadline_seconds,
        codecs=config.codecs,
    )
    sites = make_sites(
        (("stream-core", "core", (0.0, 0.0), config.site_slots),)
    )
    plane = ControlPlane(
        sim, sites, retry=RetryPolicy(), executor=executor, seed=seed,
    )
    workload = LadderDemandWorkload(config.demand_config(), seed=seed)
    requests = workload.requests(until=config.horizon_seconds)
    for request in requests:
        sim.call_at(
            request.arrival_time,
            lambda r=request: plane.submit(r),
        )
    injector = FaultInjector(
        sim,
        [vcu for host in hosts for vcu in host.vcus],
        seed=split_rng(seed, "ladder/faults"),
    )
    if config.hang_rate_per_hour > 0:
        injector.random_hangs(
            config.hang_rate_per_hour, until=config.horizon_seconds
        )
    if config.corruption_rate_per_hour > 0:
        injector.random_corruptions(
            config.corruption_rate_per_hour, until=config.horizon_seconds
        )
    if config.outage:
        outage_hosts = [
            h for h in hosts
            if h.host_id.startswith(f"{config.outage_region}-")
        ]
        injector.regional_outage(
            at_time=config.outage_start_frac * config.horizon_seconds,
            hosts=outage_hosts,
            duration=config.outage_duration_frac * config.horizon_seconds,
            stagger_seconds=config.outage_stagger_seconds,
        )
    sim.run()
    rungs = config.rung_names()
    return LiveLadderResult(
        config=config,
        plane=plane,
        cluster=cluster,
        dispatcher=dispatcher,
        metrics=dispatcher.metrics,
        requests=requests,
        end_time=sim.now,
        scorecard=build_scorecard(plane, cluster, dispatcher, rungs),
    )
