"""Firmware canary rollout: stage, measure, roll back (Section 5).

The paper's deployment discipline for the fleet's most dangerous
artifact: a candidate firmware build lands on a *canary slice* of hosts
while the rest of the fleet stays on the launch build, both slices
serve identical upload demand through the control plane, and after a
soak window the candidate is judged purely from observable scorecards
-- per-VCU throughput and worker-health deltas between the slices.  A
regression rolls the canary back automatically; a clean soak promotes
the build fleet-wide.

The rollout itself is a hand-maintained state machine
(:data:`LEGAL_ROLLOUT_TRANSITIONS`, choke point
:meth:`FirmwareRollout._set_stage`) verified by the ``state-machine``
analyzer pass, exactly like the job lifecycle and worker-health
ladders.  Jobs flow through a :class:`~repro.control.plane.
ControlPlane` backed by a real cluster, so the run also exercises the
worker health machine (hang strikes, quarantine, rescreen) and the job
ledger's conservation invariant end to end.

As with every catalog scenario the run is a pure function of
``(config, seed)``: static :func:`scorecard_keys`, byte-identical
scorecards at any ``--jobs``.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Any, Dict, List, Tuple

from repro.cluster.cluster import TranscodeCluster
from repro.cluster.health import HealthState
from repro.cluster.worker import CpuWorker, VcuWorker
from repro.control.jobs import JobRequest, RetryPolicy, SloClass
from repro.control.live_ladder import stable_host
from repro.control.plane import ClusterExecutor, ControlPlane, make_sites
from repro.failures.injector import FaultInjector
from repro.sim.engine import Simulator
from repro.sim.rng import SeedLike, split_rng
from repro.vcu.chip import Vcu
from repro.vcu.firmware import FirmwareVersion, firmware_release
from repro.vcu.host import VcuHost

#: Bump when the scorecard's key set or semantics change.
SCORECARD_VERSION = 1


class RolloutStage(enum.Enum):
    """Where a firmware release stands in its rollout."""

    BASELINE = "baseline"
    CANARY = "canary"
    ROLLED_BACK = "rolled_back"
    PROMOTED = "promoted"


#: The only stage changes a rollout may perform.  ROLLED_BACK and
#: PROMOTED are terminal: a respun build is a *new* rollout.
LEGAL_ROLLOUT_TRANSITIONS: Dict[RolloutStage, Tuple[RolloutStage, ...]] = {
    RolloutStage.BASELINE: (RolloutStage.CANARY,),
    RolloutStage.CANARY: (RolloutStage.ROLLED_BACK, RolloutStage.PROMOTED),
    RolloutStage.ROLLED_BACK: (),
    RolloutStage.PROMOTED: (),
}


class IllegalRolloutTransition(RuntimeError):
    """A stage change outside :data:`LEGAL_ROLLOUT_TRANSITIONS`."""


class FirmwareRollout:
    """One candidate release's journey through the canary pipeline."""

    def __init__(self, candidate: FirmwareVersion) -> None:
        self.candidate = candidate
        self.stage = RolloutStage.BASELINE
        #: (sim time, new stage label, reason) per transition.
        self.log: List[Tuple[float, str, str]] = []

    def _set_stage(self, new: RolloutStage, at: float, reason: str) -> None:
        """The single choke point for stage transitions.

        Same-state sets no-op; anything outside the declared table
        raises -- the invariant the ``state-machine`` analyzer pass
        proves statically for every call site.
        """
        if new is self.stage:
            return
        if new not in LEGAL_ROLLOUT_TRANSITIONS[self.stage]:
            raise IllegalRolloutTransition(
                f"{self.candidate.version}: rollout {self.stage.value} -> "
                f"{new.value} is not in LEGAL_ROLLOUT_TRANSITIONS"
            )
        self.stage = new
        self.log.append((at, new.value, reason))

    def stage_canary(self, at: float) -> None:
        """Land the candidate on the canary slice."""
        if self.stage is not RolloutStage.BASELINE:
            raise IllegalRolloutTransition(
                f"cannot stage {self.candidate.version} from {self.stage.value}"
            )
        self._set_stage(RolloutStage.CANARY, at, "staged on canary slice")

    def roll_back(self, at: float, reason: str) -> None:
        """Regression detected: restore the launch build on the canary."""
        if self.stage is not RolloutStage.CANARY:
            raise IllegalRolloutTransition(
                f"cannot roll back {self.candidate.version} from {self.stage.value}"
            )
        self._set_stage(RolloutStage.ROLLED_BACK, at, reason)

    def promote(self, at: float, reason: str) -> None:
        """Clean soak: the candidate goes fleet-wide."""
        if self.stage is not RolloutStage.CANARY:
            raise IllegalRolloutTransition(
                f"cannot promote {self.candidate.version} from {self.stage.value}"
            )
        self._set_stage(RolloutStage.PROMOTED, at, reason)


_SLICES = ("baseline", "canary")
_PER_SLICE_FIELDS = ("vcus", "mpix_per_vcu_s", "unhealthy_frac")
_GLOBAL_FIELDS = (
    "schema_version",
    "rollout.candidate", "rollout.stage",
    "rollout.regression_detected", "rollout.rolled_back", "rollout.promoted",
    "delta.throughput_frac", "delta.unhealthy_frac",
    "jobs.submitted", "jobs.done", "jobs.failed", "jobs.shed",
    "cluster.completed_graphs", "cluster.retries", "cluster.hangs",
    "cluster.corrupt_caught", "cluster.workers_quarantined",
    "cluster.workers_rehabilitated", "cluster.software_fallbacks",
    "conservation.ok",
)


def scorecard_keys() -> Tuple[str, ...]:
    """The exact, sorted key set every canary scorecard carries."""
    keys = list(_GLOBAL_FIELDS)
    for name in _SLICES:
        keys.extend(f"slice.{name}.{field}" for field in _PER_SLICE_FIELDS)
    return tuple(sorted(keys))


@dataclass(frozen=True)
class CanaryConfig:
    """One canary rollout run, fully specified."""

    #: Version name of the candidate build (see vcu.firmware releases).
    candidate: str = "fw-1.1.0-rc1"
    #: Arrivals stop at the horizon; the backlog drains past it.
    horizon_seconds: float = 600.0
    canary_hosts: int = 1
    baseline_hosts: int = 3
    vcus_per_host: int = 1
    cpu_workers: int = 2
    #: Concurrent jobs the control-plane site admits.
    site_slots: int = 256
    #: The candidate lands at ``stage_frac`` and is judged at
    #: ``evaluate_frac`` of the horizon; the window between them is the
    #: soak the slice deltas are measured over.
    stage_frac: float = 0.25
    evaluate_frac: float = 0.75
    #: Fixed-interval upload demand heavy enough to *saturate* the
    #: fleet: the scheduler is first-fit, so only a continuously busy
    #: fleet makes per-slice throughput comparable (an under-loaded one
    #: concentrates all work on whichever workers sort first).
    job_interval_seconds: float = 0.08
    service_seconds: float = 4.0
    #: Rollback criteria: canary per-VCU throughput more than this
    #: fraction below baseline, or the unhealthy-worker fraction more
    #: than this far above baseline, is a regression.
    max_throughput_regression: float = 0.12
    max_unhealthy_delta: float = 0.2

    def __post_init__(self) -> None:
        firmware_release(self.candidate)  # validate the name early
        if self.horizon_seconds <= 0:
            raise ValueError("horizon_seconds must be positive")
        if not 0.0 < self.stage_frac < self.evaluate_frac <= 1.0:
            raise ValueError("need 0 < stage_frac < evaluate_frac <= 1")
        if self.canary_hosts <= 0 or self.baseline_hosts <= 0:
            raise ValueError("both slices need at least one host")
        if self.vcus_per_host <= 0:
            raise ValueError("vcus_per_host must be positive")
        if self.job_interval_seconds <= 0 or self.service_seconds <= 0:
            raise ValueError("demand intervals must be positive")
        if self.max_throughput_regression <= 0 or self.max_unhealthy_delta <= 0:
            raise ValueError("regression thresholds must be positive")

    @property
    def release(self) -> FirmwareVersion:
        return firmware_release(self.candidate)


@dataclass
class CanaryResult:
    """Everything a caller might inspect after the rollout drains."""

    config: CanaryConfig
    plane: ControlPlane
    cluster: TranscodeCluster
    rollout: FirmwareRollout
    requests: List[JobRequest]
    end_time: float
    scorecard: Dict[str, Any]


def _slice_fleet(
    tag: str, host_count: int, vcus_per_host: int
) -> Tuple[List[VcuHost], List[VcuWorker]]:
    hosts = [stable_host(f"{tag}-h{i}", vcus_per_host) for i in range(host_count)]
    workers = [
        VcuWorker(vcu, host=host, golden_screening=False)
        for host in hosts
        for vcu in host.vcus
    ]
    return hosts, workers


def _demand(config: CanaryConfig) -> List[JobRequest]:
    """Fixed-interval upload jobs across the horizon."""
    requests: List[JobRequest] = []
    index = 0
    while True:
        arrival = index * config.job_interval_seconds
        if arrival >= config.horizon_seconds:
            return requests
        index += 1
        requests.append(JobRequest(
            job_id=f"canary-{index:05d}",
            slo_class=SloClass.UPLOAD,
            origin=(0.0, 0.0),
            arrival_time=arrival,
            service_seconds=config.service_seconds,
            megapixels=config.service_seconds * 50.0,
        ))


def _schedule_window_faults(
    injector: FaultInjector,
    vcus: List[Vcu],
    release: FirmwareVersion,
    window_start: float,
    window_end: float,
    seed: SeedLike,
) -> None:
    """Pre-schedule the candidate's fault pressure over the soak window.

    The injector draws all arrival times at call time, so the window is
    laid out here (with absolute times) rather than when the build
    lands -- determinism survives any staging-time refactor.
    """
    rng = split_rng(seed, "canary/faults")
    for rate, inject in (
        (release.hang_rate_per_hour,
         lambda at, vcu: injector.hang_at(
             at, vcu, duration=release.hang_duration_seconds)),
        (release.corruption_rate_per_hour, injector.corrupt_at),
    ):
        if rate <= 0:
            continue
        mean_gap = 3600.0 / rate
        for vcu in vcus:
            t = window_start + float(rng.exponential(mean_gap))
            while t < window_end:
                inject(t, vcu)
                t += float(rng.exponential(mean_gap))


def build_scorecard(
    plane: ControlPlane,
    cluster: TranscodeCluster,
    rollout: FirmwareRollout,
    verdict: Dict[str, Any],
) -> Dict[str, Any]:
    """The flat rollout scorecard, keys sorted, values rounded."""
    card: Dict[str, Any] = {"schema_version": SCORECARD_VERSION}
    counts = plane.class_counts()
    totals = {"submitted": 0, "done": 0, "failed": 0, "shed": 0}
    for cls in SloClass:
        for key in totals:
            totals[key] += counts[cls.label][key]
    card["jobs.submitted"] = totals["submitted"]
    card["jobs.done"] = totals["done"]
    card["jobs.failed"] = totals["failed"]
    card["jobs.shed"] = totals["shed"]
    card["rollout.candidate"] = rollout.candidate.version
    card["rollout.stage"] = rollout.stage.value
    card["rollout.regression_detected"] = bool(verdict["regression"])
    card["rollout.rolled_back"] = rollout.stage is RolloutStage.ROLLED_BACK
    card["rollout.promoted"] = rollout.stage is RolloutStage.PROMOTED
    card["delta.throughput_frac"] = round(float(verdict["throughput_frac"]), 6)
    card["delta.unhealthy_frac"] = round(float(verdict["unhealthy_delta"]), 6)
    for name in _SLICES:
        card[f"slice.{name}.vcus"] = verdict[f"{name}_vcus"]
        card[f"slice.{name}.mpix_per_vcu_s"] = round(
            float(verdict[f"{name}_rate"]), 9
        )
        card[f"slice.{name}.unhealthy_frac"] = round(
            float(verdict[f"{name}_unhealthy"]), 6
        )
    stats = cluster.stats
    card["cluster.completed_graphs"] = stats.completed_graphs
    card["cluster.retries"] = stats.retries
    card["cluster.hangs"] = stats.hangs_detected
    card["cluster.corrupt_caught"] = stats.corrupt_caught
    card["cluster.workers_quarantined"] = stats.workers_quarantined
    card["cluster.workers_rehabilitated"] = stats.workers_rehabilitated
    card["cluster.software_fallbacks"] = stats.software_fallbacks
    card["conservation.ok"] = bool(
        plane.ledger.conservation_report()["ok"]
        and stats.completed_graphs == totals["done"]
    )
    if tuple(sorted(card)) != scorecard_keys():
        raise RuntimeError("scorecard keys drifted from scorecard_keys()")
    return dict(sorted(card.items()))


def run_canary_rollout(
    config: CanaryConfig, seed: SeedLike = 0
) -> CanaryResult:
    """Simulate one canary rollout end to end and score it.

    Arrivals stop at the horizon but the simulation runs until the
    event queue drains, so the conservation verdict is checkable at
    return regardless of the rollout's outcome.
    """
    sim = Simulator()
    release = config.release
    canary_hosts, canary_workers = _slice_fleet(
        "cny", config.canary_hosts, config.vcus_per_host
    )
    baseline_hosts, baseline_workers = _slice_fleet(
        "base", config.baseline_hosts, config.vcus_per_host
    )
    workers = canary_workers + baseline_workers
    cpus = [
        CpuWorker(cores=16, name=f"cny-cpu{i}")
        for i in range(config.cpu_workers)
    ]
    cluster = TranscodeCluster(
        sim, workers, cpus, seed=split_rng(seed, "canary/cluster"),
    )
    plane = ControlPlane(
        sim,
        make_sites((("canary-core", "core", (0.0, 0.0), config.site_slots),)),
        retry=RetryPolicy(),
        executor=ClusterExecutor(cluster),
        seed=seed,
    )
    requests = _demand(config)
    for request in requests:
        sim.call_at(
            request.arrival_time,
            lambda r=request: plane.submit(r),
        )

    canary_ids = [vcu.vcu_id for host in canary_hosts for vcu in host.vcus]
    baseline_ids = [vcu.vcu_id for host in baseline_hosts for vcu in host.vcus]
    t_stage = config.stage_frac * config.horizon_seconds
    t_eval = config.evaluate_frac * config.horizon_seconds

    injector = FaultInjector(
        sim,
        [vcu for host in canary_hosts for vcu in host.vcus],
        seed=split_rng(seed, "canary/injector"),
    )
    _schedule_window_faults(
        injector, injector.vcus, release, t_stage, t_eval, seed
    )

    rollout = FirmwareRollout(release)
    base_overheads = {w.name: w.step_overhead_seconds for w in workers}

    def slice_megapixels(ids: List[str]) -> float:
        per_vcu = cluster.stats.per_vcu_megapixels
        return sum(per_vcu.get(vcu_id, 0.0) for vcu_id in ids)

    def unhealthy_frac(slice_workers: List[VcuWorker]) -> float:
        unhealthy = sum(
            1 for w in slice_workers if w.health is not HealthState.HEALTHY
        )
        return unhealthy / len(slice_workers)

    window_start: Dict[str, float] = {}
    verdict: Dict[str, Any] = {}

    def stage() -> None:
        rollout.stage_canary(sim.now)
        for worker in canary_workers:
            worker.step_overhead_seconds = (
                base_overheads[worker.name] * release.step_overhead_multiplier
            )
        window_start["canary"] = slice_megapixels(canary_ids)
        window_start["baseline"] = slice_megapixels(baseline_ids)

    def evaluate() -> None:
        window = t_eval - t_stage
        canary_rate = (
            (slice_megapixels(canary_ids) - window_start["canary"])
            / (len(canary_ids) * window)
        )
        baseline_rate = (
            (slice_megapixels(baseline_ids) - window_start["baseline"])
            / (len(baseline_ids) * window)
        )
        throughput_frac = (
            (baseline_rate - canary_rate) / baseline_rate
            if baseline_rate > 0 else 0.0
        )
        unhealthy_delta = (
            unhealthy_frac(canary_workers) - unhealthy_frac(baseline_workers)
        )
        regression = (
            throughput_frac > config.max_throughput_regression
            or unhealthy_delta > config.max_unhealthy_delta
        )
        verdict.update(
            regression=regression,
            throughput_frac=throughput_frac,
            unhealthy_delta=unhealthy_delta,
            canary_vcus=len(canary_ids),
            baseline_vcus=len(baseline_ids),
            canary_rate=canary_rate,
            baseline_rate=baseline_rate,
            canary_unhealthy=unhealthy_frac(canary_workers),
            baseline_unhealthy=unhealthy_frac(baseline_workers),
        )
        if regression:
            for worker in canary_workers:
                worker.step_overhead_seconds = base_overheads[worker.name]
            rollout.roll_back(
                sim.now,
                f"throughput -{throughput_frac:.3f}, "
                f"unhealthy +{unhealthy_delta:.3f}",
            )
        else:
            for worker in baseline_workers:
                worker.step_overhead_seconds = (
                    base_overheads[worker.name]
                    * release.step_overhead_multiplier
                )
            rollout.promote(sim.now, "clean soak window")

    sim.call_at(t_stage, stage)
    sim.call_at(t_eval, evaluate)
    sim.run()
    return CanaryResult(
        config=config,
        plane=plane,
        cluster=cluster,
        rollout=rollout,
        requests=requests,
        end_time=sim.now,
        scorecard=build_scorecard(plane, cluster, rollout, verdict),
    )
