"""The scenario catalog: every deployment-narrative claim as an experiment.

The paper's Section 5 story -- canary firmware rollouts, correlated
outages under capped repair, sixteen months of post-launch tuning, and
demand-mix disturbances -- lives here as one declarative catalog.  Each
entry names a registered runner experiment (grids, seeds, schema
fields, source modules) so ``repro-bench run`` and CI consume the same
single source of truth, and :func:`scorecard_keys` dispatches to the
right scenario module's static key set for the smoke-gate diffs.

This module is deliberately import-light (the registry contract: a
cache-hot ``repro-bench run`` never touches the cluster simulator); the
heavy scenario modules are imported lazily inside the unit runners and
the key dispatch.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, List, Tuple

#: Bump when any catalog entry's grid/seed/schema contract changes.
CATALOG_VERSION = 1

# --------------------------------------------------------------------- #
# Figure 9 replay settings: the single source of truth shared by
# runner/experiments.py, benchmarks/test_fig9_scaling.py, and the
# tuning-timeline experiment below (they used to duplicate these under
# "must match" comments).

FIG9_MONTHS = 12
FIG9_SEED = 5
FIG9_HORIZON_SECONDS = 80.0
FIG9_BASE_VCU_WORKERS = 6

# --------------------------------------------------------------------- #
# Canary firmware rollout (Section 5's deployment discipline).

CANARY_SEED = 17
CANARY_HORIZON_SECONDS = 600.0
CANARY_SMOKE_HORIZON_SECONDS = 240.0
#: Both release candidates run in both grids: rc1 carries the regression
#: the rollback path must catch, rc2 exercises the promote path.
CANARY_CANDIDATES: Tuple[str, ...] = ("fw-1.1.0-rc1", "fw-1.1.0-rc2")

# --------------------------------------------------------------------- #
# Correlated-outage chaos campaign (fleet mode, capped repair).

CHAOS_SEED = 19
CHAOS_HORIZON_SECONDS = 900.0
CHAOS_SMOKE_HORIZON_SECONDS = 360.0
#: (blast_hosts, repair_cap) sweep: blast radius x repair capacity.
CHAOS_SWEEP: Tuple[Tuple[int, int], ...] = ((2, 1), (2, 4), (5, 1), (5, 4))
CHAOS_SMOKE_SWEEP: Tuple[Tuple[int, int], ...] = ((2, 1), (5, 4))

# --------------------------------------------------------------------- #
# Figure 9/10 tuning timeline (16 months of launch-and-iterate).

TIMELINE_SEED = FIG9_SEED
TIMELINE_MONTHS = 16
TIMELINE_SMOKE_MONTHS: Tuple[int, ...] = (1, 8, 16)
TIMELINE_SMOKE_HORIZON_SECONDS = 40.0
#: Nominal VCU-vs-software bitrate gap at launch (Figure 10's month-0
#: intercepts); the longitudinal curve applies the rate-control
#: efficiency decay on top.
NOMINAL_LAUNCH_GAP_PCT: Dict[str, float] = {"h264": 8.0, "vp9": 12.0}

# --------------------------------------------------------------------- #
# Popularity-surge / live-mix-shift demand disturbances.

SURGE_SEED = 23
SURGE_DAY_SECONDS = 3600.0
SURGE_SMOKE_DAY_SECONDS = 900.0
SURGE_SCENARIOS: Tuple[str, ...] = ("popularity-surge", "live-mix-shift")


def canary_grid(smoke: bool = False) -> List[Dict[str, Any]]:
    horizon = CANARY_SMOKE_HORIZON_SECONDS if smoke else CANARY_HORIZON_SECONDS
    return [
        {
            "candidate": candidate,
            "horizon_seconds": horizon,
            "scenario_seed": CANARY_SEED,
        }
        for candidate in CANARY_CANDIDATES
    ]


def chaos_grid(smoke: bool = False) -> List[Dict[str, Any]]:
    horizon = CHAOS_SMOKE_HORIZON_SECONDS if smoke else CHAOS_HORIZON_SECONDS
    sweep = CHAOS_SMOKE_SWEEP if smoke else CHAOS_SWEEP
    return [
        {
            "blast_hosts": blast,
            "repair_cap": cap,
            "horizon_seconds": horizon,
            "scenario_seed": CHAOS_SEED,
        }
        for blast, cap in sweep
    ]


def timeline_grid(smoke: bool = False) -> List[Dict[str, Any]]:
    months = TIMELINE_SMOKE_MONTHS if smoke else range(1, TIMELINE_MONTHS + 1)
    horizon = TIMELINE_SMOKE_HORIZON_SECONDS if smoke else FIG9_HORIZON_SECONDS
    return [
        {
            "month": month,
            "workload_seed": TIMELINE_SEED,
            "horizon_seconds": horizon,
            "base_vcu_workers": FIG9_BASE_VCU_WORKERS,
        }
        for month in months
    ]


def surge_grid(smoke: bool = False) -> List[Dict[str, Any]]:
    day = SURGE_SMOKE_DAY_SECONDS if smoke else SURGE_DAY_SECONDS
    return [
        {
            "scenario": scenario,
            "day_seconds": day,
            "scenario_seed": SURGE_SEED,
        }
        for scenario in SURGE_SCENARIOS
    ]


# --------------------------------------------------------------------- #
# The tuning-timeline scorecard (the one scenario whose run logic lives
# here: it composes two existing subsystems rather than owning one).

#: Bump when the timeline scorecard's key set or semantics change.
TIMELINE_SCORECARD_VERSION = 1

_TIMELINE_FIELDS: Tuple[str, ...] = (
    "schema_version",
    "month",
    "throughput_mpix_s",
    "total_megapixels",
    "decoder_util",
    "encoder_util",
    "vcu_workers",
    "rc_efficiency.h264",
    "rc_efficiency.vp9",
    "bitrate_vs_software.h264",
    "bitrate_vs_software.vp9",
    "milestones_shipped",
)


def timeline_scorecard_keys() -> Tuple[str, ...]:
    """The exact, sorted key set every timeline scorecard carries."""
    return tuple(sorted(_TIMELINE_FIELDS))


def bitrate_vs_software_pct(codec: str, month: float) -> float:
    """Figure 10's y-axis: VCU bitrate at iso-quality vs software, in %.

    The launch gap shrinks with the rate-control efficiency decay; H.264
    crosses below 0% (tuned hardware beats software), VP9 approaches
    parity -- exactly the curves the paper plots.
    """
    from repro.codec.tuning import rate_control_efficiency

    gap = NOMINAL_LAUNCH_GAP_PCT[codec]
    efficiency = rate_control_efficiency(codec, month)
    return ((1.0 + gap / 100.0) * efficiency - 1.0) * 100.0


def run_tuning_month(
    month: int,
    workload_seed: int,
    horizon_seconds: float,
    base_vcu_workers: int,
) -> Dict[str, Any]:
    """One longitudinal point: cluster replay + rate-control position.

    Throughput/utilization comes from the Figure 9 cluster replay at
    this month's deployment state; the bitrate trajectory is the
    Figure 10 analytic overlay (real iso-quality encodes are a
    benchmark, not an experiment unit).
    """
    from repro.cluster.timeline import default_timeline, run_month
    from repro.codec.tuning import milestones_through, rate_control_efficiency

    config = default_timeline(month)[-1]
    result = run_month(
        config,
        base_vcu_workers=base_vcu_workers,
        horizon_seconds=horizon_seconds,
        seed=workload_seed,
    )
    card: Dict[str, Any] = {
        "schema_version": TIMELINE_SCORECARD_VERSION,
        "month": result.month,
        "throughput_mpix_s": round(result.throughput_mpix_s, 4),
        "total_megapixels": round(result.total_megapixels, 3),
        "decoder_util": round(result.decoder_utilization, 5),
        "encoder_util": round(result.encoder_utilization, 5),
        "vcu_workers": result.vcu_workers,
        "rc_efficiency.h264": round(rate_control_efficiency("h264", month), 6),
        "rc_efficiency.vp9": round(rate_control_efficiency("vp9", month), 6),
        "bitrate_vs_software.h264": round(
            bitrate_vs_software_pct("h264", month), 4
        ),
        "bitrate_vs_software.vp9": round(
            bitrate_vs_software_pct("vp9", month), 4
        ),
        "milestones_shipped": len(milestones_through(month)),
    }
    if tuple(sorted(card)) != timeline_scorecard_keys():
        raise RuntimeError("scorecard keys drifted from timeline_scorecard_keys()")
    return dict(sorted(card.items()))


# --------------------------------------------------------------------- #
# The catalog itself.


@dataclass(frozen=True)
class CatalogEntry:
    """One registered scenario experiment's declarative contract."""

    name: str
    title: str
    seed: int
    #: The unit-result keys beyond "scorecard" (the arm parameters).
    arm_fields: Tuple[str, ...]
    #: Dotted modules fingerprinting the experiment's code for the cache.
    sources: Tuple[str, ...]


CATALOG: Tuple[CatalogEntry, ...] = (
    CatalogEntry(
        name="canary-rollout",
        title="Firmware canary rollout — regression detection and rollback",
        seed=CANARY_SEED,
        arm_fields=("candidate",),
        sources=("repro.control.canary",),
    ),
    CatalogEntry(
        name="chaos-campaign",
        title="Correlated-outage chaos campaign — blast radius × repair capacity",
        seed=CHAOS_SEED,
        arm_fields=("blast_hosts", "repair_cap"),
        sources=("repro.control.chaos",),
    ),
    CatalogEntry(
        name="tuning-timeline",
        title="Figures 9/10 — 16-month launch-and-iterate tuning timeline",
        seed=TIMELINE_SEED,
        arm_fields=("month",),
        sources=("repro.control.catalog",),
    ),
    CatalogEntry(
        name="surge-mix",
        title="Demand disturbances — popularity surge and live mix shift",
        seed=SURGE_SEED,
        arm_fields=("scenario",),
        sources=("repro.control.surge",),
    ),
)

#: The registry group every catalog experiment is registered under.
CATALOG_GROUP = "catalog"


def catalog_names() -> Tuple[str, ...]:
    """Every catalog experiment name, in declaration order."""
    return tuple(entry.name for entry in CATALOG)


def scorecard_keys(name: str) -> Tuple[str, ...]:
    """The static scorecard key set for one catalog experiment.

    Lazy dispatch: resolving a key set must not import the heavy
    scenario modules until a gate actually asks for it.
    """
    if name == "canary-rollout":
        from repro.control.canary import scorecard_keys as keys

        return keys()
    if name == "chaos-campaign":
        from repro.control.chaos import scorecard_keys as keys

        return keys()
    if name == "tuning-timeline":
        return timeline_scorecard_keys()
    if name == "surge-mix":
        from repro.control.surge import scorecard_keys as keys

        return keys()
    known = ", ".join(catalog_names())
    raise KeyError(f"unknown catalog experiment {name!r}; known: {known}")
