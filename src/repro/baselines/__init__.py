"""Baseline system models: the dual-socket Skylake and the 4x Nvidia T4.

These are the comparison points of Table 1.  Neither machine is available
here, so each is an analytic throughput model anchored to the paper's
measurements (Skylake: 714 / 154 Mpix/s for H.264 / VP9 offline two-pass
SOT; T4: 621 Mpix/s H.264 per card, no VP9 encode) with resolution
scaling calibrated to the paper's secondary anchors (a 150-frame 2160p
VP9 chunk costs over a CPU-hour, Section 4.5).
"""

from repro.baselines.cpu import SkylakeSystem
from repro.baselines.gpu import GpuSystem

__all__ = ["SkylakeSystem", "GpuSystem"]
