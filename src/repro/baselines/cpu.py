"""The software-encoding baseline: a dual-socket Intel Skylake server.

Throughput model: per-logical-core pixel rates at the 1080p reference
point, scaled by a per-codec resolution exponent.  VP9's exponent is
steep -- libvpx at production quality slows superlinearly with pixel
count -- which is what makes 2160p VP9 software encoding "infeasible at
upload time" (Section 4.5: a 150-frame 2160p chunk takes ~15 wall-clock
minutes and over a CPU-hour).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict

from repro.video.frame import Resolution, resolution

#: Machine-level vbench-mix offline two-pass SOT throughput (Table 1).
_VBENCH_THROUGHPUT_MPIX_S: Dict[str, float] = {"h264": 714.0, "vp9": 154.0}

#: Slowdown exponents: rate(res) = rate_1080p * (pixels/1080p)^-alpha.
_RESOLUTION_EXPONENT: Dict[str, float] = {"h264": 0.30, "vp9": 1.08}

#: Active power draw (idle subtracted) under full encoding load; VP9's
#: vector-heavy search pushes the package harder than x264.
_ACTIVE_WATTS: Dict[str, float] = {"h264": 360.0, "vp9": 620.0}


@dataclass(frozen=True)
class SkylakeSystem:
    """Dual-socket Skylake, 384 GiB DRAM, ~100 usable logical cores."""

    logical_cores: int = 100
    vbench_throughput_mpix_s: Dict[str, float] = field(
        default_factory=lambda: dict(_VBENCH_THROUGHPUT_MPIX_S)
    )
    resolution_exponent: Dict[str, float] = field(
        default_factory=lambda: dict(_RESOLUTION_EXPONENT)
    )
    active_watts: Dict[str, float] = field(default_factory=lambda: dict(_ACTIVE_WATTS))

    def machine_throughput(self, codec: str, res: Resolution = None) -> float:
        """Offline two-pass SOT throughput in Mpix/s at a resolution.

        Without a resolution this returns the vbench-mix figure (Table 1).
        """
        base = self._vbench(codec)
        if res is None:
            return base
        # The slowdown is superlinear only *above* the 1080p reference
        # point (bigger search windows, worse cache behaviour); below it
        # software throughput per pixel is roughly flat.
        ref = resolution("1080p")
        if res.pixels <= ref.pixels:
            return base
        scale = (res.pixels / ref.pixels) ** (-self.resolution_exponent[codec])
        return base * scale

    def per_core_throughput(self, codec: str, res: Resolution = None) -> float:
        return self.machine_throughput(codec, res) / self.logical_cores

    def encode_core_seconds(self, codec: str, res: Resolution, frames: int) -> float:
        """CPU core-seconds to encode ``frames`` frames at ``res``."""
        pixels = res.pixels * frames / 1e6  # Mpix
        return pixels / self.per_core_throughput(codec, res)

    def chunk_wall_seconds(
        self, codec: str, res: Resolution, frames: int, cores: int
    ) -> float:
        """Wall-clock time for one chunk on a bounded core allocation.

        Software encoders do not scale perfectly across cores; a 75%
        parallel efficiency reflects chunk-level threading limits.
        """
        if cores < 1:
            raise ValueError("cores must be >= 1")
        core_seconds = self.encode_core_seconds(codec, res, frames)
        return core_seconds / (cores * 0.75)

    def power_watts(self, codec: str) -> float:
        return self.active_watts[codec]

    def vp9_h264_cost_ratio(self) -> float:
        """How much more expensive VP9 software encoding is (paper: 6-8x
        at production resolutions; the vbench mix shows 4.6x)."""
        return self._vbench("h264") / self._vbench("vp9")

    def _vbench(self, codec: str) -> float:
        try:
            return self.vbench_throughput_mpix_s[codec]
        except KeyError:
            raise ValueError(f"unknown codec {codec!r}") from None
