"""The GPU baseline: 4x Nvidia T4 in the dual-socket host.

The T4's NVENC block encodes H.264 (and decodes VP9) but has no VP9
*encoder*, and its quality tops out around libx264's medium preset
(Section 5), so the paper treats it as a throughput-only alternative.
Per-card throughput is anchored to Table 1 (2,484 Mpix/s across 4 cards).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.video.frame import Resolution


@dataclass(frozen=True)
class GpuSystem:
    """A host with ``cards`` Nvidia T4 accelerators."""

    cards: int = 4
    #: Offline SOT H.264 throughput per card, Mpix/s (Table 1 / 4).
    h264_mpix_s_per_card: float = 621.0
    #: NVENC quality relative to libx264: BD-rate penalty versus the
    #: medium preset (commodity encoders compare to superfast..medium).
    bd_rate_penalty_vs_libx264: float = 25.0

    def machine_throughput(self, codec: str, res: Optional[Resolution] = None) -> float:
        """Mpix/s for the whole system; VP9 encoding is unsupported."""
        if codec == "h264":
            return self.h264_mpix_s_per_card * self.cards
        if codec == "vp9":
            raise ValueError("the T4 has no VP9 encoder (Table 1 dash)")
        raise ValueError(f"unknown codec {codec!r}")

    def supports(self, codec: str) -> bool:
        return codec == "h264"

    def mot_supported(self) -> bool:
        """The GPU software stack used in the comparison had no MOT path
        (Section 4.1: "our production workload is largely MOT, which was
        not supported on our GPU baseline")."""
        return False
