"""Command-line interface: run the paper's experiments from a shell.

``repro-bench <command>`` (or ``python -m repro.cli <command>``) exposes
the fast analytic experiments directly; the full benchmark suite stays in
``pytest benchmarks/``.

Commands:
    table1      Table 1 throughput + perf/TCO rows
    table2      Table 2 host-resource rows
    balance     Appendix A network & DRAM sizing
    bdrate      BD-rate sweep on a title subset (real encodes; slow-ish)
    timeline    Figure 9a/9c deployment-timeline replay
    live        Section 4.5 live-latency comparison
    gaming      Section 4.5 Stadia frame-budget check
    report      render a fleet report from a JSONL trace dump
    run         sharded deterministic experiment runner (repro.runner)
    lint        simulation-safety static analyzer (repro.analysis)

Heavy imports happen inside each command handler, so ``report`` and
``lint`` (pure Python) run without pulling in the numeric stack.
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional


def _cmd_table1(args: argparse.Namespace) -> None:
    from repro.baselines import GpuSystem, SkylakeSystem
    from repro.metrics import format_table
    from repro.tco import SKYLAKE_COST, T4_SYSTEM_COST, VCU_SYSTEM_8, VCU_SYSTEM_20, perf_per_tco
    from repro.vcu.spec import DEFAULT_VCU_SPEC
    from repro.vcu.throughput import vbench_sot_system_throughput

    cpu, gpu = SkylakeSystem(), GpuSystem()
    rows = []
    for name, cost, get in (
        ("Skylake", SKYLAKE_COST, lambda c: cpu.machine_throughput(c)),
        ("4xNvidia T4", T4_SYSTEM_COST,
         lambda c: gpu.machine_throughput(c) if gpu.supports(c) else None),
        ("8xVCU", VCU_SYSTEM_8,
         lambda c: vbench_sot_system_throughput(DEFAULT_VCU_SPEC, c, 8)),
        ("20xVCU", VCU_SYSTEM_20,
         lambda c: vbench_sot_system_throughput(DEFAULT_VCU_SPEC, c, 20)),
    ):
        row = [name]
        for codec in ("h264", "vp9"):
            throughput = get(codec)
            if throughput is None:
                row += ["-", "-"]
            else:
                base = cpu.machine_throughput(codec)
                row += [round(throughput), round(perf_per_tco(throughput, cost, base), 1)]
        rows.append(row)
    print(format_table(
        ["System", "H.264 Mpix/s", "H.264 perf/TCO", "VP9 Mpix/s", "VP9 perf/TCO"],
        rows, title="Table 1 (offline two-pass SOT)",
    ))


def _cmd_table2(args: argparse.Namespace) -> None:
    from repro.balance import host_resource_table
    from repro.metrics import format_table

    rows = [
        [r.use, round(r.logical_cores, 1), round(r.dram_bandwidth_gbps)]
        for r in host_resource_table(args.gpix)
    ]
    print(format_table(
        ["Use", "Logical cores", "DRAM Gbps"], rows,
        title=f"Table 2 at {args.gpix:g} Gpixel/s",
    ))


def _cmd_balance(args: argparse.Namespace) -> None:
    from repro.balance import (
        NetworkBalance,
        fleet_dram_requirement,
        mot_footprint_mib,
        sot_footprint_mib,
        vcu_ceiling_per_host,
    )
    from repro.vcu.spec import EncodingMode

    nb = NetworkBalance()
    print(f"network limit: raw {nb.raw_limit_gpix_s:.0f} Gpixel/s, "
          f"effective {nb.effective_limit_gpix_s:.0f} Gpixel/s per host")
    print(f"VCU ceilings: realtime "
          f"{vcu_ceiling_per_host(EncodingMode.LOW_LATENCY_ONE_PASS)}, "
          f"offline {vcu_ceiling_per_host(EncodingMode.OFFLINE_TWO_PASS)}")
    print(f"2160p footprints: MOT {mot_footprint_mib():.0f} MiB, "
          f"SOT {sot_footprint_mib():.0f} MiB")
    for mode in (EncodingMode.LOW_LATENCY_ONE_PASS, EncodingMode.OFFLINE_TWO_PASS):
        req = fleet_dram_requirement(mode)
        print(f"  {mode.value}: needs {req.required_gib:.0f} GiB, "
              f"8 GiB/VCU provides {req.provided_gib_8g:.0f} GiB "
              f"(fits: {req.fits_8gib}; 4 GiB would fit: {req.fits_4gib})")


def _cmd_bdrate(args: argparse.Namespace) -> None:
    from repro.harness.rd import suite_bd_rates, suite_rd_curves
    from repro.metrics import format_table
    from repro.video.vbench import vbench_video

    titles = [vbench_video(name) for name in args.titles.split(",")]
    curves = suite_rd_curves(
        titles=titles, frame_count=args.frames, proxy_height=args.proxy_height
    )
    summary = suite_bd_rates(curves)
    print(format_table(
        ["Comparison", "BD-rate %", "Paper"],
        [
            ["VCU-VP9 vs libx264", round(summary.vcu_vp9_vs_libx264, 1), "~-30"],
            ["VCU-H264 vs libx264", round(summary.vcu_h264_vs_libx264, 1), "~+11.5"],
            ["VCU-VP9 vs libvpx", round(summary.vcu_vp9_vs_libvpx, 1), "~+18"],
        ],
        title=f"BD-rates on: {args.titles}",
    ))


def _cmd_timeline(args: argparse.Namespace) -> None:
    from repro.cluster.timeline import run_timeline
    from repro.metrics import format_table

    results = run_timeline(args.months, seed=args.seed, horizon_seconds=args.horizon)
    base = results[0].throughput_mpix_s or 1.0
    print(format_table(
        ["Month", "Normalized throughput", "Decoder util", "VCU workers"],
        [[r.month, round(r.throughput_mpix_s / base, 2),
          round(r.decoder_utilization, 2), r.vcu_workers] for r in results],
        title="Figure 9a/9c deployment timeline",
    ))


def _cmd_live(args: argparse.Namespace) -> None:
    from repro.workloads.live import (
        LiveStream,
        end_to_end_latency_seconds,
        simulate_live_stream,
    )

    stream = LiveStream("cli")
    for name, use_vcu in (("software", False), ("VCU", True)):
        results = simulate_live_stream(stream, args.duration, use_vcu=use_vcu, seed=1)
        latency = end_to_end_latency_seconds(results, stream.chunk_seconds)
        print(f"{name:8s}: end-to-end latency {latency:5.1f} s")


def _cmd_gaming(args: argparse.Namespace) -> None:
    from repro.workloads.gaming import GamingSession, gaming_latency_ms, meets_frame_budget

    session = GamingSession(resolution_name=args.resolution, fps=args.fps)
    for name, use_vcu in (("VCU", True), ("software", False)):
        ms = gaming_latency_ms(session, use_vcu=use_vcu)
        verdict = "meets" if meets_frame_budget(session, use_vcu) else "MISSES"
        print(f"{name:8s}: {ms:6.1f} ms/frame ({verdict} the "
              f"{session.frame_budget_ms:.1f} ms budget)")


def _cmd_report(args: argparse.Namespace) -> int:
    from repro.obs.report import load, render, summarize

    try:
        spans = load(args.trace)
    except OSError as exc:
        print(f"report: cannot read trace {args.trace!r}: {exc}", file=sys.stderr)
        return 2
    print(render(summarize(spans), timeline_limit=args.timeline))
    return 0


def _cmd_perf(args: argparse.Namespace) -> int:
    from repro import perfbench

    report = perfbench.write_report(args.out, smoke=args.smoke, fleet=args.fleet)
    print(perfbench.render(report))
    print(f"wrote {args.out}")
    return 0


def _cmd_run(args: argparse.Namespace) -> int:
    from repro.runner import (
        ResultCache,
        build_manifest,
        manifest_text,
        render_markdown,
        render_stats,
        run_experiments,
        write_manifest,
    )
    from repro.runner.experiments import default_registry

    registry = default_registry()
    cache = None
    if not args.no_cache:
        from pathlib import Path

        cache = ResultCache(Path(args.cache_dir))
    names = list(args.experiments) + list(args.only)
    try:
        result = run_experiments(
            registry,
            names=names,
            jobs=args.jobs,
            cache=cache,
            smoke=args.smoke,
        )
    except KeyError as exc:
        print(f"run: {exc.args[0]}", file=sys.stderr)
        return 2
    manifest = build_manifest(result.runs)
    write_manifest(args.out, manifest)
    if args.json:
        print(manifest_text(manifest), end="")
    else:
        print(render_markdown(manifest))
        print(render_stats(result.stats))
    print(f"wrote {args.out}", file=sys.stderr)
    return 0


def _cmd_platform(args: argparse.Namespace) -> int:
    import json

    from repro.control.scenario import ScenarioConfig, run_global_platform_day

    config = ScenarioConfig(
        day_seconds=args.day_seconds,
        outage=not args.no_outage,
        failure_rate=args.failure_rate,
    )
    result = run_global_platform_day(config, seed=args.seed)
    if args.json:
        print(json.dumps(result.scorecard, indent=2, sort_keys=True))
    else:
        print(f"global platform day: {config.day_seconds:g} s, "
              f"outage={'on' if config.outage else 'off'}, seed={args.seed}")
        for key, value in result.scorecard.items():
            print(f"  {key:32s} {value}")
    if args.ledger:
        result.plane.ledger.write_jsonl(args.ledger)
        print(f"wrote {args.ledger}", file=sys.stderr)
    return 0 if result.scorecard["conservation.ok"] else 1


def _cmd_ladder(args: argparse.Namespace) -> int:
    import json

    from repro.control.live_ladder import LiveLadderConfig, run_live_ladder

    config = LiveLadderConfig(
        horizon_seconds=args.horizon_seconds,
        outage=not args.no_outage,
        hang_rate_per_hour=args.hang_rate,
        corruption_rate_per_hour=args.corruption_rate,
    )
    result = run_live_ladder(config, seed=args.seed)
    if args.json:
        print(json.dumps(result.scorecard, indent=2, sort_keys=True))
    else:
        print(f"live ladder: {config.horizon_seconds:g} s, "
              f"outage={'on' if config.outage else 'off'}, seed={args.seed}")
        for key, value in result.scorecard.items():
            print(f"  {key:32s} {value}")
    return 0 if result.scorecard["conservation.ok"] else 1


def _changed_python_targets(root: object, base: str) -> Optional[List[str]]:
    """Changed ``.py`` paths (vs ``base``) that fall under the lint targets.

    Returns None when git is unavailable or the diff fails -- the caller
    falls back to a full run rather than silently linting nothing.
    """
    import subprocess

    from repro.analysis.core import DEFAULT_TARGETS

    try:
        proc = subprocess.run(
            ["git", "diff", "--name-only", base, "--"],
            cwd=root, capture_output=True, text=True, timeout=30,
        )
    except (OSError, subprocess.TimeoutExpired):
        return None
    if proc.returncode != 0:
        return None
    changed: List[str] = []
    for line in proc.stdout.splitlines():
        path = line.strip()
        if not path.endswith(".py"):
            continue
        top = path.split("/", 1)[0]
        if path in DEFAULT_TARGETS or top in DEFAULT_TARGETS:
            changed.append(path)
    return sorted(set(changed))


def _cmd_lint(args: argparse.Namespace) -> int:
    import json as json_mod
    from pathlib import Path

    from repro.analysis import (
        DEFAULT_BASELINE_NAME,
        Baseline,
        graph_document,
        load_project,
        render_dot,
        render_json,
        render_text,
        run_lint,
    )

    root = Path(args.root).resolve()

    if args.graph:
        project, parse_errors = load_project(root)
        for error in parse_errors:
            print(f"lint: {error}", file=sys.stderr)
        if args.json:
            print(json_mod.dumps(graph_document(project), indent=2, sort_keys=True))
        else:
            print(render_dot(project), end="")
        return 2 if parse_errors else 0

    targets = args.paths or None
    if args.changed_only:
        changed = _changed_python_targets(root, args.base)
        if changed is None:
            print("lint: --changed-only needs a git checkout; "
                  "linting everything", file=sys.stderr)
        elif not changed:
            print(f"lint: no python files changed vs {args.base}; nothing to do")
            return 0
        else:
            targets = changed

    baseline = Baseline.empty()
    use_baseline = args.baseline or args.baseline_file is not None
    baseline_path = root / (args.baseline_file or DEFAULT_BASELINE_NAME)
    if use_baseline and not args.update_baseline:
        if not baseline_path.exists():
            print(f"lint: baseline file not found: {baseline_path}",
                  file=sys.stderr)
            return 2
        baseline = Baseline.load(baseline_path)

    result = run_lint(root, targets=targets, baseline=baseline)

    if args.update_baseline:
        Baseline.from_findings(result.findings).save(baseline_path)
        print(f"wrote {len(result.findings)} finding(s) to {baseline_path}")
        return 0

    print(render_json(result) if args.json else render_text(result))
    return 0 if result.clean else 1


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-bench",
        description="Run experiments from the warehouse-scale video "
                    "acceleration reproduction.",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("table1", help="Table 1 throughput & perf/TCO").set_defaults(
        func=_cmd_table1
    )

    table2 = sub.add_parser("table2", help="Table 2 host resources")
    table2.add_argument("--gpix", type=float, default=153.0)
    table2.set_defaults(func=_cmd_table2)

    sub.add_parser("balance", help="Appendix A balance analysis").set_defaults(
        func=_cmd_balance
    )

    bdrate = sub.add_parser("bdrate", help="BD-rate sweep (real encodes)")
    bdrate.add_argument("--titles", default="desktop,house,holi")
    bdrate.add_argument("--frames", type=int, default=6)
    bdrate.add_argument("--proxy-height", type=int, default=54)
    bdrate.set_defaults(func=_cmd_bdrate)

    timeline = sub.add_parser("timeline", help="Figure 9 deployment replay")
    timeline.add_argument("--months", type=int, default=12)
    timeline.add_argument("--seed", type=int, default=5)
    timeline.add_argument("--horizon", type=float, default=60.0)
    timeline.set_defaults(func=_cmd_timeline)

    live = sub.add_parser("live", help="live-latency comparison")
    live.add_argument("--duration", type=float, default=120.0)
    live.set_defaults(func=_cmd_live)

    gaming = sub.add_parser("gaming", help="Stadia frame-budget check")
    gaming.add_argument("--resolution", default="2160p")
    gaming.add_argument("--fps", type=float, default=60.0)
    gaming.set_defaults(func=_cmd_gaming)

    report = sub.add_parser("report", help="render a fleet report from a trace")
    report.add_argument("trace", help="JSONL trace dump (TraceLog.write_jsonl)")
    report.add_argument("--timeline", type=int, default=30,
                        help="max health-timeline rows to show")
    report.set_defaults(func=_cmd_report)

    perf = sub.add_parser(
        "perf", help="hot-path perf harness (fast vs reference paths)"
    )
    perf.add_argument("--smoke", action="store_true",
                      help="small workload for CI regression signal")
    perf.add_argument("--fleet", action="store_true",
                      help="run the fleet-day bench at full 50k-VCU scale")
    perf.add_argument("--out", default="BENCH_PR8.json",
                      help="where to write the JSON report")
    perf.set_defaults(func=_cmd_perf)

    run = sub.add_parser(
        "run",
        help="sharded deterministic experiment runner (repro.runner)",
    )
    run.add_argument(
        "experiments", nargs="*",
        help="experiment names to run (default: every registered experiment)",
    )
    run.add_argument(
        "--only", action="append", default=[], metavar="NAME",
        help="run only this experiment (repeatable; combines with "
             "positional names)",
    )
    run.add_argument("--jobs", type=int, default=1,
                     help="worker processes to shard units across")
    run.add_argument("--cache-dir", default=".repro-cache",
                     help="content-addressed result cache directory")
    run.add_argument("--no-cache", action="store_true",
                     help="recompute every unit, bypassing the cache")
    run.add_argument("--smoke", action="store_true",
                     help="reduced grids for a quick CI signal")
    run.add_argument("--out", default="BENCH_PR10.json",
                     help="where to write the manifest")
    run.add_argument("--json", action="store_true",
                     help="print the manifest JSON instead of markdown")
    run.set_defaults(func=_cmd_run)

    platform = sub.add_parser(
        "platform",
        help="global-platform-day control-plane scenario (SLO scorecard)",
    )
    platform.add_argument("--day-seconds", type=float, default=3600.0,
                          help="length of the compressed diurnal cycle")
    platform.add_argument("--seed", type=int, default=11)
    platform.add_argument("--no-outage", action="store_true",
                          help="run the control arm (no regional outage)")
    platform.add_argument("--failure-rate", type=float, default=0.02,
                          help="per-attempt execution fault probability")
    platform.add_argument("--json", action="store_true",
                          help="print the scorecard as JSON")
    platform.add_argument("--ledger", default=None, metavar="FILE",
                          help="also dump the job transition log as JSONL")
    platform.set_defaults(func=_cmd_platform)

    ladder = sub.add_parser(
        "ladder",
        help="live streaming-ladder scenario (time-to-first-segment "
             "latency scorecard)",
    )
    ladder.add_argument("--horizon-seconds", type=float, default=480.0,
                        help="virtual seconds of demand to generate")
    ladder.add_argument("--seed", type=int, default=13)
    ladder.add_argument("--no-outage", action="store_true",
                        help="skip the mid-run regional outage")
    ladder.add_argument("--hang-rate", type=float, default=0.0,
                        help="VCU hangs per VCU-hour")
    ladder.add_argument("--corruption-rate", type=float, default=0.0,
                        help="VCU corruptions per VCU-hour")
    ladder.add_argument("--json", action="store_true",
                        help="print the scorecard as JSON")
    ladder.set_defaults(func=_cmd_ladder)

    lint = sub.add_parser(
        "lint", help="simulation-safety static analyzer (repro.analysis)"
    )
    lint.add_argument(
        "paths", nargs="*",
        help="files/directories to lint, relative to --root "
             "(default: src tests examples benchmarks setup.py)",
    )
    lint.add_argument("--root", default=".",
                      help="repo root the paths are relative to")
    lint.add_argument(
        "--baseline", action="store_true",
        help="subtract the committed baseline "
             "(lint-baseline.json under --root)",
    )
    lint.add_argument("--baseline-file", default=None, metavar="FILE",
                      help="use FILE as the baseline instead")
    lint.add_argument("--update-baseline", action="store_true",
                      help="rewrite the baseline file from current findings")
    lint.add_argument("--json", action="store_true",
                      help="emit the machine-readable JSON report (with "
                           "--graph: the versioned graph document)")
    lint.add_argument(
        "--graph", action="store_true",
        help="emit the project import graph (DOT, or JSON with --json) "
             "instead of linting",
    )
    lint.add_argument(
        "--changed-only", action="store_true",
        help="per-file rules only on files changed vs --base (whole-"
             "program passes still see the full source tree)",
    )
    lint.add_argument("--base", default="HEAD", metavar="REF",
                      help="git ref --changed-only diffs against "
                           "(default: HEAD, i.e. staged+unstaged work)")
    lint.set_defaults(func=_cmd_lint)
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    return int(args.func(args) or 0)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
