"""The transcoding cluster: work queue, placement, execution, resilience.

This ties the pieces together on the discrete-event engine: step graphs
are submitted to a global work queue, ready steps are placed by the
scheduler onto VCU or CPU workers, execution holds the granted resource
vector for the step's modelled duration, and completions unblock
dependents.  Failure handling follows Section 4.4 as an always-on
resilience loop:

* every VCU step races a **watchdog deadline** (hung devices never
  complete on their own; the watchdog interrupts the step process,
  records a ``HANG`` fault in telemetry, and strikes the worker);
* integrity checks catch most corrupt output and failed steps retry on
  *different* VCUs with **exponential backoff + jitter** (fault
  correlation via the recorded VCU id);
* failures drive a per-worker **health-state machine**
  (HEALTHY -> SUSPECT -> QUARANTINED -> RESCREENING -> HEALTHY|DISABLED)
  with golden-battery rehabilitation, so a transiently-bad device earns
  its way back into service instead of being refused forever;
* correlated failures across a host's VCUs **evict the whole host**
  (fault-domain awareness), and an optional consistent-hash affinity
  policy confines each video's chunks to few VCUs, shrinking the blast
  radius a single bad device can inflict;
* steps that exhaust hardware retries fall back to software transcoding.
"""

from __future__ import annotations

from collections import deque
from contextlib import ExitStack
from dataclasses import dataclass, field
from typing import (
    Callable, Deque, Dict, Generator, Iterable, List, Optional, Sequence, Set,
    Tuple,
)

import numpy as np

from repro import obs
from repro.obs.latency import LadderMetrics
from repro.cluster.health import HealthState
from repro.cluster.metrics import ThroughputWindow, UtilizationTracker
from repro.cluster.scheduler import BinPackingScheduler, SingleSlotScheduler
from repro.cluster.telemetry import FleetTelemetry
from repro.cluster.worker import CpuWorker, VcuWorker
from repro.failures.consistent_hash import (
    ChunkAffinityPolicy,
    ConsistentHashRing,
    chunk_ordinal,
)
from repro.failures.watchdog import (
    BackoffPolicy,
    FaultDomainPolicy,
    FaultDomainTracker,
    WatchdogPolicy,
)
from repro.sim.engine import Simulator
from repro.sim.rng import SeedLike, make_rng
from repro.transcode.pipeline import Step, StepGraph
from repro.vcu.host import VcuHost
from repro.vcu.telemetry import FaultKind


@dataclass
class ClusterStats:
    """Counters and time-series the benchmarks read out."""

    completed_steps: int = 0
    failed_placements: int = 0
    retries: int = 0
    software_fallbacks: int = 0
    #: Subset of software_fallbacks taken eagerly by streaming-ladder low
    #: rungs while hardware was merely busy (not exhausted).
    opportunistic_fallbacks: int = 0
    corrupt_caught: int = 0
    corrupt_escaped: int = 0
    completed_graphs: int = 0
    hangs_detected: int = 0
    workers_quarantined: int = 0
    workers_rehabilitated: int = 0
    workers_disabled: int = 0
    host_evictions: int = 0
    backoff_delay_seconds: float = 0.0
    throughput: ThroughputWindow = field(default_factory=ThroughputWindow)
    per_vcu_megapixels: Dict[str, float] = field(default_factory=dict)
    graph_latencies: List[float] = field(default_factory=list)

    def per_vcu_mpix_per_second(self, now: float, vcu_count: int) -> float:
        span = now - self.throughput.start_time
        if span <= 0 or vcu_count == 0:
            return 0.0
        return self.throughput.total_megapixels / span / vcu_count

    def counter_snapshot(self) -> Dict[str, object]:
        """Every deterministic counter, hashable -- for reproducibility
        checks (two same-seed runs must produce identical snapshots)."""
        return {
            "completed_steps": self.completed_steps,
            "failed_placements": self.failed_placements,
            "retries": self.retries,
            "software_fallbacks": self.software_fallbacks,
            "opportunistic_fallbacks": self.opportunistic_fallbacks,
            "corrupt_caught": self.corrupt_caught,
            "corrupt_escaped": self.corrupt_escaped,
            "completed_graphs": self.completed_graphs,
            "hangs_detected": self.hangs_detected,
            "workers_quarantined": self.workers_quarantined,
            "workers_rehabilitated": self.workers_rehabilitated,
            "workers_disabled": self.workers_disabled,
            "host_evictions": self.host_evictions,
            "backoff_delay_seconds": round(self.backoff_delay_seconds, 9),
            "graph_latencies": tuple(round(l, 9) for l in self.graph_latencies),
            "per_vcu_megapixels": tuple(
                sorted((k, round(v, 9)) for k, v in self.per_vcu_megapixels.items())
            ),
        }


class TranscodeCluster:
    """A cluster of VCU and CPU workers executing step graphs."""

    def __init__(
        self,
        sim: Simulator,
        vcu_workers: Sequence[VcuWorker],
        cpu_workers: Sequence[CpuWorker] = (),
        use_bin_packing: bool = True,
        legacy_slots: int = 4,
        integrity_check_rate: float = 0.95,
        max_hardware_attempts: int = 3,
        software_fallback: bool = True,
        seed: SeedLike = 0,
        watchdog: Optional[WatchdogPolicy] = WatchdogPolicy(),
        backoff: Optional[BackoffPolicy] = BackoffPolicy(),
        fault_domain: Optional[FaultDomainPolicy] = FaultDomainPolicy(),
        affinity_placement: bool = False,
        affinity_size: int = 3,
        on_graph_done: Optional[Callable[[StepGraph], None]] = None,
        telemetry_mode: str = "exact",
        telemetry_sample_seconds: float = 5.0,
        fleet_mode: bool = False,
    ):
        if not 0.0 <= integrity_check_rate <= 1.0:
            raise ValueError("integrity_check_rate must be in [0, 1]")
        if telemetry_mode not in ("exact", "sampled"):
            raise ValueError(
                f"telemetry_mode must be 'exact' or 'sampled', got {telemetry_mode!r}"
            )
        self.sim = sim
        self.vcu_workers = list(vcu_workers)
        self.cpu_workers = list(cpu_workers)
        if use_bin_packing:
            self.vcu_scheduler = BinPackingScheduler(self.vcu_workers)
        else:
            self.vcu_scheduler = SingleSlotScheduler(
                self.vcu_workers, slots_per_worker=legacy_slots
            )
        self.cpu_scheduler = BinPackingScheduler(self.cpu_workers)
        self.integrity_check_rate = integrity_check_rate
        self.max_hardware_attempts = max_hardware_attempts
        self.software_fallback = software_fallback
        self.watchdog = watchdog
        self.backoff = backoff
        self._fault_domains = (
            FaultDomainTracker(fault_domain) if fault_domain is not None else None
        )
        self._affinity: Optional[ChunkAffinityPolicy] = None
        if affinity_placement and self.vcu_workers:
            ring = ConsistentHashRing([w.name for w in self.vcu_workers])
            self._affinity = ChunkAffinityPolicy(
                ring, affinity_size=min(affinity_size, len(self.vcu_workers))
            )
        #: Invoked with each graph exactly once, at completion time.  The
        #: control plane uses this to close the job-lifecycle loop when a
        #: :class:`~repro.control.plane.ClusterExecutor` backs a site.
        self.on_graph_done = on_graph_done
        #: Invoked once per completed step (streaming-ladder sessions use
        #: this to drive manifest alignment barriers); set post-construction
        #: by :class:`~repro.transcode.streaming.LadderDispatcher`.
        self.on_step_done: Optional[Callable[[Step, bool], None]] = None
        #: When set, segment steps record per-rung queue waits here.
        self.ladder_metrics: Optional[LadderMetrics] = None
        #: ``fleet_mode`` trades bookkeeping exactness guarantees that
        #: only hold under the cluster's own APIs for O(1) hot paths at
        #: 50k-VCU scale: an incrementally maintained availability count
        #: (fed by worker health hooks and the failure-management
        #: notifications) replaces the per-placement fleet scan, and the
        #: throughput window stops retaining per-completion samples.
        #: Direct mutation of worker/host state from outside those APIs
        #: must be followed by :meth:`note_availability_changed`.
        self.fleet_mode = fleet_mode
        self.telemetry_mode = telemetry_mode
        self.stats = ClusterStats(
            throughput=ThroughputWindow(
                start_time=sim.now, keep_samples=not fleet_mode
            )
        )
        # When an observability hub is installed, bind it to this run's
        # virtual clock (and the engine's active-process context) so
        # spans emitted by clockless components -- workers, schedulers,
        # devices -- still carry correct virtual timestamps.
        hub = obs.active()
        if hub is not None:
            hub.bind_clock(lambda: self.sim.now, lambda: self.sim.active_process_name)
            hub.metrics.time_gauge("cluster.encoder_util", sim.now)
            hub.metrics.time_gauge("cluster.decoder_util", sim.now)
        self._rng = make_rng(seed)
        # Lane-segregated pending queues (see _drain_pending); the global
        # arrival sequence number preserves cross-lane FIFO order.
        self._pending_lanes: Dict[str, Deque[Tuple[int, Step, Set[str]]]] = {
            "hw": deque(), "hw_swdec": deque(), "hw_opp": deque(), "cpu": deque(),
        }
        self._arrival_seq = 0
        self._graphs: List[StepGraph] = []
        self._remaining_deps: Dict[int, int] = {}
        self._dependents: Dict[int, List[Step]] = {}
        self._done: Set[int] = set()
        self._graph_of: Dict[int, StepGraph] = {}
        self._graph_remaining: Dict[int, int] = {}
        self._rehabbing: Set[str] = set()
        self.encoder_util = UtilizationTracker(sim.now)
        self.decoder_util = UtilizationTracker(sim.now)
        # Workers that failed the golden battery at bind time enter the
        # same rehabilitation loop as mid-run quarantines: the resilience
        # subsystem is always on, not test-invoked.
        for worker in self.vcu_workers:
            if worker.health is HealthState.QUARANTINED:
                self._note_quarantine(worker)
        # Fleet-scale bookkeeping: an availability mask/count maintained
        # at mutation sites instead of recomputed per placement.  Bind-
        # time quarantines above already happened, so the initial scan
        # reads settled state.
        self._avail_mask: Optional[np.ndarray] = None
        self._available_count = -1
        if fleet_mode:
            self._worker_index = {
                w.name: i for i, w in enumerate(self.vcu_workers)
            }
            self._worker_by_vcu = {w.vcu.vcu_id: w for w in self.vcu_workers}
            self._avail_mask = np.fromiter(
                (w.available() for w in self.vcu_workers),
                dtype=bool,
                count=len(self.vcu_workers),
            )
            self._available_count = int(self._avail_mask.sum())
            for worker in self.vcu_workers:
                worker.on_availability_change = self.note_availability_changed
        self._fleet_telemetry: Optional[FleetTelemetry] = None
        if telemetry_mode == "sampled":
            self._fleet_telemetry = FleetTelemetry(
                self, sample_seconds=telemetry_sample_seconds
            )

    # ------------------------------------------------------------------ #
    # Submission

    def submit(self, graph: StepGraph) -> None:
        """Register a step graph; its ready steps enter the work queue."""
        graph.submitted_at = self.sim.now
        self._graphs.append(graph)
        self._graph_remaining[id(graph)] = len(graph.steps)
        for step in graph.steps:
            self._graph_of[id(step)] = graph
            self._remaining_deps[id(step)] = len(step.depends_on)
            for dep in step.depends_on:
                self._dependents.setdefault(id(dep), []).append(step)
        for step in graph.steps:
            if not step.depends_on:
                self._enqueue(step, set())

    @property
    def pending_count(self) -> int:
        return sum(len(lane) for lane in self._pending_lanes.values())

    @staticmethod
    def _count(name: str, amount: float = 1.0) -> None:
        """Mirror a ClusterStats increment into the installed registry.

        Reduces to one global load + None check when no hub is
        installed, keeping the execution hot path unaffected.
        """
        hub = obs.active()
        if hub is not None:
            hub.count(name, amount)

    # ------------------------------------------------------------------ #
    # Placement

    def _enqueue(self, step: Step, excluded: Set[str]) -> None:
        step.ready_at = self.sim.now
        if not self._try_place(step, excluded):
            seq = self._arrival_seq
            self._arrival_seq = seq + 1
            self._pending_lanes[self._lane_of(step)].append((seq, step, excluded))

    @staticmethod
    def _lane_of(step: Step) -> str:
        """Which head-of-line-blocking lane a pending step waits in.

        Hardware-decode and software-decode transcodes have different
        shapes (millidecode vs host_decode), hence separate lanes; and
        opportunistic ladder rungs can land on either pool, so a blocked
        hw lane must not starve them (and vice versa).
        """
        if step.is_transcode() and not step.software_only:
            if step.fallback_opportunistic:
                return "hw_opp"
            return "hw_swdec" if step.vcu_task.software_decode else "hw"
        return "cpu"

    def _placement_batch(self) -> ExitStack:
        """Scheduler batch contexts for a run of placements (see
        ``BinPackingScheduler.batch``); tolerates schedulers without
        batching (the legacy single-slot model)."""
        stack = ExitStack()
        vcu_batch = getattr(self.vcu_scheduler, "batch", None)
        if vcu_batch is not None:
            stack.enter_context(vcu_batch())
        stack.enter_context(self.cpu_scheduler.batch())
        return stack

    def _drain_pending(self) -> None:
        # Head-of-line blocking per lane: once a step of some shape fails
        # to place, later same-shaped steps in the FIFO will not fit
        # either, so the whole lane sits out the round.  Lanes are kept
        # segregated so a drain touches only the steps it actually
        # attempts -- the old single-FIFO drain popped and re-appended
        # every blocked entry, O(pending) per completion at saturation.
        # Cross-lane order is restored by always attempting the smallest
        # arrival sequence among unblocked lanes, which is exactly the
        # order the single FIFO produced.
        live = [lane for lane in self._pending_lanes.values() if lane]
        if not live:
            return
        with self._placement_batch():
            while live:
                best_at = 0
                for i in range(1, len(live)):
                    if live[i][0][0] < live[best_at][0][0]:
                        best_at = i
                best = live[best_at]
                _, step, excluded = best[0]
                if self._try_place(step, excluded):
                    best.popleft()
                    if not best:
                        del live[best_at]
                else:
                    del live[best_at]  # lane blocked for this round

    def _try_place(self, step: Step, excluded: Set[str]) -> bool:
        if step.is_transcode():
            return self._place_transcode(step, excluded)
        return self._place_cpu(step)

    def _place_transcode(self, step: Step, excluded: Set[str]) -> bool:
        task = step.vcu_task
        if self.fleet_mode and self._available_count > len(excluded):
            # Pigeonhole: more live workers than excluded names means a
            # usable candidate certainly exists -- skip the O(fleet)
            # scans that only decide emptiness and exclusion resets.
            has_usable = True
        else:
            candidates = [w for w in self.vcu_workers if w.available()]
            usable = [w for w in candidates if w.name not in excluded]
            if candidates and not usable:
                # Every live VCU is on this step's exclusion list -- e.g.
                # the fleet's lone worker failed once and has since been
                # rehabilitated.  Starvation is worse than weakened fault
                # correlation: retry anywhere.
                excluded = set()
                usable = candidates
            has_usable = bool(usable)
        hardware_exhausted = (
            step.software_only
            or step.attempts >= self.max_hardware_attempts
            or not has_usable
        )
        if not hardware_exhausted:
            # Request shape depends on the target worker type only through
            # the spec, identical across the fleet; probe with any worker.
            request = self.vcu_workers[0].request_for(task)
            preference = None
            if self._affinity is not None:
                preference = self._affinity.placement_order(
                    step.video_id, chunk_ordinal(step.step_id), excluded
                )
            worker = self.vcu_scheduler.place(
                request, excluded=excluded, preference=preference
            )
            if worker is not None:
                self._start_vcu_step(step, worker, request, excluded)
                return True
            if step.fallback_opportunistic:
                # Streaming-ladder low rungs: when every hardware slot is
                # busy, a CPU encode *now* beats a VCU encode later --
                # the rung is cheap and the manifest barrier is waiting.
                return self._try_software_fallback(step, opportunistic=True)
            return False  # wait for a VCU to free up
        if self.software_fallback and self.cpu_workers:
            return self._try_software_fallback(step, opportunistic=False)
        # No hardware path remains and no software fallback exists: a
        # genuine placement failure, not a wait-for-capacity event.
        self.stats.failed_placements += 1
        self._count("cluster.failed_placements")
        return False

    def _try_software_fallback(self, step: Step, opportunistic: bool) -> bool:
        if not (self.software_fallback and self.cpu_workers):
            return False
        request = self.cpu_workers[0].request_for_transcode(step.vcu_task)
        worker = self.cpu_scheduler.place(request)
        if worker is None:
            return False  # wait for software-fallback capacity
        self.stats.software_fallbacks += 1
        if opportunistic:
            self.stats.opportunistic_fallbacks += 1
            if self.ladder_metrics is not None:
                self.ladder_metrics.note_opportunistic_fallback()
        hub = obs.active()
        if hub is not None:
            hub.count("cluster.software_fallbacks")
            attrs: Dict[str, object] = {
                "worker": worker.name, "attempt": step.attempts + 1,
            }
            if opportunistic:
                hub.count("cluster.opportunistic_fallbacks")
                attrs["opportunistic"] = True
            hub.emit("fallback", step.step_id, t0=self.sim.now, attrs=attrs)
        self._start_cpu_transcode(step, worker, request)
        return True

    def _place_cpu(self, step: Step) -> bool:
        if not self.cpu_workers:
            # Clusters simulated without CPU machines: treat CPU steps as
            # instantaneous bookkeeping so transcode studies stay focused.
            self.sim.call_in(0.0, lambda: self._complete(step, corrupt=False))
            return True
        request = self.cpu_workers[0].request_for_cpu_step(step.cpu_core_seconds)
        worker = self.cpu_scheduler.place(request)
        if worker is None:
            return False
        duration = worker.cpu_step_seconds(step.cpu_core_seconds, request)
        started = self.sim.now

        def run():
            yield duration
            self.cpu_scheduler.release(worker, request)
            self._emit_step(step, worker.name, "cpu", started, "ok")
            self._complete(step, corrupt=False)
            self._drain_pending()

        self.sim.process(run(), name=f"cpu:{step.step_id}")
        return True

    # ------------------------------------------------------------------ #
    # Execution

    def _start_vcu_step(
        self, step: Step, worker: VcuWorker, request: Dict[str, float], excluded: Set[str]
    ) -> None:
        step.attempts += 1
        step.processed_by = worker.vcu.vcu_id
        duration = worker.step_seconds(step.vcu_task, request)
        started = self.sim.now
        self._record_queue_wait(step)
        telemetry = self._fleet_telemetry
        if telemetry is None:
            self._record_utilization()
        else:
            telemetry.note_admit(worker.name, request)

        def execute() -> Generator:
            yield duration
            if worker.vcu.hung:
                # The device wedged while this step was in flight: it will
                # never complete on its own.  Only the watchdog deadline
                # (racing below) gets this work back.
                yield self.sim.event()

        def run() -> Generator:
            work = self.sim.process(execute(), name=f"vcu-exec:{step.step_id}")
            timer = None
            if self.watchdog is not None:
                deadline = self.watchdog.deadline_for(duration)
                guard = self.sim.event()
                timer = self.sim.call_in(deadline, lambda: guard.succeed(None))
                index, _ = yield self.sim.any_of([work.done, guard])
            else:
                yield work.done
                index = 0
            self.vcu_scheduler.release(worker, request)
            if telemetry is None:
                self._record_utilization()
            else:
                telemetry.note_release(worker.name, request)
            if index == 0:
                if timer is not None:
                    timer.cancel()
                self._finish_vcu_step(step, worker, excluded, started)
            else:
                # Watchdog deadline won the race: kill the worker process
                # (one process per transcode constrains the damage) and
                # recover the step.
                work.interrupt("watchdog deadline")
                self._on_watchdog_expired(step, worker, excluded, started)
            self._drain_pending()

        self.sim.process(run(), name=f"vcu:{step.step_id}")

    def _record_queue_wait(self, step: Step) -> None:
        """Per-rung slot wait for segment steps (latency scorecard).

        Gated on the dispatcher having installed :attr:`ladder_metrics`,
        so legacy throughput runs -- including the golden obs drill --
        are byte-for-byte unaffected.
        """
        if self.ladder_metrics is None or step.rung is None:
            return
        wait = self.sim.now - step.ready_at
        self.ladder_metrics.observe_queue_wait(step.rung, wait)
        hub = obs.active()
        if hub is not None:
            hub.observe(f"ladder.queue_wait.{step.rung}", wait)

    def _emit_step(
        self, step: Step, worker_name: str, pool: str, started: float, outcome: str
    ) -> None:
        """One ``step`` span per execution attempt, plus the step-seconds
        histogram -- the per-pool busy time the report renders."""
        hub = obs.active()
        if hub is None:
            return
        now = self.sim.now
        hub.emit(
            "step", step.step_id, t0=started, t1=now,
            attrs={
                "worker": worker_name, "pool": pool,
                "attempt": step.attempts, "outcome": outcome,
                "video": step.video_id,
            },
        )
        hub.observe(f"cluster.step_seconds.{pool}", now - started)

    def _finish_vcu_step(
        self, step: Step, worker: VcuWorker, excluded: Set[str], started: float
    ) -> None:
        if worker.vcu.corrupt:
            caught = self._rng.random() < self.integrity_check_rate
            if caught:
                # Abort everything on this VCU and retry elsewhere
                # (Section 4.4's black-holing mitigation).  The abort is a
                # device reset, so it lands in telemetry too.
                self.stats.corrupt_caught += 1
                self._count("cluster.corrupt_caught")
                self._emit_step(step, worker.name, "vcu", started, "corrupt_caught")
                worker.vcu.telemetry.record(FaultKind.RESET, at_time=self.sim.now)
                if worker.abort_and_quarantine():
                    self._note_quarantine(worker)
                self._record_domain_fault(worker)
                self._retry_with_backoff(step, excluded | {worker.name})
                return
            step.corrupt_output = True
            self.stats.corrupt_escaped += 1
            self._count("cluster.corrupt_escaped")
        self._emit_step(
            step, worker.name, "vcu", started,
            "corrupt_escaped" if step.corrupt_output else "ok",
        )
        self._complete(step, corrupt=step.corrupt_output)

    def _on_watchdog_expired(
        self, step: Step, worker: VcuWorker, excluded: Set[str], started: float
    ) -> None:
        self.stats.hangs_detected += 1
        hub = obs.active()
        if hub is not None:
            hub.count("cluster.hangs_detected")
            hub.emit(
                "hang", step.step_id, t0=self.sim.now,
                attrs={"worker": worker.name, "attempt": step.attempts},
            )
        self._emit_step(step, worker.name, "vcu", started, "hang")
        worker.vcu.telemetry.record(FaultKind.HANG, at_time=self.sim.now)
        if worker.record_strike():
            self._note_quarantine(worker)
        self._record_domain_fault(worker)
        self._retry_with_backoff(step, excluded | {worker.name})

    def _retry_with_backoff(self, step: Step, excluded: Set[str]) -> None:
        self.stats.retries += 1
        delay = 0.0
        if self.backoff is not None:
            delay = self.backoff.delay_for(step.attempts, self._rng)
            self.stats.backoff_delay_seconds += delay
        hub = obs.active()
        if hub is not None:
            hub.count("cluster.retries")
            hub.observe("cluster.backoff_seconds", delay)
            hub.emit(
                "retry", step.step_id, t0=self.sim.now,
                attrs={"attempt": step.attempts, "delay": delay},
            )
        if self.backoff is None:
            self._enqueue(step, excluded)
            return
        self.sim.call_in(delay, lambda: self._enqueue(step, excluded))

    def _start_cpu_transcode(
        self, step: Step, worker: CpuWorker, request: Dict[str, float]
    ) -> None:
        step.attempts += 1
        step.processed_by = worker.name
        duration = worker.transcode_seconds(step.vcu_task, request)
        started = self.sim.now
        self._record_queue_wait(step)

        def run():
            yield duration
            self.cpu_scheduler.release(worker, request)
            self._emit_step(step, worker.name, "sw", started, "ok")
            self._complete(step, corrupt=False)
            self._drain_pending()

        self.sim.process(run(), name=f"sw:{step.step_id}")

    # ------------------------------------------------------------------ #
    # Resilience: quarantine, rehabilitation, fault domains

    def _note_quarantine(self, worker: VcuWorker) -> None:
        self.stats.workers_quarantined += 1
        self._count("cluster.workers_quarantined")
        self._spawn_rehab(worker)

    def _spawn_rehab(self, worker: VcuWorker) -> None:
        """Start the rehabilitation loop for a quarantined worker.

        QUARANTINED -> (wait) -> RESCREENING -> HEALTHY on a passed golden
        battery, or back to QUARANTINED with exponential backoff between
        attempts, until the failure budget DISABLEs the worker.  A repair
        that lands mid-loop resets the state machine; the loop simply
        rescreens again and the repaired device passes.
        """
        if worker.name in self._rehabbing:
            return
        self._rehabbing.add(worker.name)
        policy = worker.health_policy

        def rehab() -> Generator:
            try:
                delay = policy.rescreen_delay_seconds
                while True:
                    yield delay
                    if worker.health in (HealthState.HEALTHY, HealthState.DISABLED):
                        return
                    if worker.health is not HealthState.QUARANTINED:
                        continue
                    worker.begin_rescreen()
                    yield policy.screen_seconds
                    if worker.health is not HealthState.RESCREENING:
                        # A repair reset the machine mid-battery; screen
                        # again from scratch.
                        continue
                    if worker.finish_rescreen():
                        self.stats.workers_rehabilitated += 1
                        self._count("cluster.workers_rehabilitated")
                        self._drain_pending()
                        return
                    worker.vcu.telemetry.record(
                        FaultKind.GOLDEN_FAIL, at_time=self.sim.now
                    )
                    if worker.health is HealthState.DISABLED:
                        self.stats.workers_disabled += 1
                        self._count("cluster.workers_disabled")
                        return
                    delay *= policy.rescreen_backoff
            finally:
                self._rehabbing.discard(worker.name)

        self.sim.process(rehab(), name=f"rehab:{worker.name}")

    def _record_domain_fault(self, worker: VcuWorker) -> None:
        if self._fault_domains is None or worker.host is None:
            return
        if self._fault_domains.record(
            worker.host.host_id, worker.vcu.vcu_id, self.sim.now
        ):
            self._evict_host(worker.host)

    def _evict_host(self, host: VcuHost) -> None:
        """Correlated failures condemn the shared fault domain: pull the
        whole host from placement, not just the VCU that happened to fail
        last.  The host re-enters service through the repair flow."""
        if host.unusable:
            return
        host.unusable = True
        self._sync_host_availability(host)
        self.stats.host_evictions += 1
        hub = obs.active()
        if hub is not None:
            hub.count("cluster.host_evictions")
            hub.emit("host", "evict", t0=self.sim.now, attrs={"host": host.host_id})

    def on_host_repaired(self, host: VcuHost) -> None:
        """A repair finished: golden re-screen every worker it touched."""
        for worker in self.vcu_workers:
            if worker.host is host and worker.reset_after_repair():
                self._spawn_rehab(worker)
        self._sync_host_availability(host)
        self._drain_pending()

    def on_host_drained(self, host: VcuHost) -> None:
        """A repair started: the host is out of service while the
        technician works (the failure sweeper notifies us so fleet-mode
        availability stays exact)."""
        self._sync_host_availability(host)

    def on_vcus_disabled(self, vcu_ids: Iterable[str]) -> None:
        """A telemetry sweep disabled devices outside the health-state
        machine; re-sync their workers' availability."""
        if not self.fleet_mode:
            return
        for vcu_id in vcu_ids:
            worker = self._worker_by_vcu.get(vcu_id)
            if worker is not None:
                self.note_availability_changed(worker)

    def note_availability_changed(self, worker: VcuWorker) -> None:
        """Re-read one worker's availability into the fleet-mode mask.

        Called automatically from the worker health choke point, host
        eviction/repair flows, and the failure sweeper; anything else
        that mutates worker/host serving state directly must call it
        too, or the fleet-mode count drifts.
        """
        mask = self._avail_mask
        if mask is None:
            return
        index = self._worker_index.get(worker.name)
        if index is None:
            return
        now_available = worker.available()
        if now_available != bool(mask[index]):
            mask[index] = now_available
            self._available_count += 1 if now_available else -1

    def _sync_host_availability(self, host: VcuHost) -> None:
        if self._avail_mask is None:
            return
        for vcu in host.vcus:
            worker = self._worker_by_vcu.get(vcu.vcu_id)
            if worker is not None:
                self.note_availability_changed(worker)

    def availability_mask(self) -> Optional[np.ndarray]:
        """Fleet-mode availability per vcu worker, or None outside it."""
        return self._avail_mask

    # ------------------------------------------------------------------ #
    # Completion

    def _complete(self, step: Step, corrupt: bool) -> None:
        if id(step) in self._done:
            raise RuntimeError(f"step {step.step_id} completed twice")
        self._done.add(id(step))
        self.stats.completed_steps += 1
        self._count("cluster.completed_steps")
        if step.is_transcode() and not corrupt:
            megapixels = step.vcu_task.output_pixels / 1e6
            self.stats.throughput.record(self.sim.now, megapixels)
            if step.processed_by:
                per_vcu = self.stats.per_vcu_megapixels
                per_vcu[step.processed_by] = per_vcu.get(step.processed_by, 0.0) + megapixels
        if self.on_step_done is not None:
            self.on_step_done(step, corrupt)
        for dependent in self._dependents.get(id(step), []):
            self._remaining_deps[id(dependent)] -= 1
            if self._remaining_deps[id(dependent)] == 0:
                self._enqueue(dependent, set())
        self._check_graph_done(step)

    def _check_graph_done(self, step: Step) -> None:
        graph = self._graph_of.get(id(step))
        if graph is None:
            return
        self._graph_remaining[id(graph)] -= 1
        if self._graph_remaining[id(graph)] == 0 and graph.completed_at is None:
            graph.completed_at = self.sim.now
            self.stats.completed_graphs += 1
            latency = graph.completed_at - graph.submitted_at
            self.stats.graph_latencies.append(latency)
            hub = obs.active()
            if hub is not None:
                hub.count("cluster.completed_graphs")
                if self._fleet_telemetry is None:
                    hub.observe("cluster.graph_latency_seconds", latency)
                else:
                    # Delivered in bulk at the next sample boundary; the
                    # histogram has no time axis, so snapshots match.
                    self._fleet_telemetry.note_graph_latency(latency)
                hub.emit(
                    "graph", graph.video_id,
                    t0=graph.submitted_at, t1=graph.completed_at,
                    attrs={"steps": len(graph.steps)},
                )
            if self.on_graph_done is not None:
                self.on_graph_done(graph)

    # ------------------------------------------------------------------ #
    # Metrics

    def _record_utilization(self) -> None:
        workers = [w for w in self.vcu_workers if w.available()]
        if not workers:
            return
        encoder = float(np.mean([w.vcu.encoder_utilization() for w in workers]))
        decoder = float(np.mean([w.vcu.decoder_utilization() for w in workers]))
        self.encoder_util.record(self.sim.now, encoder)
        self.decoder_util.record(self.sim.now, decoder)
        hub = obs.active()
        if hub is not None:
            now = self.sim.now
            hub.metrics.time_gauge("cluster.encoder_util").set(now, encoder)
            hub.metrics.time_gauge("cluster.decoder_util").set(now, decoder)

    def flush_telemetry(self) -> None:
        """Force a sampled-telemetry flush (end-of-run bookkeeping)."""
        if self._fleet_telemetry is not None:
            self._fleet_telemetry.flush()

    def healthy_vcu_count(self) -> int:
        if self.fleet_mode:
            return self._available_count
        return sum(1 for w in self.vcu_workers if w.available())
