"""The transcoding cluster: work queue, placement, execution, retries.

This ties the pieces together on the discrete-event engine: step graphs
are submitted to a global work queue, ready steps are placed by the
scheduler onto VCU or CPU workers, execution holds the granted resource
vector for the step's modelled duration, and completions unblock
dependents.  Failure handling follows Section 4.4: integrity checks catch
most corrupt output, failed steps retry on *different* VCUs (fault
correlation via the recorded VCU id), and hardware failures quarantine the
worker; steps that exhaust hardware retries fall back to software
transcoding.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Deque, Dict, List, Optional, Sequence, Set, Tuple

import numpy as np

from repro.cluster.metrics import ThroughputWindow, UtilizationTracker
from repro.cluster.scheduler import BinPackingScheduler, SingleSlotScheduler
from repro.cluster.worker import CpuWorker, VcuWorker
from repro.sim.engine import Simulator
from repro.sim.rng import SeedLike, make_rng
from repro.transcode.pipeline import Step, StepGraph


@dataclass
class ClusterStats:
    """Counters and time-series the benchmarks read out."""

    completed_steps: int = 0
    failed_placements: int = 0
    retries: int = 0
    software_fallbacks: int = 0
    corrupt_caught: int = 0
    corrupt_escaped: int = 0
    completed_graphs: int = 0
    throughput: ThroughputWindow = field(default_factory=ThroughputWindow)
    per_vcu_megapixels: Dict[str, float] = field(default_factory=dict)
    graph_latencies: List[float] = field(default_factory=list)

    def per_vcu_mpix_per_second(self, now: float, vcu_count: int) -> float:
        span = now - self.throughput.start_time
        if span <= 0 or vcu_count == 0:
            return 0.0
        return self.throughput.total_megapixels / span / vcu_count


class TranscodeCluster:
    """A cluster of VCU and CPU workers executing step graphs."""

    def __init__(
        self,
        sim: Simulator,
        vcu_workers: Sequence[VcuWorker],
        cpu_workers: Sequence[CpuWorker] = (),
        use_bin_packing: bool = True,
        legacy_slots: int = 4,
        integrity_check_rate: float = 0.95,
        max_hardware_attempts: int = 3,
        software_fallback: bool = True,
        seed: SeedLike = 0,
    ):
        if not 0.0 <= integrity_check_rate <= 1.0:
            raise ValueError("integrity_check_rate must be in [0, 1]")
        self.sim = sim
        self.vcu_workers = list(vcu_workers)
        self.cpu_workers = list(cpu_workers)
        if use_bin_packing:
            self.vcu_scheduler = BinPackingScheduler(self.vcu_workers)
        else:
            self.vcu_scheduler = SingleSlotScheduler(
                self.vcu_workers, slots_per_worker=legacy_slots
            )
        self.cpu_scheduler = BinPackingScheduler(self.cpu_workers)
        self.integrity_check_rate = integrity_check_rate
        self.max_hardware_attempts = max_hardware_attempts
        self.software_fallback = software_fallback
        self.stats = ClusterStats(throughput=ThroughputWindow(start_time=sim.now))
        self._rng = make_rng(seed)
        self._pending: Deque[Tuple[Step, Set[str]]] = deque()
        self._graphs: List[StepGraph] = []
        self._remaining_deps: Dict[int, int] = {}
        self._dependents: Dict[int, List[Step]] = {}
        self._done: Set[int] = set()
        self._graph_of: Dict[int, StepGraph] = {}
        self._graph_remaining: Dict[int, int] = {}
        self.encoder_util = UtilizationTracker(sim.now)
        self.decoder_util = UtilizationTracker(sim.now)

    # ------------------------------------------------------------------ #
    # Submission

    def submit(self, graph: StepGraph) -> None:
        """Register a step graph; its ready steps enter the work queue."""
        graph.submitted_at = self.sim.now
        self._graphs.append(graph)
        self._graph_remaining[id(graph)] = len(graph.steps)
        for step in graph.steps:
            self._graph_of[id(step)] = graph
            self._remaining_deps[id(step)] = len(step.depends_on)
            for dep in step.depends_on:
                self._dependents.setdefault(id(dep), []).append(step)
        for step in graph.steps:
            if not step.depends_on:
                self._enqueue(step, set())

    @property
    def pending_count(self) -> int:
        return len(self._pending)

    # ------------------------------------------------------------------ #
    # Placement

    def _enqueue(self, step: Step, excluded: Set[str]) -> None:
        if not self._try_place(step, excluded):
            self._pending.append((step, excluded))

    def _drain_pending(self) -> None:
        # Head-of-line blocking per lane: once a step of some shape fails
        # to place, later same-shaped steps in the FIFO will not fit
        # either, so skip them this round instead of probing every worker
        # again.  Hardware-decode and software-decode transcodes have
        # different shapes (millidecode vs host_decode), hence the lanes.
        still_waiting: Deque[Tuple[Step, Set[str]]] = deque()
        blocked = {"hw": False, "hw_swdec": False, "cpu": False}
        while self._pending:
            step, excluded = self._pending.popleft()
            if step.is_transcode() and not step.software_only:
                lane = "hw_swdec" if step.vcu_task.software_decode else "hw"
            else:
                lane = "cpu"
            if blocked[lane]:
                still_waiting.append((step, excluded))
                continue
            if not self._try_place(step, excluded):
                still_waiting.append((step, excluded))
                blocked[lane] = True
        self._pending = still_waiting

    def _try_place(self, step: Step, excluded: Set[str]) -> bool:
        if step.is_transcode():
            return self._place_transcode(step, excluded)
        return self._place_cpu(step)

    def _place_transcode(self, step: Step, excluded: Set[str]) -> bool:
        task = step.vcu_task
        usable = [w for w in self.vcu_workers if w.available() and w.name not in excluded]
        hardware_exhausted = (
            step.software_only
            or step.attempts >= self.max_hardware_attempts
            or not usable
        )
        if not hardware_exhausted:
            # Request shape depends on the target worker type only through
            # the spec, identical across the fleet; probe with any worker.
            if self.vcu_workers:
                request = self.vcu_workers[0].request_for(task)
                worker = self.vcu_scheduler.place(request, excluded=excluded)
                if worker is not None:
                    self._start_vcu_step(step, worker, request, excluded)
                    return True
            self.stats.failed_placements += 1
            if not self.software_fallback:
                return False
            return False  # wait for a VCU to free up
        if self.software_fallback and self.cpu_workers:
            request = self.cpu_workers[0].request_for_transcode(task)
            worker = self.cpu_scheduler.place(request)
            if worker is not None:
                self.stats.software_fallbacks += 1
                self._start_cpu_transcode(step, worker, request)
                return True
        return False

    def _place_cpu(self, step: Step) -> bool:
        if not self.cpu_workers:
            # Clusters simulated without CPU machines: treat CPU steps as
            # instantaneous bookkeeping so transcode studies stay focused.
            self.sim.call_in(0.0, lambda: self._complete(step, corrupt=False))
            return True
        request = self.cpu_workers[0].request_for_cpu_step(step.cpu_core_seconds)
        worker = self.cpu_scheduler.place(request)
        if worker is None:
            return False
        duration = worker.cpu_step_seconds(step.cpu_core_seconds, request)

        def run():
            yield duration
            worker.release(request)
            self._release_slot_if_legacy(worker)
            self._complete(step, corrupt=False)
            self._drain_pending()

        self.sim.process(run(), name=f"cpu:{step.step_id}")
        return True

    # ------------------------------------------------------------------ #
    # Execution

    def _start_vcu_step(
        self, step: Step, worker: VcuWorker, request: Dict[str, float], excluded: Set[str]
    ) -> None:
        step.attempts += 1
        step.processed_by = worker.vcu.vcu_id
        duration = worker.step_seconds(step.vcu_task, request)
        self._record_utilization()

        def run():
            yield duration
            worker.release(request)
            self._release_slot_if_legacy(worker)
            self._record_utilization()
            self._finish_vcu_step(step, worker, excluded)
            self._drain_pending()

        self.sim.process(run(), name=f"vcu:{step.step_id}")

    def _finish_vcu_step(self, step: Step, worker: VcuWorker, excluded: Set[str]) -> None:
        if worker.vcu.corrupt:
            caught = self._rng.random() < self.integrity_check_rate
            if caught:
                # Abort everything on this VCU and retry elsewhere
                # (Section 4.4's black-holing mitigation).
                self.stats.corrupt_caught += 1
                self.stats.retries += 1
                worker.abort_and_quarantine()
                self._enqueue(step, excluded | {worker.name})
                return
            step.corrupt_output = True
            self.stats.corrupt_escaped += 1
        self._complete(step, corrupt=step.corrupt_output)

    def _start_cpu_transcode(
        self, step: Step, worker: CpuWorker, request: Dict[str, float]
    ) -> None:
        step.attempts += 1
        step.processed_by = worker.name
        duration = worker.transcode_seconds(step.vcu_task, request)

        def run():
            yield duration
            worker.release(request)
            self._complete(step, corrupt=False)
            self._drain_pending()

        self.sim.process(run(), name=f"sw:{step.step_id}")

    def _release_slot_if_legacy(self, worker) -> None:
        scheduler = self.vcu_scheduler if isinstance(worker, VcuWorker) else None
        if isinstance(scheduler, SingleSlotScheduler):
            scheduler.release_slot(worker)

    # ------------------------------------------------------------------ #
    # Completion

    def _complete(self, step: Step, corrupt: bool) -> None:
        if id(step) in self._done:
            raise RuntimeError(f"step {step.step_id} completed twice")
        self._done.add(id(step))
        self.stats.completed_steps += 1
        if step.is_transcode() and not corrupt:
            megapixels = step.vcu_task.output_pixels / 1e6
            self.stats.throughput.record(self.sim.now, megapixels)
            if step.processed_by:
                per_vcu = self.stats.per_vcu_megapixels
                per_vcu[step.processed_by] = per_vcu.get(step.processed_by, 0.0) + megapixels
        for dependent in self._dependents.get(id(step), []):
            self._remaining_deps[id(dependent)] -= 1
            if self._remaining_deps[id(dependent)] == 0:
                self._enqueue(dependent, set())
        self._check_graph_done(step)

    def _check_graph_done(self, step: Step) -> None:
        graph = self._graph_of.get(id(step))
        if graph is None:
            return
        self._graph_remaining[id(graph)] -= 1
        if self._graph_remaining[id(graph)] == 0 and graph.completed_at is None:
            graph.completed_at = self.sim.now
            self.stats.completed_graphs += 1
            self.stats.graph_latencies.append(graph.completed_at - graph.submitted_at)

    # ------------------------------------------------------------------ #
    # Metrics

    def _record_utilization(self) -> None:
        workers = [w for w in self.vcu_workers if w.available()]
        if not workers:
            return
        encoder = float(np.mean([w.vcu.encoder_utilization() for w in workers]))
        decoder = float(np.mean([w.vcu.decoder_utilization() for w in workers]))
        self.encoder_util.record(self.sim.now, encoder)
        self.decoder_util.record(self.sim.now, decoder)

    def healthy_vcu_count(self) -> int:
        return sum(1 for w in self.vcu_workers if w.available())
