"""The geographic layer: regions, clusters, and the global scheduler.

Section 2.2: the platform is distributed across multiple data centers; a
video is generally processed geographically close to the uploader, but
the global scheduler can send it further away when local capacity is
unavailable.  Appendix A adds the regional provisioning goal: equalize
cluster throughput within a region to minimize the cost of regional
redundancy.

This module models that layer above :class:`~repro.cluster.cluster.TranscodeCluster`:
named clusters with capacities and geographic coordinates, upload origins,
and a router that prefers the nearest cluster with headroom and spills
over by distance.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple


@dataclass
class ClusterSite:
    """One data-center cluster as the global router sees it."""

    name: str
    region: str
    #: Abstract map coordinates (distance drives routing preference).
    location: Tuple[float, float]
    #: Admission capacity in concurrent videos (a coarse stand-in for the
    #: cluster's work-queue admission control).
    capacity: int
    in_flight: int = 0
    routed_total: int = 0
    #: False while the site is lost to a regional outage; down sites
    #: never admit (the control plane's failover layer drains them).
    up: bool = True

    def headroom(self) -> int:
        return self.capacity - self.in_flight

    def admit(self) -> bool:
        if not self.up or self.in_flight >= self.capacity:
            return False
        self.in_flight += 1
        self.routed_total += 1
        return True

    def finish(self) -> None:
        if self.in_flight <= 0:
            raise ValueError(f"cluster {self.name}: finish without admit")
        self.in_flight -= 1


def distance(a: Tuple[float, float], b: Tuple[float, float]) -> float:
    return math.hypot(a[0] - b[0], a[1] - b[1])


@dataclass
class RoutingDecision:
    """Where one video went and why.

    ``spilled`` and ``rejected`` are mutually exclusive: a spill means
    the video *was served*, just not by its nearest cluster; a rejection
    means no cluster admitted it at all (``cluster`` is ``None`` and
    ``distance`` is infinite).  Earlier versions conflated the two by
    reporting full-fleet rejections as spills.
    """

    cluster: Optional[ClusterSite]
    spilled: bool  # True when served by a non-nearest cluster
    distance: float
    rejected: bool = False  # True when every cluster refused admission


class GlobalScheduler:
    """Routes uploads to the nearest cluster with headroom.

    The preference order is pure distance from the upload origin; a video
    "spills" when it cannot be served by its nearest cluster.  Rejections
    only happen when every cluster is full (the global queue would hold
    the video in reality; callers can model that).
    """

    def __init__(self, sites: Sequence[ClusterSite]):
        if not sites:
            raise ValueError("need at least one cluster site")
        names = [s.name for s in sites]
        if len(set(names)) != len(names):
            raise ValueError("cluster names must be unique")
        self.sites = list(sites)
        self.spill_count = 0
        self.reject_count = 0

    def route(self, origin: Tuple[float, float]) -> RoutingDecision:
        ordered = sorted(self.sites, key=lambda s: distance(origin, s.location))
        for index, site in enumerate(ordered):
            if site.admit():
                spilled = index > 0
                if spilled:
                    self.spill_count += 1
                return RoutingDecision(
                    cluster=site, spilled=spilled,
                    distance=distance(origin, site.location),
                )
        # Full-fleet rejection: nothing admitted, so nothing "spilled"
        # anywhere -- rejections are their own outcome, not far spills.
        self.reject_count += 1
        return RoutingDecision(
            cluster=None, spilled=False, distance=float("inf"), rejected=True,
        )

    def set_site_up(self, name: str, up: bool) -> ClusterSite:
        """Flip one site's availability (regional outage / recovery)."""
        for site in self.sites:
            if site.name == name:
                site.up = up
                return site
        raise KeyError(f"unknown cluster site {name!r}")

    def regional_throughput(self) -> Dict[str, int]:
        """Videos routed per region (the equalization target of App. A.1)."""
        totals: Dict[str, int] = {}
        for site in self.sites:
            totals[site.region] = totals.get(site.region, 0) + site.routed_total
        return totals

    def regional_imbalance(self, region: str) -> float:
        """Max/min routed ratio across a region's clusters (1.0 = ideal).

        Appendix A.1: the ideal state equalizes the throughput of all
        clusters in a region.
        """
        loads = [s.routed_total for s in self.sites if s.region == region]
        if not loads:
            raise KeyError(f"unknown region {region!r}")
        low = min(loads)
        return max(loads) / low if low else float("inf")
