"""Throughput accounting for the cluster.

:class:`UtilizationTracker` moved under the observability layer
(:mod:`repro.obs.registry`) where the rest of the time-weighted
instruments live; it is re-exported here for compatibility.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Tuple

from repro.obs.registry import UtilizationTracker

__all__ = ["UtilizationTracker", "ThroughputWindow"]


@dataclass
class ThroughputWindow:
    """Accumulates output megapixels and exposes Mpix/s over the run."""

    start_time: float = 0.0
    total_megapixels: float = 0.0
    completions: int = 0
    samples: List[Tuple[float, float]] = field(default_factory=list)

    def record(self, now: float, megapixels: float) -> None:
        self.total_megapixels += megapixels
        self.completions += 1
        self.samples.append((now, megapixels))

    def mpix_per_second(self, now: float) -> float:
        span = now - self.start_time
        return self.total_megapixels / span if span > 0 else 0.0
