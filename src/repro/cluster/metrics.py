"""Throughput accounting for the cluster.

:class:`UtilizationTracker` moved under the observability layer
(:mod:`repro.obs.registry`) where the rest of the time-weighted
instruments live; it is re-exported here for compatibility.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Tuple

from repro.obs.registry import UtilizationTracker

__all__ = ["UtilizationTracker", "ThroughputWindow"]


@dataclass
class ThroughputWindow:
    """Accumulates output megapixels and exposes Mpix/s over the run.

    ``keep_samples=False`` drops the per-completion ``(time, megapixels)``
    series while keeping every aggregate: at fleet scale a multi-hour day
    completes millions of steps, and retaining a tuple per completion is
    the cluster's largest allocation.
    """

    start_time: float = 0.0
    total_megapixels: float = 0.0
    completions: int = 0
    samples: List[Tuple[float, float]] = field(default_factory=list)
    keep_samples: bool = True

    def record(self, now: float, megapixels: float) -> None:
        self.total_megapixels += megapixels
        self.completions += 1
        if self.keep_samples:
            self.samples.append((now, megapixels))

    def mpix_per_second(self, now: float) -> float:
        span = now - self.start_time
        return self.total_megapixels / span if span > 0 else 0.0
