"""Time-weighted utilization and throughput accounting for the cluster."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Tuple


class UtilizationTracker:
    """Integrates a usage fraction over virtual time.

    Call :meth:`record` whenever usage changes; :meth:`average` returns
    the time-weighted mean over the observed span.
    """

    def __init__(self, start_time: float = 0.0):
        self._last_time = start_time
        self._last_value = 0.0
        self._area = 0.0
        self._start = start_time

    def record(self, now: float, value: float) -> None:
        if now < self._last_time:
            raise ValueError("time moved backwards")
        self._area += self._last_value * (now - self._last_time)
        self._last_time = now
        self._last_value = value

    def average(self, now: float = None) -> float:
        end = self._last_time if now is None else now
        if end < self._last_time:
            raise ValueError("time moved backwards")
        area = self._area + self._last_value * (end - self._last_time)
        span = end - self._start
        return area / span if span > 0 else 0.0

    @property
    def current(self) -> float:
        return self._last_value


@dataclass
class ThroughputWindow:
    """Accumulates output megapixels and exposes Mpix/s over the run."""

    start_time: float = 0.0
    total_megapixels: float = 0.0
    completions: int = 0
    samples: List[Tuple[float, float]] = field(default_factory=list)

    def record(self, now: float, megapixels: float) -> None:
        self.total_megapixels += megapixels
        self.completions += 1
        self.samples.append((now, megapixels))

    def mpix_per_second(self, now: float) -> float:
        span = now - self.start_time
        return self.total_megapixels / span if span > 0 else 0.0
