"""Worker autoscaling by workload-mix demand (Section 3.3.3).

"Another part of the scheduler sizes the workers based on workload mix
demand": pools grow when their backlog-per-worker rises, shrink when
workers idle, and the cluster-wide VCU budget is conserved.  A simple
hysteresis controller avoids flapping.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.cluster.pool import Pool, PoolKey


@dataclass(frozen=True)
class AutoscaleConfig:
    """Controller thresholds."""

    #: Grow a pool when pending steps per worker exceed this.
    scale_up_pressure: float = 4.0
    #: Shrink when pressure falls below this (hysteresis band).
    scale_down_pressure: float = 0.5
    #: Workers moved per decision (small steps avoid oscillation).
    workers_per_step: int = 1
    #: Every pool keeps at least this many workers.
    min_workers: int = 1


@dataclass
class ScalingAction:
    """One rebalancing decision, for operator visibility."""

    from_pool: PoolKey
    to_pool: PoolKey
    workers: int


@dataclass(frozen=True)
class CapacityAutoscaleConfig:
    """Hysteresis thresholds for slot-count (site capacity) scaling.

    Where :class:`AutoscaleConfig` governs moving *workers between
    pools* inside one cluster, this governs growing/shrinking a site's
    total dispatch slots -- the control-plane-level response to backlog
    (e.g. surviving regions absorbing a failed region's traffic).
    """

    #: Grow when *waiting* jobs per slot exceed this.
    scale_up_pressure: float = 2.0
    #: Shrink when total occupancy (waiting + running per slot) falls
    #: below this: a fleet keeping up with demand has near-zero waiting
    #: but busy slots, and shrinking it would manufacture an overload.
    scale_down_pressure: float = 0.25
    #: Slots added/removed per decision.
    step_slots: int = 4

    def __post_init__(self) -> None:
        if self.scale_down_pressure >= self.scale_up_pressure:
            raise ValueError("hysteresis band requires down < up pressure")
        if self.step_slots < 1:
            raise ValueError("step_slots must be >= 1")


@dataclass(frozen=True)
class CapacityAction:
    """One slot-scaling decision, for operator visibility."""

    at: float
    site: str
    old_slots: int
    new_slots: int


class CapacityAutoscaler:
    """Pure hysteresis controller over (waiting, running, slots).

    Deterministic and side-effect-free apart from its action history:
    the caller applies the returned slot count.  Never shrinks below
    the running count (slots in use cannot be reclaimed mid-job) nor
    outside the ``[min_slots, max_slots]`` bounds it is given.
    """

    def __init__(self, config: Optional["CapacityAutoscaleConfig"] = None):
        self.config = config or CapacityAutoscaleConfig()
        self.history: List[CapacityAction] = []

    def evaluate(
        self,
        site: str,
        waiting: int,
        running: int,
        slots: int,
        min_slots: int,
        max_slots: int,
        at: float,
    ) -> int:
        """The new slot count for one site at one controller tick."""
        if slots <= 0:
            raise ValueError("slots must be positive")
        backlog_pressure = waiting / slots
        occupancy = (waiting + running) / slots
        new_slots = slots
        if backlog_pressure > self.config.scale_up_pressure:
            new_slots = min(max_slots, slots + self.config.step_slots)
        elif occupancy < self.config.scale_down_pressure:
            new_slots = max(min_slots, running, slots - self.config.step_slots)
        if new_slots != slots:
            self.history.append(CapacityAction(
                at=at, site=site, old_slots=slots, new_slots=new_slots,
            ))
        return new_slots

    @property
    def actions(self) -> int:
        return len(self.history)


class Autoscaler:
    """Moves workers between pools to track demand, conserving the fleet."""

    def __init__(self, pools: Dict[PoolKey, Pool], config: AutoscaleConfig = None):
        if not pools:
            raise ValueError("need at least one pool")
        self.pools = pools
        self.config = config or AutoscaleConfig()
        self.history: List[ScalingAction] = []

    def _donors(self) -> List[Pool]:
        """Pools with slack, most idle first; priority pools donate last."""
        config = self.config
        donors = [
            pool for pool in self.pools.values()
            if pool.demand_pressure() < config.scale_down_pressure
            and len(pool.workers) > config.min_workers
            and pool.idle_workers()
        ]
        return sorted(
            donors,
            key=lambda p: (-p.key.priority, p.demand_pressure()),
        )

    def _needy(self) -> List[Pool]:
        """Pools over pressure, most critical and most pressured first."""
        needy = [
            pool for pool in self.pools.values()
            if pool.demand_pressure() > self.config.scale_up_pressure
        ]
        return sorted(needy, key=lambda p: (p.key.priority, -p.demand_pressure()))

    def step(self) -> List[ScalingAction]:
        """One controller tick; returns the actions taken."""
        actions: List[ScalingAction] = []
        for pool in self._needy():
            for donor in self._donors():
                if donor.key == pool.key:
                    continue
                moved = 0
                idle = donor.idle_workers()
                while (
                    moved < self.config.workers_per_step
                    and idle
                    and len(donor.workers) > self.config.min_workers
                ):
                    worker = idle.pop()
                    donor.workers.remove(worker)
                    pool.workers.append(worker)
                    worker.pool_key = pool.key
                    moved += 1
                if moved:
                    action = ScalingAction(
                        from_pool=donor.key, to_pool=pool.key, workers=moved
                    )
                    actions.append(action)
                    self.history.append(action)
                if pool.demand_pressure() <= self.config.scale_up_pressure:
                    break
        return actions

    def total_workers(self) -> int:
        return sum(len(pool.workers) for pool in self.pools.values())
