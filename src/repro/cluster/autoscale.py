"""Worker autoscaling by workload-mix demand (Section 3.3.3).

"Another part of the scheduler sizes the workers based on workload mix
demand": pools grow when their backlog-per-worker rises, shrink when
workers idle, and the cluster-wide VCU budget is conserved.  A simple
hysteresis controller avoids flapping.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List

from repro.cluster.pool import Pool, PoolKey


@dataclass(frozen=True)
class AutoscaleConfig:
    """Controller thresholds."""

    #: Grow a pool when pending steps per worker exceed this.
    scale_up_pressure: float = 4.0
    #: Shrink when pressure falls below this (hysteresis band).
    scale_down_pressure: float = 0.5
    #: Workers moved per decision (small steps avoid oscillation).
    workers_per_step: int = 1
    #: Every pool keeps at least this many workers.
    min_workers: int = 1


@dataclass
class ScalingAction:
    """One rebalancing decision, for operator visibility."""

    from_pool: PoolKey
    to_pool: PoolKey
    workers: int


class Autoscaler:
    """Moves workers between pools to track demand, conserving the fleet."""

    def __init__(self, pools: Dict[PoolKey, Pool], config: AutoscaleConfig = None):
        if not pools:
            raise ValueError("need at least one pool")
        self.pools = pools
        self.config = config or AutoscaleConfig()
        self.history: List[ScalingAction] = []

    def _donors(self) -> List[Pool]:
        """Pools with slack, most idle first; priority pools donate last."""
        config = self.config
        donors = [
            pool for pool in self.pools.values()
            if pool.demand_pressure() < config.scale_down_pressure
            and len(pool.workers) > config.min_workers
            and pool.idle_workers()
        ]
        return sorted(
            donors,
            key=lambda p: (-p.key.priority, p.demand_pressure()),
        )

    def _needy(self) -> List[Pool]:
        """Pools over pressure, most critical and most pressured first."""
        needy = [
            pool for pool in self.pools.values()
            if pool.demand_pressure() > self.config.scale_up_pressure
        ]
        return sorted(needy, key=lambda p: (p.key.priority, -p.demand_pressure()))

    def step(self) -> List[ScalingAction]:
        """One controller tick; returns the actions taken."""
        actions: List[ScalingAction] = []
        for pool in self._needy():
            for donor in self._donors():
                if donor.key == pool.key:
                    continue
                moved = 0
                idle = donor.idle_workers()
                while (
                    moved < self.config.workers_per_step
                    and idle
                    and len(donor.workers) > self.config.min_workers
                ):
                    worker = idle.pop()
                    donor.workers.remove(worker)
                    pool.workers.append(worker)
                    worker.pool_key = pool.key
                    moved += 1
                if moved:
                    action = ScalingAction(
                        from_pool=donor.key, to_pool=pool.key, workers=moved
                    )
                    actions.append(action)
                    self.history.append(action)
                if pool.demand_pressure() <= self.config.scale_up_pressure:
                    break
        return actions

    def total_workers(self) -> int:
        return sum(len(pool.workers) for pool in self.pools.values())
