"""Workers: the processes the scheduler places steps onto.

A :class:`VcuWorker` has exclusive access to one VCU (Section 3.3.3:
"some with exclusive access to a VCU") and advertises its multi-
dimensional resources; a :class:`CpuWorker` is a conventional machine
slice doing CPU steps and, when needed, software-fallback transcodes.

Each VCU worker runs one process per transcode to constrain errors to a
single step (Section 3.1), performs a functional reset plus a 'golden'
transcode battery when it first binds to a VCU (Section 4.4), and on any
hardware failure aborts all work on that VCU so the step retries at the
cluster level -- the black-holing mitigation.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Dict, Optional

from repro.baselines.cpu import SkylakeSystem
from repro.sim.resources import MultiResource
from repro.vcu.chip import Vcu, VcuTask, processing_seconds, resource_request
from repro.vcu.spec import VcuSpec

#: Fixed per-step overhead on a VCU worker: process spawn (one process per
#: transcode), queue setup, stream mux/demux on the host.
STEP_OVERHEAD_SECONDS = 0.8
#: Effective network share per VCU worker for moving video on/off the host
#: (100 Gbps NIC across 20 workers, halved for protocol/RPC overheads).
IO_BYTES_PER_SECOND = 100e9 / 8 / 20 / 2
#: Average compression density of production video (Appendix A.2).
PIXELS_PER_BIT = 6.1


class Worker:
    """Common surface the schedulers rely on."""

    _ids = itertools.count()

    def __init__(self, name: str = ""):
        self.name = name or f"worker-{next(self._ids)}"
        self.pool_key = None
        self.active_steps = 0

    def is_idle(self) -> bool:
        return self.active_steps == 0

    # Subclasses define: resources (MultiResource), can_run(step), etc.


class VcuWorker(Worker):
    """A worker bound 1:1 to a VCU."""

    def __init__(
        self,
        vcu: Vcu,
        numa_aware: bool = True,
        target_speedup: float = 5.0,
        golden_screening: bool = True,
        host_multiplier: float = None,
        decode_safety_factor: float = 1.0,
        step_overhead_seconds: float = STEP_OVERHEAD_SECONDS,
    ):
        super().__init__(name=f"worker:{vcu.vcu_id}")
        self.vcu = vcu
        self.target_speedup = target_speedup
        self.decode_safety_factor = decode_safety_factor
        self.step_overhead_seconds = step_overhead_seconds
        self.golden_screening = golden_screening
        self.refused = False
        if host_multiplier is None:
            host_multiplier = 1.0 if numa_aware else 1.0 / 1.20
        self.host_multiplier = host_multiplier
        if golden_screening:
            self._screen()

    def _screen(self) -> None:
        """Functional reset + golden transcode battery before taking work."""
        if not self.vcu.golden_check():
            self.refused = True

    @property
    def resources(self) -> MultiResource:
        return self.vcu.resources

    def available(self) -> bool:
        return not self.refused and not self.vcu.disabled

    def request_for(self, task: VcuTask) -> Dict[str, float]:
        return resource_request(
            task, self.vcu.spec, self.target_speedup,
            decode_safety_factor=self.decode_safety_factor,
        )

    def step_seconds(self, task: VcuTask, granted: Dict[str, float]) -> float:
        """Wall-clock time for a step: device processing (scaled by host
        efficiency) plus per-step overhead and host I/O."""
        device = processing_seconds(task, self.vcu.spec, granted)
        io_bytes = (task.input_pixels + task.output_pixels) / PIXELS_PER_BIT / 8.0
        io = io_bytes / IO_BYTES_PER_SECOND
        if self.vcu.corrupt:
            # A failing-but-fast VCU races through work (Section 4.4).
            device *= 0.3
        return device / self.host_multiplier + self.step_overhead_seconds + io

    def try_admit(self, request: Dict[str, float]) -> bool:
        if not self.available():
            return False
        admitted = self.vcu.try_admit(request)
        if admitted:
            self.active_steps += 1
        return admitted

    def release(self, request: Dict[str, float]) -> None:
        self.vcu.release(request)
        self.active_steps -= 1

    def abort_and_quarantine(self) -> None:
        """On a hardware failure: refuse further work until re-screened."""
        self.refused = True


# Software fallback throughput comes from the Skylake model.
_CPU_MODEL = SkylakeSystem()


class CpuWorker(Worker):
    """A CPU machine slice: runs CPU steps and software-fallback transcodes."""

    def __init__(self, cores: float = 16.0, name: str = ""):
        super().__init__(name=name or None)
        if cores <= 0:
            raise ValueError("cores must be positive")
        self.cores = cores
        self.resources = MultiResource({"cpu_cores": cores}, name=self.name)

    def available(self) -> bool:
        return True

    def request_for_cpu_step(self, core_seconds: float, max_cores: float = 4.0) -> Dict[str, float]:
        cores = min(max_cores, self.cores)
        return {"cpu_cores": cores}

    def cpu_step_seconds(self, core_seconds: float, granted: Dict[str, float]) -> float:
        return core_seconds / granted["cpu_cores"]

    def request_for_transcode(self, task: VcuTask) -> Dict[str, float]:
        """Software fallback: grab a fixed core bundle per transcode."""
        return {"cpu_cores": min(8.0, self.cores)}

    def transcode_seconds(self, task: VcuTask, granted: Dict[str, float]) -> float:
        total = 0.0
        for output in task.outputs:
            mpix = output.pixels * task.frame_count / 1e6
            rate_per_core = _CPU_MODEL.per_core_throughput(task.codec, output)
            total += mpix / rate_per_core
        return total / granted["cpu_cores"]

    def try_admit(self, request: Dict[str, float]) -> bool:
        admitted = self.resources.acquire(request)
        if admitted:
            self.active_steps += 1
        return admitted

    def release(self, request: Dict[str, float]) -> None:
        self.resources.release(request)
        self.active_steps -= 1
