"""Workers: the processes the scheduler places steps onto.

A :class:`VcuWorker` has exclusive access to one VCU (Section 3.3.3:
"some with exclusive access to a VCU") and advertises its multi-
dimensional resources; a :class:`CpuWorker` is a conventional machine
slice doing CPU steps and, when needed, software-fallback transcodes.

Each VCU worker runs one process per transcode to constrain errors to a
single step (Section 3.1), performs a functional reset plus a 'golden'
transcode battery when it first binds to a VCU (Section 4.4), and on any
hardware failure aborts all work on that VCU so the step retries at the
cluster level -- the black-holing mitigation.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Callable, Dict, Optional, TYPE_CHECKING

from repro import obs
from repro.baselines.cpu import SkylakeSystem
from repro.cluster.health import (
    LEGAL_HEALTH_TRANSITIONS,
    HealthPolicy,
    HealthState,
    IllegalHealthTransition,
)
from repro.sim.resources import MultiResource
from repro.vcu.chip import Vcu, VcuTask, processing_seconds, resource_request
from repro.vcu.spec import VcuSpec

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.vcu.host import VcuHost

#: Fixed per-step overhead on a VCU worker: process spawn (one process per
#: transcode), queue setup, stream mux/demux on the host.
STEP_OVERHEAD_SECONDS = 0.8
#: Effective network share per VCU worker for moving video on/off the host
#: (100 Gbps NIC across 20 workers, halved for protocol/RPC overheads).
IO_BYTES_PER_SECOND = 100e9 / 8 / 20 / 2
#: Average compression density of production video (Appendix A.2).
PIXELS_PER_BIT = 6.1


class Worker:
    """Common surface the schedulers rely on."""

    _ids = itertools.count()

    def __init__(self, name: str = ""):
        self.name = name or f"worker-{next(self._ids)}"
        self.pool_key = None
        self.active_steps = 0

    def is_idle(self) -> bool:
        return self.active_steps == 0

    # Subclasses define: resources (MultiResource), can_run(step), etc.


class VcuWorker(Worker):
    """A worker bound 1:1 to a VCU."""

    def __init__(
        self,
        vcu: Vcu,
        numa_aware: bool = True,
        target_speedup: float = 5.0,
        golden_screening: bool = True,
        host_multiplier: float = None,
        decode_safety_factor: float = 1.0,
        step_overhead_seconds: float = STEP_OVERHEAD_SECONDS,
        host: Optional["VcuHost"] = None,
        health_policy: Optional[HealthPolicy] = None,
    ):
        super().__init__(name=f"worker:{vcu.vcu_id}")
        self.vcu = vcu
        #: The physical fault domain this worker's VCU lives in (optional;
        #: lets the cluster evict a whole host on correlated failures).
        self.host = host
        self.target_speedup = target_speedup
        self.decode_safety_factor = decode_safety_factor
        self.step_overhead_seconds = step_overhead_seconds
        self.golden_screening = golden_screening
        self.health_policy = health_policy or HealthPolicy()
        self.health = HealthState.HEALTHY
        self.strikes = 0
        self.rescreen_failures = 0
        #: Optional observer invoked (with this worker) after every health
        #: transition -- the fleet-mode cluster keeps its availability
        #: count exact through this hook instead of rescanning the fleet.
        self.on_availability_change: Optional[Callable[["VcuWorker"], None]] = None
        if host_multiplier is None:
            host_multiplier = 1.0 if numa_aware else 1.0 / 1.20
        self.host_multiplier = host_multiplier
        if golden_screening:
            self._screen()

    def _set_health(self, new: HealthState) -> None:
        """The single choke point for health transitions.

        Every state change flows through here so the observability layer
        sees **exactly one** ``health`` span per transition -- the
        invariant the resilience/observability seam tests assert.
        """
        old = self.health
        if new is old:
            return
        if new not in LEGAL_HEALTH_TRANSITIONS[old]:
            raise IllegalHealthTransition(
                f"{self.name}: health {old.value} -> {new.value} is not in "
                "LEGAL_HEALTH_TRANSITIONS"
            )
        self.health = new
        observer = self.on_availability_change
        if observer is not None:
            observer(self)
        hub = obs.active()
        if hub is not None:
            hub.count("worker.health_transitions")
            hub.emit(
                "health", self.name,
                attrs={"from": old.value, "to": new.value, "vcu": self.vcu.vcu_id},
            )

    def _screen(self) -> None:
        """Functional reset + golden transcode battery before taking work."""
        if not self.vcu.golden_check():
            self._set_health(HealthState.QUARANTINED)

    #: States in which the worker still accepts work.  SUSPECT serves on
    #: purpose: one watchdog strike is a warning, not a conviction, and a
    #: suspect device must keep taking steps to either clear itself or
    #: exhaust the strike budget.
    _SERVING_STATES = (HealthState.HEALTHY, HealthState.SUSPECT)

    @property
    def refused(self) -> bool:
        """Back-compat view: any non-serving state refuses new work."""
        return self.health not in self._SERVING_STATES

    @property
    def resources(self) -> MultiResource:
        return self.vcu.resources

    def available(self) -> bool:
        if self.health not in self._SERVING_STATES or self.vcu.disabled:
            return False
        return self.host is None or not self.host.unusable

    def request_for(self, task: VcuTask) -> Dict[str, float]:
        return resource_request(
            task, self.vcu.spec, self.target_speedup,
            decode_safety_factor=self.decode_safety_factor,
        )

    def step_seconds(self, task: VcuTask, granted: Dict[str, float]) -> float:
        """Wall-clock time for a step: device processing (scaled by host
        efficiency) plus per-step overhead and host I/O."""
        device = processing_seconds(task, self.vcu.spec, granted)
        io_bytes = (task.input_pixels + task.output_pixels) / PIXELS_PER_BIT / 8.0
        io = io_bytes / IO_BYTES_PER_SECOND
        if self.vcu.corrupt:
            # A failing-but-fast VCU races through work (Section 4.4).
            device *= 0.3
        return device / self.host_multiplier + self.step_overhead_seconds + io

    def try_admit(self, request: Dict[str, float]) -> bool:
        if not self.available():
            return False
        admitted = self.vcu.try_admit(request)
        if admitted:
            self.active_steps += 1
        return admitted

    def release(self, request: Dict[str, float]) -> None:
        self.vcu.release(request)
        self.active_steps -= 1

    # -------------------------------------------------------------- #
    # Health-state machine transitions (see repro.cluster.health)

    def abort_and_quarantine(self) -> bool:
        """On a confirmed hardware failure: refuse work until re-screened.

        Returns True when this call performed the quarantine (False when
        the worker was already out of service)."""
        if self.health in (HealthState.HEALTHY, HealthState.SUSPECT):
            self._set_health(HealthState.QUARANTINED)
            return True
        return False

    def record_strike(self) -> bool:
        """A watchdog strike (hang).  Returns True when it quarantines.

        The first strike marks the worker SUSPECT (it keeps serving);
        exhausting the policy's strike budget quarantines it.
        """
        if self.health in (HealthState.QUARANTINED, HealthState.RESCREENING,
                           HealthState.DISABLED):
            return False
        self.strikes += 1
        if self.strikes >= self.health_policy.strike_budget:
            self._set_health(HealthState.QUARANTINED)
            return True
        self._set_health(HealthState.SUSPECT)
        return False

    def begin_rescreen(self) -> None:
        if self.health is not HealthState.QUARANTINED:
            raise RuntimeError(
                f"cannot rescreen {self.name} from state {self.health.value}"
            )
        self._set_health(HealthState.RESCREENING)

    def finish_rescreen(self) -> bool:
        """Complete the golden battery: True restores HEALTHY.

        A failure returns the worker to QUARANTINED (the cluster backs off
        and retries) until the policy's failure budget is exhausted, at
        which point the worker -- and its device -- are DISABLED pending a
        physical repair.
        """
        if self.health is not HealthState.RESCREENING:
            raise RuntimeError(
                f"cannot finish rescreen of {self.name} in state {self.health.value}"
            )
        if not self.vcu.disabled and self.vcu.golden_check():
            self._set_health(HealthState.HEALTHY)
            self.strikes = 0
            self.rescreen_failures = 0
            return True
        self.rescreen_failures += 1
        if self.rescreen_failures >= self.health_policy.max_rescreen_failures:
            self._set_health(HealthState.DISABLED)
            self.vcu.disable()
        else:
            self._set_health(HealthState.QUARANTINED)
        return False

    def reset_after_repair(self) -> bool:
        """A repair touched this worker's device: queue a fresh re-screen.

        Returns True when the worker moved into QUARANTINED (so the
        caller should schedule rehabilitation); HEALTHY workers are left
        alone.
        """
        if self.health is HealthState.HEALTHY:
            return False
        self._set_health(HealthState.QUARANTINED)
        self.strikes = 0
        self.rescreen_failures = 0
        return True


# Software fallback throughput comes from the Skylake model.
_CPU_MODEL = SkylakeSystem()


class CpuWorker(Worker):
    """A CPU machine slice: runs CPU steps and software-fallback transcodes."""

    def __init__(self, cores: float = 16.0, name: str = ""):
        super().__init__(name=name or None)
        if cores <= 0:
            raise ValueError("cores must be positive")
        self.cores = cores
        self.resources = MultiResource({"cpu_cores": cores}, name=self.name)

    def available(self) -> bool:
        return True

    def request_for_cpu_step(self, core_seconds: float, max_cores: float = 4.0) -> Dict[str, float]:
        cores = min(max_cores, self.cores)
        return {"cpu_cores": cores}

    def cpu_step_seconds(self, core_seconds: float, granted: Dict[str, float]) -> float:
        return core_seconds / granted["cpu_cores"]

    def request_for_transcode(self, task: VcuTask) -> Dict[str, float]:
        """Software fallback: grab a fixed core bundle per transcode."""
        return {"cpu_cores": min(8.0, self.cores)}

    def transcode_seconds(self, task: VcuTask, granted: Dict[str, float]) -> float:
        total = 0.0
        for output in task.outputs:
            mpix = output.pixels * task.frame_count / 1e6
            rate_per_core = _CPU_MODEL.per_core_throughput(task.codec, output)
            total += mpix / rate_per_core
        return total / granted["cpu_cores"]

    def try_admit(self, request: Dict[str, float]) -> bool:
        admitted = self.resources.acquire(request)
        if admitted:
            self.active_steps += 1
        return admitted

    def release(self, request: Dict[str, float]) -> None:
        self.resources.release(request)
        self.active_steps -= 1
