"""The per-worker health-state machine (Section 4.4, made first-class).

The seed modelled only the happy path of the paper's failure workflow: a
worker that failed golden screening (or had a corruption caught by an
integrity check) was refused *forever*.  Production fault management is a
cycle, not a one-way door -- devices hang transiently, repairs replace
cards, and a re-screened device returns to service.  The state machine:

::

    HEALTHY --strike/quarantine--> SUSPECT --strikes--> QUARANTINED
       ^                                                    |
       |                                     rescreen_delay |
       +-- golden battery passes -- RESCREENING <-----------+
                                        |
                    repeated failures   v
                  (max_rescreen_failures) --> DISABLED

* ``HEALTHY``: taking work.
* ``SUSPECT``: struck by a watchdog hang; still serving, but the next
  strike within the policy's strike budget quarantines it.
* ``QUARANTINED``: refused work; the cluster schedules rehabilitation.
* ``RESCREENING``: running the golden transcode battery.
* ``DISABLED``: failed too many re-screens; the device itself is disabled
  and only a physical repair (card swap) brings the worker back.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Dict, Tuple


class HealthState(enum.Enum):
    HEALTHY = "healthy"
    SUSPECT = "suspect"
    QUARANTINED = "quarantined"
    RESCREENING = "rescreening"
    DISABLED = "disabled"


class IllegalHealthTransition(RuntimeError):
    """A health-state set outside the declared transition table."""


#: The declared worker-health transition table (the diagram above, as
#: data).  ``VcuWorker._set_health`` enforces it at runtime and the
#: ``state-machine`` lint pass verifies every call site against it
#: statically -- edit this table and the lint run tells you which sites
#: and tests the change invalidates.  Same-state sets are no-ops at the
#: choke point, so no self-loops are declared.
LEGAL_HEALTH_TRANSITIONS: Dict[HealthState, Tuple[HealthState, ...]] = {
    HealthState.HEALTHY: (HealthState.SUSPECT, HealthState.QUARANTINED),
    HealthState.SUSPECT: (HealthState.QUARANTINED,),
    HealthState.QUARANTINED: (HealthState.RESCREENING,),
    HealthState.RESCREENING: (
        HealthState.HEALTHY,
        HealthState.QUARANTINED,
        HealthState.DISABLED,
    ),
    HealthState.DISABLED: (HealthState.QUARANTINED,),
}


@dataclass(frozen=True)
class HealthPolicy:
    """Knobs for the worker health-state machine."""

    #: Watchdog strikes tolerated before SUSPECT escalates to QUARANTINED.
    #: (The first strike moves HEALTHY -> SUSPECT; reaching this many
    #: total strikes quarantines.)
    strike_budget: int = 2
    #: Seconds a quarantined worker waits before its first re-screen.
    rescreen_delay_seconds: float = 30.0
    #: Wall-clock cost of the golden transcode battery itself.
    screen_seconds: float = 5.0
    #: Delay multiplier between successive failed re-screens.
    rescreen_backoff: float = 2.0
    #: Failed re-screens tolerated before the worker is DISABLED.
    max_rescreen_failures: int = 3

    def __post_init__(self) -> None:
        if self.strike_budget < 1:
            raise ValueError("strike_budget must be >= 1")
        if self.rescreen_delay_seconds < 0 or self.screen_seconds < 0:
            raise ValueError("rescreen delays must be >= 0")
        if self.rescreen_backoff < 1.0:
            raise ValueError("rescreen_backoff must be >= 1")
        if self.max_rescreen_failures < 1:
            raise ValueError("max_rescreen_failures must be >= 1")
