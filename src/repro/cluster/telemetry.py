"""Vectorized fleet telemetry: aggregate arrays, sampled flushes.

The exact telemetry path (``TranscodeCluster._record_utilization``)
recomputes a Python mean over every live worker *twice per step* -- at
admit and at release.  At 50k VCUs that is the cluster hot path, not the
instrumentation.  ``FleetTelemetry`` replaces it when the cluster is
constructed with ``telemetry_mode="sampled"``:

* per-worker encoder/decoder *used* milli-units live in preallocated
  numpy arrays, updated O(1) per admit/release from the request vector
  the cluster already has in hand;
* a sampler process wakes every ``sample_seconds`` of virtual time,
  computes the fleet means with a handful of vectorized ops, and flushes
  them into the same sinks the exact path uses -- the cluster's
  :class:`~repro.obs.registry.UtilizationTracker` pair and the
  ``cluster.encoder_util``/``cluster.decoder_util`` time gauges of the
  installed :class:`~repro.obs.registry.MetricsRegistry`;
* per-graph latency observations are buffered and delivered in bulk
  (``Histogram.observe_many``) at the same sample boundaries.  Histogram
  state has no time axis, so the final snapshot is identical to the
  per-event path's.

The trade is explicit: utilization becomes a step function sampled at
boundaries instead of an exact event-aligned series, which is why the
cluster keeps ``telemetry_mode="exact"`` as the default and the golden
traces run against it.  The sampler keeps itself alive only while work
is in flight, so a drained simulation still terminates.
"""

from __future__ import annotations

from typing import Dict, Generator, List, TYPE_CHECKING

import numpy as np

from repro import obs

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.cluster.cluster import TranscodeCluster

#: Default virtual-time distance between telemetry flushes.
DEFAULT_SAMPLE_SECONDS = 5.0


class FleetTelemetry:
    """Aggregate per-worker usage arrays + a boundary-flush sampler."""

    def __init__(
        self,
        cluster: "TranscodeCluster",
        sample_seconds: float = DEFAULT_SAMPLE_SECONDS,
    ):
        if sample_seconds <= 0:
            raise ValueError("sample_seconds must be positive")
        self.cluster = cluster
        self.sample_seconds = sample_seconds
        workers = cluster.vcu_workers
        self._index: Dict[str, int] = {w.name: i for i, w in enumerate(workers)}
        n = len(workers)
        self._enc_cap = np.empty(n, dtype=np.float64)
        self._dec_cap = np.empty(n, dtype=np.float64)
        self._enc_used = np.empty(n, dtype=np.float64)
        self._dec_used = np.empty(n, dtype=np.float64)
        for i, worker in enumerate(workers):
            capacity = worker.vcu.resources.capacity
            available = worker.vcu.resources.available
            self._enc_cap[i] = capacity.get("milliencode", np.inf)
            self._dec_cap[i] = capacity.get("millidecode", np.inf)
            self._enc_used[i] = self._enc_cap[i] - available.get(
                "milliencode", self._enc_cap[i]
            )
            self._dec_used[i] = self._dec_cap[i] - available.get(
                "millidecode", self._dec_cap[i]
            )
        self._latency_buffer: List[float] = []
        self._inflight = 0
        self.flushes = 0
        self._running = False

    # -------------------------------------------------------------- #
    # O(1) hot-path updates (called by the cluster at admit/release)

    def note_admit(self, worker_name: str, request: Dict[str, float]) -> None:
        index = self._index[worker_name]
        self._enc_used[index] += request.get("milliencode", 0.0)
        self._dec_used[index] += request.get("millidecode", 0.0)
        self._inflight += 1
        if not self._running:
            self._running = True
            self.cluster.sim.process(self._sample_loop(), name="fleet-telemetry")

    def note_release(self, worker_name: str, request: Dict[str, float]) -> None:
        index = self._index[worker_name]
        self._enc_used[index] -= request.get("milliencode", 0.0)
        self._dec_used[index] -= request.get("millidecode", 0.0)
        self._inflight -= 1

    def note_graph_latency(self, latency: float) -> None:
        self._latency_buffer.append(latency)

    # -------------------------------------------------------------- #
    # Sample-boundary flush

    def _sample_loop(self) -> Generator:
        while True:
            yield self.sample_seconds
            self.flush()
            if self._inflight == 0:
                # Nothing running: stop so a drained simulation can end.
                # The next admit restarts the loop.
                self._running = False
                return

    def _availability_mask(self) -> np.ndarray:
        cluster = self.cluster
        mask = cluster.availability_mask()
        if mask is not None:
            return mask
        return np.fromiter(
            (w.available() for w in cluster.vcu_workers),
            dtype=bool,
            count=len(cluster.vcu_workers),
        )

    def flush(self) -> None:
        """Push the aggregate view into the exact path's sinks."""
        cluster = self.cluster
        now = cluster.sim.now
        mask = self._availability_mask()
        live = int(mask.sum())
        if live:
            encoder = float(np.mean(self._enc_used[mask] / self._enc_cap[mask]))
            decoder = float(np.mean(self._dec_used[mask] / self._dec_cap[mask]))
            cluster.encoder_util.record(now, encoder)
            cluster.decoder_util.record(now, decoder)
        hub = obs.active()
        if hub is not None:
            if live:
                hub.metrics.time_gauge("cluster.encoder_util").set(now, encoder)
                hub.metrics.time_gauge("cluster.decoder_util").set(now, decoder)
            if self._latency_buffer:
                hub.metrics.histogram("cluster.graph_latency_seconds").observe_many(
                    self._latency_buffer
                )
        self._latency_buffer.clear()
        self.flushes += 1
