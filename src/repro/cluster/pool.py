"""Logical pools of computing (Section 3.3.3).

Each cluster defines pools by use case (upload, live, ...) and priority
(critical, normal, batch); each pool has its own scheduler and workers.
Idle workers can be stopped and reallocated to other pools, maximizing
cluster-wide VCU utilization.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Dict, List, TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover
    from repro.cluster.worker import Worker


class UseCase(enum.Enum):
    UPLOAD = "upload"
    LIVE = "live"


class Priority(enum.IntEnum):
    CRITICAL = 0
    NORMAL = 1
    BATCH = 2


@dataclass(frozen=True, order=True)
class PoolKey:
    priority: Priority
    use_case: UseCase

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return f"{self.use_case.value}/{self.priority.name.lower()}"


@dataclass
class Pool:
    """One pool: its workers plus demand bookkeeping for reallocation."""

    key: PoolKey
    workers: List["Worker"] = field(default_factory=list)
    pending_steps: int = 0

    def idle_workers(self) -> List["Worker"]:
        return [w for w in self.workers if w.is_idle()]

    def demand_pressure(self) -> float:
        """Pending work per worker; the reallocation signal."""
        if not self.workers:
            return float("inf") if self.pending_steps else 0.0
        return self.pending_steps / len(self.workers)


def rebalance_pools(pools: Dict[PoolKey, Pool]) -> int:
    """Move idle workers from low-pressure pools to high-pressure ones.

    Returns how many workers moved.  Higher-priority pools are served
    first; a worker only moves when its source pool has zero pending work.
    """
    moved = 0
    needy = sorted(
        (p for p in pools.values() if p.pending_steps > 0),
        key=lambda p: (p.key.priority, -p.demand_pressure()),
    )
    donors = [p for p in pools.values() if p.pending_steps == 0]
    for pool in needy:
        for donor in donors:
            if donor.key == pool.key:
                continue
            idle = donor.idle_workers()
            while idle and pool.demand_pressure() > 1.0:
                worker = idle.pop()
                donor.workers.remove(worker)
                pool.workers.append(worker)
                worker.pool_key = pool.key
                moved += 1
    return moved
