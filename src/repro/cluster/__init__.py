"""The warehouse-scale cluster substrate: workers, schedulers, pools.

This package is the distributed-systems half of the co-design: a
discrete-event cluster of VCU hosts and CPU machines, logical pools per
(use case, priority), a global work queue of step graphs, and the
paper's multi-dimensional bin-packing scheduler (Section 3.3.3) next to
the legacy single-slot scheduler it replaced.
"""

from repro.cluster.health import HealthPolicy, HealthState
from repro.cluster.worker import CpuWorker, VcuWorker, Worker
from repro.cluster.scheduler import (
    BinPackingScheduler,
    SchedulerProtocol,
    SingleSlotScheduler,
)
from repro.cluster.pool import Pool, PoolKey, Priority, UseCase
from repro.cluster.metrics import UtilizationTracker
from repro.cluster.cluster import ClusterStats, TranscodeCluster

__all__ = [
    "Worker",
    "VcuWorker",
    "CpuWorker",
    "HealthPolicy",
    "HealthState",
    "BinPackingScheduler",
    "SingleSlotScheduler",
    "SchedulerProtocol",
    "Pool",
    "PoolKey",
    "UseCase",
    "Priority",
    "UtilizationTracker",
    "TranscodeCluster",
    "ClusterStats",
]
