"""Work schedulers: multi-dimensional bin packing vs the legacy model.

:class:`BinPackingScheduler` is the paper's contribution (Section 3.3.3):
an availability cache of every worker's remaining capacity across all
named resource dimensions, with a load-maximizing greedy placement
(first fit by worker number, exactly as in Figure 6 -- Worker 0 lacking
decode millicores sends the request to Worker 1).

:class:`SingleSlotScheduler` is the prior uniform-cost model: every step
costs one slot regardless of shape, so a 144p SOT and a 2160p MOT consume
the same "capacity" -- the mismatch the bin-packing scheduler fixes.

Hot-path structure: both schedulers keep an *index* over the worker list
so a placement probes candidates instead of scanning the whole fleet.
The bin packer caches per-worker availability as one ``(n_workers,
n_dims)`` array and computes the set of fitting workers with a handful
of vectorized comparisons (replicating ``MultiResource.fits`` -- same
epsilon, same missing-dimension rule); the single-slot model keeps a
sorted free list.  ``worker.try_admit`` stays authoritative: the index
is a pre-filter, refreshed from worker ground truth on every admission
and release the scheduler observes, so placements are identical to the
pre-index linear scan (preserved as :meth:`BinPackingScheduler.place_scan`
for the equivalence suite and the perf harness).
"""

from __future__ import annotations

from bisect import insort
from typing import Dict, List, Optional, Protocol, Sequence, Set

import numpy as np

from repro import obs


def _emit_placement(
    scheduler: str,
    worker: Optional[PlaceableWorker],
    excluded: Set[str],
    preference: Optional[Sequence[str]],
) -> None:
    """One ``sched`` span per placement decision (accept or reject).

    The scheduler has no clock of its own; the span timestamp comes from
    the hub's bound virtual clock (see ``Observability.bind_clock``).
    Costs a global load + None check when no hub is installed.
    """
    hub = obs.active()
    if hub is None:
        return
    accepted = worker is not None
    hub.count("sched.placements" if accepted else "sched.rejections")
    hub.emit(
        "sched", scheduler,
        attrs={
            "worker": worker.name if accepted else None,
            "excluded": len(excluded),
            "preferred": bool(preference),
        },
    )


class PlaceableWorker(Protocol):  # pragma: no cover - structural typing
    name: str

    def available(self) -> bool: ...
    def try_admit(self, request: Dict[str, float]) -> bool: ...


class SchedulerProtocol(Protocol):  # pragma: no cover
    def place(
        self,
        request: Dict[str, float],
        excluded: Set[str] = frozenset(),
        preference: Optional[Sequence[str]] = None,
    ) -> Optional[PlaceableWorker]: ...


def _ordered_workers(
    workers: Sequence[PlaceableWorker], preference: Optional[Sequence[str]]
) -> Sequence[PlaceableWorker]:
    """Probe order: the caller's preferred names first, then the rest.

    ``preference`` is how consistent-hash chunk affinity plugs into
    placement (Section 4.4's blast-radius enhancement) without the
    scheduler knowing anything about videos.
    """
    if not preference:
        return workers
    by_name = {w.name: w for w in workers}
    preferred = [by_name[name] for name in preference if name in by_name]
    chosen = set(preference)
    return preferred + [w for w in workers if w.name not in chosen]


class BinPackingScheduler:
    """Online multi-dimensional bin packing over an availability cache.

    The cache is an ``(n_workers, n_dims)`` float array of remaining
    capacity per named dimension: workers without a ``resources``
    attribute (test shims) carry ``+inf`` rows (always candidates,
    ``try_admit`` decides), dimensions a worker lacks carry ``-inf``
    (never fit, matching ``MultiResource.fits``).  Rows may only ever
    be *optimistic* -- an admission the scheduler did not observe makes
    ``try_admit`` reject and the scan continue, which is exactly what
    the linear scan did.  A release the scheduler did not observe would
    make a row pessimistic, so a fruitless indexed pass refreshes every
    row from ground truth and rescans once before reporting a rejection.
    """

    def __init__(self, workers: Sequence[PlaceableWorker]):
        self._workers: List[PlaceableWorker] = list(workers)
        # Maintained incrementally on add/remove -- the pre-index code
        # rebuilt a name->worker dict on every placement.
        self._by_name: Dict[str, int] = {
            w.name: i for i, w in enumerate(self._workers)
        }
        self.placements = 0
        self.rejections = 0
        self._dims: List[str] = []
        self._dim_index: Dict[str, int] = {}
        self._avail = np.empty((0, 0), dtype=np.float64)
        self._unindexed = np.empty(0, dtype=bool)  # workers w/o .resources
        self._rebuild_index()

    @property
    def workers(self) -> List[PlaceableWorker]:
        return list(self._workers)

    def add_worker(self, worker: PlaceableWorker) -> None:
        self._workers.append(worker)
        self._by_name[worker.name] = len(self._workers) - 1
        resources = getattr(worker, "resources", None)
        if resources is not None and any(
            dim not in self._dim_index for dim in resources.capacity
        ):
            self._rebuild_index()
            return
        self._avail = np.vstack(
            [self._avail, np.empty((1, len(self._dims)), dtype=np.float64)]
        )
        self._unindexed = np.append(self._unindexed, resources is None)
        self._refresh_row(len(self._workers) - 1)

    def remove_worker(self, worker: PlaceableWorker) -> None:
        self._workers.remove(worker)
        self._by_name = {w.name: i for i, w in enumerate(self._workers)}
        self._rebuild_index()

    # ------------------------------------------------------------------ #
    # Availability index

    def _rebuild_index(self) -> None:
        dims: List[str] = []
        seen: Set[str] = set()
        for worker in self._workers:
            resources = getattr(worker, "resources", None)
            if resources is None:
                continue
            for dim in resources.capacity:
                if dim not in seen:
                    seen.add(dim)
                    dims.append(dim)
        self._dims = dims
        self._dim_index = {dim: j for j, dim in enumerate(dims)}
        self._avail = np.empty(
            (len(self._workers), len(dims)), dtype=np.float64
        )
        self._unindexed = np.array(
            [getattr(w, "resources", None) is None for w in self._workers],
            dtype=bool,
        ).reshape(len(self._workers))
        for index in range(len(self._workers)):
            self._refresh_row(index)

    def _refresh_row(self, index: int) -> None:
        """Re-read one worker's availability vector from ground truth."""
        row = self._avail[index]
        resources = getattr(self._workers[index], "resources", None)
        if resources is None:
            row[:] = np.inf
            return
        available = resources.available
        for j, dim in enumerate(self._dims):
            row[j] = available.get(dim, -np.inf)

    def refresh(self) -> None:
        """Re-sync every row (external admissions/releases happened)."""
        for index in range(len(self._workers)):
            self._refresh_row(index)

    def _fit_mask(self, request: Dict[str, float]) -> np.ndarray:
        """Elementwise replica of ``MultiResource.fits`` over all workers."""
        mask = np.ones(len(self._workers), dtype=bool)
        for dim, amount in request.items():
            if amount <= 0:
                continue
            j = self._dim_index.get(dim)
            if j is None:
                # Dimension no indexed worker has: only resource-less
                # workers can fit it (their try_admit decides).
                mask &= self._unindexed
                continue
            epsilon = max(1e-9, 1e-9 * abs(amount))
            mask &= self._avail[:, j] + epsilon >= amount
        return mask

    # ------------------------------------------------------------------ #
    # Placement

    def place(
        self,
        request: Dict[str, float],
        excluded: Set[str] = frozenset(),
        preference: Optional[Sequence[str]] = None,
    ) -> Optional[PlaceableWorker]:
        """First worker (by number) whose availability fits the request.

        ``excluded`` carries worker names the step must avoid -- e.g. VCUs
        it already failed on (Section 4.4's fault-correlation retries).
        ``preference`` front-loads the probe order (chunk affinity).
        """
        worker = self._place_indexed(request, excluded, preference)
        if worker is None:
            # The index can only miss a fitting worker if resources were
            # released behind its back; re-sync and rescan before rejecting.
            self.refresh()
            worker = self._place_indexed(request, excluded, preference)
        if worker is not None:
            self.placements += 1
        else:
            self.rejections += 1
        _emit_placement("bin_packing", worker, excluded, preference)
        return worker

    def _place_indexed(
        self,
        request: Dict[str, float],
        excluded: Set[str],
        preference: Optional[Sequence[str]],
    ) -> Optional[PlaceableWorker]:
        mask = self._fit_mask(request)
        preferred: Set[int] = set()
        if preference:
            by_name = self._by_name
            for name in preference:
                index = by_name.get(name)
                if index is None:
                    continue
                preferred.add(index)
                worker = self._workers[index]
                if (
                    mask[index]
                    and worker.name not in excluded
                    and worker.available()
                    and worker.try_admit(request)
                ):
                    self._refresh_row(index)
                    return worker
        for index in np.flatnonzero(mask).tolist():
            if index in preferred:
                continue
            worker = self._workers[index]
            if worker.name in excluded or not worker.available():
                continue
            if worker.try_admit(request):
                self._refresh_row(index)
                return worker
        return None

    def place_scan(
        self,
        request: Dict[str, float],
        excluded: Set[str] = frozenset(),
        preference: Optional[Sequence[str]] = None,
    ) -> Optional[PlaceableWorker]:
        """Pre-index linear scan (parity/benchmark reference).

        Identical placement semantics to :meth:`place`; kept so the
        equivalence suite can replay one placement stream through both
        and the perf harness can measure the index's win.  Admissions it
        performs leave the index optimistic, which :meth:`place`
        tolerates by construction.
        """
        for worker in _ordered_workers(self._workers, preference):
            if worker.name in excluded or not worker.available():
                continue
            if worker.try_admit(request):
                self.placements += 1
                _emit_placement("bin_packing", worker, excluded, preference)
                return worker
        self.rejections += 1
        _emit_placement("bin_packing", None, excluded, preference)
        return None

    def release(
        self, worker: PlaceableWorker, request: Dict[str, float]
    ) -> None:
        """Release a placed request and keep the availability index fresh."""
        worker.release(request)  # type: ignore[attr-defined]
        index = self._by_name.get(worker.name)
        if index is not None and self._workers[index] is worker:
            self._refresh_row(index)


class SingleSlotScheduler:
    """The legacy one-dimensional "single slot per graph step" model.

    Each worker advertises a fixed slot count derived from its configured
    size and the *average* step resource usage; every step takes exactly
    one slot.  Oversized steps overload workers, undersized steps strand
    capacity -- which the ablation benchmark quantifies.  A sorted free
    list (worker indices with spare slots) keeps placement from scanning
    slot-exhausted workers; first-fit-by-worker-number order is unchanged.
    """

    def __init__(self, workers: Sequence[PlaceableWorker], slots_per_worker: int = 4):
        if slots_per_worker < 1:
            raise ValueError("slots_per_worker must be >= 1")
        self._workers = list(workers)
        self._by_name: Dict[str, int] = {
            w.name: i for i, w in enumerate(self._workers)
        }
        self._slots: List[int] = [slots_per_worker] * len(self._workers)
        self._free: List[int] = list(range(len(self._workers)))
        self.slots_per_worker = slots_per_worker
        self.placements = 0
        self.rejections = 0

    @property
    def workers(self) -> List[PlaceableWorker]:
        return list(self._workers)

    def _take_slot(self, index: int) -> None:
        self._slots[index] -= 1
        if self._slots[index] == 0:
            self._free.remove(index)

    def place(
        self,
        request: Dict[str, float],
        excluded: Set[str] = frozenset(),
        preference: Optional[Sequence[str]] = None,
    ) -> Optional[PlaceableWorker]:
        """One slot per step; the request's actual shape is ignored, but
        the worker's physical resources are still reserved (a real machine
        cannot run what does not fit)."""
        preferred: Set[int] = set()
        if preference:
            for name in preference:
                index = self._by_name.get(name)
                if index is None:
                    continue
                preferred.add(index)
                worker = self._workers[index]
                if (
                    self._slots[index] > 0
                    and worker.name not in excluded
                    and worker.available()
                    and worker.try_admit(request)
                ):
                    self._take_slot(index)
                    self.placements += 1
                    _emit_placement("single_slot", worker, excluded, preference)
                    return worker
        for index in list(self._free):
            if index in preferred:
                continue
            worker = self._workers[index]
            if worker.name in excluded or not worker.available():
                continue
            if worker.try_admit(request):
                self._take_slot(index)
                self.placements += 1
                _emit_placement("single_slot", worker, excluded, preference)
                return worker
        self.rejections += 1
        _emit_placement("single_slot", None, excluded, preference)
        return None

    def release_slot(self, worker: PlaceableWorker) -> None:
        index = self._by_name[worker.name]
        self._slots[index] += 1
        if self._slots[index] == 1:
            insort(self._free, index)

    def release(
        self, worker: PlaceableWorker, request: Dict[str, float]
    ) -> None:
        """Release a placed request plus the slot it burned."""
        worker.release(request)  # type: ignore[attr-defined]
        self.release_slot(worker)
