"""Work schedulers: multi-dimensional bin packing vs the legacy model.

:class:`BinPackingScheduler` is the paper's contribution (Section 3.3.3):
an availability cache of every worker's remaining capacity across all
named resource dimensions, with a load-maximizing greedy placement
(first fit by worker number, exactly as in Figure 6 -- Worker 0 lacking
decode millicores sends the request to Worker 1).

:class:`SingleSlotScheduler` is the prior uniform-cost model: every step
costs one slot regardless of shape, so a 144p SOT and a 2160p MOT consume
the same "capacity" -- the mismatch the bin-packing scheduler fixes.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Protocol, Sequence, Set

from repro import obs


def _emit_placement(
    scheduler: str,
    worker: Optional[PlaceableWorker],
    excluded: Set[str],
    preference: Optional[Sequence[str]],
) -> None:
    """One ``sched`` span per placement decision (accept or reject).

    The scheduler has no clock of its own; the span timestamp comes from
    the hub's bound virtual clock (see ``Observability.bind_clock``).
    Costs a global load + None check when no hub is installed.
    """
    hub = obs.active()
    if hub is None:
        return
    accepted = worker is not None
    hub.count("sched.placements" if accepted else "sched.rejections")
    hub.emit(
        "sched", scheduler,
        attrs={
            "worker": worker.name if accepted else None,
            "excluded": len(excluded),
            "preferred": bool(preference),
        },
    )


class PlaceableWorker(Protocol):  # pragma: no cover - structural typing
    name: str

    def available(self) -> bool: ...
    def try_admit(self, request: Dict[str, float]) -> bool: ...


class SchedulerProtocol(Protocol):  # pragma: no cover
    def place(
        self,
        request: Dict[str, float],
        excluded: Set[str] = frozenset(),
        preference: Optional[Sequence[str]] = None,
    ) -> Optional[PlaceableWorker]: ...


def _ordered_workers(
    workers: Sequence[PlaceableWorker], preference: Optional[Sequence[str]]
) -> Sequence[PlaceableWorker]:
    """Probe order: the caller's preferred names first, then the rest.

    ``preference`` is how consistent-hash chunk affinity plugs into
    placement (Section 4.4's blast-radius enhancement) without the
    scheduler knowing anything about videos.
    """
    if not preference:
        return workers
    by_name = {w.name: w for w in workers}
    preferred = [by_name[name] for name in preference if name in by_name]
    chosen = set(preference)
    return preferred + [w for w in workers if w.name not in chosen]


class BinPackingScheduler:
    """Online multi-dimensional bin packing over an availability cache."""

    def __init__(self, workers: Sequence[PlaceableWorker]):
        self._workers: List[PlaceableWorker] = list(workers)
        self.placements = 0
        self.rejections = 0

    @property
    def workers(self) -> List[PlaceableWorker]:
        return list(self._workers)

    def add_worker(self, worker: PlaceableWorker) -> None:
        self._workers.append(worker)

    def remove_worker(self, worker: PlaceableWorker) -> None:
        self._workers.remove(worker)

    def place(
        self,
        request: Dict[str, float],
        excluded: Set[str] = frozenset(),
        preference: Optional[Sequence[str]] = None,
    ) -> Optional[PlaceableWorker]:
        """First worker (by number) whose availability fits the request.

        ``excluded`` carries worker names the step must avoid -- e.g. VCUs
        it already failed on (Section 4.4's fault-correlation retries).
        ``preference`` front-loads the probe order (chunk affinity).
        """
        for worker in _ordered_workers(self._workers, preference):
            if worker.name in excluded or not worker.available():
                continue
            if worker.try_admit(request):
                self.placements += 1
                _emit_placement("bin_packing", worker, excluded, preference)
                return worker
        self.rejections += 1
        _emit_placement("bin_packing", None, excluded, preference)
        return None


class SingleSlotScheduler:
    """The legacy one-dimensional "single slot per graph step" model.

    Each worker advertises a fixed slot count derived from its configured
    size and the *average* step resource usage; every step takes exactly
    one slot.  Oversized steps overload workers, undersized steps strand
    capacity -- which the ablation benchmark quantifies.
    """

    def __init__(self, workers: Sequence[PlaceableWorker], slots_per_worker: int = 4):
        if slots_per_worker < 1:
            raise ValueError("slots_per_worker must be >= 1")
        self._workers = list(workers)
        self._slots: Dict[str, int] = {w.name: slots_per_worker for w in self._workers}
        self.slots_per_worker = slots_per_worker
        self.placements = 0
        self.rejections = 0

    @property
    def workers(self) -> List[PlaceableWorker]:
        return list(self._workers)

    def place(
        self,
        request: Dict[str, float],
        excluded: Set[str] = frozenset(),
        preference: Optional[Sequence[str]] = None,
    ) -> Optional[PlaceableWorker]:
        """One slot per step; the request's actual shape is ignored, but
        the worker's physical resources are still reserved (a real machine
        cannot run what does not fit)."""
        for worker in _ordered_workers(self._workers, preference):
            if worker.name in excluded or not worker.available():
                continue
            if self._slots[worker.name] <= 0:
                continue
            if worker.try_admit(request):
                self._slots[worker.name] -= 1
                self.placements += 1
                _emit_placement("single_slot", worker, excluded, preference)
                return worker
        self.rejections += 1
        _emit_placement("single_slot", None, excluded, preference)
        return None

    def release_slot(self, worker: PlaceableWorker) -> None:
        self._slots[worker.name] += 1
