"""Work schedulers: multi-dimensional bin packing vs the legacy model.

:class:`BinPackingScheduler` is the paper's contribution (Section 3.3.3):
an availability cache of every worker's remaining capacity across all
named resource dimensions, with a load-maximizing greedy placement
(first fit by worker number, exactly as in Figure 6 -- Worker 0 lacking
decode millicores sends the request to Worker 1).

:class:`SingleSlotScheduler` is the prior uniform-cost model: every step
costs one slot regardless of shape, so a 144p SOT and a 2160p MOT consume
the same "capacity" -- the mismatch the bin-packing scheduler fixes.

Hot-path structure: both schedulers keep an *index* over the worker list
so a placement probes candidates instead of scanning the whole fleet.
The bin packer caches per-worker availability as one ``(n_workers,
n_dims)`` array and computes the set of fitting workers with a handful
of vectorized comparisons (replicating ``MultiResource.fits`` -- same
epsilon, same missing-dimension rule); the single-slot model keeps a
sorted free list.  ``worker.try_admit`` stays authoritative: the index
is a pre-filter, refreshed from worker ground truth on every admission
and release the scheduler observes, so placements are identical to the
pre-index linear scan (preserved as :meth:`BinPackingScheduler.place_scan`
for the equivalence suite and the perf harness).
"""

from __future__ import annotations

from bisect import insort
from contextlib import contextmanager
from typing import Dict, Iterator, List, Optional, Protocol, Sequence, Set, Tuple

import numpy as np

from repro import obs


def _emit_placement(
    scheduler: str,
    worker: Optional[PlaceableWorker],
    excluded: Set[str],
    preference: Optional[Sequence[str]],
) -> None:
    """One ``sched`` span per placement decision (accept or reject).

    The scheduler has no clock of its own; the span timestamp comes from
    the hub's bound virtual clock (see ``Observability.bind_clock``).
    Costs a global load + None check when no hub is installed.
    """
    hub = obs.active()
    if hub is None:
        return
    accepted = worker is not None
    hub.count("sched.placements" if accepted else "sched.rejections")
    hub.emit(
        "sched", scheduler,
        attrs={
            "worker": worker.name if accepted else None,
            "excluded": len(excluded),
            "preferred": bool(preference),
        },
    )


class PlaceableWorker(Protocol):  # pragma: no cover - structural typing
    name: str

    def available(self) -> bool: ...
    def try_admit(self, request: Dict[str, float]) -> bool: ...


class SchedulerProtocol(Protocol):  # pragma: no cover
    def place(
        self,
        request: Dict[str, float],
        excluded: Set[str] = frozenset(),
        preference: Optional[Sequence[str]] = None,
    ) -> Optional[PlaceableWorker]: ...


def _ordered_workers(
    workers: Sequence[PlaceableWorker], preference: Optional[Sequence[str]]
) -> Sequence[PlaceableWorker]:
    """Probe order: the caller's preferred names first, then the rest.

    ``preference`` is how consistent-hash chunk affinity plugs into
    placement (Section 4.4's blast-radius enhancement) without the
    scheduler knowing anything about videos.
    """
    if not preference:
        return workers
    by_name = {w.name: w for w in workers}
    preferred = [by_name[name] for name in preference if name in by_name]
    chosen = set(preference)
    return preferred + [w for w in workers if w.name not in chosen]


class _ShapeCache:
    """Per-request-shape placement state, valid for one batch.

    ``mask``/``order`` are the fit mask and its candidate index list,
    computed once per shape per batch.  ``dead`` collects indices whose
    ``try_admit`` rejected this shape: within a batch, availability only
    ever *decreases* (admits are observed, releases invalidate the whole
    batch), so a resource rejection is permanent for the batch and the
    scan never re-probes the worker.
    """

    __slots__ = ("mask", "order", "dead")

    def __init__(self, mask: np.ndarray):
        self.mask = mask
        self.order: List[int] = np.flatnonzero(mask).tolist()
        self.dead: Set[int] = set()


class _BatchState:
    """Shared cache for one placement batch (see ``batch()``)."""

    __slots__ = ("shapes", "refreshed")

    def __init__(self):
        self.shapes: Dict[Tuple, _ShapeCache] = {}
        self.refreshed = False

    def invalidate(self) -> None:
        self.shapes.clear()
        self.refreshed = False


class BinPackingScheduler:
    """Online multi-dimensional bin packing over an availability cache.

    The cache is an ``(n_workers, n_dims)`` float array of remaining
    capacity per named dimension: workers without a ``resources``
    attribute (test shims) carry ``+inf`` rows (always candidates,
    ``try_admit`` decides), dimensions a worker lacks carry ``-inf``
    (never fit, matching ``MultiResource.fits``).  Rows may only ever
    be *optimistic* -- an admission the scheduler did not observe makes
    ``try_admit`` reject and the scan continue, which is exactly what
    the linear scan did.  A release the scheduler did not observe would
    make a row pessimistic, so a fruitless indexed pass refreshes every
    row from ground truth and rescans once before reporting a rejection.
    """

    def __init__(self, workers: Sequence[PlaceableWorker]):
        self._workers: List[PlaceableWorker] = list(workers)
        # Maintained incrementally on add/remove -- the pre-index code
        # rebuilt a name->worker dict on every placement.
        self._by_name: Dict[str, int] = {
            w.name: i for i, w in enumerate(self._workers)
        }
        self.placements = 0
        self.rejections = 0
        self._dims: List[str] = []
        self._dim_index: Dict[str, int] = {}
        self._avail = np.empty((0, 0), dtype=np.float64)
        self._unindexed = np.empty(0, dtype=bool)  # workers w/o .resources
        self._batch: Optional[_BatchState] = None
        self._rebuild_index()

    @property
    def workers(self) -> List[PlaceableWorker]:
        return list(self._workers)

    def add_worker(self, worker: PlaceableWorker) -> None:
        if self._batch is not None:
            self._batch.invalidate()
        self._workers.append(worker)
        self._by_name[worker.name] = len(self._workers) - 1
        resources = getattr(worker, "resources", None)
        if resources is not None and any(
            dim not in self._dim_index for dim in resources.capacity
        ):
            self._rebuild_index()
            return
        self._avail = np.vstack(
            [self._avail, np.empty((1, len(self._dims)), dtype=np.float64)]
        )
        self._unindexed = np.append(self._unindexed, resources is None)
        self._refresh_row(len(self._workers) - 1)

    def remove_worker(self, worker: PlaceableWorker) -> None:
        if self._batch is not None:
            self._batch.invalidate()
        self._workers.remove(worker)
        self._by_name = {w.name: i for i, w in enumerate(self._workers)}
        self._rebuild_index()

    # ------------------------------------------------------------------ #
    # Availability index

    def _rebuild_index(self) -> None:
        dims: List[str] = []
        seen: Set[str] = set()
        for worker in self._workers:
            resources = getattr(worker, "resources", None)
            if resources is None:
                continue
            for dim in resources.capacity:
                if dim not in seen:
                    seen.add(dim)
                    dims.append(dim)
        self._dims = dims
        self._dim_index = {dim: j for j, dim in enumerate(dims)}
        self._avail = np.empty(
            (len(self._workers), len(dims)), dtype=np.float64
        )
        self._unindexed = np.array(
            [getattr(w, "resources", None) is None for w in self._workers],
            dtype=bool,
        ).reshape(len(self._workers))
        for index in range(len(self._workers)):
            self._refresh_row(index)

    def _refresh_row(self, index: int) -> None:
        """Re-read one worker's availability vector from ground truth."""
        row = self._avail[index]
        resources = getattr(self._workers[index], "resources", None)
        if resources is None:
            row[:] = np.inf
            return
        available = resources.available
        for j, dim in enumerate(self._dims):
            row[j] = available.get(dim, -np.inf)

    def refresh(self) -> None:
        """Re-sync every row (external admissions/releases happened)."""
        if self._batch is not None:
            self._batch.invalidate()
        self._refresh_all_rows()

    def _refresh_all_rows(self) -> None:
        for index in range(len(self._workers)):
            self._refresh_row(index)

    def _fit_mask(self, request: Dict[str, float]) -> np.ndarray:
        """Elementwise replica of ``MultiResource.fits`` over all workers."""
        mask = np.ones(len(self._workers), dtype=bool)
        for dim, amount in request.items():
            if amount <= 0:
                continue
            j = self._dim_index.get(dim)
            if j is None:
                # Dimension no indexed worker has: only resource-less
                # workers can fit it (their try_admit decides).
                mask &= self._unindexed
                continue
            epsilon = max(1e-9, 1e-9 * abs(amount))
            mask &= self._avail[:, j] + epsilon >= amount
        return mask

    # ------------------------------------------------------------------ #
    # Placement

    def place(
        self,
        request: Dict[str, float],
        excluded: Set[str] = frozenset(),
        preference: Optional[Sequence[str]] = None,
    ) -> Optional[PlaceableWorker]:
        """First worker (by number) whose availability fits the request.

        ``excluded`` carries worker names the step must avoid -- e.g. VCUs
        it already failed on (Section 4.4's fault-correlation retries).
        ``preference`` front-loads the probe order (chunk affinity).

        Inside a :meth:`batch` context the fit mask and candidate order
        are cached per request shape and the fruitless full refresh runs
        at most once per batch; decisions are identical to the unbatched
        path (see the batch-amortization notes on :meth:`batch`).
        """
        batch = self._batch
        if batch is None:
            worker = self._place_indexed(request, excluded, preference)
            if worker is None:
                # The index can only miss a fitting worker if resources
                # were released behind its back; re-sync and rescan
                # before rejecting.
                self._refresh_all_rows()
                worker = self._place_indexed(request, excluded, preference)
        else:
            worker = self._place_batched(batch, request, excluded, preference)
        if worker is not None:
            self.placements += 1
        else:
            self.rejections += 1
        _emit_placement("bin_packing", worker, excluded, preference)
        return worker

    @contextmanager
    def batch(self) -> Iterator[None]:
        """Amortize a run of placements over shared per-shape caches.

        Batch amortization is sound because every event that could make
        a cached view *pessimistic* (miss a worker that actually fits)
        invalidates the cache: observed releases, worker add/remove, and
        external :meth:`refresh` all clear it.  The remaining drift is
        *optimistic* -- admits inside the batch shrink real availability
        below the cached mask -- and ``try_admit`` stays authoritative,
        so a stale candidate is probed once, rejected, and marked dead
        for the rest of the batch (availability for a shape can only
        keep shrinking until the next invalidation).  First-fit order is
        untouched; the batch path returns exactly the worker the
        unbatched path would.

        Nested ``batch()`` contexts join the outermost batch.
        """
        if self._batch is not None:
            yield
            return
        self._batch = _BatchState()
        try:
            yield
        finally:
            self._batch = None

    def place_batch(
        self,
        requests: Sequence[Dict[str, float]],
        excluded: Set[str] = frozenset(),
        preference: Optional[Sequence[str]] = None,
    ) -> List[Optional[PlaceableWorker]]:
        """Place an arrival batch in order; one vectorized scan per shape."""
        with self.batch():
            return [
                self.place(request, excluded, preference) for request in requests
            ]

    def _place_batched(
        self,
        batch: _BatchState,
        request: Dict[str, float],
        excluded: Set[str],
        preference: Optional[Sequence[str]],
    ) -> Optional[PlaceableWorker]:
        key = tuple(sorted(request.items()))
        entry = batch.shapes.get(key)
        if entry is None:
            entry = _ShapeCache(self._fit_mask(request))
            batch.shapes[key] = entry
        worker = self._scan_shape(entry, request, excluded, preference)
        if worker is None and not batch.refreshed:
            # Same recovery as the unbatched path, once per batch: an
            # unobserved release may have made rows pessimistic.
            batch.refreshed = True
            self._refresh_all_rows()
            # The refresh may have *raised* rows, so every cached shape
            # is suspect, not just this one.
            batch.shapes.clear()
            entry = _ShapeCache(self._fit_mask(request))
            batch.shapes[key] = entry
            worker = self._scan_shape(entry, request, excluded, preference)
        return worker

    def _scan_shape(
        self,
        entry: _ShapeCache,
        request: Dict[str, float],
        excluded: Set[str],
        preference: Optional[Sequence[str]],
    ) -> Optional[PlaceableWorker]:
        workers = self._workers
        mask = entry.mask
        dead = entry.dead
        preferred: Set[int] = set()
        if preference:
            by_name = self._by_name
            for name in preference:
                index = by_name.get(name)
                if index is None:
                    continue
                preferred.add(index)
                if index in dead or not mask[index]:
                    continue
                worker = workers[index]
                if worker.name in excluded or not worker.available():
                    continue
                if worker.try_admit(request):
                    self._refresh_row(index)
                    return worker
                dead.add(index)
        for index in entry.order:
            if index in dead or index in preferred:
                continue
            worker = workers[index]
            if worker.name in excluded or not worker.available():
                continue
            if worker.try_admit(request):
                self._refresh_row(index)
                return worker
            dead.add(index)
        return None

    def _place_indexed(
        self,
        request: Dict[str, float],
        excluded: Set[str],
        preference: Optional[Sequence[str]],
    ) -> Optional[PlaceableWorker]:
        mask = self._fit_mask(request)
        preferred: Set[int] = set()
        if preference:
            by_name = self._by_name
            for name in preference:
                index = by_name.get(name)
                if index is None:
                    continue
                preferred.add(index)
                worker = self._workers[index]
                if (
                    mask[index]
                    and worker.name not in excluded
                    and worker.available()
                    and worker.try_admit(request)
                ):
                    self._refresh_row(index)
                    return worker
        for index in np.flatnonzero(mask).tolist():
            if index in preferred:
                continue
            worker = self._workers[index]
            if worker.name in excluded or not worker.available():
                continue
            if worker.try_admit(request):
                self._refresh_row(index)
                return worker
        return None

    def place_scan(
        self,
        request: Dict[str, float],
        excluded: Set[str] = frozenset(),
        preference: Optional[Sequence[str]] = None,
    ) -> Optional[PlaceableWorker]:
        """Pre-index linear scan (parity/benchmark reference).

        Identical placement semantics to :meth:`place`; kept so the
        equivalence suite can replay one placement stream through both
        and the perf harness can measure the index's win.  Admissions it
        performs leave the index optimistic, which :meth:`place`
        tolerates by construction.
        """
        for worker in _ordered_workers(self._workers, preference):
            if worker.name in excluded or not worker.available():
                continue
            if worker.try_admit(request):
                self.placements += 1
                _emit_placement("bin_packing", worker, excluded, preference)
                return worker
        self.rejections += 1
        _emit_placement("bin_packing", None, excluded, preference)
        return None

    def release(
        self, worker: PlaceableWorker, request: Dict[str, float]
    ) -> None:
        """Release a placed request and keep the availability index fresh."""
        worker.release(request)  # type: ignore[attr-defined]
        if self._batch is not None:
            # A release can make cached batch masks pessimistic (a worker
            # they exclude now fits); drop them so the next placement
            # recomputes against ground truth.
            self._batch.invalidate()
        index = self._by_name.get(worker.name)
        if index is not None and self._workers[index] is worker:
            self._refresh_row(index)


class SingleSlotScheduler:
    """The legacy one-dimensional "single slot per graph step" model.

    Each worker advertises a fixed slot count derived from its configured
    size and the *average* step resource usage; every step takes exactly
    one slot.  Oversized steps overload workers, undersized steps strand
    capacity -- which the ablation benchmark quantifies.  A sorted free
    list (worker indices with spare slots) keeps placement from scanning
    slot-exhausted workers; first-fit-by-worker-number order is unchanged.
    """

    def __init__(self, workers: Sequence[PlaceableWorker], slots_per_worker: int = 4):
        if slots_per_worker < 1:
            raise ValueError("slots_per_worker must be >= 1")
        self._workers = list(workers)
        self._by_name: Dict[str, int] = {
            w.name: i for i, w in enumerate(self._workers)
        }
        self._slots: List[int] = [slots_per_worker] * len(self._workers)
        self._free: List[int] = list(range(len(self._workers)))
        self.slots_per_worker = slots_per_worker
        self.placements = 0
        self.rejections = 0

    @property
    def workers(self) -> List[PlaceableWorker]:
        return list(self._workers)

    def _take_slot(self, index: int) -> None:
        self._slots[index] -= 1
        if self._slots[index] == 0:
            self._free.remove(index)

    def place(
        self,
        request: Dict[str, float],
        excluded: Set[str] = frozenset(),
        preference: Optional[Sequence[str]] = None,
    ) -> Optional[PlaceableWorker]:
        """One slot per step; the request's actual shape is ignored, but
        the worker's physical resources are still reserved (a real machine
        cannot run what does not fit)."""
        preferred: Set[int] = set()
        if preference:
            for name in preference:
                index = self._by_name.get(name)
                if index is None:
                    continue
                preferred.add(index)
                worker = self._workers[index]
                if (
                    self._slots[index] > 0
                    and worker.name not in excluded
                    and worker.available()
                    and worker.try_admit(request)
                ):
                    self._take_slot(index)
                    self.placements += 1
                    _emit_placement("single_slot", worker, excluded, preference)
                    return worker
        for index in list(self._free):
            if index in preferred:
                continue
            worker = self._workers[index]
            if worker.name in excluded or not worker.available():
                continue
            if worker.try_admit(request):
                self._take_slot(index)
                self.placements += 1
                _emit_placement("single_slot", worker, excluded, preference)
                return worker
        self.rejections += 1
        _emit_placement("single_slot", None, excluded, preference)
        return None

    def release_slot(self, worker: PlaceableWorker) -> None:
        index = self._by_name[worker.name]
        self._slots[index] += 1
        if self._slots[index] == 1:
            insort(self._free, index)

    def release(
        self, worker: PlaceableWorker, request: Dict[str, float]
    ) -> None:
        """Release a placed request plus the slot it burned."""
        worker.release(request)  # type: ignore[attr-defined]
        self.release_slot(worker)
