"""The post-launch deployment timeline (Figures 9a/9b/9c, Section 4.3).

Each month after launch is one cluster-simulation configuration: how much
of the workload has migrated to VCUs, whether the NUMA-aware scheduling
fix has rolled out, and how aggressively hardware decode is shifted back
to the host CPU.  Running the months in sequence replays the paper's
longitudinal charts:

* 9a -- chunked upload workload throughput: 50% on VCU at launch, 100% by
  month 7, with software-stack fixes compounding on top.
* 9b -- live transcoding adoption ramp.
* 9c -- average hardware-decoder (millidecode) utilization dropping from
  ~98% to ~91% when opportunistic software decoding lands after month 6.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import List, Optional

from repro.cluster.cluster import TranscodeCluster
from repro.cluster.worker import CpuWorker, VcuWorker
from repro.sim.engine import Simulator
from repro.sim.rng import SeedLike, make_rng
from repro.transcode.ladder import LadderPolicy
from repro.vcu.chip import Vcu
from repro.vcu.spec import VcuSpec
from repro.workloads.upload import UploadGenerator


@dataclass(frozen=True)
class MonthConfig:
    """One month's deployment state."""

    month: int
    fraction_on_vcu: float
    numa_aware: bool
    software_decode_fraction: float
    vcu_fleet_scale: float  # relative fleet size as racks keep landing
    #: Per-step software-stack overhead, shrinking as continuous profiling
    #: finds and fixes bottlenecks (Section 4.3).
    step_overhead_seconds: float = 0.8

    def __post_init__(self) -> None:
        if not 0.0 <= self.fraction_on_vcu <= 1.0:
            raise ValueError("fraction_on_vcu must be in [0, 1]")
        if not 0.0 <= self.software_decode_fraction <= 1.0:
            raise ValueError("software_decode_fraction must be in [0, 1]")


def default_timeline(months: int = 12) -> List[MonthConfig]:
    """The launch-and-iterate schedule matching the paper's milestones.

    Launch serves 50% of the chunked upload workload, reaching 100% in
    month 7; NUMA-aware scheduling rolls out in month 4; opportunistic
    software decode turns on after month 6; the VCU fleet keeps growing as
    racks are deployed; and per-step software overheads shrink steadily
    under continuous profiling.
    """
    configs = []
    for month in range(1, months + 1):
        fraction = min(1.0, 0.5 + 0.5 * (month - 1) / 6.0)
        fleet = 1.0 + 0.35 * (month - 1)
        overhead = 0.8 - 0.5 * min(1.0, (month - 1) / 10.0)
        configs.append(
            MonthConfig(
                month=month,
                fraction_on_vcu=fraction,
                numa_aware=month >= 4,
                software_decode_fraction=0.45 if month > 6 else 0.0,
                vcu_fleet_scale=fleet,
                step_overhead_seconds=overhead,
            )
        )
    return configs


@dataclass
class MonthResult:
    """Measurements from one simulated month."""

    month: int
    total_megapixels: float
    wall_seconds: float
    decoder_utilization: float
    encoder_utilization: float
    vcu_workers: int

    @property
    def throughput_mpix_s(self) -> float:
        return self.total_megapixels / self.wall_seconds if self.wall_seconds else 0.0


def run_month(
    config: MonthConfig,
    base_vcu_workers: int = 6,
    horizon_seconds: float = 120.0,
    seed: SeedLike = 0,
    spec: Optional[VcuSpec] = None,
    decode_safety_factor: float = 2.2,
) -> MonthResult:
    """Simulate one month's configuration on a scaled-down cluster.

    Uploads arrive continuously at a demand rate that grew with the fleet;
    the VCU share of videos runs on the accelerators, the rest grinds
    through the legacy CPU workers.  Throughput is what completed within
    the fixed horizon; decoder utilization is the millidecode dimension's
    time-weighted average -- the quantity Figure 9c plots.
    """
    spec = spec or VcuSpec()
    rng = make_rng(seed)
    sim = Simulator()
    worker_count = max(1, round(base_vcu_workers * config.vcu_fleet_scale))
    vcu_workers = [
        VcuWorker(
            Vcu(spec, vcu_id=f"m{config.month}-vcu{i}"),
            numa_aware=config.numa_aware,
            decode_safety_factor=decode_safety_factor,
            step_overhead_seconds=config.step_overhead_seconds,
        )
        for i in range(worker_count)
    ]
    cpu_workers = [CpuWorker(cores=24, name=f"m{config.month}-cpu{i}") for i in range(2)]
    cluster = TranscodeCluster(
        sim, vcu_workers, cpu_workers, seed=rng.integers(0, 2**31)
    )

    # Demand sized to keep the fleet saturated (and growing with it).
    arrivals_per_second = 0.10 * worker_count
    generator = UploadGenerator(
        arrivals_per_second=arrivals_per_second,
        seed=int(rng.integers(0, 2**31)),
        mean_duration_seconds=45.0,
    )
    policy = LadderPolicy(vp9_at_upload=True)
    for video in generator.videos(until=horizon_seconds):
        on_vcu = rng.random() < config.fraction_on_vcu
        if on_vcu:
            software_decode = rng.random() < config.software_decode_fraction
            graph = generator.to_graph(video, policy, software_decode=software_decode)
        else:
            # Software-era path: H.264-only ladders (VP9 was unaffordable
            # at upload time), ground out on the legacy CPU workers.
            graph = generator.to_graph(video, LadderPolicy(vp9_at_upload=False))
            for step in graph.steps:
                step.software_only = True
        sim.call_at(video.arrival_time, lambda g=graph: cluster.submit(g))

    end = sim.run(until=horizon_seconds)
    return MonthResult(
        month=config.month,
        total_megapixels=cluster.stats.throughput.total_megapixels,
        wall_seconds=horizon_seconds,
        decoder_utilization=cluster.decoder_util.average(end),
        encoder_utilization=cluster.encoder_util.average(end),
        vcu_workers=worker_count,
    )


def run_timeline(
    months: int = 12,
    seed: SeedLike = 0,
    base_vcu_workers: int = 6,
    horizon_seconds: float = 120.0,
) -> List[MonthResult]:
    """Run the whole timeline with a fixed per-month workload seed."""
    return [
        run_month(
            config,
            base_vcu_workers=base_vcu_workers,
            horizon_seconds=horizon_seconds,
            seed=seed,
        )
        for config in default_timeline(months)
    ]


def live_adoption_curve(months: int = 12, saturation: float = 4.0) -> List[float]:
    """Figure 9b's live-transcoding ramp: normalized throughput per month.

    Live migration was gated on operational confidence rather than
    capacity; the ramp is a logistic adoption curve saturating at
    ``saturation`` times the launch throughput.
    """
    curve = []
    for month in range(1, months + 1):
        value = saturation / (1.0 + math.exp(-(month - 5.5) / 1.8))
        curve.append(value)
    base = curve[0]
    return [v / base for v in curve]
