"""Rate-distortion sweep harness (drives Figure 7 and Figure 10).

Encodes vbench titles across a QP ladder for each encoder profile and
collects operational RD curves; BD-rates are then computed per title and
averaged across the suite, exactly as the paper reports them.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Sequence

import numpy as np

from repro.codec.encoder import encode_video
from repro.codec.profiles import ALL_PROFILES, EncoderProfile
from repro.metrics.quality import RDPoint, bd_rate
from repro.video.content import SyntheticVideo
from repro.video.vbench import VBENCH_SUITE, VbenchVideo

#: QP ladder spanning the useful quality range (RD curves need >= 4 points).
DEFAULT_QPS: Sequence[float] = (20, 26, 32, 38, 44)


def rd_curve(
    profile: EncoderProfile,
    title: VbenchVideo,
    frame_count: int = 8,
    qps: Sequence[float] = DEFAULT_QPS,
    proxy_height: int = 72,
    seed: int = 2,
) -> List[RDPoint]:
    """One encoder's operational RD curve for one title."""
    video = SyntheticVideo(title.spec, seed=seed, proxy_height=proxy_height).video(
        frame_count
    )
    points = []
    for qp in qps:
        chunk = encode_video(video, profile, qp=qp)
        points.append(RDPoint(bitrate=chunk.bitrate_bps, psnr=chunk.psnr))
    return points


def suite_rd_curves(
    profiles: Iterable[EncoderProfile] = tuple(ALL_PROFILES),
    titles: Iterable[VbenchVideo] = tuple(VBENCH_SUITE),
    frame_count: int = 8,
    qps: Sequence[float] = DEFAULT_QPS,
    proxy_height: int = 72,
    seed: int = 2,
) -> Dict[str, Dict[str, List[RDPoint]]]:
    """RD curves for every (title, profile): ``curves[title][profile]``."""
    curves: Dict[str, Dict[str, List[RDPoint]]] = {}
    for title in titles:
        curves[title.name] = {}
        for profile in profiles:
            curves[title.name][profile.name] = rd_curve(
                profile, title, frame_count, qps, proxy_height, seed
            )
    return curves


@dataclass(frozen=True)
class SuiteBDRates:
    """Suite-average BD-rates for the paper's three comparisons."""

    vcu_vp9_vs_libx264: float  # paper: ~-30%
    vcu_h264_vs_libx264: float  # paper: ~+11.5%
    vcu_vp9_vs_libvpx: float  # paper: ~+18%
    libvpx_vs_libx264: float  # implied by the above: ~-41%
    per_title: Dict[str, Dict[str, float]] = None


def suite_bd_rates(
    curves: Dict[str, Dict[str, List[RDPoint]]]
) -> SuiteBDRates:
    """Average the per-title BD-rates across the suite."""
    comparisons = {
        "vcu_vp9_vs_libx264": ("libx264", "vcu-vp9"),
        "vcu_h264_vs_libx264": ("libx264", "vcu-h264"),
        "vcu_vp9_vs_libvpx": ("libvpx", "vcu-vp9"),
        "libvpx_vs_libx264": ("libx264", "libvpx"),
    }
    per_title: Dict[str, Dict[str, float]] = {}
    sums = {name: [] for name in comparisons}
    for title, by_profile in curves.items():
        per_title[title] = {}
        for name, (ref, test) in comparisons.items():
            if ref not in by_profile or test not in by_profile:
                continue
            value = bd_rate(by_profile[ref], by_profile[test])
            per_title[title][name] = value
            sums[name].append(value)
    means = {
        name: float(np.mean(values)) if values else float("nan")
        for name, values in sums.items()
    }
    return SuiteBDRates(per_title=per_title, **means)
