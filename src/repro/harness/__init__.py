"""Shared experiment harness used by the benchmarks and examples."""

from repro.harness.rd import (
    DEFAULT_QPS,
    rd_curve,
    suite_bd_rates,
    suite_rd_curves,
)

__all__ = ["DEFAULT_QPS", "rd_curve", "suite_rd_curves", "suite_bd_rates"]
