"""Total-cost-of-ownership and power models for Table 1's efficiency rows."""

from repro.tco.models import (
    SKYLAKE_COST,
    T4_SYSTEM_COST,
    VCU_SYSTEM_8,
    VCU_SYSTEM_20,
    SystemCost,
    perf_per_tco,
    perf_per_watt,
)

__all__ = [
    "SystemCost",
    "SKYLAKE_COST",
    "T4_SYSTEM_COST",
    "VCU_SYSTEM_8",
    "VCU_SYSTEM_20",
    "perf_per_tco",
    "perf_per_watt",
]
