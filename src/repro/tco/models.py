"""Parametric TCO and power models (Section 4.1's perf/TCO and perf/watt).

The paper's detailed TCO methodology is confidential; it states only that
TCO is capital expense plus three years of operational expense (primarily
power), in the style of Barroso et al.'s data-center cost models.  The
component numbers below are public-ballpark figures chosen so the
*normalized* perf/TCO of the four systems lands near Table 1 -- the model
exists to make the cost structure explicit and ablatable, not to reveal
real prices.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Tuple

#: Dollars per watt over 3 years: 24*365*3/1000 kWh/W * $0.12/kWh * 1.6
#: (PUE and power-distribution overhead), ~= $5.05/W.
DOLLARS_PER_WATT_3YR = 24 * 365 * 3 / 1000 * 0.12 * 1.6


@dataclass(frozen=True)
class SystemCost:
    """Capex plus active power for one system configuration."""

    name: str
    host_capex: float
    accelerator_capex_each: float
    accelerator_count: int
    host_active_watts: float
    accelerator_active_watts_each: float
    #: Per-codec host power override (software encoding pushes the CPU
    #: package differently per codec; irrelevant for accelerator systems).
    host_watts_by_codec: Dict[str, float] = field(default_factory=dict)

    def capex(self) -> float:
        return self.host_capex + self.accelerator_capex_each * self.accelerator_count

    def active_watts(self, codec: str = "h264") -> float:
        host = self.host_watts_by_codec.get(codec, self.host_active_watts)
        return host + self.accelerator_active_watts_each * self.accelerator_count

    def tco(self, codec: str = "h264") -> float:
        """Capex + 3 years of power (the paper's definition)."""
        return self.capex() + self.active_watts(codec) * DOLLARS_PER_WATT_3YR


#: The four systems of Table 1.
SKYLAKE_COST = SystemCost(
    name="Skylake",
    host_capex=8000.0,
    accelerator_capex_each=0.0,
    accelerator_count=0,
    host_active_watts=360.0,
    accelerator_active_watts_each=0.0,
    host_watts_by_codec={"h264": 360.0, "vp9": 620.0},
)

T4_SYSTEM_COST = SystemCost(
    name="4xNvidia T4",
    host_capex=8000.0,
    accelerator_capex_each=2700.0,
    accelerator_count=4,
    host_active_watts=200.0,
    accelerator_active_watts_each=70.0,
)

#: VCU systems: cards carry two ASICs each; the host runs only the ffmpeg
#: wrapper, rate control, and drivers (so its active power is modest).
VCU_SYSTEM_8 = SystemCost(
    name="8xVCU",
    host_capex=8000.0,
    accelerator_capex_each=1750.0,  # per card (2 VCUs)
    accelerator_count=4,
    host_active_watts=325.0,
    accelerator_active_watts_each=80.0,
)

VCU_SYSTEM_20 = SystemCost(
    name="20xVCU",
    host_capex=8000.0,
    accelerator_capex_each=1750.0,
    accelerator_count=10,
    host_active_watts=325.0,
    accelerator_active_watts_each=80.0,
)


def perf_per_tco(
    throughput_mpix_s: float,
    system: SystemCost,
    baseline_throughput_mpix_s: float,
    baseline: SystemCost = SKYLAKE_COST,
) -> float:
    """Perf/TCO normalized to the baseline system (Table 1's metric).

    TCO is codec-independent: a machine is provisioned (and its power
    budgeted) once, whichever codec it happens to run.
    """
    if throughput_mpix_s <= 0 or baseline_throughput_mpix_s <= 0:
        raise ValueError("throughputs must be positive")
    ours = throughput_mpix_s / system.tco()
    base = baseline_throughput_mpix_s / baseline.tco()
    return ours / base


def perf_per_watt(
    throughput_mpix_s: float,
    system: SystemCost,
    baseline_throughput_mpix_s: float,
    baseline: SystemCost = SKYLAKE_COST,
    codec: str = "h264",
) -> float:
    """Perf/watt normalized to the baseline (active power only)."""
    ours = throughput_mpix_s / system.active_watts(codec)
    base = baseline_throughput_mpix_s / baseline.active_watts(codec)
    return ours / base
