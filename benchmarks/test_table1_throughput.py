"""Table 1: offline two-pass SOT throughput and perf/TCO, plus the MOT
aside and the perf/watt comparisons of Section 4.1.

Paper rows (Mpix/s, perf/TCO vs Skylake):
    Skylake      714 / 154      1.0x / 1.0x
    4xNvidia T4  2,484 / --     1.5x / --
    8xVCU        5,973 / 6,122  4.4x / 20.8x
    20xVCU       14,932/ 15,306 7.0x / 33.3x
"""

from __future__ import annotations

import pytest

from benchmarks.conftest import run_experiment
from repro.baselines import SkylakeSystem
from repro.metrics import format_table
from repro.tco import VCU_SYSTEM_20, perf_per_watt
from repro.vcu.spec import DEFAULT_VCU_SPEC, EncodingMode
from repro.vcu.throughput import mot_throughput, sot_throughput, vbench_sot_system_throughput
from repro.video.frame import resolution


def test_table1(once):
    """Thin assertion layer over the registered table1 experiment; the
    paper's reference values ride in the unit results themselves."""
    results = once(lambda: run_experiment("table1-throughput").results)
    display = [
        [r["system"], r["codec"].upper(), round(r["mpix_s"]), round(r["paper_mpix_s"]),
         round(r["perf_tco"], 1), r["paper_perf_tco"]]
        for r in results
    ]
    print()
    print(format_table(
        ["System", "Codec", "Mpix/s (ours)", "Mpix/s (paper)",
         "perf/TCO (ours)", "perf/TCO (paper)"],
        display, title="Table 1: offline two-pass SOT throughput",
    ))

    by_key = {(r["system"], r["codec"]): r for r in results}
    assert len(by_key) == 7  # the paper's populated cells, nothing dropped
    for row in results:
        assert row["mpix_s"] == pytest.approx(row["paper_mpix_s"], rel=0.02)
        assert row["perf_tco"] == pytest.approx(row["paper_perf_tco"], rel=0.15)
    # Ordering: VCUs dominate GPU dominates CPU on raw throughput.
    assert (by_key[("20xVCU", "h264")]["mpix_s"]
            > by_key[("4xNvidia T4", "h264")]["mpix_s"]
            > by_key[("Skylake", "h264")]["mpix_s"])


def test_mot_uplift(once):
    """Section 4.1: MOT is 1.2-1.3x SOT (976 / 927 Mpix/s per VCU)."""

    def measure():
        spec = DEFAULT_VCU_SPEC
        out = {}
        for codec in ("h264", "vp9"):
            sot = sot_throughput(
                spec, codec, EncodingMode.OFFLINE_TWO_PASS, resolution("1080p")
            ).throughput
            mot = mot_throughput(
                spec, codec, EncodingMode.OFFLINE_TWO_PASS, resolution("1080p")
            ).throughput
            out[codec] = (sot, mot)
        return out

    result = once(measure)
    print()
    rows = [[codec.upper(), round(sot), round(mot), round(mot / sot, 2),
             {"h264": 976, "vp9": 927}[codec]]
            for codec, (sot, mot) in result.items()]
    print(format_table(
        ["Codec", "SOT/VCU", "MOT/VCU", "MOT/SOT", "paper MOT"],
        rows, title="MOT vs SOT per VCU (Mpix/s)",
    ))
    for codec, (sot, mot) in result.items():
        assert 1.2 <= mot / sot <= 1.3
        assert mot == pytest.approx({"h264": 976, "vp9": 927}[codec], rel=0.10)


def test_perf_per_watt(once):
    """Section 4.1: 6.7x (H.264 SOT) and 68.9x (VP9 MOT) vs CPU."""

    def measure():
        spec = DEFAULT_VCU_SPEC
        h264 = perf_per_watt(
            vbench_sot_system_throughput(spec, "h264", 20), VCU_SYSTEM_20,
            SkylakeSystem().machine_throughput("h264"), codec="h264",
        )
        vp9_mot = mot_throughput(
            spec, "vp9", EncodingMode.OFFLINE_TWO_PASS, resolution("1080p")
        ).throughput * 20
        vp9 = perf_per_watt(
            vp9_mot, VCU_SYSTEM_20,
            SkylakeSystem().machine_throughput("vp9"), codec="vp9",
        )
        return h264, vp9

    h264, vp9 = once(measure)
    print(f"\nperf/watt vs CPU: H.264 SOT {h264:.1f}x (paper 6.7x), "
          f"VP9 MOT {vp9:.1f}x (paper 68.9x)")
    assert h264 == pytest.approx(6.7, rel=0.12)
    assert vp9 == pytest.approx(68.9, rel=0.15)
