"""Perf-regression benchmarks for the batched hot paths.

Each benchmark measures a fast path against its bit-identical reference
implementation and asserts the speedup floor the PR claims -- so a later
change that quietly reverts the batching shows up as a red benchmark,
not a slow fleet.  ``repro-bench perf`` is the CLI face of the same
measurements (it writes ``BENCH_PR8.json``); these tests are the
pytest-native face with assertions.

Run with ``pytest benchmarks/perf --benchmark-only``.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro import perfbench
from repro.sim import engine, reference
from repro.cluster.scheduler import BinPackingScheduler
from repro.cluster.worker import VcuWorker
from repro.codec.encoder import Encoder
from repro.codec.kernels import batch_transform_rd
from repro.codec.profiles import PROFILES_BY_NAME
from repro.codec.transform import transform_rd
from repro.sim.engine import Simulator
from repro.vcu.chip import Vcu
from repro.vcu.spec import DEFAULT_VCU_SPEC
from repro.video.frame import Frame, Resolution


def _encode(frames, nominal, profile, fast):
    encoder = Encoder(profile, keyframe_interval=150, fast=fast)
    for i, data in enumerate(frames):
        encoder.encode_frame(Frame(data, nominal, i), 30.0)


class TestEncodeHotPath:
    @pytest.mark.parametrize("name", ["libx264", "vcu-vp9"])
    def test_batched_encode_beats_reference(self, benchmark, name):
        height, width, count = 64, 96, 2
        frames = perfbench._synthetic_frames(height, width, count)
        nominal = Resolution(
            pixels=width * height, width=width, height=height, name="bench"
        )
        profile = PROFILES_BY_NAME[name]
        fast_s = perfbench._best_of(
            2, lambda: _encode(frames, nominal, profile, True)
        )
        reference_s = perfbench._best_of(
            2, lambda: _encode(frames, nominal, profile, False)
        )
        benchmark.pedantic(
            lambda: _encode(frames, nominal, profile, True),
            rounds=1, iterations=1, warmup_rounds=0,
        )
        # Loose floor for the tiny CI workload; the full harness
        # (repro-bench perf) demonstrates >= 3x at benchmark size.
        assert reference_s / fast_s > 2.0


class TestSchedulerHotPath:
    def test_indexed_place_beats_scan(self, benchmark):
        def run(indexed):
            workers = [
                VcuWorker(Vcu(DEFAULT_VCU_SPEC, vcu_id=f"b{i}"))
                for i in range(80)
            ]
            scheduler = BinPackingScheduler(workers)
            place = scheduler.place if indexed else scheduler.place_scan
            perfbench._scheduler_stream(scheduler, place, 3000)

        fast_s = perfbench._best_of(2, lambda: run(True))
        reference_s = perfbench._best_of(2, lambda: run(False))
        benchmark.pedantic(
            lambda: run(True), rounds=1, iterations=1, warmup_rounds=0
        )
        assert reference_s / fast_s > 1.5


class TestEngineHotPath:
    def test_event_loop_throughput(self, benchmark):
        def run():
            sim = Simulator()

            def ticker():
                for _ in range(200):
                    yield 0.001

            for i in range(50):
                sim.process(ticker(), name=f"t{i}")
            sim.run()

        seconds = perfbench._best_of(2, run)
        benchmark.pedantic(run, rounds=1, iterations=1, warmup_rounds=0)
        # 10k tie-heavy events; the calendar loop sustains well over 1M
        # events/s (the old heapq floor here was 100k).
        assert 10_000 / seconds > 1_000_000


class TestCalendarEngineFloor:
    """The PR8 headline: calendar engine vs the frozen heapq reference.

    Measured in-process on the same machine, so the floor is a genuine
    algorithmic ratio, not a hardware lottery.  Full-size runs show
    >5x aligned / ~2x scattered; the floors leave noise margin.
    """

    def test_aligned_speedup_floor(self, benchmark):
        fast_s = perfbench._best_of(
            3, lambda: perfbench._engine_run(engine, False, 200)
        )
        reference_s = perfbench._best_of(
            3, lambda: perfbench._engine_run(reference, False, 200)
        )
        benchmark.pedantic(
            lambda: perfbench._engine_run(engine, False, 200),
            rounds=1, iterations=1, warmup_rounds=0,
        )
        assert reference_s / fast_s > 3.0

    def test_scattered_speedup_floor(self, benchmark):
        fast_s = perfbench._best_of(
            3, lambda: perfbench._engine_run(engine, True, 200)
        )
        reference_s = perfbench._best_of(
            3, lambda: perfbench._engine_run(reference, True, 200)
        )
        benchmark.pedantic(
            lambda: perfbench._engine_run(engine, True, 200),
            rounds=1, iterations=1, warmup_rounds=0,
        )
        # Even with no ties to batch, the two-tier calendar must beat
        # the single heap on heap-traffic volume alone.
        assert reference_s / fast_s > 1.2


class TestKernelHotPath:
    def test_batched_transform_beats_loop(self, benchmark):
        rng = np.random.default_rng(5)
        stack = rng.uniform(-128, 128, (256, 8, 8))
        fast_s = perfbench._best_of(3, lambda: batch_transform_rd(stack, 30.0))
        reference_s = perfbench._best_of(
            3, lambda: [transform_rd(block, 30.0) for block in stack]
        )
        benchmark.pedantic(
            lambda: batch_transform_rd(stack, 30.0),
            rounds=1, iterations=1, warmup_rounds=0,
        )
        assert reference_s / fast_s > 5.0
