"""Appendix A.2 / A.4 / A.5: network-bound limits and DRAM sizing.

Paper anchors:
  * ~600 Gpixel/s raw network transcoding limit -> ~153 Gpixel/s target.
  * Ceiling of ~30 VCUs per host for realtime work (offline two-pass is
    far higher; the paper quotes 150 with its rounder 5x slowdown, our
    Table 1-calibrated 6.7x gives ~205).
  * ~700 MiB device DRAM per 2160p MOT, ~500 MiB per SOT.
  * Fleet worst case fits 8 GiB per VCU but not 4 GiB.
"""

from __future__ import annotations

import pytest

from repro.balance import (
    NetworkBalance,
    fleet_dram_requirement,
    mot_footprint_mib,
    sot_footprint_mib,
    vcu_ceiling_per_host,
)
from repro.metrics import format_table
from repro.vcu.spec import EncodingMode


def test_network_limits(once):
    balance = once(NetworkBalance)
    print(f"\nraw network transcode limit: {balance.raw_limit_gpix_s:.0f} Gpixel/s "
          f"(paper ~600)")
    print(f"effective provisioning target: {balance.effective_limit_gpix_s:.0f} "
          f"Gpixel/s (paper ~153)")
    assert balance.raw_limit_gpix_s == pytest.approx(610, rel=0.02)
    assert balance.effective_limit_gpix_s == pytest.approx(153, rel=0.02)


def test_vcu_ceilings(once):
    def compute():
        return {
            mode: vcu_ceiling_per_host(mode)
            for mode in (EncodingMode.LOW_LATENCY_ONE_PASS, EncodingMode.OFFLINE_TWO_PASS)
        }

    ceilings = once(compute)
    realtime = ceilings[EncodingMode.LOW_LATENCY_ONE_PASS]
    offline = ceilings[EncodingMode.OFFLINE_TWO_PASS]
    print(f"\nVCUs per host ceilings: realtime {realtime} (paper 30), "
          f"offline two-pass {offline} (paper 150 at its 5x slowdown figure)")
    assert realtime == 30
    assert offline > 4 * realtime
    # The deployed 20 VCUs per host are deliberately conservative.
    assert 20 < realtime


def test_dram_footprints(once):
    def compute():
        return mot_footprint_mib(), sot_footprint_mib()

    mot, sot = once(compute)
    print(f"\n2160p offline footprints: MOT {mot:.0f} MiB (paper ~700), "
          f"SOT {sot:.0f} MiB (paper ~500)")
    assert 500 <= mot <= 900
    assert 350 <= sot <= 650
    assert mot > sot


def test_fleet_dram_sizing(once):
    def compute():
        return {
            "low_latency_sot": fleet_dram_requirement(EncodingMode.LOW_LATENCY_ONE_PASS),
            "offline_sot": fleet_dram_requirement(EncodingMode.OFFLINE_TWO_PASS),
            "offline_mot": fleet_dram_requirement(EncodingMode.OFFLINE_TWO_PASS, use_mot=True),
        }

    reqs = once(compute)
    print()
    rows = []
    for name, req in reqs.items():
        rows.append([
            name, round(req.concurrent_streams), round(req.required_gib),
            req.vcus_needed, round(req.provided_gib_8g),
            "yes" if req.fits_8gib else "NO",
            "yes" if req.fits_4gib else "NO",
        ])
    print(format_table(
        ["Scenario", "Streams", "Required GiB", "VCUs", "8 GiB provides",
         "fits 8 GiB", "fits 4 GiB"],
        rows,
        title="Appendix A.4: fleet DRAM at the 153 Gpixel/s target "
              "(paper: 150 GiB low-latency, 750 GiB offline; 8 GiB/VCU "
              "suffices, 4 GiB would not)",
    ))
    # The appendix's conclusions.
    assert reqs["low_latency_sot"].fits_8gib
    assert reqs["offline_sot"].fits_8gib
    assert not reqs["offline_sot"].fits_4gib
    # Offline dominates the requirement; MOT reduces it (~25% in paper).
    assert reqs["offline_sot"].required_gib > 4 * reqs["low_latency_sot"].required_gib
    mot_saving = 1 - reqs["offline_mot"].required_gib / reqs["offline_sot"].required_gib
    assert 0.10 <= mot_saving <= 0.45
