"""Benchmark harness configuration.

Every module here regenerates one table or figure from the paper's
evaluation: it prints the same rows/series the paper reports next to the
paper's numbers, and asserts the *shape* (who wins, by roughly what
factor, where crossovers fall) rather than absolute values.

Run with ``pytest benchmarks/ --benchmark-only``.
"""

from __future__ import annotations

import pytest


def run_once(benchmark, fn):
    """Benchmark an expensive experiment with a single measured round."""
    return benchmark.pedantic(fn, rounds=1, iterations=1, warmup_rounds=0)


@pytest.fixture
def once(benchmark):
    """Fixture form of :func:`run_once`."""

    def runner(fn):
        return run_once(benchmark, fn)

    return runner


def run_experiment(name, smoke=False):
    """One registered experiment's ordered unit results, computed fresh.

    The table/figure benches are thin assertions over
    :mod:`repro.runner` results; running without a cache keeps the bench
    an honest measurement of the experiment's real cost.
    """
    from repro.runner import run_experiments
    from repro.runner.experiments import default_registry

    result = run_experiments(default_registry(), names=[name], smoke=smoke)
    return result.runs[0]
