"""Section 4.5: new capabilities enabled by acceleration.

  * VP9 at upload time: a 150-frame 2160p chunk costs >1 CPU-hour in
    software (infeasible at ingest); a VCU encodes the full MOT ladder in
    seconds.
  * Live streaming: software VP9 needed 5-6 parallel 2-second chunk
    encoders and still delivered >>10 s camera-to-eyeball latency; a
    single VCU transcodes the live ladder in real time, enabling ~5 s.
  * Cloud gaming (Stadia): 4K60 low-latency two-pass VP9 fits in a frame
    budget on one encoder core; software does not come close.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.baselines import SkylakeSystem
from repro.metrics import format_table
from repro.vcu.chip import VcuTask, encode_core_seconds
from repro.vcu.spec import DEFAULT_VCU_SPEC, EncodingMode
from repro.video.frame import output_ladder, resolution
from repro.workloads.gaming import GamingSession, gaming_latency_ms, meets_frame_budget
from repro.workloads.live import (
    LiveStream,
    end_to_end_latency_seconds,
    simulate_live_stream,
)


def test_vp9_at_upload_feasibility(once):
    def measure():
        cpu = SkylakeSystem()
        source = resolution("2160p")
        cpu_hours = cpu.encode_core_seconds("vp9", source, 150) / 3600
        wall_minutes = cpu.chunk_wall_seconds("vp9", source, 150, cores=6) / 60
        task = VcuTask(
            codec="vp9", mode=EncodingMode.OFFLINE_TWO_PASS,
            input_resolution=source, outputs=output_ladder(source),
            frame_count=150, fps=30.0, is_mot=True,
        )
        vcu_seconds = encode_core_seconds(task, DEFAULT_VCU_SPEC) / DEFAULT_VCU_SPEC.encoder_cores
        return cpu_hours, wall_minutes, vcu_seconds

    cpu_hours, wall_minutes, vcu_seconds = once(measure)
    print(f"\n150-frame 2160p VP9 chunk: software {cpu_hours:.2f} CPU-hours / "
          f"{wall_minutes:.0f} wall-min on 6 cores (paper: >1 CPU-hour, ~15 min); "
          f"one VCU encodes the whole MOT ladder in {vcu_seconds:.1f} s")
    # Paper anchors.
    assert cpu_hours > 0.6
    assert 8 <= wall_minutes <= 30
    # The VCU runs the *entire ladder* orders of magnitude faster.
    assert vcu_seconds < 60
    assert (cpu_hours * 3600) / vcu_seconds > 50


def test_live_streaming_latency(once):
    def measure():
        stream = LiveStream("live-1")
        software = simulate_live_stream(stream, 240.0, use_vcu=False, seed=3)
        hardware = simulate_live_stream(stream, 240.0, use_vcu=True)
        return (
            end_to_end_latency_seconds(software, stream.chunk_seconds),
            end_to_end_latency_seconds(hardware, stream.chunk_seconds),
            float(np.mean([r.encode_seconds for r in software])),
            float(np.mean([r.encode_seconds for r in hardware])),
            float(np.std([r.encode_seconds for r in software])),
            float(np.std([r.encode_seconds for r in hardware])),
        )

    sw_latency, hw_latency, sw_encode, hw_encode, sw_std, hw_std = once(measure)
    print()
    rows = [
        ["software VP9 (6 parallel chunk encoders)", round(sw_encode, 1),
         round(sw_std, 2), round(sw_latency, 1)],
        ["single VCU (lagged two-pass MOT)", round(hw_encode, 2),
         round(hw_std, 4), round(hw_latency, 1)],
    ]
    print(format_table(
        ["Pipeline", "Encode s/chunk", "Encode stddev", "End-to-end latency s"],
        rows,
        title="Section 4.5: live VP9 (paper: software ~10 s/chunk, "
              "VCU enables ~5 s end-to-end)",
    ))
    assert hw_latency <= 6.0  # the paper's affordable 5-second stream
    assert sw_latency > 2.5 * hw_latency
    assert sw_encode > 6.0  # ~10 s to encode a 2 s chunk in software
    # Hardware speed is consistent; software is the jittery one.
    assert hw_std < 0.1 * sw_std + 1e-9


def test_stadia_gaming(once):
    def measure():
        session = GamingSession()  # 4K60, 35 Mbps
        return (
            gaming_latency_ms(session, use_vcu=True),
            gaming_latency_ms(session, use_vcu=False),
            meets_frame_budget(session, use_vcu=True),
            meets_frame_budget(session, use_vcu=False),
            session.frame_budget_ms,
        )

    vcu_ms, sw_ms, vcu_ok, sw_ok, budget = once(measure)
    print(f"\nStadia 4K60 frame encode: VCU {vcu_ms:.1f} ms, software {sw_ms:.0f} ms "
          f"(budget {budget:.1f} ms/frame)")
    assert vcu_ok and not sw_ok
    assert vcu_ms < budget
    assert sw_ms > 3 * budget
