"""Ablations of the design choices DESIGN.md calls out.

Each ablation flips one co-design decision and quantifies the cost:
  * NUMA-aware scheduling (Section 4.3: +16-25%).
  * Lossless frame-buffer compression (Section 3.2: ~halves reference
    read bandwidth; the DRAM-limited envelope shrinks without it).
  * Multi-dimensional bin packing vs the legacy single-slot scheduler.
  * Reference-store sizing (Section 3.2's 144K-pixel window).
  * Pipeline FIFO decoupling (Section 3.2).
  * MOT vs SOT decode savings (Section 3.1).
  * Temporal-filtered altrefs (Section 3.2, functional codec measurement).
"""

from __future__ import annotations

import dataclasses

import numpy as np
import pytest

from repro.cluster import CpuWorker, TranscodeCluster, VcuWorker
from repro.codec.encoder import encode_video
from repro.codec.profiles import LIBVPX
from repro.metrics import format_table
from repro.sim import Simulator
from repro.transcode import PopularityBucket, build_transcode_graph
from repro.vcu.chip import Vcu, VcuTask, decode_core_seconds
from repro.vcu.cores import pipeline_efficiency
from repro.vcu.reference_store import (
    DEFAULT_STORE_PIXELS,
    ReferenceStore,
    simulate_tile_column_walk,
)
from repro.vcu.spec import DEFAULT_VCU_SPEC, EncodingMode
from repro.vcu.throughput import sot_throughput
from repro.video.content import ContentSpec, SyntheticVideo
from repro.video.frame import output_ladder, resolution


def _production_run(seed: int, *, numa_aware=True, use_bin_packing=True, vcus=4):
    sim = Simulator()
    workers = [
        VcuWorker(
            Vcu(DEFAULT_VCU_SPEC, vcu_id=f"abl-{seed}-{numa_aware}-{use_bin_packing}-{i}"),
            numa_aware=numa_aware,
        )
        for i in range(vcus)
    ]
    # legacy_slots=2: the legacy scheduler sized workers conservatively
    # from the *average* step cost so oversized steps would not overload
    # a worker -- which is exactly what strands capacity under small steps.
    cluster = TranscodeCluster(
        sim, workers, [CpuWorker(cores=24)],
        use_bin_packing=use_bin_packing, legacy_slots=2, seed=seed,
    )
    from repro.workloads.upload import UploadGenerator

    generator = UploadGenerator(arrivals_per_second=0.12 * vcus, seed=seed)
    horizon = 80.0
    for video in generator.videos(until=horizon):
        graph = generator.to_graph(video)
        sim.call_at(video.arrival_time, lambda g=graph: cluster.submit(g))
    sim.run(until=horizon)
    return cluster.stats.throughput.total_megapixels / horizon / vcus


def test_numa_aware_scheduling(once):
    def measure():
        aware = np.mean([_production_run(s, numa_aware=True) for s in range(3)])
        oblivious = np.mean([_production_run(s, numa_aware=False) for s in range(3)])
        return float(aware), float(oblivious)

    aware, oblivious = once(measure)
    gain = aware / oblivious - 1.0
    print(f"\nNUMA-aware scheduling: {oblivious:.0f} -> {aware:.0f} Mpix/s per VCU "
          f"(+{gain:.0%}; paper +16-25%)")
    assert 0.08 <= gain <= 0.30


def test_bin_packing_vs_single_slot(once):
    def measure():
        packed = np.mean([_production_run(s, use_bin_packing=True) for s in range(3)])
        slotted = np.mean([_production_run(s, use_bin_packing=False) for s in range(3)])
        return float(packed), float(slotted)

    packed, slotted = once(measure)
    print(f"\nscheduler: single-slot {slotted:.0f} vs bin-packing {packed:.0f} "
          f"Mpix/s per VCU (+{packed / slotted - 1:.0%})")
    # The bin-packing scheduler was "fundamental to maximizing VCU
    # utilization" (Section 3.1): it must clearly win.
    assert packed > 1.1 * slotted


def test_frame_buffer_compression(once):
    def measure():
        spec = DEFAULT_VCU_SPEC
        mode = EncodingMode.LOW_LATENCY_ONE_PASS
        with_fbc = sot_throughput(spec, "h264", mode, resolution("2160p"))
        without = sot_throughput(
            spec, "h264", mode, resolution("2160p"), reference_compression=False
        )
        return with_fbc, without

    with_fbc, without = once(measure)
    print(f"\nframe-buffer compression off: DRAM-limited envelope "
          f"{with_fbc.dram_limit:.0f} -> {without.dram_limit:.0f} Mpix/s per VCU")
    shrink = without.dram_limit / with_fbc.dram_limit
    assert shrink < 0.80  # raw traffic shrinks the DRAM envelope sharply


def test_reference_store_sizing(once):
    def measure():
        sizes = [0.25, 0.5, 1.0, 2.0]
        rows = []
        for scale in sizes:
            store = ReferenceStore(int(DEFAULT_STORE_PIXELS * scale))
            stats = simulate_tile_column_walk(store, frame_height=1024)
            rows.append((scale, stats.dram_pixels_fetched))
        return rows

    rows = once(measure)
    print()
    baseline = dict(rows)[1.0]
    print(format_table(
        ["Store size (x paper)", "DRAM pixels fetched", "vs paper size"],
        [[s, f, round(f / baseline, 2)] for s, f in rows],
        title="Reference store sizing ablation (tile-column walk)",
    ))
    fetched = dict(rows)
    assert fetched[0.25] > 1.5 * fetched[1.0]  # undersized store thrashes
    assert fetched[2.0] <= fetched[1.0]  # paper size already near-optimal


def test_pipeline_fifo_decoupling(once):
    def measure():
        return {depth: pipeline_efficiency(fifo_depth=depth) for depth in (0, 2, 8, 32)}

    efficiency = once(measure)
    print("\npipeline efficiency by FIFO depth:",
          {d: round(e, 3) for d, e in efficiency.items()})
    assert efficiency[0] < 0.70
    assert efficiency[8] > 0.90
    values = [efficiency[d] for d in (0, 2, 8, 32)]
    assert values == sorted(values)


def test_mot_decode_savings(once):
    def measure():
        source = resolution("1080p")
        ladder = output_ladder(source)
        mot = VcuTask(
            codec="vp9", mode=EncodingMode.OFFLINE_TWO_PASS, input_resolution=source,
            outputs=ladder, frame_count=150, fps=30, is_mot=True,
        )
        sots = [
            VcuTask(
                codec="vp9", mode=EncodingMode.OFFLINE_TWO_PASS, input_resolution=source,
                outputs=[rung], frame_count=150, fps=30, is_mot=False,
            )
            for rung in ladder
        ]
        mot_decode = decode_core_seconds(mot, DEFAULT_VCU_SPEC)
        sot_decode = sum(decode_core_seconds(t, DEFAULT_VCU_SPEC) for t in sots)
        return mot_decode, sot_decode, len(ladder)

    mot_decode, sot_decode, rungs = once(measure)
    print(f"\ndecode core-seconds for a 1080p ladder: MOT {mot_decode:.2f} vs "
          f"{rungs}x SOT {sot_decode:.2f} ({sot_decode / mot_decode:.1f}x)")
    # Section 3.1: MOT scales decode down by the number of outputs.
    assert sot_decode == pytest.approx(rungs * mot_decode, rel=0.01)


def test_temporal_filter_ablation(once):
    """Functional-codec measurement: altrefs help noisy content."""

    def measure():
        spec = ContentSpec(name="noisy", resolution_name="480p", fps=30,
                           motion=1.5, detail=0.6, noise=3.0, sprites=6)
        video = SyntheticVideo(spec, seed=9, proxy_height=54).video(10)
        with_altref = encode_video(video, LIBVPX, qp=32)
        without = encode_video(
            video, dataclasses.replace(LIBVPX, temporal_filter=False), qp=32
        )
        return with_altref, without

    with_altref, without = once(measure)
    bits_saving = 1 - with_altref.total_bits / without.total_bits
    print(f"\ntemporal-filtered altref on noisy content: bits "
          f"{without.total_bits:.0f} -> {with_altref.total_bits:.0f} "
          f"({bits_saving:+.1%} saving) at PSNR "
          f"{without.psnr:.2f} -> {with_altref.psnr:.2f} dB")
    # The altref must not hurt, and typically saves bits on noisy content.
    assert with_altref.total_bits <= without.total_bits * 1.02
    assert with_altref.psnr >= without.psnr - 0.2


def test_memory_level_parallelism(once):
    """Section 3.2: the out-of-order memory subsystem with deep prefetch
    is what lets the cores tolerate DRAM latency; shallow prefetch would
    strand most of the controller's bandwidth."""
    from repro.vcu.noc import arbitrate, vcu_requesters

    def measure():
        peak = DEFAULT_VCU_SPEC.effective_dram_bandwidth
        rows = []
        for depth in (1, 4, 16, 32, 64):
            result = arbitrate(vcu_requesters(encoder_outstanding=depth,
                                              decoder_outstanding=depth), peak)
            rows.append((depth, result.utilization))
        return rows

    rows = once(measure)
    print()
    print(format_table(
        ["Outstanding requests/core", "DRAM controller utilization"],
        [[depth, round(util, 3)] for depth, util in rows],
        title="Memory-level-parallelism ablation (realtime load)",
    ))
    utilization = dict(rows)
    assert utilization[1] < 0.3
    assert utilization[32] > 0.95
    values = [u for _, u in rows]
    assert values == sorted(values)
