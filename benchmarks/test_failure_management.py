"""Section 4.4: failure management under fault injection.

Reproduced behaviours:
  * Black-holing: a failing-but-fast VCU attracts a disproportionate
    share of traffic when unmitigated.
  * The mitigation (abort-on-failure + golden-task screening) removes
    corrupt output entirely while keeping goodput high.
  * Telemetry-driven disablement keeps the rest of a host serving, and
    the repair-queue cap bounds fleet capacity loss.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.cluster import CpuWorker, TranscodeCluster, VcuWorker
from repro.failures import FailureManager, FaultInjector, RepairQueue
from repro.failures.management import blast_radius
from repro.metrics import format_table
from repro.sim import Simulator
from repro.transcode import PopularityBucket, build_transcode_graph
from repro.vcu.chip import Vcu
from repro.vcu.host import VcuHost
from repro.vcu.spec import DEFAULT_VCU_SPEC
from repro.vcu.telemetry import FaultKind
from repro.video.frame import resolution


def _run_scenario(mitigated: bool, seed: int = 11, vcus: int = 4, videos: int = 10):
    """A cluster with one silently-corrupt VCU; returns stats + share."""
    sim = Simulator()
    devices = [
        Vcu(DEFAULT_VCU_SPEC, vcu_id=f"fm-{mitigated}-{seed}-{i}") for i in range(vcus)
    ]
    devices[0].mark_corrupt()
    workers = [VcuWorker(v, golden_screening=mitigated) for v in devices]
    cluster = TranscodeCluster(
        sim, workers, [CpuWorker(cores=24)],
        integrity_check_rate=0.95 if mitigated else 0.0,
        seed=seed,
    )
    graphs = [
        build_transcode_graph(
            f"v{i}", resolution("720p"), total_frames=300, fps=30.0,
            bucket=PopularityBucket.WARM,
        )
        for i in range(videos)
    ]
    for graph in graphs:
        cluster.submit(graph)
    sim.run()
    processed = [s.processed_by for g in graphs for s in g.transcode_steps()]
    share = blast_radius(processed, devices[0].vcu_id) / len(processed)
    return cluster.stats, share


def test_black_holing_and_mitigation(once):
    def measure():
        unmitigated_stats, unmitigated_share = _run_scenario(mitigated=False)
        mitigated_stats, mitigated_share = _run_scenario(mitigated=True)
        return unmitigated_stats, unmitigated_share, mitigated_stats, mitigated_share

    u_stats, u_share, m_stats, m_share = once(measure)
    print()
    rows = [
        ["unmitigated", f"{u_share:.0%}", u_stats.corrupt_escaped, u_stats.retries],
        ["mitigated", f"{m_share:.0%}", m_stats.corrupt_escaped, m_stats.retries],
    ]
    print(format_table(
        ["Scenario", "Traffic to bad VCU", "Corrupt chunks escaped", "Retries"],
        rows, title="Section 4.4: black-holing and its mitigation (1 of 4 VCUs corrupt)",
    ))
    # The fast-failing VCU black-holes a disproportionate share of
    # traffic (fair share with 4 VCUs would be 25%).
    assert u_share > 0.30
    assert u_stats.corrupt_escaped > 0
    # Golden screening keeps the bad VCU out entirely.
    assert m_share == 0.0
    assert m_stats.corrupt_escaped == 0


def test_midstream_failure_retries_elsewhere(once):
    """A VCU corrupted mid-run: integrity checks catch it, work retries
    on other VCUs, and the job still completes clean."""

    def measure():
        sim = Simulator()
        devices = [Vcu(DEFAULT_VCU_SPEC, vcu_id=f"mid-{i}") for i in range(4)]
        workers = [VcuWorker(v) for v in devices]
        cluster = TranscodeCluster(
            sim, workers, [CpuWorker(cores=24)], integrity_check_rate=1.0, seed=7
        )
        injector = FaultInjector(sim, devices, seed=7)
        injector.corrupt_at(2.0, devices[1])
        graphs = [
            build_transcode_graph(
                f"v{i}", resolution("720p"), 600, 30.0, bucket=PopularityBucket.WARM
            )
            for i in range(6)
        ]
        for graph in graphs:
            cluster.submit(graph)
        sim.run()
        return cluster.stats, graphs

    stats, graphs = once(measure)
    print(f"\nmid-stream corruption: retries={stats.retries}, "
          f"caught={stats.corrupt_caught}, escaped={stats.corrupt_escaped}, "
          f"graphs completed={stats.completed_graphs}/6")
    assert stats.completed_graphs == 6
    assert stats.corrupt_escaped == 0
    assert all(
        not s.corrupt_output for g in graphs for s in g.transcode_steps()
    )


def test_fleet_disable_and_repair_cap(once):
    def measure():
        hosts = [VcuHost() for _ in range(5)]
        manager = FailureManager(hosts, repair_cap=2)
        # Hard-fault a single VCU on host 0 (stays in production) and
        # blow past the component budget on hosts 1-3.
        hosts[0].vcus[0].telemetry.record(FaultKind.ECC_UNCORRECTABLE, count=5)
        for host in hosts[1:4]:
            for vcu in host.vcus[:6]:
                vcu.telemetry.record(FaultKind.ECC_UNCORRECTABLE, count=5)
        manager.sweep()
        return manager, hosts

    manager, hosts = once(measure)
    fraction = manager.fleet_capacity_fraction()
    queued = len(manager.repair_queue.waiting) + len(manager.repair_queue.in_repair)
    print(f"\nfleet capacity after sweep: {fraction:.0%}; "
          f"hosts queued for repair: {queued} (cap 2 of 3 unusable)")
    # Host 0 keeps serving with 19/20 VCUs (unit of fault mgmt = VCU).
    assert len(hosts[0].healthy_vcus()) == 19
    # The repair cap limits how many hosts leave production paths.
    assert queued == 2
    assert 0.3 <= fraction <= 0.9


def test_consistent_hashing_blast_radius(once):
    """Section 4.4's proposed enhancement: consistent hashing confines a
    video's chunks to few VCUs, shrinking how many videos one corrupt
    device can touch."""
    from repro.failures.consistent_hash import (
        ChunkAffinityPolicy,
        ConsistentHashRing,
        videos_touched_by,
    )

    def measure():
        fleet = [f"vcu-{i}" for i in range(50)]
        videos = [f"v{i}" for i in range(200)]
        chunks = 120  # a ten-minute video at 5s GOPs
        # Status quo: chunks scatter over the whole fleet (round-robin,
        # like a saturated first-fit queue).
        scattered = {
            v: [fleet[(i * 7 + c) % len(fleet)] for c in range(chunks)]
            for i, v in enumerate(videos)
        }
        policy = ChunkAffinityPolicy(ConsistentHashRing(fleet), affinity_size=3)
        confined = {
            v: [policy.preferred_vcu(v, c) for c in range(chunks)] for v in videos
        }
        bad = fleet[0]
        return (
            videos_touched_by(scattered, bad),
            videos_touched_by(confined, bad),
            len(videos),
        )

    scattered, confined, total = once(measure)
    print(f"\nvideos touched by one corrupt VCU out of 50: scattered "
          f"{scattered}/{total}, consistent-hash affinity {confined}/{total} "
          f"({scattered / max(confined, 1):.0f}x blast-radius reduction)")
    # Scattering touches every video; affinity touches only the videos
    # whose (small) affinity set contains the bad device.
    assert scattered > 0.9 * total
    assert confined < 0.2 * total
