"""Figure 9: post-launch accelerator workload scaling.

* 9a -- primary upload chunked workload: 50% on VCU at launch reaching
  100% in month 7; normalized total throughput grows ~10x over a year.
* 9b -- live transcoding on VCU ramps steadily (several-fold growth).
* 9c -- opportunistic software decoding (enabled after month 6) drops
  average hardware decoder utilization from ~98% to ~91%, relieving
  encoder-core stranding.
"""

from __future__ import annotations

import numpy as np
import pytest

from benchmarks.conftest import run_experiment
from repro.cluster.timeline import default_timeline, live_adoption_curve
from repro.control.catalog import FIG9_MONTHS as MONTHS
from repro.metrics import format_table


@pytest.fixture(scope="module")
def timeline_results():
    """Ordered per-month result dicts from the registered experiment
    (seed/horizon/fleet parameters live in its grid)."""
    return run_experiment("fig9-timeline").results


def test_fig9a_upload_scaling(timeline_results, once):
    results = once(lambda: timeline_results)
    base = results[0]["throughput_mpix_s"]
    norms = [r["throughput_mpix_s"] / base for r in results]
    configs = default_timeline(MONTHS)
    print()
    rows = [
        [r["month"], round(n, 2), f"{c.fraction_on_vcu:.0%}", r["vcu_workers"]]
        for r, n, c in zip(results, norms, configs)
    ]
    print(format_table(
        ["Month", "Normalized throughput", "Share on VCU", "VCU workers"],
        rows, title="Figure 9a: chunked upload workload scaling (paper: ~10x by month 12)",
    ))
    # Shape: strong monotone-ish growth, several-fold by month 12.
    assert norms[-1] > 4.0
    assert norms[6] > norms[0]  # month 7 (full migration) above launch
    # Mostly monotone: each quarter-end exceeds the previous one.
    assert norms[2] < norms[5] < norms[8] < norms[11]


def test_fig9b_live_scaling(once):
    curve = once(lambda: live_adoption_curve(MONTHS))
    print()
    print(format_table(
        ["Month", "Normalized live throughput"],
        [[m + 1, round(v, 2)] for m, v in enumerate(curve)],
        title="Figure 9b: live transcoding on VCU",
    ))
    assert curve[0] == pytest.approx(1.0)
    assert all(b >= a for a, b in zip(curve, curve[1:]))
    assert curve[-1] > 3.0  # several-fold ramp


def test_fig9c_opportunistic_software_decode(timeline_results, once):
    results = once(lambda: timeline_results)
    before = [r["decoder_util"] for r in results if 3 <= r["month"] <= 6]
    after = [r["decoder_util"] for r in results if r["month"] > 6]
    print()
    print(format_table(
        ["Month", "Decoder util", "Encoder util"],
        [[r["month"], round(r["decoder_util"], 3), round(r["encoder_util"], 3)]
         for r in results],
        title="Figure 9c: hardware decoder utilization (paper: ~98% -> ~91%)",
    ))
    mean_before, mean_after = float(np.mean(before)), float(np.mean(after))
    print(f"mean decoder utilization: months 3-6 {mean_before:.3f} -> "
          f"months 7-12 {mean_after:.3f} (paper ~0.98 -> ~0.91)")
    # Shape: decoder utilization is high while hardware decode binds, then
    # drops by several points once software decode offloads it.
    assert mean_before > 0.8
    assert mean_after < mean_before - 0.02
