"""Table 2 / Appendix A.3: host resources scaled for 153 Gpixel/s.

Paper rows:
    Transcoding overheads   42 cores   214 Gbps
    Network & RPC           13 cores   300 Gbps
    Total                   55 cores   712 Gbps
(plus the implied bandwidth-only PCIe-DMA row that reconciles the total;
see repro.balance.host).
"""

from __future__ import annotations

import pytest

from repro.balance import host_resource_table
from repro.balance.host import host_headroom
from repro.metrics import format_table

PAPER = {
    "Transcoding overheads": (42, 214),
    "Network & RPC": (13, 300),
    "Total": (55, 712),
}


def test_table2(once):
    rows = once(lambda: host_resource_table(153.0))
    print()
    display = []
    for row in rows:
        paper = PAPER.get(row.use, ("-", "-"))
        display.append([
            row.use, round(row.logical_cores, 1), paper[0],
            round(row.dram_bandwidth_gbps), paper[1],
        ])
    print(format_table(
        ["Use", "Cores (ours)", "Cores (paper)", "DRAM Gbps (ours)", "DRAM Gbps (paper)"],
        display, title="Table 2: host resources scaled for 153 Gpixel/s",
    ))
    by_use = {r.use: r for r in rows}
    for use, (cores, gbps) in PAPER.items():
        assert by_use[use].logical_cores == pytest.approx(cores, rel=0.02)
        assert by_use[use].dram_bandwidth_gbps == pytest.approx(gbps, rel=0.02)


def test_host_headroom(once):
    headroom = once(host_headroom)
    print(f"\nhost usage at 153 Gpixel/s: "
          f"{headroom['cores_used']:.0f}/{headroom['cores_available']:.0f} cores, "
          f"{headroom['dram_gbps_used']:.0f}/{headroom['dram_gbps_available']:.0f} Gbps "
          f"-- about half the host (Appendix A.3)")
    # Appendix A.3: "about half of what the target host system provides".
    assert 0.4 <= headroom["core_fraction"] <= 0.65
    assert 0.35 <= headroom["dram_fraction"] <= 0.55
