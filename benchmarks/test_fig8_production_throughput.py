"""Figure 8: per-VCU throughput on real production upload workloads.

Paper: the main MOT worker job sustains ~400 Mpix/s per VCU with very low
variability; the single-output (SOT) worker sits near ~250 Mpix/s because
it re-decodes the source per output and must also produce inefficient
low-resolution outputs for high-resolution inputs.  Both sit below the
vbench numbers because of I/O and the production workload mix.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.cluster import CpuWorker, TranscodeCluster, VcuWorker
from repro.metrics import format_table
from repro.sim import Simulator
from repro.transcode.ladder import LadderPolicy
from repro.vcu.chip import Vcu
from repro.vcu.spec import DEFAULT_VCU_SPEC
from repro.workloads.upload import UploadGenerator

EPOCHS = 5
HORIZON = 90.0
VCUS = 5


def run_epoch(seed: int, use_mot: bool) -> float:
    """One production epoch; returns Mpix/s per VCU.

    The worker-type resource mapping differs by step shape (Section 3.3.3
    allows per-worker-type cost mappings): SOT steps are batch work sized
    at a lower realtime multiple, since rushing six redundant decodes of
    the same input would only exhaust the decode dimension faster.
    """
    sim = Simulator()
    workers = [
        VcuWorker(
            Vcu(DEFAULT_VCU_SPEC, vcu_id=f"fig8-{seed}-{use_mot}-{i}"),
            target_speedup=5.0 if use_mot else 2.5,
        )
        for i in range(VCUS)
    ]
    cluster = TranscodeCluster(
        sim, workers, [CpuWorker(cores=24)], seed=seed,
    )
    # Demand comfortably above fleet capacity: production VCU workers run
    # saturated (the deep global work queue always has chunks waiting).
    generator = UploadGenerator(
        arrivals_per_second=0.25 * VCUS, seed=seed, mean_duration_seconds=45.0
    )
    for video in generator.videos(until=HORIZON):
        graph = generator.to_graph(video, LadderPolicy(), use_mot=use_mot)
        sim.call_at(video.arrival_time, lambda g=graph: cluster.submit(g))
    sim.run(until=HORIZON)
    return cluster.stats.throughput.total_megapixels / HORIZON / VCUS


def test_fig8_mot_vs_sot(once):
    def measure():
        mot = [run_epoch(seed, use_mot=True) for seed in range(EPOCHS)]
        sot = [run_epoch(seed, use_mot=False) for seed in range(EPOCHS)]
        return mot, sot

    mot, sot = once(measure)
    print()
    rows = [
        [epoch + 1, round(m), round(s)] for epoch, (m, s) in enumerate(zip(mot, sot))
    ]
    rows.append(["mean", round(float(np.mean(mot))), round(float(np.mean(sot)))])
    rows.append(["paper", 400, 250])
    print(format_table(
        ["Epoch", "MOT Mpix/s per VCU", "SOT Mpix/s per VCU"],
        rows, title="Figure 8: production throughput per VCU",
    ))

    mot_mean, sot_mean = float(np.mean(mot)), float(np.mean(sot))
    # Shape: MOT clearly above SOT, both below the vbench figures, in the
    # right neighbourhoods.
    assert 300 <= mot_mean <= 600
    assert 120 <= sot_mean <= 380
    assert mot_mean > 1.25 * sot_mean
    # The MOT line is steady (paper: "lack of variability in the MOT
    # line"): coefficient of variation stays small.
    assert float(np.std(mot)) / mot_mean < 0.10
