"""Figure 10: hardware bitrate vs software at iso-quality over time.

Paper: from launch, VCU bitrate at iso-quality was ~+12% (VP9) / ~+8%
(H.264) above the software encoders; post-deployment rate-control tuning
(all in host userspace, Section 3.3.2) drove it down month after month,
with H.264 eventually crossing *below* software (~-2%) and VP9 reaching
parity, over ~16 months.

We measure the launch gap with a real encode sweep (BD-rate of the VCU
profile vs its software counterpart on a title subset), then replay the
tuning timeline: each month's rate-control efficiency multiplies the
hardware bitrate at iso-quality.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.codec.profiles import LIBVPX, LIBX264, VCU_H264, VCU_VP9
from repro.codec.tuning import TUNING_MILESTONES, rate_control_efficiency
from repro.harness.rd import rd_curve, suite_bd_rates
from repro.metrics import format_table
from repro.metrics.quality import bd_rate
from repro.video.vbench import VBENCH_SUITE

MONTHS = 16
#: Title subset for the launch-gap measurement (full suite is Figure 7's
#: job); spans easy, medium, and hard content.
TITLES = [VBENCH_SUITE[1], VBENCH_SUITE[4], VBENCH_SUITE[9]]


@pytest.fixture(scope="module")
def launch_gaps():
    """Measured launch-time BD-rate of VCU vs software, per codec."""
    gaps = {}
    for codec, (software, hardware) in {
        "h264": (LIBX264, VCU_H264), "vp9": (LIBVPX, VCU_VP9)
    }.items():
        values = []
        for title in TITLES:
            ref = rd_curve(software, title, frame_count=6, proxy_height=60)
            test = rd_curve(hardware, title, frame_count=6, proxy_height=60)
            values.append(bd_rate(ref, test))
        gaps[codec] = float(np.mean(values))
    return gaps


def bitrate_vs_software(codec: str, launch_gap_percent: float, month: float) -> float:
    """% bitrate difference vs software after ``month`` months of tuning."""
    launch_ratio = 1.0 + launch_gap_percent / 100.0
    tuned = launch_ratio * rate_control_efficiency(codec, month)
    return (tuned - 1.0) * 100.0


def test_fig10_timeline(launch_gaps, once):
    def replay():
        series = {}
        for codec in ("h264", "vp9"):
            series[codec] = [
                bitrate_vs_software(codec, launch_gaps[codec], month)
                for month in range(MONTHS + 1)
            ]
        return series

    series = once(replay)
    print()
    rows = [
        [month, round(series["vp9"][month], 1), round(series["h264"][month], 1)]
        for month in range(MONTHS + 1)
    ]
    print(format_table(
        ["Month", "VP9 % vs software", "H.264 % vs software"],
        rows,
        title="Figure 10: hardware bitrate vs software at iso-quality "
              "(paper: VP9 +12%->~0%, H.264 +8%->-2%)",
    ))
    print("milestones:", ", ".join(f"m{m.month}:{m.name}" for m in TUNING_MILESTONES))

    for codec in ("h264", "vp9"):
        values = series[codec]
        # Starts positive (hardware worse at launch)...
        assert values[0] > 4.0
        # ...improves monotonically...
        assert all(b <= a + 1e-9 for a, b in zip(values, values[1:]))
        # ...and reaches (near-)parity by month 16.
        assert values[-1] < 3.0
    # H.264 ends at or below software (the paper's crossover).
    assert series["h264"][-1] <= 0.5
    # VP9 starts with the bigger gap, as in the paper.
    assert series["vp9"][0] > series["h264"][0]


def test_fig10_launch_gap_bands(launch_gaps, once):
    gaps = once(lambda: launch_gaps)
    print(f"\nmeasured launch BD-rate gaps: "
          f"H.264 +{gaps['h264']:.1f}% (paper ~+8-11.5%), "
          f"VP9 +{gaps['vp9']:.1f}% (paper ~+12-18%)")
    assert 5.0 <= gaps["h264"] <= 20.0
    assert 8.0 <= gaps["vp9"] <= 30.0
