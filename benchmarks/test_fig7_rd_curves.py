"""Figure 7: rate-distortion curves on the vbench suite, plus the
BD-rate comparisons of Section 4.1.

Paper claims reproduced here (suite-average BD-rate, PSNR-based):
  * VCU-VP9 vs libx264 (software H.264): ~-30% (the headline win)
  * VCU-H.264 vs libx264:               ~+11.5% (hardware lacks trellis)
  * VCU-VP9 vs libvpx:                  ~+18%
plus the qualitative curve properties: easy screen-content titles sit at
high PSNR / low bitrate, `holi` is the hardest, and VP9 curves sit left
of H.264 curves.

This is a real encode sweep (functional codec), so it is the slowest
benchmark: ~4 encoder profiles x 15 titles x 5 QPs.
"""

from __future__ import annotations

import pytest

from benchmarks.conftest import run_experiment
from repro.codec.profiles import ALL_PROFILES
from repro.harness.rd import suite_bd_rates
from repro.metrics import format_table
from repro.metrics.quality import RDPoint
from repro.video.vbench import VBENCH_SUITE


@pytest.fixture(scope="module")
def experiment_run():
    """The registered fig7 experiment (frames/proxy-height/seed live in
    its grid); this bench is a thin assertion layer over its results."""
    return run_experiment("fig7-bd-rates")


@pytest.fixture(scope="module")
def curves(experiment_run):
    """``curves[title][profile] -> [RDPoint...]`` from the unit results."""
    return {
        result["title"]: {
            profile: [RDPoint(bitrate=b, psnr=p) for b, p in points]
            for profile, points in result["curves"].items()
        }
        for result in experiment_run.results
    }


def test_fig7_bd_rates(curves, experiment_run, once):
    summary = once(lambda: suite_bd_rates(curves))
    # The runner's manifest summary must agree with the direct
    # computation over the same curves (up to result rounding).
    by_comparison = {row["comparison"]: row for row in experiment_run.summary_rows()}
    for name, value in (
        ("vcu_vp9_vs_libx264", summary.vcu_vp9_vs_libx264),
        ("vcu_h264_vs_libx264", summary.vcu_h264_vs_libx264),
        ("vcu_vp9_vs_libvpx", summary.vcu_vp9_vs_libvpx),
        ("libvpx_vs_libx264", summary.libvpx_vs_libx264),
    ):
        assert by_comparison[name]["bd_rate_pct"] == pytest.approx(value, abs=0.5)
        assert by_comparison[name]["titles"] == len(VBENCH_SUITE)
    print()
    rows = [
        ["VCU-VP9 vs libx264", round(summary.vcu_vp9_vs_libx264, 1), -30.0],
        ["VCU-H264 vs libx264", round(summary.vcu_h264_vs_libx264, 1), 11.5],
        ["VCU-VP9 vs libvpx", round(summary.vcu_vp9_vs_libvpx, 1), 18.0],
        ["libvpx vs libx264", round(summary.libvpx_vs_libx264, 1), -41.0],
    ]
    print(format_table(
        ["Comparison", "BD-rate % (ours)", "BD-rate % (paper)"],
        rows, title="Figure 7 / Section 4.1: suite-average BD-rates",
    ))
    # Shape bands: sign and rough magnitude must match the paper.
    assert -45.0 <= summary.vcu_vp9_vs_libx264 <= -15.0
    assert 5.0 <= summary.vcu_h264_vs_libx264 <= 20.0
    assert 10.0 <= summary.vcu_vp9_vs_libvpx <= 30.0
    assert summary.libvpx_vs_libx264 < -25.0


def test_fig7_curve_shapes(curves, once):
    """The qualitative Figure 7 features."""

    def analyse():
        # PSNR at the mid QP for each title/profile.
        mid = {}
        for title, by_profile in curves.items():
            mid[title] = {
                name: points[2] for name, points in by_profile.items()
            }
        return mid

    mid = once(analyse)
    print()
    rows = [
        [title,
         round(mid[title]["libx264"].psnr, 1),
         round(mid[title]["vcu-vp9"].psnr, 1),
         round(mid[title]["libx264"].bitrate / 1e6, 2),
         round(mid[title]["vcu-vp9"].bitrate / 1e6, 2)]
        for title in (v.name for v in VBENCH_SUITE)
    ]
    print(format_table(
        ["Title", "x264 PSNR", "VCU-VP9 PSNR", "x264 Mbps", "VCU-VP9 Mbps"],
        rows, title="Figure 7: mid-QP operating points per title",
    ))

    # Easy screen content compresses far better than the hardest title.
    easy = mid["presentation"]["libx264"]
    hard = mid["holi"]["libx264"]
    easy_bpp = easy.bitrate / 1e6
    hard_bpp = hard.bitrate / 1e6
    assert easy.psnr > hard.psnr
    assert easy_bpp < 0.5 * hard_bpp

    # VP9 needs fewer bits than H.264 at the same QP rung for hard titles.
    assert mid["holi"]["vcu-vp9"].bitrate < mid["holi"]["libx264"].bitrate

    # Curves behave: along the QP ladder, quality never improves and
    # bitrate essentially never grows (real encoders show tiny tail
    # upticks on near-static content where header bits dominate, so a
    # few percent of slack is allowed).
    for title, by_profile in curves.items():
        for name, points in by_profile.items():
            for low_qp, high_qp in zip(points, points[1:]):
                assert high_qp.psnr <= low_qp.psnr + 0.05, f"{title}/{name}"
                assert high_qp.bitrate <= low_qp.bitrate * 1.08, f"{title}/{name}"


def test_fig7_prints_full_series(curves, once):
    """Emit the full RD series (the actual figure data)."""

    def render():
        lines = []
        for title, by_profile in curves.items():
            for name, points in by_profile.items():
                series = " ".join(
                    f"({p.bitrate/1e6:.2f}Mbps,{p.psnr:.1f}dB)" for p in points
                )
                lines.append(f"{title:14s} {name:9s} {series}")
        return lines

    lines = once(render)
    print()
    print("Figure 7: operational RD curves (bitrate scaled to nominal resolution)")
    for line in lines:
        print(line)
    assert len(lines) == len(VBENCH_SUITE) * len(ALL_PROFILES)
