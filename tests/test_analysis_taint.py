"""Flow-sensitive determinism-taint pass: TP / clean / pragma coverage.

The per-call-site checks live with the plain ``determinism`` rule in
test_analysis_rules.py; this suite is about *propagation* -- ambient
values flowing through assignments, helper calls, object state, and
module state before they leak.
"""

import textwrap

from hypothesis import given
from hypothesis import strategies as st

from repro.analysis.core import analyze_source
from repro.analysis.taint import DeterminismTaintRule


def taint(source, path="src/repro/fake.py"):
    return analyze_source(
        textwrap.dedent(source), path, [DeterminismTaintRule()]
    )


class TestTruePositives:
    def test_wall_clock_leaks_through_return(self):
        findings, _ = taint(
            """\
            import time


            def stamp():
                t = time.time()
                return t
            """
        )
        assert [(f.rule, f.line) for f in findings] == [("determinism-taint", 6)]
        assert "time.time" in findings[0].message

    def test_taint_propagates_through_assignment_chain(self):
        findings, _ = taint(
            """\
            import time


            def stamp():
                a = time.time()
                b = a * 1000.0
                c = (b, "label")
                return c
            """
        )
        assert [f.line for f in findings] == [8]

    def test_taint_crosses_function_boundaries(self):
        findings, _ = taint(
            """\
            import time


            def clock():
                t = time.time()
                return t


            def caller():
                x = clock()
                return x
            """
        )
        assert [f.line for f in findings] == [6, 11]

    def test_ambient_rng_store_on_self(self):
        findings, _ = taint(
            """\
            import random


            class Sampler:
                def reseed(self):
                    draw = random.random()
                    self.offset = draw
            """
        )
        assert len(findings) == 1
        assert "self.offset" in findings[0].message

    def test_module_level_ambient_seed(self):
        findings, _ = taint(
            """\
            import time

            _BOOT = time.time()
            START = _BOOT
            """
        )
        assert any("module-level" in f.message for f in findings)

    def test_tainted_yield_is_flagged(self):
        findings, _ = taint(
            """\
            import time


            def ticker():
                t = time.time()
                yield t
            """
        )
        assert [f.line for f in findings] == [6]


class TestCleanCases:
    def test_virtual_time_is_not_tainted(self):
        findings, _ = taint(
            """\
            def stamp(sim):
                t = sim.now
                return t
            """
        )
        assert findings == []

    def test_seeded_generator_draws_are_clean(self):
        findings, _ = taint(
            """\
            def draw(rng):
                x = rng.random()
                y = x + 1.0
                return y
            """
        )
        assert findings == []

    def test_reassignment_stays_conservatively_tainted(self):
        # The fixpoint is accumulate-only (monotone, loop-safe): once a
        # name has carried ambient data it stays suspect even after a
        # clean rebind.  Pragma the sink if the rebind is intentional.
        findings, _ = taint(
            """\
            import time


            def stamp(sim):
                t = time.time()
                t = sim.now
                return t
            """
        )
        assert [f.line for f in findings] == [7]

    def test_same_line_seed_is_left_to_the_per_file_rule(self):
        # Seeding and leaking on one line is the plain determinism
        # rule's call-site finding; taint only reports flows.
        findings, _ = taint(
            """\
            import time


            def stamp():
                return time.time()
            """
        )
        assert findings == []


class TestPragmas:
    def test_sanctioned_seed_does_not_taint(self):
        findings, _ = taint(
            """\
            import time


            def stamp():
                t = time.time()  # lint: allow=determinism -- shim boundary
                return t
            """
        )
        assert findings == []

    def test_sink_line_pragma_suppresses_the_leak(self):
        findings, suppressed = taint(
            """\
            import time


            def stamp():
                t = time.time()
                return t  # lint: allow=determinism-taint -- logged only
            """
        )
        assert findings == []
        assert suppressed == 1

    def test_file_pragma_silences_the_pass(self):
        findings, _ = taint(
            """\
            # lint: allow-file=determinism -- wall-clock shim module
            import time


            def stamp():
                t = time.time()
                return t
            """
        )
        assert findings == []


class TestProperties:
    @given(st.integers(min_value=1, max_value=25))
    def test_taint_survives_chains_of_any_length(self, n):
        body = ["    v0 = time.time()"]
        body += [f"    v{i} = v{i - 1}" for i in range(1, n + 1)]
        body += [f"    return v{n}"]
        source = "import time\n\n\ndef stamp():\n" + "\n".join(body) + "\n"
        findings, _ = taint(source)
        # Exactly one leak, at the return, however long the chain is.
        assert [(f.rule, f.line) for f in findings] == [
            ("determinism-taint", 4 + n + 2)
        ]

    @given(st.integers(min_value=1, max_value=10))
    def test_clean_chains_never_fire(self, n):
        body = ["    v0 = sim.now"]
        body += [f"    v{i} = v{i - 1}" for i in range(1, n + 1)]
        body += [f"    return v{n}"]
        source = "def stamp(sim):\n" + "\n".join(body) + "\n"
        findings, _ = taint(source)
        assert findings == []
